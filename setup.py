"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works on offline machines whose setuptools lacks a
bundled ``wheel`` (the legacy develop-install path needs no wheel
building).
"""

from setuptools import setup

setup()

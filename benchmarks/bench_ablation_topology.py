"""Ablation bench: inter-FPGA fabric choice (paper Sec. 4.1).

FASDA's traffic is neighbor-dominated (Fig. 18(B)), so the figure of
merit is hop distance between spatially adjacent nodes — where cheap
low-degree fabrics like hyper-rings stay competitive with a full torus,
compensating for their poor all-pairs bandwidth.
"""

import pytest

from repro.harness.ablations import format_topology, run_topology_comparison


def test_topology_tradeoff(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_topology_comparison, args=((2, 2, 2),), rounds=3, iterations=1
    )
    save_artifact("ablation_topology", format_topology(result))

    by_name = {r.name: r for r in result.rows}
    torus = by_name["torus(direct)"]
    hyper = by_name["hyper-ring(o2)"]
    ring = by_name["ring(o1)"]

    # The direct torus matches the traffic exactly (neighbors 1 hop away)
    # but needs the most links.
    assert torus.neighbor_avg_distance == 1.0
    assert torus.links > hyper.links or torus.links > ring.links
    # The hyper-ring's neighbor distance stays close to the torus even
    # though its all-pairs diameter is worse — the paper's argument for
    # tolerating hyper-rings.
    assert hyper.neighbor_avg_distance <= 2.5
    assert hyper.diameter >= torus.diameter


def test_topology_scales_to_64_nodes(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_topology_comparison, args=((4, 4, 4),), rounds=1, iterations=1
    )
    save_artifact("ablation_topology_64", format_topology(result))
    by_name = {r.name: r for r in result.rows}
    # At 64 nodes the link-count gap widens sharply.
    assert by_name["torus(direct)"].links >= 3 * by_name["ring(o1)"].links / 2
    assert by_name["hyper-ring(o2)"].links < by_name["torus(direct)"].links

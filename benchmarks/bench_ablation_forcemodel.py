"""Ablation bench: force-model generality of the table-lookup pipeline.

Paper Sec. 3.4: the indexed-interpolation pipeline "supports generality
by enabling different force models to be implemented with trivial
modification".  This bench loads the *same* datapath with two ROM
images — LJ and real-space Ewald electrostatics — and verifies each
against its double-precision reference, quantifying the claim.
"""

import numpy as np
import pytest

from repro.core.datapath import TabulatedRadialPipeline
from repro.md.ewald import (
    choose_beta,
    ewald_real_energy_scalar,
    ewald_real_scalar,
)
from repro.md.params import LJTable

CUTOFF = 8.5


def test_same_pipeline_two_force_models(benchmark, save_artifact):
    lj = LJTable(("Na",))
    beta = choose_beta(CUTOFF)

    lj_pipe = TabulatedRadialPipeline.from_physical(
        lambda r2: lj.c14[0, 0] * r2 ** -7.0 - lj.c8[0, 0] * r2 ** -4.0,
        lambda r2: lj.c12[0, 0] * r2 ** -6.0 - lj.c6[0, 0] * r2 ** -3.0,
        cutoff=CUTOFF,
    )
    ew_pipe = TabulatedRadialPipeline.from_physical(
        lambda r2: ewald_real_scalar(r2, beta),
        lambda r2: ewald_real_energy_scalar(r2, beta),
        cutoff=CUTOFF,
    )

    rng = np.random.default_rng(3)
    rn = rng.uniform(0.25, 0.99, size=20_000)
    dr = np.zeros((len(rn), 3))
    dr[:, 0] = rn
    r2 = (rn * rn).astype(np.float32)
    ones = np.ones(len(rn))

    # Benchmark the shared hot path (one pipeline pass).
    f_lj, _ = benchmark(lj_pipe.compute, dr, r2, ones)

    f_ew, _ = ew_pipe.compute(dr, r2, ones)
    r_phys = rn * CUTOFF
    expected_lj = (
        lj.c14[0, 0] * r_phys ** -14 - lj.c8[0, 0] * r_phys ** -8
    ) * r_phys
    expected_ew = ewald_real_scalar(r_phys ** 2, beta) * r_phys

    # Both models through the identical datapath, each within table+f32
    # error of its double-precision reference.
    lj_ok = np.abs(f_lj[:, 0] - expected_lj) <= np.maximum(
        5e-3 * np.abs(expected_lj), 1e-4
    )
    ew_err = np.abs(f_ew[:, 0] - expected_ew) / np.abs(expected_ew)
    assert np.mean(lj_ok) > 0.999
    assert np.max(ew_err) < 1e-2

    lines = [
        "Force-model generality: one pipeline, two ROM images",
        f"  LJ force    : {np.mean(lj_ok):.1%} of samples within tolerance",
        f"  Ewald force : max rel err {np.max(ew_err):.2e}",
        f"  (beta = {beta:.4f} 1/A, cutoff = {CUTOFF} A, 14x256 tables)",
    ]
    save_artifact("ablation_forcemodel", "\n".join(lines))

"""Bench: distributed execution equals the global machine.

The distributed mode runs nodes independently with real packet exchange
and the Sec. 4.2 ID conversions; its forces, energies, and packet
counts must match the global machine (which computes globally and
accounts traffic analytically).  This is the reproduction's strongest
end-to-end protocol check.
"""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.md import build_dataset


def test_distributed_equivalence(benchmark, save_artifact):
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_dataset((4, 4, 4), particles_per_cell=32, seed=3)
    global_m = FasdaMachine(cfg, system=system.copy())
    dist_m = DistributedMachine(cfg, system=system.copy())

    stats = global_m.compute_forces(collect_traffic=True)
    benchmark.pedantic(dist_m.compute_forces, rounds=3, iterations=1)

    fg = global_m.forces.astype(np.float64)
    fd = dist_m.forces.astype(np.float64)
    err = float(np.abs(fg - fd).max() / np.abs(fg).max())
    assert err < 1e-5

    expected_packets = sum(
        int(np.ceil(r / cfg.records_per_packet))
        for r in stats.position_records.values()
    )
    # compute_forces ran 3 times in the benchmark + warm-ups accumulate;
    # compare per-pass counts.
    per_pass = dist_m.total_position_packets / 3
    assert per_pass == pytest.approx(expected_packets)

    lines = [
        "Distributed-vs-global equivalence (4x4x4 on 8 nodes, 2048 particles)",
        f"  max force difference  : {err:.2e} (float32 accumulation order)",
        f"  potential energy      : {dist_m._last_potential:.4f} vs "
        f"{stats.potential_energy:.4f} kcal/mol",
        f"  position packets/pass : {per_pass:.0f} (accounting: {expected_packets})",
    ]
    save_artifact("distributed_equivalence", "\n".join(lines))

"""Ablation bench: chained synchronization vs. BSP (paper Sec. 4.4).

Sweeps random-straggler probability on an 8-node torus and compares
steady-state cycles/iteration for chained sync, switch-barrier BSP, and
host-coordinated BSP.  The paper's quantitative point — host-driven
barriers cost milliseconds per iteration — dominates; the decentralized
protocol additionally absorbs transient stragglers.
"""

import pytest

from repro.core.sync import constant_work, run_chained_sync
from repro.harness.ablations import format_sync_ablation, run_sync_ablation
from repro.network.topology import TorusTopology


def test_sync_ablation(benchmark, save_artifact):
    topo = TorusTopology((2, 2, 2))

    def one_chained_run():
        return run_chained_sync(topo, constant_work(16_000.0), n_iterations=5)

    res = benchmark.pedantic(one_chained_run, rounds=3, iterations=1)
    assert res.makespan > 0

    result = run_sync_ablation()
    save_artifact("ablation_sync", format_sync_ablation(result))

    for row in result.rows:
        # Host-coordinated BSP pays the ~1 ms (200k-cycle) round trip the
        # paper warns about — an order of magnitude over either FPGA-side
        # protocol.
        assert row.host_cycles_per_iter > 10 * row.chained_cycles_per_iter
        # Chained stays within a few percent of the ideal switch barrier
        # while remaining fully decentralized.
        assert row.chained_cycles_per_iter < 1.15 * row.bulk_cycles_per_iter

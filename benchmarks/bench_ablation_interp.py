"""Ablation bench: interpolation table size vs. accuracy (paper Sec. 3.4).

First-order indexed interpolation converges quadratically in bins per
section; the default 14x256 tables land at ~1e-4 relative force error —
consistent with the < 1e-4 energy error band of Fig. 19.
"""

import numpy as np
import pytest

from repro.arith.interp import InterpolationTable
from repro.harness.ablations import format_interp_sweep, run_interp_sweep


def test_interp_sweep(benchmark, save_artifact):
    result = run_interp_sweep()
    save_artifact("ablation_interp", format_interp_sweep(result))

    by_size = {(r.n_s, r.n_b): r for r in result.rows}
    # Quadratic convergence in bins: 64 -> 256 shrinks error ~16x.
    ratio = by_size[(14, 64)].max_rel_error_r14 / by_size[(14, 256)].max_rel_error_r14
    assert 10 < ratio < 25
    # The default size reaches the paper's accuracy band.
    assert by_size[(14, 256)].max_rel_error_r14 < 2e-4
    # Extra sections beyond the r2 dynamic range cost words, not accuracy.
    assert by_size[(20, 256)].max_rel_error_r14 == pytest.approx(
        by_size[(14, 256)].max_rel_error_r14, rel=0.05
    )
    assert by_size[(20, 256)].bram_words > by_size[(14, 256)].bram_words

    # Benchmark the hot path: one vectorized table evaluation.
    table = InterpolationTable(14, n_s=14, n_b=256)
    r2 = np.random.default_rng(0).uniform(2.0 ** -10, 1.0, size=50_000)
    out = benchmark(table.evaluate_f32, r2)
    assert out.shape == r2.shape

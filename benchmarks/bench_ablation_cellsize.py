"""Ablation bench: cell size around the cutoff radius (paper Fig. 3).

At cell edge = R_c the design keeps the 26-cell neighborhood while
maximizing the valid-pair fraction (Eq. 3's 15.5%); smaller cells blow
up the neighbor-cell count (inter-cell communication), larger cells
dilute filtering efficiency.
"""

import pytest

from repro.harness.ablations import format_cellsize, run_cellsize_analysis


def test_cellsize_tradeoff(benchmark, save_artifact):
    result = benchmark.pedantic(run_cellsize_analysis, rounds=5, iterations=1)
    save_artifact("ablation_cellsize", format_cellsize(result))

    by_ratio = {round(r.size_ratio, 2): r for r in result.rows}
    at_rc = by_ratio[1.0]
    # Eq. 3: 15.5% valid pairs at cell edge = R_c.
    assert at_rc.valid_fraction == pytest.approx(0.155, abs=0.002)
    assert at_rc.neighbor_cells == 26
    # Smaller cells multiply the cells to evaluate (Fig. 3 left).
    assert by_ratio[0.5].neighbor_cells > 100
    # Larger cells dilute the filter (Fig. 3 right).
    assert by_ratio[1.5].valid_fraction < 0.5 * at_rc.valid_fraction
    assert by_ratio[2.0].valid_fraction < by_ratio[1.5].valid_fraction
    # R_c maximizes valid fraction among sizes that keep 26 neighbors.
    for ratio, row in by_ratio.items():
        if row.neighbor_cells == 26:
            assert at_rc.valid_fraction >= row.valid_fraction

"""Ablation bench: filters per force pipeline (paper uses 6).

Throughput grows with the filter count while the filter bank is the
bottleneck and saturates once the one-force-per-cycle pipeline is; the
paper's choice of 6 sits where filter hardware utilization still matches
the PEs (Fig. 17's "the upstream filters match the PEs well").
"""

import pytest

from repro.harness.ablations import format_filter_sweep, run_filter_sweep


def test_filter_sweep(benchmark, save_artifact):
    result = benchmark.pedantic(run_filter_sweep, rounds=1, iterations=1)
    save_artifact("ablation_filters", format_filter_sweep(result))

    by_count = {r.filters: r for r in result.rows}
    # Rate grows while filter-bound...
    assert by_count[4].rate_us_per_day > by_count[2].rate_us_per_day
    assert by_count[6].rate_us_per_day > by_count[4].rate_us_per_day
    # ...and saturates once the pipeline is the bottleneck.
    assert by_count[16].rate_us_per_day == pytest.approx(
        by_count[12].rate_us_per_day, rel=0.02
    )
    # At the paper's choice of 6, filters and PE stay matched.
    assert abs(
        by_count[6].filter_hw_utilization - by_count[6].pe_hw_utilization
    ) < 0.15
    # Overshooting filters wastes them: utilization collapses.
    assert by_count[16].filter_hw_utilization < by_count[6].filter_hw_utilization

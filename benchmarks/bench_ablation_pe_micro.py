"""Ablation bench: PE microarchitecture (buffer depth, filter count).

Bounds the cycle model's calibrated ``PE_FILTER_EFFICIENCY = 0.70`` from
first principles: an idealized cycle-level PE (synchronous reloads,
dense neighbor streams) retires 0.95-0.99 candidates/filter/cycle, so
the RTL's measured 0.70 (Fig. 17) attributes ~0.25-0.3 to position
distribution and dispatch overheads outside the filter bank.  Also
quantifies the arbitration-buffer depth and the filter-count trade
behind the paper's choice of 6.
"""

import pytest

from repro.core.pesim import simulate_pe
from repro.harness.report import format_table


def test_pe_microsim_ablation(benchmark, save_artifact):
    result = benchmark.pedantic(
        simulate_pe, kwargs={"queue_depth": 8, "seed": 0}, rounds=3, iterations=1
    )
    assert result.pipeline_outputs == result.accepted

    rows = []
    for qd in (1, 2, 4, 8, 16):
        r = simulate_pe(queue_depth=qd, seed=0)
        rows.append(
            ["queue=%d" % qd, r.cycles, 100 * r.filter_efficiency,
             100 * r.pipeline_utilization, 100 * r.stall_fraction]
        )
    for nf in (2, 4, 6, 8, 12):
        r = simulate_pe(n_filters=nf, seed=0)
        rows.append(
            ["filters=%d" % nf, r.cycles, 100 * r.filter_efficiency,
             100 * r.pipeline_utilization, 100 * r.stall_fraction]
        )
    table = format_table(
        ["sweep", "cycles", "filter eff %", "pipe util %", "stall %"],
        rows,
        precision=1,
        title="PE microsimulation (idealized bound on the 0.70 constant)",
    )
    save_artifact("ablation_pe_micro", table)

    # The idealized bound exceeds the calibrated constant.
    ideal = simulate_pe(queue_depth=8, seed=0)
    assert ideal.filter_efficiency > 0.70
    # 6 filters keep both sides of the trade healthy.
    six = simulate_pe(n_filters=6, seed=0)
    assert six.filter_efficiency > 0.9 and six.pipeline_utilization > 0.85

"""Bench: FPGA-count scaling with resource-constrained auto-organization.

Quantifies the abstract's "nearly linear scaling on an eight FPGA
cluster": at each node count the sweep instantiates the strongest PE/SPE
organization fitting a U280 (one FPGA must host all 64 cells and can
afford only 1 PE/cell; eight FPGAs host 8 cells each and fit 8 PEs/cell)
and measures the resulting rate.  Also regenerates the cycle-model
sensitivity table cited by EXPERIMENTS.md.
"""

import pytest

from repro.harness.sweeps import (
    format_fpga_scaling,
    format_sensitivity,
    format_weak_scaling_extension,
    run_fpga_scaling,
    run_sensitivity,
    run_weak_scaling_extension,
)


@pytest.fixture(scope="module")
def scaling():
    return run_fpga_scaling()


def test_fpga_scaling_nearly_linear(benchmark, scaling, save_artifact):
    from repro.harness.sweeps import best_fitting_config

    cfg = benchmark.pedantic(
        best_fitting_config, args=((4, 4, 4), 8), rounds=5, iterations=1
    )
    assert cfg is not None

    save_artifact("scaling_fpga_count", format_fpga_scaling(scaling))

    by_nodes = {r.n_fpgas: r for r in scaling.rows}
    # Monotone speedup, near-linear at the 8-node cluster.
    speedups = [by_nodes[n].speedup for n in (1, 2, 4, 8)]
    assert speedups == sorted(speedups)
    assert by_nodes[8].speedup > 6.5  # "nearly linear" on 8 FPGAs
    # The mechanism: node count buys PEs per cell under the resource cap.
    assert by_nodes[1].config.pes_per_cbb == 1
    assert by_nodes[8].config.pes_per_cbb >= 6


def test_weak_scaling_extends_to_27_boards(benchmark, save_artifact):
    """Beyond the paper's 8 boards: the ~50K-particle drug-discovery
    scale (9x9x9 cells, 46656 Na) on 27 FPGAs holds the ~2 us/day rate —
    weak scaling stays flat within 3%."""
    result = benchmark.pedantic(run_weak_scaling_extension, rounds=1, iterations=1)
    save_artifact("scaling_weak_extension", format_weak_scaling_extension(result))
    assert result.flatness < 1.05
    biggest = result.rows[-1]
    assert biggest.n_fpgas == 27
    assert biggest.n_particles > 45_000
    assert 1.8 < biggest.rate_us_per_day < 2.3


def test_sensitivity_of_calibrated_constants(benchmark, save_artifact):
    result = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    save_artifact("sensitivity", format_sensitivity(result))

    rates = [r.rate_3x3x3 for r in result.rows]
    gains = [r.strong_gain_c_over_a for r in result.rows]
    # +-10% on the constants moves absolute rates by ~+-20%...
    assert max(rates) / min(rates) < 1.6
    # ...but the comparative headline barely moves.
    assert max(gains) - min(gains) < 0.5
    assert all(4.5 < g < 6.0 for g in gains)


def test_campaign_fanout_matches_serial(benchmark, save_artifact):
    """The scaling sweep through the campaign runner: process-pool
    fan-out must merge to the exact serial result (and the campaign
    document view must carry every node count)."""
    from repro.harness.campaign import point, run_campaign

    pts = [
        point("fpga_scaling", label=f"{n}-fpga", n_fpgas=n)
        for n in (1, 2, 4, 8)
    ]
    serial = run_campaign(pts, parallel=False)
    par = benchmark.pedantic(
        lambda: run_campaign(pts, parallel=True), rounds=1, iterations=1
    )
    assert par.deterministic() == serial.deterministic()
    assert [p["result"]["n_fpgas"] for p in par.results] == [1, 2, 4, 8]

    parallel_sweep = run_fpga_scaling(parallel=True)
    save_artifact("scaling_fpga_count", format_fpga_scaling(parallel_sweep))
    serial_sweep = run_fpga_scaling()
    assert [
        (r.n_fpgas, r.rate_us_per_day, r.speedup) for r in parallel_sweep.rows
    ] == [
        (r.n_fpgas, r.rate_us_per_day, r.speedup) for r in serial_sweep.rows
    ]

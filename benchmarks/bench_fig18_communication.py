"""Benchmark regenerating paper Fig. 18: communication intensity.

(A) per-node average position/force bandwidth demand per design — the
paper reports < 25 Gbps even for the 2-SPE 3-PE strong-scaling point;
(B) node 0's egress breakdown across the seven other FPGAs — force
traffic concentrates on logically-near nodes because zero forces are
discarded.
"""

import pytest

from repro.core.config import strong_scaling_configs
from repro.core.machine import FasdaMachine
from repro.harness.experiments import format_fig18, run_fig18
from repro.network.fabric import Fabric


@pytest.fixture(scope="module")
def fig18_result():
    return run_fig18()


def test_fig18_communication(benchmark, fig18_result, save_artifact):
    cfg = strong_scaling_configs()["4x4x4-C"]
    machine = FasdaMachine(cfg)
    stats = machine.measure_workload()

    def account_traffic():
        fabric = Fabric(cfg.n_fpgas, cfg.packet_bits, cfg.records_per_packet)
        stats.fill_fabric(fabric)
        return fabric

    fabric = benchmark.pedantic(account_traffic, rounds=10, iterations=1)
    assert fabric.flows

    save_artifact("fig18_communication", format_fig18(fig18_result))

    # (A): below 25 Gbps on both channels for every design.
    for row in fig18_result.rows:
        assert row.position_gbps < 25.0, row.name
        assert row.force_gbps < 25.0, row.name
    # (B): force egress concentrates on 1-hop neighbors; the corner node
    # receives only a marginal share.
    frc = fig18_result.breakdown["force"]
    near = [frc[d] for d, h in fig18_result.hop_distance.items() if h == 1]
    far = [frc[d] for d, h in fig18_result.hop_distance.items() if h == 3]
    assert min(near) > 3 * max(far)


def test_fig18_cooldown_spreads_peaks(benchmark):
    """The cooldown mechanism of Sec. 5.4: peaks spread below line rate."""
    cfg = strong_scaling_configs()["4x4x4-C"]
    fabric = Fabric(cfg.n_fpgas, cfg.packet_bits, cfg.records_per_packet)

    peak = benchmark.pedantic(
        fabric.peak_gbps_with_cooldown,
        args=(cfg.cooldown_cycles, cfg.clock_hz),
        rounds=10,
        iterations=1,
    )
    assert peak < cfg.link_gbps  # throttled burst fits the port
    # Unthrottled back-to-back 512-bit packets at 200 MHz would exceed it.
    assert fabric.peak_gbps_with_cooldown(1, cfg.clock_hz) > cfg.link_gbps

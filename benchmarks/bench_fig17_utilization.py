"""Benchmark regenerating paper Fig. 17: component utilization breakdown.

Reports hardware and time utilization of PR, FR, filters, PEs, and MUs
for all seven measured design variants, and checks the paper's
qualitative claims (PEs ~80% busy at 50-60% hardware utilization, PR
least used, MU < 5%).
"""

import pytest

from repro.core.config import weak_scaling_configs
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.harness.experiments import format_fig17, run_fig17


@pytest.fixture(scope="module")
def fig17_result():
    return run_fig17()


def test_fig17_utilization(benchmark, fig17_result, save_artifact):
    cfg = weak_scaling_configs()["3x3x3"]
    machine = FasdaMachine(cfg)
    stats = machine.measure_workload()

    perf = benchmark.pedantic(
        estimate_performance, args=(cfg, stats), rounds=5, iterations=1
    )
    assert perf.utilization["mu"].time < 0.05

    save_artifact("fig17_utilization", format_fig17(fig17_result))

    for row in fig17_result.rows:
        # PEs: ~80% time utilization, 50-60% hardware utilization.
        assert 0.6 < row.time["pe"] < 0.9, row.name
        assert 0.40 < row.hardware["pe"] < 0.62, row.name
        # PR is the least-utilized ring; MU is negligible.
        assert row.hardware["pr"] < row.hardware["fr"], row.name
        assert row.time["mu"] < 0.05, row.name

"""Hot-path timing: batched pair-plan force path vs the per-cell loop.

Times the two implementations of the cell-list force evaluation
(`compute_forces_cells` batched vs `compute_forces_cells_loop`) and one
`FasdaMachine` timestep at N ~ {2k, 10k, 50k} (paper-density boxes, 64
particles per cell), and writes machine-readable
``benchmarks/results/BENCH_hotpath.json`` so future PRs have a perf
trajectory.  Plan-build time is measured separately from steady-state
force time (the plan is cached per grid geometry and amortizes to zero).

Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke]

``--smoke`` runs only the smallest size with one repetition — the CI
sanity check that the script and the equivalence assertions still work.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md.cells import CellGrid
from repro.md.dataset import build_dataset
from repro.md.pairplan import _plan_cached, plan_for_grid
from repro.md.reference import (
    compute_forces_bruteforce,
    compute_forces_cells,
    compute_forces_cells_loop,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: (label, cell dims) — 64 particles/cell paper density: ~2k / ~10k / ~50k.
SIZES = [
    ("2k", (3, 3, 3)),
    ("10k", (5, 5, 6)),
    ("50k", (9, 9, 10)),
]


def _median_time(fn, reps: int) -> float:
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def bench_size(label: str, dims, reps: int, check_brute: bool) -> dict:
    system, grid = build_dataset(dims, seed=2023)

    # Plan build, cold (cache cleared) — reported separately because the
    # steady state never pays it.
    _plan_cached.cache_clear()
    t0 = time.perf_counter()
    plan_for_grid(grid)
    plan_build_s = time.perf_counter() - t0

    # Correctness before speed: batched path vs the per-cell loop, and
    # (small sizes only) vs the O(N^2) brute-force golden model.
    f_new, e_new = compute_forces_cells(system, grid)
    f_old, e_old = compute_forces_cells_loop(system, grid)
    err_loop = float(np.abs(f_new - f_old).max())
    assert err_loop < 1e-10, f"batched vs loop forces differ: {err_loop}"
    assert abs(e_new - e_old) <= 1e-10 * max(abs(e_old), 1.0)
    err_brute = None
    if check_brute:
        f_ref, e_ref = compute_forces_bruteforce(system, grid.cell_edge)
        err_brute = float(np.abs(f_new - f_ref).max())
        assert err_brute < 1e-10, f"batched vs brute forces differ: {err_brute}"
        assert abs(e_new - e_ref) <= 1e-10 * max(abs(e_ref), 1.0)

    t_batched = _median_time(lambda: compute_forces_cells(system, grid), reps)
    t_loop = _median_time(lambda: compute_forces_cells_loop(system, grid), reps)

    machine = FasdaMachine(MachineConfig(dims), system=system.copy())
    machine.step()  # prime force banks + warm caches
    t_step = _median_time(lambda: machine.step(), reps)

    result = {
        "label": label,
        "dims": list(dims),
        "n_particles": int(system.n),
        "reps": reps,
        "plan_build_s": plan_build_s,
        "forces_cells_batched_s": t_batched,
        "forces_cells_loop_s": t_loop,
        "speedup_vs_loop": t_loop / t_batched,
        "machine_step_s": t_step,
        "max_force_err_vs_loop": err_loop,
        "max_force_err_vs_bruteforce": err_brute,
    }
    print(
        f"[{label}] N={system.n}: batched {t_batched * 1e3:.1f} ms, "
        f"loop {t_loop * 1e3:.1f} ms ({result['speedup_vs_loop']:.1f}x), "
        f"machine step {t_step * 1e3:.1f} ms, "
        f"plan build {plan_build_s * 1e3:.2f} ms"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest size, 1 rep — CI sanity check",
    )
    parser.add_argument("--reps", type=int, default=5, help="repetitions (median)")
    parser.add_argument(
        "--out",
        default=os.path.join(RESULTS_DIR, "BENCH_hotpath.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    sizes = SIZES[:1] if args.smoke else SIZES
    reps = 1 if args.smoke else max(args.reps, 5)
    results = [
        bench_size(label, dims, reps, check_brute=(label == "2k"))
        for label, dims in sizes
    ]

    payload = {
        "benchmark": "hotpath",
        "smoke": args.smoke,
        "sizes": results,
    }
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

"""Hot-path timing: batched pair-plan force path vs the per-cell loop.

Times the two implementations of the cell-list force evaluation
(`compute_forces_cells` batched vs `compute_forces_cells_loop`) and one
`FasdaMachine` timestep at N ~ {2k, 10k, 50k} (paper-density boxes, 64
particles per cell), and writes machine-readable
``benchmarks/results/BENCH_hotpath.json`` so future PRs have a perf
trajectory.  Plan-build time is measured separately from steady-state
force time (the plan is cached per grid geometry and amortizes to zero).

Two further sections cover the simulated machine step (PR 2):

* ``machine_step`` — one `FasdaMachine.compute_forces` pass with traffic
  accounting on/off, vectorized (padded pair path + group-by traffic)
  vs the retained loop oracles, with in-bench equivalence asserts on
  the full `StepStats`;
* ``distributed_step`` — one `DistributedMachine` step, serial vs
  thread-pooled node evaluation and batched vs per-record exchange,
  with a bitwise force comparison between the modes.

A ``backends`` section (PR 6) times every *available* force backend
(``numpy``/``soa`` always; ``numba``/``cext`` when importable or
buildable — see `repro.md.backends`): engine reuse steps/s and one
machine force pass per backend, each validated in-bench against the
float64 loop oracle (forces/energy within the documented bounds) and
against the numpy backend's `StepStats` (exact).  Every record carries
a ``backend`` field and the payload records ``backend_status`` so the
JSON says which backend produced each number and why any are missing.

A ``batched`` section (PR 7) times the fused K-system ``BatchedEngine``
per available backend — cold formation (empty plan cache + priming)
separate from warm steady-state aggregate steps/s, with in-bench
*bitwise* trajectory asserts against solo oracle runs and
``plan_cache_info`` recorded for cold and warm phases.

Run standalone (not under pytest):

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke]

``--smoke`` runs only the smallest size with one repetition — the CI
sanity check that the script and the equivalence assertions still work.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.md.backends import (
    ENERGY_RTOL,
    FORCE_ATOL,
    available_backends,
    backend_status,
)
from repro.md.cells import CellGrid, CellList
from repro.md.dataset import build_dataset
from repro.md.pairplan import clear_plan_cache, plan_for_grid
from repro.md.reference import (
    compute_forces_bruteforce,
    compute_forces_cells,
    compute_forces_cells_loop,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: (label, cell dims) — 64 particles/cell paper density: ~2k / ~10k / ~50k.
SIZES = [
    ("2k", (3, 3, 3)),
    ("10k", (5, 5, 6)),
    ("50k", (9, 9, 10)),
]


def _median_time(fn, reps: int) -> float:
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def bench_size(label: str, dims, reps: int, check_brute: bool) -> dict:
    system, grid = build_dataset(dims, seed=2023)

    # Plan build, cold (cache cleared) — reported separately because the
    # steady state never pays it.
    clear_plan_cache()
    t0 = time.perf_counter()
    plan = plan_for_grid(grid)
    plan_build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plan_for_grid(grid)
    plan_warm_s = time.perf_counter() - t0

    # The padded-shape decode tables now live on the cached plan (they
    # used to be recomputed from the flat index on every padded force
    # pass): cold pays the O(C*cap^2) arange/divmod once per occupancy
    # cap, warm is a tuple return.
    clist = CellList(grid, system.positions)
    cap = int(clist.counts.max())
    t0 = time.perf_counter()
    plan.padded_decode(cap)
    padded_decode_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    plan.padded_decode(cap)
    padded_decode_warm_s = time.perf_counter() - t0

    # Correctness before speed: batched path vs the per-cell loop, and
    # (small sizes only) vs the O(N^2) brute-force golden model.
    f_new, e_new = compute_forces_cells(system, grid)
    f_old, e_old = compute_forces_cells_loop(system, grid)
    err_loop = float(np.abs(f_new - f_old).max())
    assert err_loop < 1e-10, f"batched vs loop forces differ: {err_loop}"
    assert abs(e_new - e_old) <= 1e-10 * max(abs(e_old), 1.0)
    err_brute = None
    if check_brute:
        f_ref, e_ref = compute_forces_bruteforce(system, grid.cell_edge)
        err_brute = float(np.abs(f_new - f_ref).max())
        assert err_brute < 1e-10, f"batched vs brute forces differ: {err_brute}"
        assert abs(e_new - e_ref) <= 1e-10 * max(abs(e_ref), 1.0)

    t_batched = _median_time(lambda: compute_forces_cells(system, grid), reps)
    t_loop = _median_time(lambda: compute_forces_cells_loop(system, grid), reps)

    machine = FasdaMachine(MachineConfig(dims), system=system.copy())
    machine.step()  # prime force banks + warm caches
    t_step = _median_time(lambda: machine.step(), reps)

    result = {
        "label": label,
        "dims": list(dims),
        "n_particles": int(system.n),
        "reps": reps,
        "backend": "numpy",
        "plan_build_s": plan_build_s,
        "plan_warm_s": plan_warm_s,
        "padded_decode_cold_s": padded_decode_cold_s,
        "padded_decode_warm_s": padded_decode_warm_s,
        "forces_cells_batched_s": t_batched,
        "forces_cells_loop_s": t_loop,
        "speedup_vs_loop": t_loop / t_batched,
        "machine_step_s": t_step,
        "max_force_err_vs_loop": err_loop,
        "max_force_err_vs_bruteforce": err_brute,
    }
    print(
        f"[{label}] N={system.n}: batched {t_batched * 1e3:.1f} ms, "
        f"loop {t_loop * 1e3:.1f} ms ({result['speedup_vs_loop']:.1f}x), "
        f"machine step {t_step * 1e3:.1f} ms, "
        f"plan build {plan_build_s * 1e3:.2f} ms"
    )
    return result


def bench_backends(label: str, dims, reps: int, steps: int) -> list:
    """Engine steps/s and machine force pass per available force backend.

    Every backend is validated in-bench before it is timed: engine
    forces/energy against the per-cell float64 loop oracle within the
    documented ``FORCE_ATOL``/``ENERGY_RTOL`` bounds, machine
    ``StepStats`` exactly against the numpy backend (the float64
    recheck keeps admissions bitwise identical on every backend).
    """
    from repro.md.engine import ReferenceEngine

    system, grid = build_dataset(dims, seed=2023)
    f_ref, e_ref = compute_forces_cells_loop(system, grid)

    machine0 = FasdaMachine(MachineConfig(dims), system=system.copy())
    sig_ref = None

    out = []
    for name in available_backends():
        f_b, e_b = compute_forces_cells(system, grid, force_impl=name)
        err_f = float(np.abs(f_b - f_ref).max())
        assert err_f < FORCE_ATOL, f"{name}: forces vs loop oracle: {err_f}"
        assert abs(e_b - e_ref) <= ENERGY_RTOL * max(abs(e_ref), 1.0), (
            f"{name}: energy vs loop oracle: {e_b} != {e_ref}"
        )

        machine0.force_impl = name
        sig = _stats_signature(machine0.compute_forces(collect_traffic=True))
        if sig_ref is None:
            sig_ref = sig
        assert sig == sig_ref, f"{name}: machine StepStats diverged from numpy"

        eng = ReferenceEngine(
            system=system.copy(), grid=grid, reuse_state=True, force_impl=name
        )
        eng.run(1)  # prime + warm caches / JIT / cext build
        t0 = time.perf_counter()
        eng.run(steps)
        engine_steps_per_s = steps / (time.perf_counter() - t0)

        t_machine = _median_time(
            lambda: machine0.compute_forces(collect_traffic=True), reps
        )

        out.append({
            "label": label,
            "backend": name,
            "dims": list(dims),
            "n_particles": int(system.n),
            "steps": steps,
            "reps": reps,
            "engine_reuse_steps_per_s": engine_steps_per_s,
            "machine_force_pass_s": t_machine,
            "max_force_err_vs_loop": err_f,
            "stats_match_numpy": True,
        })
        print(
            f"[{label}] backend {name}: engine reuse "
            f"{engine_steps_per_s:.2f} steps/s, machine force pass "
            f"{t_machine * 1e3:.1f} ms (force err {err_f:.1e})"
        )
    machine0.force_impl = None
    return out


def bench_batched(reps: int, smoke: bool) -> list:
    """Fused K-system stepping vs K solo engines, per available backend.

    Validated in-bench before timing: two of the K systems are stepped
    solo on the batched run's oracle backend (see
    ``repro.md.batch.solo_oracle_impl``) and their trajectories must be
    *bitwise* identical to the batched segments.  Cold batch formation
    (empty plan cache, priming) is reported separately from warm
    steady-state stepping, with ``plan_cache_info`` recorded for both.
    """
    from repro.md.batch import BatchedEngine, solo_oracle_impl
    from repro.md.engine import ReferenceEngine
    from repro.md.pairplan import plan_cache_info

    k_systems = 16 if smoke else 64
    steps = 10 if smoke else 30
    out = []
    for name in available_backends():
        cases = [
            build_dataset((3, 3, 3), particles_per_cell=4, seed=3000 + i)
            for i in range(k_systems)
        ]
        clear_plan_cache()
        engine = BatchedEngine(force_impl=name)
        t0 = time.perf_counter()
        for sysv, grid in cases:
            engine.add(sysv.copy(), grid)
        engine.prime()
        formation_s = time.perf_counter() - t0
        cold_cache = plan_cache_info()._asdict()
        engine.step(5)  # past the post-build honeymoon
        t0 = time.perf_counter()
        engine.step(steps)
        wall = time.perf_counter() - t0
        warm_cache = plan_cache_info()._asdict()
        agg = k_systems * steps / wall

        # Guarded twin: same campaign with the health guards armed.
        # Guards are read-only, so the trajectories must stay bitwise
        # identical.  The healthy-path overhead (DESIGN.md §12 budgets
        # < 2%) is measured by timing the guard pass itself against the
        # per-step wall — a twin-run wall delta at this workload size is
        # dominated by run-to-run noise, not by the guards.
        from repro.faults.health import GuardConfig

        guarded = BatchedEngine(force_impl=name, guard=GuardConfig())
        for sysv, grid in cases:
            guarded.add(sysv.copy(), grid)
        guarded.prime()
        guarded.step(5)
        t0 = time.perf_counter()
        guarded.step(steps)
        guard_wall = time.perf_counter() - t0
        reps = 30 if smoke else 100
        t0 = time.perf_counter()
        for _ in range(reps):
            guarded._guard_displacement()
            guarded._guard_forces(guarded._energies)
            guarded._step_tripped.clear()
        guard_pass_s = (time.perf_counter() - t0) / reps
        guard_overhead = guard_pass_s / (wall / steps)
        # The <2% budget is stated for the default K=64 workload; the
        # K=16 smoke batch steps so fast that the guard pass's fixed
        # numpy-call overhead (~15 us) alone exceeds 2% of a cext step,
        # so smoke gates at a looser bound.
        budget = 0.06 if smoke else 0.02
        assert guard_overhead < budget, (
            f"{name}: guard pass {guard_pass_s * 1e6:.0f} us/step is "
            f"{100 * guard_overhead:.2f}% of the step — over the "
            f"<{100 * budget:.0f}% budget"
        )
        for h_plain, h_guard in zip(engine.handles(), guarded.handles()):
            a = engine.extract(h_plain)
            b = guarded.extract(h_guard)
            assert np.array_equal(a.positions, b.positions) and np.array_equal(
                a.velocities, b.velocities
            ), f"{name}: guarded run diverged from unguarded (handle {h_plain})"
        assert not guarded.poison_log, f"{name}: healthy run tripped a guard"

        # Bitwise oracle: two sample systems stepped solo.
        oracle = solo_oracle_impl(name)
        for i in (0, k_systems - 1):
            sysv, grid = cases[i]
            solo = ReferenceEngine(
                sysv.copy(), grid, reuse_state=True, force_impl=oracle
            )
            solo.run(5 + steps, record_every=0)
            got = engine.extract(engine.handles()[i])
            assert np.array_equal(got.positions, solo.system.positions), (
                f"{name}: batched segment {i} diverged from solo {oracle}"
            )
            assert np.array_equal(got.velocities, solo.system.velocities), (
                f"{name}: batched segment {i} velocities diverged"
            )

        out.append({
            "backend": name,
            "solo_oracle": oracle,
            "k_systems": k_systems,
            "n_per_system": int(cases[0][0].n),
            "steps": steps,
            "formation_s": formation_s,
            "aggregate_steps_per_s": agg,
            "plan_cache_cold": cold_cache,
            "plan_cache_warm": warm_cache,
            "bitwise_vs_solo": True,
            "guarded_aggregate_steps_per_s": k_systems * steps / guard_wall,
            "guard_pass_s_per_step": guard_pass_s,
            "guard_overhead_frac": guard_overhead,
            "guarded_bitwise_vs_unguarded": True,
        })
        print(
            f"[batched] backend {name}: K={k_systems} aggregate "
            f"{agg:.0f} steps/s (formation {formation_s * 1e3:.0f} ms, "
            f"bitwise vs solo {oracle}: ok, guard overhead "
            f"{100 * guard_overhead:+.1f}%)"
        )
    return out


def _stats_signature(stats) -> dict:
    from dataclasses import asdict

    return {
        "position_records": stats.position_records,
        "force_records": stats.force_records,
        "pr_load": {n: asdict(s) for n, s in stats.pr_load.items()},
        "fr_load": {n: asdict(s) for n, s in stats.fr_load.items()},
        "accepted": stats.accepted_per_cell.tolist(),
        "nbr_frc": stats.neighbor_force_records_per_cell.tolist(),
    }


def _fpga_grid_for(dims) -> tuple:
    """A >1-node partition that divides the box evenly."""
    for axis in (2, 1, 0):
        if dims[axis] % 2 == 0:
            grid = [1, 1, 1]
            grid[axis] = 2
            return tuple(grid)
    return (dims[0], 1, 1)


def bench_machine_step(label: str, dims, reps: int) -> dict:
    """One compute_forces pass: vectorized (padded + group-by traffic)
    vs the loop oracles, traffic on and off."""
    fpga_grid = _fpga_grid_for(dims)
    machine = FasdaMachine(MachineConfig(dims, fpga_grid))
    machine.compute_forces()  # warm plan/table/decode caches

    # Equivalence before speed: full StepStats must match the oracles.
    machine.pair_path, machine.traffic_impl = "auto", "vectorized"
    s_vec = machine.compute_forces(collect_traffic=True)
    machine.pair_path, machine.traffic_impl = "chunked", "loop"
    s_loop = machine.compute_forces(collect_traffic=True)
    assert _stats_signature(s_vec) == _stats_signature(s_loop), (
        "vectorized StepStats diverged from the loop oracle"
    )

    machine.pair_path, machine.traffic_impl = "auto", "vectorized"
    t_traffic = _median_time(
        lambda: machine.compute_forces(collect_traffic=True), reps
    )
    t_no_traffic = _median_time(
        lambda: machine.compute_forces(collect_traffic=False), reps
    )
    machine.pair_path, machine.traffic_impl = "chunked", "loop"
    t_loop = _median_time(
        lambda: machine.compute_forces(collect_traffic=True), reps
    )

    result = {
        "label": label,
        "dims": list(dims),
        "fpga_grid": list(fpga_grid),
        "n_particles": int(machine.system.n),
        "reps": reps,
        "machine_step_s": t_traffic,
        "machine_step_no_traffic_s": t_no_traffic,
        "machine_step_loop_s": t_loop,
        "speedup_vs_loop": t_loop / t_traffic,
        "stats_match_loop_oracle": True,
    }
    print(
        f"[{label}] machine step: vectorized {t_traffic * 1e3:.1f} ms "
        f"(traffic off {t_no_traffic * 1e3:.1f} ms), "
        f"loop oracle {t_loop * 1e3:.1f} ms "
        f"({result['speedup_vs_loop']:.1f}x)"
    )
    return result


def bench_machine_phases(smoke: bool, machine_results: list) -> dict:
    """Phase-timed, bitwise-gated optimized step (repro.harness.profiling).

    Reports the per-phase breakdown of the fully optimized machine step
    (persistent cell state + compiled admission/ROM-eval/scatter kernels
    + group-by traffic) and its speedup over the *baseline
    configuration* — the non-reuse vectorized path measured by
    bench_machine_step in this same run, i.e. the configuration behind
    the committed PR 6 machine_step baseline — so the comparison is
    apples-to-apples on this host.
    """
    from repro.harness.profiling import format_profile, run_profile

    doc = run_profile(smoke=smoke)
    print(format_profile(doc))
    m = doc["machine"]
    for entry in machine_results:
        if entry["dims"] == m["dims"]:
            base = entry["machine_step_s"]
            doc["baseline_config_step_s"] = base
            doc["speedup_vs_baseline_config"] = base / m["machine_step_s"]
            print(
                f"[machine_phases] optimized "
                f"{m['machine_step_s'] * 1e3:.1f} ms vs baseline-config "
                f"vectorized {base * 1e3:.1f} ms -> "
                f"{doc['speedup_vs_baseline_config']:.2f}x"
            )
            break
    return doc


def bench_distributed_step(label: str, dims, reps: int) -> dict:
    """One distributed force pass: serial vs thread-pooled nodes,
    batched vs per-record exchange."""
    fpga_grid = _fpga_grid_for(dims)
    system, _ = build_dataset(dims, seed=2023)

    serial = DistributedMachine(
        MachineConfig(dims, fpga_grid), system=system.copy(), parallel=False
    )
    pooled = DistributedMachine(
        MachineConfig(dims, fpga_grid), system=system.copy(), parallel="thread"
    )
    try:
        serial.compute_forces()
        pooled.compute_forces()
        assert np.array_equal(serial.forces, pooled.forces), (
            "parallel node evaluation diverged from serial"
        )

        t_serial = _median_time(serial.compute_forces, reps)
        t_parallel = _median_time(pooled.compute_forces, reps)
        serial.exchange_impl = "loop"
        t_serial_loop_exchange = _median_time(serial.compute_forces, reps)
        serial.exchange_impl = "batched"
    finally:
        pooled.close()

    result = {
        "label": label,
        "dims": list(dims),
        "fpga_grid": list(fpga_grid),
        "n_particles": int(system.n),
        "reps": reps,
        "distributed_step_s": t_serial,
        "distributed_step_parallel_s": t_parallel,
        "distributed_step_loop_exchange_s": t_serial_loop_exchange,
        "parallel_speedup": t_serial / t_parallel,
        "parallel_bitwise_identical": True,
    }
    print(
        f"[{label}] distributed step ({np.prod(fpga_grid)} nodes): "
        f"serial {t_serial * 1e3:.1f} ms, "
        f"parallel {t_parallel * 1e3:.1f} ms "
        f"({result['parallel_speedup']:.2f}x), "
        f"loop exchange {t_serial_loop_exchange * 1e3:.1f} ms"
    )
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="smallest size, 1 rep — CI sanity check",
    )
    parser.add_argument("--reps", type=int, default=5, help="repetitions (median)")
    parser.add_argument(
        "--out",
        default=os.path.join(RESULTS_DIR, "BENCH_hotpath.json"),
        help="output JSON path",
    )
    args = parser.parse_args()

    sizes = SIZES[:1] if args.smoke else SIZES
    reps = 1 if args.smoke else max(args.reps, 5)
    results = [
        bench_size(label, dims, reps, check_brute=(label == "2k"))
        for label, dims in sizes
    ]
    machine_results = [
        bench_machine_step(label, dims, reps) for label, dims in sizes
    ]
    # Per-backend engine/machine rates; the 50k box would triple wall
    # time for the same ranking, so backends stop at the 10k box.
    backend_sizes = sizes[:1] if args.smoke else sizes[:2]
    backend_steps = 2 if args.smoke else 10
    backend_results = []
    for label, dims in backend_sizes:
        backend_results.extend(bench_backends(label, dims, reps, backend_steps))
    batched_results = bench_batched(reps, args.smoke)
    # The distributed machine favors protocol fidelity over speed; the
    # largest size would dominate wall time for no extra signal.
    dist_sizes = sizes[:1] if args.smoke else sizes[:2]
    dist_reps = 1 if args.smoke else max(args.reps // 2, 2)
    distributed_results = [
        bench_distributed_step(label, dims, dist_reps)
        for label, dims in dist_sizes
    ]
    machine_phases = bench_machine_phases(args.smoke, machine_results)

    payload = {
        "benchmark": "hotpath",
        "smoke": args.smoke,
        "backend_status": backend_status(),
        "sizes": results,
        "backends": backend_results,
        "batched": batched_results,
        "machine_step": machine_results,
        "machine_phases": machine_phases,
        "distributed_step": distributed_results,
    }
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()

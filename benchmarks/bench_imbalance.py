"""Bench: load imbalance on non-uniform densities (beyond-paper study).

The paper's uniform benchmark gives every node identical work.  A
16->64 particles/cell density gradient makes the dense nodes permanent
stragglers: the cluster pays ~25% of its throughput, and the chained
synchronization adds nothing beyond the slowest-node bound — isolating
the imbalance cost from the protocol cost.
"""

import pytest

from repro.harness.sweeps import format_imbalance, run_imbalance_study


def test_imbalance_study(benchmark, save_artifact):
    result = benchmark.pedantic(run_imbalance_study, rounds=1, iterations=1)
    save_artifact("imbalance_study", format_imbalance(result))

    # The gradient makes the densest node ~2x the lightest.
    assert result.node_spread > 1.5
    # The cluster loses real throughput to the straggler-bound pace...
    assert 0.10 < result.imbalance_penalty < 0.45
    assert result.balanced_rate_bound > result.gradient_rate
    # ...but the chained protocol itself costs nothing beyond that bound.
    assert abs(result.sync_overhead - 1.0) < 0.02

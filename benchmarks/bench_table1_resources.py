"""Benchmark regenerating paper Table 1: FPGA resource utilization.

Prints model-vs-paper utilization percentages for all seven design
variants.  LUT/FF/DSP reproduce the table within ~2 percentage points;
BRAM/URAM within the paper's own BRAM<->URAM rebalancing noise.
"""

import pytest

from repro.core.config import strong_scaling_configs
from repro.core.resources import estimate_resources
from repro.harness.experiments import format_table1, run_table1


def test_table1_resources(benchmark, save_artifact):
    cfg = strong_scaling_configs()["4x4x4-C"]
    usage = benchmark.pedantic(estimate_resources, args=(cfg,), rounds=20, iterations=1)
    assert usage.fits()

    result = run_table1()
    save_artifact("table1_resources", format_table1(result))

    tolerances = {"lut": 2.0, "ff": 1.0, "dsp": 1.0, "bram": 15.0, "uram": 7.0}
    for name, res_map in result.rows.items():
        for res, (model, paper) in res_map.items():
            assert abs(model - paper) <= tolerances[res], (name, res, model, paper)

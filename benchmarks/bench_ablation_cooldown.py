"""Ablation bench: transmit cooldown vs. switch packet loss (Sec. 5.4).

The paper throttles each board's transmission "to once per several
cycles using cooldown counters, effectively spreading out a peak".  This
bench reproduces the failure mode being avoided: a synchronized 7-to-1
position-exchange incast tail-drops at the switch without pacing and is
lossless once the aggregate paced rate fits the port.
"""

import pytest

from repro.harness.ablations import format_cooldown, run_cooldown_ablation
from repro.network.netsim import incast_loss_rate


def test_cooldown_ablation(benchmark, save_artifact):
    result = benchmark.pedantic(run_cooldown_ablation, rounds=3, iterations=1)
    save_artifact("ablation_cooldown", format_cooldown(result))

    by_cooldown = {r.cooldown_cycles: r for r in result.rows}
    # Unpaced incast loses packets and pins the buffer.
    assert by_cooldown[1].loss_rate > 0.3
    assert by_cooldown[1].peak_buffer_occupancy == 64
    # Pacing to 1/8 line rate per sender (7 senders < 1 port) is lossless.
    assert by_cooldown[8].loss_rate == 0.0
    assert by_cooldown[16].loss_rate == 0.0
    # Loss falls monotonically with cooldown.
    losses = [r.loss_rate for r in result.rows]
    assert all(a >= b for a, b in zip(losses, losses[1:]))


def test_latency_cost_of_cooldown_is_hidden(benchmark):
    """The paper argues cooldown latency hides under compute: spreading
    200 packets at cooldown 8 takes ~1600 cycles, well under the
    ~2800-cycle force phase of even the fastest (C) design point."""
    loss, _ = benchmark.pedantic(
        incast_loss_rate, args=(7, 200, 8), kwargs={"buffer_packets": 64},
        rounds=3, iterations=1,
    )
    assert loss == 0.0
    spread_cycles = 200 * 8
    force_phase_cycles_c = 2781  # measured 4x4x4-C force phase
    assert spread_cycles < force_phase_cycles_c

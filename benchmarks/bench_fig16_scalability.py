"""Benchmark regenerating paper Fig. 16: the scalability comparison.

Produces the weak-scaling, strong-scaling, and simulated scale-out
sections (FPGA / CPU / GPU series in us/day) and checks the two headline
ratios: ~5.26x strong-scaling gain A -> C and ~4.67x over the best GPU.

The timed kernel is the expensive primitive underneath the figure: one
full functional force pass + cycle-model evaluation of a design point.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.harness.experiments import format_fig16, run_fig16


@pytest.fixture(scope="module")
def fig16_result():
    return run_fig16()


def test_fig16_scalability(benchmark, fig16_result, save_artifact):
    cfg = MachineConfig((3, 3, 3))
    machine = FasdaMachine(cfg)

    def measure_one_design_point():
        stats = machine.measure_workload()
        return estimate_performance(cfg, stats)

    perf = benchmark.pedantic(measure_one_design_point, rounds=3, iterations=1)
    assert 1.6 < perf.rate_us_per_day < 2.6

    text = format_fig16(fig16_result)
    save_artifact("fig16_scalability", text)

    # Headline claims (paper: 5.26x and 4.67x).
    assert 4.2 < fig16_result.strong_speedup_c_over_a < 6.0
    assert 3.7 < fig16_result.speedup_vs_best_gpu < 5.6
    # Weak scaling stays flat around 2 us/day.
    rates = [r.fpga for r in fig16_result.weak]
    assert max(rates) / min(rates) < 1.1
    assert all(1.6 < r < 2.6 for r in rates)

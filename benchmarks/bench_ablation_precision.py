"""Ablation bench: fixed-point position width vs. energy fidelity.

The paper stores positions as fixed-point cell offsets to keep the
hundreds of filters cheap (Sec. 4.2); this sweep shows how many fraction
bits that format needs: by ~14 bits quantization error disappears under
the float32 datapath noise that Fig. 19 measures.
"""

import pytest

from repro.harness.ablations import format_precision_sweep, run_precision_sweep


def test_precision_sweep(benchmark, save_artifact):
    result = benchmark.pedantic(run_precision_sweep, rounds=1, iterations=1)
    save_artifact("ablation_precision", format_precision_sweep(result))

    by_bits = {r.frac_bits: r for r in result.rows}
    # Coarse positions corrupt the energy; error shrinks with width.
    assert by_bits[6].max_energy_rel_error > by_bits[10].max_energy_rel_error
    assert by_bits[10].max_energy_rel_error >= by_bits[23].max_energy_rel_error
    # At the modeled 23-bit width the run sits in Fig. 19's error band.
    assert by_bits[23].max_energy_rel_error < 1e-3
    # By ~14 bits the quantization is already below datapath float32
    # noise: widening to 23 bits gains little.
    assert by_bits[14].max_energy_rel_error < 5 * by_bits[23].max_energy_rel_error

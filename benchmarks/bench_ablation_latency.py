"""Ablation bench: inter-FPGA latency — the tight-coupling thesis priced.

The paper's premise (Sec. 1) is that FPGA clusters win strong scaling
because "data transfers, application level to application level, take
only a few cycles beyond time-of-flight."  This sweep runs the best
strong-scaling design behind progressively looser fabrics: at ~1 us
(the evaluated switch) synchronization costs 12% of the iteration; at
datacenter-software latencies it dominates; host-mediated coupling is
two orders of magnitude slower — the quantified case for tightly
coupled communication.
"""

import pytest

from repro.harness.ablations import format_latency_sweep, run_latency_sweep


def test_latency_sweep(benchmark, save_artifact):
    result = benchmark.pedantic(run_latency_sweep, rounds=1, iterations=1)
    save_artifact("ablation_latency", format_latency_sweep(result))

    by_lat = {r.latency_cycles: r for r in result.rows}
    # At the evaluated switch latency, sync is a minor tax.
    assert by_lat[200].sync_share < 0.20
    # At datacenter-software latencies it eats over half the iteration.
    assert by_lat[2_000].sync_share > 0.4
    # Host-mediated coupling destroys strong scaling outright.
    assert by_lat[200_000].rate_us_per_day < 0.15
    assert result.tight_vs_loose > 50
    # Rates fall monotonically with latency.
    rates = [r.rate_us_per_day for r in result.rows]
    assert rates == sorted(rates, reverse=True)

"""Benchmark regenerating paper Fig. 19: energy conservation.

Runs the FASDA machine (fixed-point positions, float32 table-lookup
datapath) and the float64 reference engine from identical initial
conditions on the 4x4x4 space and reports the relative total-energy
error over time.  Paper: always < 1e-3, generally < 1e-4.

The paper integrates 100,000 iterations; the error magnitude settles
within the first few hundred, so this bench runs 200 (override with
``FASDA_FIG19_STEPS``).
"""

import os

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.harness.experiments import format_fig19, run_fig19


def test_fig19_energy_conservation(benchmark, save_artifact):
    cfg = MachineConfig((3, 3, 3))
    machine = FasdaMachine(cfg)
    machine.run(1, record_every=0)  # prime

    benchmark.pedantic(machine.step, rounds=3, iterations=1)

    n_steps = int(os.environ.get("FASDA_FIG19_STEPS", "200"))
    result = run_fig19(n_steps=n_steps, record_every=max(1, n_steps // 10))
    save_artifact("fig19_energy", format_fig19(result))

    assert result.max_relative_error < 1e-3   # paper: always well below 1e-3
    assert result.median_relative_error < 1e-4  # paper: generally below 1e-4

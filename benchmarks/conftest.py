"""Shared benchmark fixtures: artifact saving and common machines."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def save_artifact():
    """Persist a reproduced table/figure as a text artifact.

    Each benchmark writes the table it regenerates into
    ``benchmarks/results/<name>.txt`` so paper-vs-measured comparisons
    (EXPERIMENTS.md) can be refreshed from one run.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def _save(name: str, text: str) -> str:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return path

    return _save

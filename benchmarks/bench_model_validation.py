"""Bench: cross-validation of the analytic performance model.

The Fig. 16/17 numbers rest on the analytic cycle model; this bench
validates it against two independent dynamic simulations:

* the record-level ring simulator confirms the ring-load lower bound is
  tight (within ring-length + injection-serialization slack);
* the event-driven cluster simulation (per-node phase lengths + the
  chained-sync protocol) reproduces the analytic cycles/iteration to
  within ~2%.
"""

import pytest

from repro.core.clustersim import format_phase_breakdown, simulate_cluster
from repro.core.config import MachineConfig
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.core.rings import RingLoadModel, RingPath
from repro.core.ringsim import RingSimulator


@pytest.fixture(scope="module")
def measured():
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    machine = FasdaMachine(cfg)
    return cfg, machine.measure_workload()


def test_cluster_sim_validates_cycle_model(benchmark, measured, save_artifact):
    cfg, stats = measured
    trace = benchmark.pedantic(
        simulate_cluster, args=(cfg, stats), kwargs={"n_iterations": 6},
        rounds=3, iterations=1,
    )
    assert trace.agreement == pytest.approx(1.0, rel=0.02)

    perf = estimate_performance(cfg, stats)
    lines = [
        "Model cross-validation (4x4x4 on 8 FPGAs)",
        f"  analytic cycles/iteration : {trace.analytic_iteration_cycles:,.0f}",
        f"  event-sim cycles/iteration: {trace.simulated_iteration_cycles:,.0f}",
        f"  agreement                 : {trace.agreement:.4f}",
        "",
        "Phase timeline: " + format_phase_breakdown(perf),
    ]
    save_artifact("model_validation", "\n".join(lines))


def test_comm_hidden_under_compute(benchmark, measured, save_artifact):
    """Sec. 5.4's claim quantified: the cooldown-paced position exchange
    (through the finite-buffer switch model) completes well inside the
    force phase for every paper design point."""
    from repro.core.commsim import simulate_comm_overlap

    cfg, stats = measured
    perf = estimate_performance(cfg, stats)
    result = benchmark.pedantic(
        simulate_comm_overlap, args=(cfg, stats, perf), rounds=3, iterations=1
    )
    assert result.hidden
    assert result.dropped == 0

    lines = [
        "Communication overlap (4x4x4-A, 8 nodes, cooldown 8)",
        f"  worst node: exchange done at "
        f"{result.worst_overlap_fraction:.0%} of its force phase",
        f"  packets dropped at the switch: {result.dropped}",
        "  => the cooldown latency is hidden, as Sec. 5.4 argues",
    ]
    save_artifact("comm_overlap", "\n".join(lines))


def test_ring_bound_is_tight(benchmark, measured):
    """The analytic busiest-link bound vs simulated drain time on the
    actual force-ring injection pattern scale."""
    ring = RingPath(9, -1)  # 8 CBBs + EX, force-ring direction
    injections = [(0, 3, 40), (2, 5, 64), (7, 1, 32), (8, 4, 50)]

    def simulate():
        sim = RingSimulator(ring)
        for src, dst, count in injections:
            sim.add_injection(src, dst, count)
        return sim.run()

    simulated = benchmark.pedantic(simulate, rounds=3, iterations=1)
    model = RingLoadModel(ring)
    for src, dst, count in injections:
        model.inject(src, dst, count)
    assert model.min_cycles <= simulated
    assert simulated <= model.min_cycles + ring.n_slots + model.total_records

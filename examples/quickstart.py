"""Quickstart: simulate the paper's workload on a single simulated FPGA.

Builds the paper's dataset (64 sodium atoms per 8.5-angstrom cell), runs
a few MD timesteps through both the float64 reference engine and the
FASDA machine (fixed-point positions + table-lookup force pipelines),
compares their energies, and prints the machine's predicted performance.

Run:  python examples/quickstart.py
"""

from repro.core import FasdaMachine, MachineConfig, estimate_performance
from repro.md import ReferenceEngine, build_dataset


def main() -> None:
    # The 3x3x3-cell simulation space of Fig. 16's first design point.
    config = MachineConfig(global_cells=(3, 3, 3))
    print(f"design: {config.describe()}")

    system, grid = build_dataset(config.global_cells, seed=2023)
    print(f"dataset: {system.n} sodium atoms in a {grid.box[0]:.1f} A box\n")

    # Golden model: double-precision cell-list MD (our OpenMM stand-in).
    reference = ReferenceEngine(system.copy(), grid, dt_fs=config.dt_fs)
    ref_records = reference.run(20, record_every=10)

    # The FASDA machine: same physics through the modeled datapath.
    machine = FasdaMachine(config, system=system.copy())
    mac_records = machine.run(20, record_every=10)

    print("step   reference E      FASDA E          rel. error")
    for ref, mac in zip(ref_records, mac_records):
        err = abs(mac.total - ref.total) / abs(ref.total)
        print(f"{ref.step:4d}   {ref.total:14.4f}   {mac.total:14.4f}   {err:.2e}")

    # Performance: measure one iteration's workload, count cycles.
    stats = machine.measure_workload()
    perf = estimate_performance(config, stats)
    print(f"\npair filter acceptance: {stats.acceptance_rate:.1%} (theory: 15.5%)")
    print(f"cycles per iteration:   {perf.iteration_cycles:,.0f} @ {config.clock_mhz:g} MHz")
    print(f"simulation rate:        {perf.rate_us_per_day:.2f} us/day (paper: ~2)")


if __name__ == "__main__":
    main()

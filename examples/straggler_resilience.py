"""Straggler resilience: chained synchronization in action (Sec. 4.4).

Injects a one-iteration straggle into an 8-node ring and traces how the
delay wave propagates one hop per iteration under chained sync, while
bulk-synchronous execution stalls every node immediately — the behavior
Figs. 12-13 describe.

Run:  python examples/straggler_resilience.py
"""

import numpy as np

from repro.core.sync import run_bulk_sync, run_chained_sync, straggler_work
from repro.network.topology import RingTopology


def main() -> None:
    n_nodes, n_iterations = 8, 6
    work = straggler_work(
        base_cycles=16_000.0, straggler_node=0, slowdown=3.0, iterations=[0]
    )

    chained = run_chained_sync(
        RingTopology(n_nodes), work, n_iterations, link_latency=200.0
    )
    bulk = run_bulk_sync(n_nodes, work, n_iterations, barrier_latency=200.0)

    print("node 0 straggles 3x on iteration 0 only (8-node ring)\n")
    print("chained sync — iteration completion times (kcycles):")
    header = "node  " + "".join(f"  it{k:<2d} " for k in range(n_iterations))
    print(header)
    for node in range(n_nodes):
        times = "".join(
            f"{chained.iteration_complete[node, k] / 1000:6.1f} "
            for k in range(n_iterations)
        )
        dist = min(node, n_nodes - node)
        print(f"{node:>4}  {times}   (distance {dist} from straggler)")

    print("\nbulk-synchronous — every node identical:")
    times = "".join(
        f"{bulk.iteration_complete[0, k] / 1000:6.1f} " for k in range(n_iterations)
    )
    print(f" all  {times}")

    spread0 = chained.start_spread(0)
    print(
        f"\nchained head start after the straggle: {spread0 / 1000:.1f} kcycles of"
        "\nspread between near and far nodes — distant nodes keep computing"
        "\nwhile BSP would hold the whole cluster at the barrier."
    )
    print(
        f"\nmakespan: chained {chained.makespan / 1000:.1f} kcycles, "
        f"BSP {bulk.makespan / 1000:.1f} kcycles "
        "(with equal link latencies; BSP through a host would add ~200"
        " kcycles per iteration)"
    )


if __name__ == "__main__":
    main()

"""Molten-salt workload: the second RL force through the same pipelines.

Paper Sec. 2.1: range-limited forces comprise the LJ term *and* the
short-range (real-space) Ewald electrostatic term, and "the RL force
pipelines are nearly identical."  This example runs an Na+/Cl- system on
a FASDA machine configured with ``force_model="lj+coulomb"`` — the LJ
pipeline plus a second, structurally identical table-lookup pipeline
holding the Ewald ROM — and validates it against the double-precision
composite reference.

Run:  python examples/electrostatics_salt.py
"""

import numpy as np

from repro.core import FasdaMachine, MachineConfig
from repro.md import (
    CompositeKernel,
    EwaldRealKernel,
    LennardJonesKernel,
    build_dataset,
    compute_forces_kernel,
)


def main() -> None:
    dims = (3, 3, 3)
    config = MachineConfig(dims, force_model="lj+coulomb", dt_fs=0.5)
    system, grid = build_dataset(
        dims,
        particles_per_cell=16,
        species=("Na", "Cl"),
        charged=True,
        min_distance=2.4,
        temperature_k=100.0,
        seed=11,
    )
    n_na = int(np.sum(system.charges > 0))
    print(f"system: {n_na} Na+ and {system.n - n_na} Cl- ions, "
          f"box {grid.box[0]:.1f} A, net charge {system.charges.sum():+.0f}")

    machine = FasdaMachine(config, system=system.copy())
    print(f"Ewald splitting: beta = {machine.ewald_beta:.4f} 1/A "
          f"(erfc(beta*Rc) <= {config.ewald_tolerance:g})\n")

    # One force pass vs. the float64 composite reference.
    stats = machine.compute_forces(collect_traffic=False)
    kernel = CompositeKernel(
        [LennardJonesKernel(), EwaldRealKernel(machine.ewald_beta)]
    )
    f_ref, e_ref = compute_forces_kernel(system, grid, kernel)
    f_mac = machine.forces.astype(np.float64)
    err = np.abs(f_mac - f_ref).max() / np.abs(f_ref).max()
    print(f"potential energy: machine {stats.potential_energy:.2f}, "
          f"reference {e_ref:.2f} kcal/mol "
          f"(rel err {abs(stats.potential_energy - e_ref) / abs(e_ref):.2e})")
    print(f"max force error: {err:.2e} (table + float32 datapath)\n")

    # Short dynamics: the ionic system conserves energy through the
    # dual-pipeline datapath.
    records = machine.run(40, record_every=10)
    e0 = records[0].total
    print("step   total E (kcal/mol)   drift")
    for rec in records:
        print(f"{rec.step:4d}   {rec.total:16.2f}   {abs(rec.total - e0) / abs(e0):.2e}")
    print(
        "\nSame filters, same section/bin indexing, same float32 MAC —"
        "\nonly the ROM images differ between the LJ and Ewald pipelines."
    )


if __name__ == "__main__":
    main()

"""Argon crystal melting: substrate tour with trajectory output.

Exercises the MD substrate end to end: build an FCC argon crystal,
watch its sharp g(r) shells, heat it through the melting point with a
Berendsen thermostat, and watch the shells wash out into a liquid
structure — with every frame dumped to an XYZ trajectory for external
visualization.

Run:  python examples/crystal_melting.py
"""

import io

import numpy as np

from repro.md import ReferenceEngine
from repro.md.analysis import radial_distribution_function
from repro.md.lattice import build_fcc, grid_for_system
from repro.md.thermostat import equilibrate
from repro.md.trajectory import TrajectoryWriter


def print_rdf(label, system, r_max=8.0):
    r, g = radial_distribution_function(system, r_max=r_max, n_bins=32)
    bar = "".join("#" if v > 1.5 else ("+" if v > 0.75 else ".") for v in g)
    print(f"{label:<18} |{bar}|  (r = 0..{r_max} A; '#'>1.5, '+'>0.75)")


def main() -> None:
    a0 = 5.4  # slightly expanded solid-argon lattice constant
    system = build_fcc("Ar", 3, a0, temperature_k=20.0, seed=1)
    grid = grid_for_system(system, cutoff=a0)
    assert grid is not None
    print(f"FCC argon: {system.n} atoms, a0 = {a0} A, "
          f"grid {grid.dims}, T = {system.temperature():.0f} K\n")

    engine = ReferenceEngine(system, grid, dt_fs=5.0)
    traj = io.StringIO()
    writer = TrajectoryWriter(traj)
    writer.write_frame(engine.system, step=0)

    print_rdf("cold crystal", engine.system)

    # Heat in stages through the melting point (~84 K at 1 atm; our
    # truncated LJ crystal destabilizes somewhat above that).  Isokinetic
    # rescaling pins the kinetic temperature while the lattice absorbs
    # the heat of fusion.
    from repro.md.thermostat import VelocityRescaleThermostat

    step = 0
    for target in (40.0, 120.0, 250.0):
        thermostat = VelocityRescaleThermostat(target)
        equilibrate(engine, thermostat, n_steps=150, apply_every=5)
        step += 150
        writer.write_frame(engine.system, step=step)
        print_rdf(f"after T={target:g} K", engine.system)

    print(f"\nfinal temperature: {engine.system.temperature():.0f} K")
    print(f"trajectory frames written: {writer.frames_written} "
          f"({len(traj.getvalue()) // 1024} KiB of XYZ)")
    print(
        "\nThe crystal's discrete shells ('#..#') smear into the broad"
        "\nfirst-neighbor peak of a liquid — the physics the RL force"
        "\nengine must reproduce before any acceleration matters."
    )


if __name__ == "__main__":
    main()

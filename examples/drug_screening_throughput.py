"""Drug-lead evaluation time: FPGA cluster vs. GPU vs. CPU.

The paper's motivation (Sec. 1): drug discovery needs *long timescales*
on *small systems* (~50K particles) — a strong-scaling problem where
adding GPUs makes things worse.  This example estimates the wall-clock
time to reach biologically relevant simulated timescales for a
small-molecule system on each platform, using the same models behind
Fig. 16 — and then actually *runs* a screening ensemble: a
:class:`~repro.md.batch.BatchedEngine` job queue of small replica
systems stepped by one fused force pass, reporting the measured
aggregate steps/s next to the analytic platform estimates.

Run:  python examples/drug_screening_throughput.py
"""

import time

from repro.core import MachineConfig
from repro.perf import CpuPerformanceModel, FpgaPerformanceModel, GpuPerformanceModel

#: Timescales of interest (microseconds of MD).
TARGETS_US = {"binding event (~1 us)": 1.0, "slow conformational change (~10 us)": 10.0}


def days_to_simulate(rate_us_per_day: float, target_us: float) -> float:
    return target_us / rate_us_per_day


def run_screening_ensemble(
    k_systems: int = 32, steps_per_job: int = 60, dt_fs: float = 2.0
) -> dict:
    """Step a small replica ensemble through one fused batch.

    Every replica is an independent small system with its own step
    budget, drained through the job queue exactly as a screening
    campaign would be; the reported rate is *measured*, not modeled.
    """
    from repro.harness.jobs import JobQueue, run_jobs
    from repro.md.dataset import build_dataset

    queue = JobQueue()
    for i in range(k_systems):
        system, grid = build_dataset(
            (3, 3, 3), particles_per_cell=4, seed=7000 + i
        )
        queue.submit(system, grid, steps=steps_per_job, aux={"lead_id": i})
    summary = run_jobs(queue, max_systems=k_systems, dt_fs=dt_fs)
    rate = summary["aggregate_steps_per_s"]
    # Aggregate simulated microseconds per wall day across the ensemble.
    summary["ensemble_us_per_day"] = rate * dt_fs * 86400.0 * 1e-9
    return summary


def main() -> None:
    # A ~33K-particle small-molecule-in-solvent scale system: 8x8x8 cells.
    config = MachineConfig(
        global_cells=(8, 8, 8), fpga_grid=(4, 4, 4),
        pes_per_spe=3, spes_per_cbb=2,
    )
    n_particles = config.n_cells * 64
    print(f"system: {n_particles} particles ({config.describe()})\n")

    fpga = FpgaPerformanceModel()
    print("measuring FPGA workload (one functional iteration)...")
    fpga_rate = fpga.rate_us_per_day(config)

    cpu = CpuPerformanceModel()
    a100 = GpuPerformanceModel("a100")
    v100 = GpuPerformanceModel("v100")
    platforms = {
        f"FASDA ({config.n_fpgas} FPGAs)": fpga_rate,
        "best CPU (<=32 threads)": cpu.best_rate_us_per_day(32, n_particles),
        "1x A100": a100.rate_us_per_day(1, n_particles),
        "2x A100 (NVLink)": a100.rate_us_per_day(2, n_particles),
        "4x V100 (NVLink)": v100.rate_us_per_day(4, n_particles),
    }

    print(f"\n{'platform':<26} {'us/day':>8}", end="")
    for name in TARGETS_US:
        print(f"  {name:>36}", end="")
    print()
    for name, rate in platforms.items():
        print(f"{name:<26} {rate:>8.2f}", end="")
        for target in TARGETS_US.values():
            days = days_to_simulate(rate, target)
            print(f"  {days:>31.1f} days", end="")
        print()

    best_gpu = max(v for k, v in platforms.items() if "100" in k)
    print(
        f"\nFASDA speedup over the best GPU: {fpga_rate / best_gpu:.2f}x — "
        "a week-scale lead evaluation instead of a month-scale one."
    )

    print("\nrunning a measured screening ensemble (fused batched stepping)...")
    t0 = time.perf_counter()
    ens = run_screening_ensemble()
    wall = time.perf_counter() - t0
    print(
        f"ensemble: {ens['jobs_done']} replica jobs, "
        f"{ens['total_steps']} MD steps in {wall:.2f} s wall "
        f"on the {ens['backend']} backend"
    )
    print(
        f"measured aggregate rate: {ens['aggregate_steps_per_s']:.0f} steps/s "
        f"= {ens['ensemble_us_per_day']:.3f} us/day of ensemble MD "
        "(vs the analytic platform estimates above)"
    )


if __name__ == "__main__":
    main()

"""Drug-lead evaluation time: FPGA cluster vs. GPU vs. CPU.

The paper's motivation (Sec. 1): drug discovery needs *long timescales*
on *small systems* (~50K particles) — a strong-scaling problem where
adding GPUs makes things worse.  This example estimates the wall-clock
time to reach biologically relevant simulated timescales for a
small-molecule system on each platform, using the same models behind
Fig. 16.

Run:  python examples/drug_screening_throughput.py
"""

from repro.core import MachineConfig
from repro.perf import CpuPerformanceModel, FpgaPerformanceModel, GpuPerformanceModel

#: Timescales of interest (microseconds of MD).
TARGETS_US = {"binding event (~1 us)": 1.0, "slow conformational change (~10 us)": 10.0}


def days_to_simulate(rate_us_per_day: float, target_us: float) -> float:
    return target_us / rate_us_per_day


def main() -> None:
    # A ~33K-particle small-molecule-in-solvent scale system: 8x8x8 cells.
    config = MachineConfig(
        global_cells=(8, 8, 8), fpga_grid=(4, 4, 4),
        pes_per_spe=3, spes_per_cbb=2,
    )
    n_particles = config.n_cells * 64
    print(f"system: {n_particles} particles ({config.describe()})\n")

    fpga = FpgaPerformanceModel()
    print("measuring FPGA workload (one functional iteration)...")
    fpga_rate = fpga.rate_us_per_day(config)

    cpu = CpuPerformanceModel()
    a100 = GpuPerformanceModel("a100")
    v100 = GpuPerformanceModel("v100")
    platforms = {
        f"FASDA ({config.n_fpgas} FPGAs)": fpga_rate,
        "best CPU (<=32 threads)": cpu.best_rate_us_per_day(32, n_particles),
        "1x A100": a100.rate_us_per_day(1, n_particles),
        "2x A100 (NVLink)": a100.rate_us_per_day(2, n_particles),
        "4x V100 (NVLink)": v100.rate_us_per_day(4, n_particles),
    }

    print(f"\n{'platform':<26} {'us/day':>8}", end="")
    for name in TARGETS_US:
        print(f"  {name:>36}", end="")
    print()
    for name, rate in platforms.items():
        print(f"{name:<26} {rate:>8.2f}", end="")
        for target in TARGETS_US.values():
            days = days_to_simulate(rate, target)
            print(f"  {days:>31.1f} days", end="")
        print()

    best_gpu = max(v for k, v in platforms.items() if "100" in k)
    print(
        f"\nFASDA speedup over the best GPU: {fpga_rate / best_gpu:.2f}x — "
        "a week-scale lead evaluation instead of a month-scale one."
    )


if __name__ == "__main__":
    main()

"""Distributed execution: nodes, packets, and ID conversion — live.

Runs the same system two ways: the global FasdaMachine (computes
globally, accounts traffic) and the DistributedMachine (each node owns
only its cells; boundary positions travel as real 512-bit packets
through P2R encapsulator chains; the Sec. 4.2 GCID->LCID->RCID
conversions run on every arriving record).  Their trajectories must
agree to float32 accumulation noise — the correctness guarantee the
homogeneous-ID design gives the real cluster — and the real packet
stream must match the analytic traffic accounting exactly.

Run:  python examples/distributed_execution.py
"""

import time

import numpy as np

from repro.core import DistributedMachine, FasdaMachine, MachineConfig
from repro.md import build_dataset


def main() -> None:
    # The artifact's own invocation: ./compile.sh 222 444
    config = MachineConfig.from_compile_args("222", "444")
    print(f"design: {config.describe()}\n")

    system, _ = build_dataset(config.global_cells, particles_per_cell=32, seed=4)
    global_m = FasdaMachine(config, system=system.copy())
    dist_m = DistributedMachine(config, system=system.copy(), parallel=True)

    # One force pass each; compare physics and traffic.
    stats = global_m.compute_forces(collect_traffic=True)
    t0 = time.time()
    dist_m.compute_forces()
    t1 = time.time()

    fg = global_m.forces.astype(np.float64)
    fd = dist_m.forces.astype(np.float64)
    err = np.abs(fg - fd).max() / np.abs(fg).max()
    expected_packets = sum(
        int(np.ceil(r / config.records_per_packet))
        for r in stats.position_records.values()
    )
    print(f"force agreement:   {err:.2e} (float32 accumulation order)")
    print(f"position packets:  {dist_m.total_position_packets} real "
          f"(accounting predicts {expected_packets})")
    print(f"force packets:     {dist_m.total_force_packets} "
          "(zero neighbor forces discarded)")
    print(f"threaded pass:     {t1 - t0:.2f} s across "
          f"{config.n_fpgas} simulated nodes\n")

    # Short co-trajectory.
    g_recs = global_m.run(20, record_every=10)
    d_recs = dist_m.run(20, record_every=10)
    print("step   global E         distributed E    rel diff")
    for g, d in zip(g_recs, d_recs):
        rel = abs(g.total - d.total) / abs(g.total)
        print(f"{g.step:4d}   {g.total:14.4f}   {d.total:14.4f}   {rel:.2e}")

    print(
        "\nEvery arriving record passed GCID->LCID->RCID conversion with the"
        "\nround-trip asserted — the homogeneity machinery of Sec. 4.2 at work."
    )


if __name__ == "__main__":
    main()

"""Physics validation: is the accelerator's fluid the same fluid?

Fig. 19 compares total energies; this example goes further the way an
MD practitioner would: equilibrate the paper's sodium system with a
thermostat, run NVE production on both the float64 reference and the
FASDA machine, and compare *structure* (radial distribution function)
and *state* (temperature, virial pressure).  If the fixed-point +
table-lookup datapath changed the physics, g(r) would show it.

Run:  python examples/physics_validation.py
"""

import numpy as np

from repro.core import FasdaMachine, MachineConfig
from repro.md import (
    LennardJonesKernel,
    ReferenceEngine,
    VelocityRescaleThermostat,
    build_dataset,
)
from repro.md.analysis import radial_distribution_function, virial_pressure
from repro.md.thermostat import equilibrate


def main() -> None:
    dims = (3, 3, 3)
    system, grid = build_dataset(dims, particles_per_cell=32, seed=7)
    print(f"system: {system.n} Na atoms, box {grid.box[0]:.1f} A")

    # Equilibrate once on the reference engine, then clone the state.
    engine = ReferenceEngine(system, grid, dt_fs=2.0)
    final_t = equilibrate(
        engine, VelocityRescaleThermostat(300.0), n_steps=60, apply_every=10
    )
    print(f"equilibrated at {final_t:.0f} K\n")
    state = engine.system.copy()

    # NVE production on both engines from the identical state.
    reference = ReferenceEngine(state.copy(), grid, dt_fs=2.0)
    reference.run(60, record_every=0)
    machine = FasdaMachine(MachineConfig(dims), system=state.copy())
    machine.run(60, record_every=0)

    # Structure: radial distribution functions.
    r, g_ref = radial_distribution_function(reference.system, r_max=10.0, n_bins=40)
    _, g_mac = radial_distribution_function(machine.system, r_max=10.0, n_bins=40)
    print("r (A)   g_ref   g_fasda")
    for i in range(0, len(r), 4):
        print(f"{r[i]:5.2f}   {g_ref[i]:5.2f}   {g_mac[i]:5.2f}")
    # Trajectories diverge chaotically, but the *structure* must agree.
    rms = float(np.sqrt(np.mean((g_ref - g_mac) ** 2)))
    print(f"\ng(r) RMS difference: {rms:.3f} (chaotic trajectories, same fluid)")

    # State: temperature and virial pressure.
    kernel = LennardJonesKernel()
    p_ref = virial_pressure(reference.system, grid, kernel)
    p_mac = virial_pressure(machine.system, grid, kernel)
    print(f"temperature: ref {reference.system.temperature():.0f} K, "
          f"FASDA {machine.system.temperature():.0f} K")
    print(f"pressure:    ref {p_ref * 6.9477e4:.0f} bar, "
          f"FASDA {p_mac * 6.9477e4:.0f} bar")


if __name__ == "__main__":
    main()

"""Strong-scaling study: how far can 8 FPGAs push one small system?

Reproduces the paper's Sec. 4.5-4.6 exploration interactively: sweep
PE-per-SPE and SPE-per-SCBB on the 4x4x4 space (2x2x2 cells per FPGA),
report simulation rate, what bounds each design, and whether it still
fits an Alveo U280 — exactly the trade a user makes when parameterizing
FASDA for their cluster.

Run:  python examples/strong_scaling_study.py
"""

from repro.core import (
    FasdaMachine,
    MachineConfig,
    estimate_performance,
    estimate_resources,
)


def main() -> None:
    base = MachineConfig(global_cells=(4, 4, 4), fpga_grid=(2, 2, 2))
    print(f"space: {base.describe()}")
    print(f"particles: {base.n_cells * 64} (small-molecule scale)\n")

    # Workload statistics do not depend on the PE organization, so one
    # functional measurement serves the whole sweep.
    stats = FasdaMachine(base).measure_workload()

    print(f"{'design':>14} {'PEs/cell':>8} {'us/day':>8} {'gain':>6} "
          f"{'bound':>6} {'LUT%':>6} {'BRAM%':>6} {'fits':>5}")
    baseline_rate = None
    for spes in (1, 2):
        for pes in (1, 2, 3, 4):
            cfg = base.with_scaling(pes_per_spe=pes, spes_per_cbb=spes)
            perf = estimate_performance(cfg, stats)
            usage = estimate_resources(cfg)
            util = usage.utilization_percent()
            if baseline_rate is None:
                baseline_rate = perf.rate_us_per_day
            gain = perf.rate_us_per_day / baseline_rate
            label = f"{spes}-SPE {pes}-PE"
            print(
                f"{label:>14} {cfg.pes_per_cbb:>8} {perf.rate_us_per_day:>8.2f} "
                f"{gain:>5.2f}x {perf.bound:>6} {util['lut']:>6.0f} "
                f"{util['bram']:>6.0f} {str(usage.fits()):>5}"
            )

    print(
        "\nThe paper's design points are 1-SPE/1-PE (A), 1-SPE/3-PE (B), and"
        "\n2-SPE/3-PE (C); C reaches ~5.3x over A (paper: 5.26x) while"
        "\nstill fitting the U280. Larger organizations blow the BRAM budget"
        "\nor stop paying because rings/EX become the bottleneck."
    )


if __name__ == "__main__":
    main()

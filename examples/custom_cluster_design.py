"""Design your own FASDA deployment: from box size to a cluster plan.

FASDA is built from plugable components "adjustable based on user
requirements" (paper Sec. 1).  Given a target simulation box and an FPGA
budget, this example walks the design space the way a user of the real
artifact would drive ``compile.sh``: pick the cell decomposition, choose
the strong-scaling organization that still fits the device, and check
the switch ports can carry the traffic.

Run:  python examples/custom_cluster_design.py
"""

from repro.core import (
    FasdaMachine,
    MachineConfig,
    estimate_performance,
    estimate_resources,
)
from repro.network.fabric import Fabric
from repro.network.topology import TorusTopology

#: User requirements: a 34-angstrom cubic box (4x4x4 cells at the 8.5 A
#: cutoff) and an 8-FPGA budget — the paper's strong-scaling scenario.
GLOBAL_CELLS = (4, 4, 4)
FPGA_BUDGET = 8


def main() -> None:
    # Step 1: decompose cells across the FPGA budget (2x2x2 blocks).
    config = MachineConfig(GLOBAL_CELLS, (2, 2, 2))
    print(f"decomposition: {config.describe()}")
    torus = TorusTopology(config.fpga_grid)
    print(f"logical fabric: 3-D torus, diameter {torus.diameter()} hops\n")

    # Step 2: measure the workload once.
    machine = FasdaMachine(config)
    stats = machine.measure_workload()
    print(f"workload: {stats.total_candidates:,} candidate pairs/iteration, "
          f"{stats.acceptance_rate:.1%} accepted\n")

    # Step 3: pick the largest strong-scaling organization that fits.
    chosen = None
    for spes in (2, 1):
        for pes in (4, 3, 2, 1):
            candidate = config.with_scaling(pes_per_spe=pes, spes_per_cbb=spes)
            if estimate_resources(candidate).fits(margin=0.9):
                perf = estimate_performance(candidate, stats)
                if chosen is None or perf.rate_us_per_day > chosen[1].rate_us_per_day:
                    chosen = (candidate, perf)
    assert chosen is not None
    config, perf = chosen
    util = estimate_resources(config).utilization_percent()
    print(f"chosen design: {config.spes_per_cbb}-SPE x {config.pes_per_spe}-PE "
          f"({config.pes_per_cbb} PEs per cell)")
    print(f"  rate:  {perf.rate_us_per_day:.2f} us/day, bound by '{perf.bound}'")
    print("  node resources: " + ", ".join(
        f"{k.upper()} {v:.0f}%" for k, v in util.items()))

    # Step 4: verify the 100 GbE ports carry the traffic.
    fabric = Fabric(config.n_fpgas, config.packet_bits, config.records_per_packet)
    stats.fill_fabric(fabric)
    t_iter = perf.seconds_per_step
    pos = fabric.max_node_egress_gbps("position", t_iter)
    frc = fabric.max_node_egress_gbps("force", t_iter)
    print(f"  traffic: position {pos:.1f} Gbps, force {frc:.1f} Gbps "
          f"per node (ports: {config.link_gbps:g} Gbps)")
    peak = fabric.peak_gbps_with_cooldown(config.cooldown_cycles, config.clock_hz)
    print(f"  cooldown-throttled peak: {peak:.1f} Gbps "
          f"({'OK' if peak < config.link_gbps else 'OVER BUDGET'})")


if __name__ == "__main__":
    main()

"""Tests for network topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import (
    HyperRingTopology,
    RingTopology,
    SwitchTopology,
    TorusTopology,
)
from repro.util.errors import ValidationError


class TestRing:
    def test_too_small_rejected(self):
        with pytest.raises(ValidationError):
            RingTopology(1)

    def test_two_node_ring_single_link(self):
        r = RingTopology(2)
        assert r.neighbors(0) == (1,)
        assert r.links() == [(0, 1)]

    def test_hop_distance_wraps(self):
        r = RingTopology(6)
        assert r.hop_distance(0, 3) == 3
        assert r.hop_distance(0, 5) == 1

    def test_diameter(self):
        assert RingTopology(8).diameter() == 4


class TestTorus:
    def test_paper_8_node_torus(self):
        """The 2x2x2 logical torus of Fig. 8."""
        t = TorusTopology((2, 2, 2))
        assert t.n_nodes == 8
        # Every node has 3 neighbors (extent-2 axes give one link each).
        for n in range(8):
            assert len(t.neighbors(n)) == 3
        assert t.diameter() == 3  # corner to corner

    def test_node_id_roundtrip(self):
        t = TorusTopology((4, 4, 4))
        for n in (0, 17, 63):
            assert t.node_id(t.node_coords(n)) == n

    def test_hop_distance_manhattan_with_wrap(self):
        t = TorusTopology((4, 4, 4))
        a = t.node_id((0, 0, 0))
        b = t.node_id((3, 0, 0))  # 1 hop via wrap
        assert t.hop_distance(a, b) == 1
        c = t.node_id((2, 2, 2))
        assert t.hop_distance(a, c) == 6

    def test_degenerate_axis(self):
        t = TorusTopology((2, 1, 1))
        assert t.n_nodes == 2
        assert t.neighbors(0) == (1,)

    def test_bad_dims_rejected(self):
        with pytest.raises(ValidationError):
            TorusTopology((0, 2, 2))

    @given(st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_distance_symmetric(self, a, b):
        t = TorusTopology((4, 4, 4))
        assert t.hop_distance(a, b) == t.hop_distance(b, a)


class TestSwitch:
    def test_all_pairs_two_hops(self):
        s = SwitchTopology(8)
        for a in range(8):
            for b in range(8):
                expected = 0 if a == b else 2
                assert s.hop_distance(a, b) == expected

    def test_neighbors_everyone(self):
        s = SwitchTopology(4)
        assert s.neighbors(0) == (1, 2, 3)

    def test_uplink_count(self):
        assert len(SwitchTopology(8).links()) == 8


class TestHyperRing:
    def test_order1_is_plain_ring(self):
        h = HyperRingTopology(6, order=1)
        r = RingTopology(6)
        assert h.n_nodes == 6
        for n in range(6):
            assert set(h.neighbors(n)) == set(r.neighbors(n))

    def test_order2_structure(self):
        h = HyperRingTopology(group_size=4, n_groups=4, order=2)
        assert h.n_nodes == 16
        # Gateways (0, 4, 8, 12) have ring + super-ring links.
        assert len(h.neighbors(0)) == 4
        # Interior nodes only have their local ring links.
        assert len(h.neighbors(1)) == 2

    def test_order2_connected(self):
        h = HyperRingTopology(group_size=4, n_groups=4, order=2)
        assert h.diameter() < h.n_nodes  # reachable everywhere

    def test_order3(self):
        h = HyperRingTopology(group_size=2, n_groups=2, order=3)
        assert h.n_nodes == 8
        assert h.diameter() <= 6

    def test_validation(self):
        with pytest.raises(ValidationError):
            HyperRingTopology(1)
        with pytest.raises(ValidationError):
            HyperRingTopology(4, order=4)
        with pytest.raises(ValidationError):
            HyperRingTopology(4, n_groups=1, order=2)

    def test_lower_degree_than_torus(self):
        """The hyper-ring's selling point: fewer links per node."""
        h = HyperRingTopology(group_size=4, n_groups=4, order=2)
        t = TorusTopology((4, 4, 1))
        h_links = len(h.links())
        t_links = len(t.links())
        assert h_links < t_links


class TestTopologyMetrics:
    def test_average_distance_ring_vs_switch(self):
        assert RingTopology(8).average_distance() > SwitchTopology(8).average_distance()

    def test_bisection_ring(self):
        # A ring's straight cut crosses exactly 2 links.
        assert RingTopology(8).bisection_width() == 2

    def test_disconnected_raises(self):
        # Cannot happen with built-ins; verify the BFS guard via subclass.
        from repro.network.topology import Topology

        class Broken(Topology):
            @property
            def n_nodes(self):
                return 4

            def neighbors(self, node):
                return ()

        with pytest.raises(ValidationError, match="disconnected"):
            Broken().hop_distance(0, 1)

"""Elastic rescale: policy, migration planning, two-phase commit/rollback."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.elasticity import (
    ElasticityPolicy,
    LoadBalancer,
    fpga_grid_for,
    valid_node_counts,
)
from repro.faults import (
    ChannelInjector,
    FaultPlan,
    NodeFaultEvent,
    NodeFaultPlan,
)
from repro.md import build_dataset
from repro.util.errors import ConfigError, ValidationError

DIMS = (12, 3, 3)


def _machine(n_nodes, seed=7, ppc=4, n_steps=0, **kw):
    cfg = MachineConfig(DIMS, fpga_grid_for(DIMS, n_nodes))
    system, _ = build_dataset(DIMS, particles_per_cell=ppc, seed=seed)
    m = DistributedMachine(cfg, system=system, **kw)
    for _ in range(n_steps):
        m.step()
    return m


def _fixed_reference(m, n_nodes):
    """Fresh fixed-size machine primed with m's boundary state."""
    cfg = MachineConfig(DIMS, fpga_grid_for(DIMS, n_nodes))
    ref = DistributedMachine(cfg, system=m.system.copy())
    ref._velocities32 = m._velocities32.copy()
    ref._forces32 = m._forces32.copy()
    ref._primed = m._primed
    return ref


def _state(m):
    return (
        m.system.positions.copy(),
        m._velocities32.copy(),
        m._forces32.copy(),
        m._iteration,
        m.config.n_fpgas,
    )


def _states_equal(a, b):
    return all(
        np.array_equal(x, y) if isinstance(x, np.ndarray) else x == y
        for x, y in zip(a, b)
    )


class TestGridSelection:
    def test_known_grids(self):
        assert fpga_grid_for(DIMS, 4) == (4, 1, 1)
        assert fpga_grid_for(DIMS, 6) == (6, 1, 1)
        assert fpga_grid_for(DIMS, 3) == (3, 1, 1)
        assert fpga_grid_for((4, 4, 4), 8) == (2, 2, 2)

    def test_deterministic(self):
        for n in valid_node_counts(DIMS):
            assert fpga_grid_for(DIMS, n) == fpga_grid_for(list(DIMS), n)

    def test_valid_counts(self):
        assert valid_node_counts(DIMS, 12) == [2, 3, 4, 6, 9, 12]
        # every count's grid divides the cell dims on each axis
        for n in valid_node_counts(DIMS, 12):
            grid = fpga_grid_for(DIMS, n)
            assert all(d % g == 0 for d, g in zip(DIMS, grid))
            assert grid[0] * grid[1] * grid[2] == n

    def test_invalid_counts_raise(self):
        with pytest.raises(ConfigError):
            fpga_grid_for(DIMS, 5)  # 5 does not factor into the dims
        with pytest.raises(ConfigError):
            fpga_grid_for(DIMS, 0)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ElasticityPolicy(high_water=10.0, low_water=20.0)
        with pytest.raises(ValidationError):
            ElasticityPolicy(sustain=0)
        with pytest.raises(ValidationError):
            ElasticityPolicy(cooldown=-1)
        with pytest.raises(ValidationError):
            ElasticityPolicy(min_nodes=1)

    def test_sustain_hysteresis(self):
        pol = ElasticityPolicy(high_water=10.0, low_water=2.0, sustain=3,
                               cooldown=2)
        bal = LoadBalancer(pol, DIMS)
        hot = [20.0] * 4
        assert bal.observe(hot) is None
        assert bal.observe(hot) is None
        # third consecutive hot observation proposes one step up
        assert bal.observe(hot) == 6

    def test_streak_resets_on_calm(self):
        pol = ElasticityPolicy(high_water=10.0, low_water=2.0, sustain=2)
        bal = LoadBalancer(pol, DIMS)
        assert bal.observe([20.0] * 4) is None
        assert bal.observe([5.0] * 4) is None  # calm breaks the streak
        assert bal.observe([20.0] * 4) is None
        assert bal.observe([20.0] * 4) == 6

    def test_cooldown_after_attempt(self):
        pol = ElasticityPolicy(high_water=10.0, low_water=2.0, sustain=1,
                               cooldown=2)
        bal = LoadBalancer(pol, DIMS)
        assert bal.observe([20.0] * 4) == 6
        bal.notify_rescale(committed=True)
        # two cooldown observations are ignored even if hot
        assert bal.observe([20.0] * 6) is None
        assert bal.observe([20.0] * 6) is None
        assert bal.observe([20.0] * 6) == 9

    def test_shrink_flap_guard(self):
        # Shrinking 4 -> 3 multiplies per-node load by 4/3; the guard
        # refuses the shrink when that projected load re-crosses high.
        pol = ElasticityPolicy(high_water=10.0, low_water=8.0, sustain=1)
        bal = LoadBalancer(pol, DIMS)
        assert bal.observe([8.0] * 4) is None  # 8 * 4/3 > 10 -> would flap
        pol2 = ElasticityPolicy(high_water=20.0, low_water=8.0, sustain=1)
        bal2 = LoadBalancer(pol2, DIMS)
        assert bal2.observe([8.0] * 4) == 3

    def test_meta_round_trip(self):
        pol = ElasticityPolicy(high_water=10.0, low_water=2.0, sustain=2,
                               cooldown=3)
        bal = LoadBalancer(pol, DIMS)
        bal.observe([20.0] * 4)
        clone = LoadBalancer.from_meta(bal.meta())
        assert clone.meta() == bal.meta()
        # the restored streak continues where the original left off
        assert clone.observe([20.0] * 4) == bal.observe([20.0] * 4) == 6


class TestRescaleCommit:
    def test_grow_bitwise_vs_fixed_size(self):
        m = _machine(4, n_steps=3)
        ref = _fixed_reference(m, 6)
        assert m.rescale(6)
        assert m.config.fpga_grid == (6, 1, 1)
        m.run(3)
        ref.run(3)
        assert np.array_equal(m.system.positions, ref.system.positions)
        assert np.array_equal(m._velocities32, ref._velocities32)

    def test_shrink_bitwise_vs_fixed_size(self):
        m = _machine(6, n_steps=2)
        ref = _fixed_reference(m, 3)
        assert m.rescale(3)
        m.run(2)
        ref.run(2)
        assert np.array_equal(m.system.positions, ref.system.positions)
        assert np.array_equal(m._velocities32, ref._velocities32)

    def test_record_conservation(self):
        m = _machine(4, n_steps=2)
        assert m.rescale(6)
        (rec,) = m.rescale_log
        rpp = m.config.records_per_packet
        assert sum(f[2] for f in rec.flows) == rec.records_moved
        assert sum(f[3] for f in rec.flows) == rec.migration_packets
        for _, _, records, packets in rec.flows:
            assert packets == -(-records // rpp)
        assert rec.migration_bytes == (
            rec.migration_packets * m.config.packet_bits // 8
        )
        # bytes out == bytes in: the switch delivered every packet
        assert m.migration_switch_stats.delivered == rec.migration_packets
        assert m.migration_switch_stats.dropped == 0
        assert m.migration_switch_stats.rescales == 1

    def test_recovery_summary_reports_rescales(self):
        m = _machine(4, n_steps=2)
        m.rescale(6)
        s = m.recovery_summary()
        assert s["rescales_planned"] == 1
        assert s["rescales_aborted"] == 0
        assert s["rescale_records_moved"] == m.rescale_log[0].records_moved
        assert s["rescale_migration_packets"] > 0
        assert s["rescale_migration_cycles"] > 0

    def test_bad_targets_raise(self):
        m = _machine(4, n_steps=1)
        with pytest.raises(ConfigError):
            m.rescale(4)  # same size is not a rescale
        with pytest.raises(ConfigError):
            m.rescale(1)  # single node is not distributed
        with pytest.raises(ConfigError):
            m.rescale(6, fpga_grid=(3, 1, 1))  # contradictory target
        with pytest.raises(ConfigError):
            m.rescale()  # no target at all
        with pytest.raises(ConfigError):
            m.rescale(5)  # does not factor into the dims


class TestRescaleAbort:
    def test_lost_migration_flow_rolls_back(self):
        inj = ChannelInjector(FaultPlan(seed=3, drop_rate=1.0), "rescale")
        m = _machine(4, n_steps=2, injector=inj)
        clean = _machine(4, n_steps=2)
        before = _state(m)
        assert not m.rescale(6)
        assert _states_equal(_state(m), before)
        (ab,) = m.rescale_aborted_log
        assert ab.phase == "transfer"
        assert ab.rolled_back
        assert ab.packets_lost > 0
        # the faulty channel never touches the position exchange:
        # the machine continues bitwise on the fault-free trajectory
        m.run(2)
        clean.run(2)
        assert np.array_equal(m.system.positions, clean.system.positions)

    def test_corrupt_transfer_rolls_back(self):
        inj = ChannelInjector(FaultPlan(seed=5, corrupt_rate=1.0), "rescale")
        m = _machine(4, n_steps=2, injector=inj)
        before = _state(m)
        assert not m.rescale(6)
        assert _states_equal(_state(m), before)
        assert m.rescale_aborted_log[0].rolled_back

    def test_crash_during_migration_rolls_back_then_recovers(self):
        # After 2 steps the boundary iteration is 3; the scripted crash
        # aborts the rescale there, then the next force pass draws the
        # same crash and recovers losslessly from the shadow.
        faults = NodeFaultPlan(events=(NodeFaultEvent(node=0, iteration=3),))
        m = _machine(4, n_steps=2, node_faults=faults)
        clean = _machine(4, n_steps=2)
        before = _state(m)
        assert not m.rescale(6)
        assert _states_equal(_state(m), before)
        (ab,) = m.rescale_aborted_log
        assert ab.phase == "transfer"
        assert "crashed" in ab.reason
        m.run(3)
        clean.run(3)
        assert len(m.recovery_log) == 1
        assert np.array_equal(m.system.positions, clean.system.positions)

    def test_down_node_refused_in_prepare(self):
        faults = NodeFaultPlan(
            events=(NodeFaultEvent(node=1, iteration=1),),
            restart_iterations=50,
        )
        m = _machine(4, n_steps=2, node_faults=faults)
        assert not m.rescale(6)
        (ab,) = m.rescale_aborted_log
        assert ab.phase == "prepare"
        assert "restarting" in ab.reason

    def test_abort_counted_in_summary(self):
        inj = ChannelInjector(FaultPlan(seed=3, drop_rate=1.0), "rescale")
        m = _machine(4, n_steps=2, injector=inj)
        m.rescale(6)
        s = m.recovery_summary()
        assert s["rescales_planned"] == 0
        assert s["rescales_aborted"] == 1


class TestBalancerIntegration:
    def test_maybe_rescale_grows_under_load(self):
        m = _machine(4, n_steps=1)
        pol = ElasticityPolicy(high_water=1.0, low_water=0.5, sustain=1,
                               cooldown=0)
        m.balancer = LoadBalancer(pol, DIMS)
        out = m.maybe_rescale()
        assert out is True
        assert m.config.n_fpgas == 6
        assert m.balancer.proposals == 1

    def test_maybe_rescale_none_when_calm(self):
        m = _machine(4, n_steps=1)
        pol = ElasticityPolicy(high_water=1e9, low_water=0.0, sustain=1)
        m.balancer = LoadBalancer(pol, DIMS)
        assert m.maybe_rescale() is None
        assert m.config.n_fpgas == 4

    def test_no_balancer_is_none(self):
        m = _machine(4, n_steps=1)
        assert m.maybe_rescale() is None


class TestChannelInjector:
    def test_off_channel_is_clean(self):
        inj = ChannelInjector(FaultPlan(seed=1, drop_rate=1.0), "rescale")
        assert inj.decide(0, 1, "position", 5).clean
        drop, corrupt = inj.drop_corrupt_arrays(0, 1, "position", 5, 8)
        assert not drop.any() and not corrupt.any()

    def test_on_channel_matches_plain_injector(self):
        from repro.faults import FaultInjector

        plan = FaultPlan(seed=1, drop_rate=0.5, corrupt_rate=0.25)
        scoped = ChannelInjector(plan, "rescale")
        plain = FaultInjector(plan)
        d1, c1 = scoped.drop_corrupt_arrays(0, 1, "rescale", 3, 16)
        d2, c2 = plain.drop_corrupt_arrays(0, 1, "rescale", 3, 16)
        assert np.array_equal(d1, d2) and np.array_equal(c1, c2)

    def test_subchannel_covered(self):
        inj = ChannelInjector(FaultPlan(seed=1, drop_rate=1.0), "rescale")
        assert inj.decide(0, 1, "rescale/ack", 5).drop
        assert inj.decide(0, 1, "rescaleX", 5).clean  # prefix alone: no


class TestCheckpointMidPolicy:
    def test_round_trip_continues_bitwise(self, tmp_path):
        from repro.core.checkpoint import load_checkpoint_v2, save_checkpoint_v2

        m = _machine(4, n_steps=2)
        pol = ElasticityPolicy(high_water=10.0, low_water=2.0, sustain=2)
        m.balancer = LoadBalancer(pol, DIMS)
        m.balancer.observe([20.0] * 4)  # mid-streak
        assert m.rescale(6)
        m.run(1)
        path = save_checkpoint_v2(m, str(tmp_path / "elastic.npz"))
        m2, _ = load_checkpoint_v2(path)
        assert m2.balancer is not None
        assert m2.balancer.meta() == m.balancer.meta()
        assert [r.iteration for r in m2.rescale_log] == [
            r.iteration for r in m.rescale_log
        ]
        assert m2.migration_switch_stats == m.migration_switch_stats
        m.run(2)
        m2.run(2)
        assert np.array_equal(m.system.positions, m2.system.positions)
        assert np.array_equal(m._velocities32, m2._velocities32)

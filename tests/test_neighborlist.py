"""Tests for Verlet neighbor lists (the skin-margin alternative)."""

import numpy as np
import pytest

from repro.md import build_dataset
from repro.md.cells import CellGrid
from repro.md.neighborlist import VerletNeighborList, compute_forces_verlet
from repro.md.reference import compute_forces_cells
from repro.util.errors import ValidationError


@pytest.fixture()
def small_system():
    return build_dataset((3, 3, 3), particles_per_cell=8, seed=21)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValidationError):
            VerletNeighborList(0.0, 1.0, np.full(3, 30.0))
        with pytest.raises(ValidationError):
            VerletNeighborList(8.5, -1.0, np.full(3, 30.0))
        with pytest.raises(ValidationError, match="box too small"):
            VerletNeighborList(8.5, 2.0, np.full(3, 20.0))

    def test_pairs_before_build_rejected(self):
        nlist = VerletNeighborList(8.5, 1.0, np.full(3, 30.0))
        with pytest.raises(ValidationError):
            nlist.pairs()


class TestCorrectness:
    def test_forces_match_cell_list(self, small_system):
        system, grid = small_system
        nlist = VerletNeighborList(grid.cell_edge, 1.0, system.box)
        f_verlet, e_verlet = compute_forces_verlet(system, nlist)
        f_cells, e_cells = compute_forces_cells(system, grid)
        np.testing.assert_allclose(f_verlet, f_cells, rtol=1e-9, atol=1e-10)
        assert e_verlet == pytest.approx(e_cells, rel=1e-12)

    def test_zero_skin_also_correct(self, small_system):
        system, grid = small_system
        nlist = VerletNeighborList(grid.cell_edge, 0.0, system.box)
        f_verlet, _ = compute_forces_verlet(system, nlist)
        f_cells, _ = compute_forces_cells(system, grid)
        np.testing.assert_allclose(f_verlet, f_cells, rtol=1e-9, atol=1e-10)

    def test_correct_across_motion_without_rebuild(self, small_system):
        """Particles moving less than skin/2 reuse the stale list and
        still produce exact forces."""
        system, grid = small_system
        nlist = VerletNeighborList(grid.cell_edge, 2.0, system.box)
        compute_forces_verlet(system, nlist)
        builds_before = nlist.builds
        rng = np.random.default_rng(0)
        system.positions += rng.uniform(-0.4, 0.4, size=system.positions.shape)
        system.wrap()
        f_verlet, _ = compute_forces_verlet(system, nlist)
        assert nlist.builds == builds_before  # no rebuild needed
        f_cells, _ = compute_forces_cells(system, grid)
        np.testing.assert_allclose(f_verlet, f_cells, rtol=1e-9, atol=1e-10)


class TestPropertyEquivalence:
    """Verlet list and cell list must agree on arbitrary systems."""

    def test_random_systems_match(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(st.integers(0, 10_000))
        @settings(max_examples=10, deadline=None)
        def check(seed):
            import numpy as np

            from repro.md import CellGrid, LJTable, ParticleSystem

            rng = np.random.default_rng(seed)
            grid = CellGrid((3, 3, 3), 8.5)
            lj = LJTable(("Na",))
            pos = rng.uniform(0, grid.box, size=(60, 3))
            keep = [0]
            for i in range(1, len(pos)):
                d = pos[keep] - pos[i]
                d -= grid.box * np.rint(d / grid.box)
                if np.min(np.sum(d * d, axis=1)) > 4.0:
                    keep.append(i)
            pos = pos[keep]
            system = ParticleSystem(
                positions=pos,
                velocities=np.zeros_like(pos),
                species=np.zeros(len(pos), dtype=np.int32),
                lj_table=lj,
                box=grid.box,
            )
            nlist = VerletNeighborList(8.5, 1.0, system.box)
            f_v, e_v = compute_forces_verlet(system, nlist)
            f_c, e_c = compute_forces_cells(system, grid)
            np.testing.assert_allclose(f_v, f_c, rtol=1e-9, atol=1e-10)
            assert abs(e_v - e_c) <= 1e-9 * max(abs(e_c), 1.0)

        check()


class TestRebuildLogic:
    def test_rebuild_triggered_by_large_motion(self, small_system):
        system, _ = small_system
        nlist = VerletNeighborList(8.5, 1.0, system.box)
        nlist.build(system.positions)
        moved = system.positions.copy()
        moved[0, 0] += 0.6  # > skin/2
        assert nlist.needs_rebuild(moved)

    def test_no_rebuild_below_half_skin(self, small_system):
        system, _ = small_system
        nlist = VerletNeighborList(8.5, 1.0, system.box)
        nlist.build(system.positions)
        moved = system.positions.copy()
        moved[0, 0] += 0.4  # < skin/2
        assert not nlist.needs_rebuild(moved)

    def test_displacement_wraps_minimum_image(self, small_system):
        """A particle crossing the periodic boundary hasn't 'moved far'."""
        system, _ = small_system
        nlist = VerletNeighborList(8.5, 1.0, system.box)
        pos = system.positions.copy()
        pos[0] = [0.1, 5.0, 5.0]
        nlist.build(pos)
        moved = pos.copy()
        moved[0, 0] = system.box[0] - 0.1  # wrapped -0.2 shift
        assert not nlist.needs_rebuild(moved)

    def test_build_counter(self, small_system):
        system, _ = small_system
        nlist = VerletNeighborList(8.5, 1.0, system.box)
        nlist.ensure(system.positions)
        nlist.ensure(system.positions)
        assert nlist.builds == 1

    def test_skin_amortizes_builds_during_md(self):
        """Running MD with a skin rebuilds far less than once per step —
        the margin benefit the paper notes does not apply on FPGAs."""
        from repro.md import ReferenceEngine

        system, grid = build_dataset((3, 3, 3), particles_per_cell=8, seed=3)
        nlist = VerletNeighborList(grid.cell_edge, 1.5, system.box)
        engine = ReferenceEngine(system, grid, dt_fs=2.0)
        n_steps = 30
        for _ in range(n_steps):
            engine.run(1, record_every=0)
            nlist.ensure(engine.system.positions)
        assert nlist.builds < n_steps / 3

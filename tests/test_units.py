"""Tests for the internal unit system and conversions."""

import numpy as np
import pytest

from repro.util.units import (
    BOLTZMANN_KCAL_MOL_K,
    KCAL_MOL_TO_INTERNAL,
    acceleration_from_force,
    simulation_rate_us_per_day,
)


def test_kcal_conversion_magnitude():
    # Known value: 1 kcal/mol = 4.184e-4 amu*A^2/fs^2 to ~5 digits.
    assert KCAL_MOL_TO_INTERNAL == pytest.approx(4.184e-4, rel=1e-3)


def test_boltzmann_constant():
    # Direct check against kB in J/K converted to kcal/mol/K.
    kb_kcal_mol = 1.380649e-23 * 6.02214076e23 / 4184.0
    assert BOLTZMANN_KCAL_MOL_K == pytest.approx(kb_kcal_mol, rel=1e-5)


def test_acceleration_from_force_units():
    forces = np.array([[1.0, 0.0, 0.0]])  # kcal/mol/A
    masses = np.array([1.0])  # amu
    a = acceleration_from_force(forces, masses)
    assert a.shape == (1, 3)
    assert a[0, 0] == pytest.approx(KCAL_MOL_TO_INTERNAL)
    assert a[0, 1] == 0.0


def test_acceleration_scales_inversely_with_mass():
    forces = np.ones((2, 3))
    masses = np.array([1.0, 2.0])
    a = acceleration_from_force(forces, masses)
    np.testing.assert_allclose(a[0], 2.0 * a[1])


def test_simulation_rate_us_per_day():
    # 2 fs steps at 1 ms/step: 86.4e6 steps/day * 2 fs = 172.8e6 fs = 0.1728 us.
    rate = simulation_rate_us_per_day(2.0, 1e-3)
    assert rate == pytest.approx(0.1728)


def test_simulation_rate_scales_linearly_with_dt():
    assert simulation_rate_us_per_day(4.0, 1e-3) == pytest.approx(
        2 * simulation_rate_us_per_day(2.0, 1e-3)
    )

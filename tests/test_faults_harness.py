"""The fault-sweep harness experiment and its CLI subcommand."""

import json

import numpy as np
import pytest

from repro.harness.faultsweep import (
    FaultSweepResult,
    format_fault_sweep,
    run_fault_sweep,
)


@pytest.fixture(scope="module")
def sweep():
    return run_fault_sweep(
        loss_rates=(0.0, 0.02),
        retry_budgets=(0, 2),
        n_steps=2,
        sync_iterations=6,
    )


class TestRunFaultSweep:
    def test_grid_shape(self, sweep):
        # 2 loss rates x (2 budgets + 1 bare) machine cells, 2x2 sync rows.
        assert len(sweep.cells) == 6
        assert len(sweep.sync_rows) == 4

    def test_zero_loss_is_bitwise_everywhere(self, sweep):
        for cell in sweep.cells:
            if cell.loss_rate == 0.0:
                assert cell.survived
                assert cell.bitwise_identical
                assert cell.overhead_cycles == 0.0
                assert cell.degraded_records == 0

    def test_reliable_transport_recovers_loss(self, sweep):
        cell = next(
            c
            for c in sweep.cells
            if c.loss_rate > 0 and c.retry_budget == 2
        )
        assert cell.survived
        assert cell.bitwise_identical
        assert cell.retransmits > 0
        assert cell.overhead_cycles > 0

    def test_bare_udp_degrades_but_survives(self, sweep):
        cell = next(
            c for c in sweep.cells if c.loss_rate > 0 and c.retry_budget is None
        )
        assert cell.survived
        assert not cell.bitwise_identical
        assert cell.degraded_records > 0
        assert np.isfinite(cell.max_position_error)

    def test_bare_sync_deadlock_is_diagnosed(self, sweep):
        row = next(
            r for r in sweep.sync_rows if r.loss_rate > 0 and r.mode == "bare"
        )
        assert not row.completed
        assert "stuck at iteration" in row.deadlock

    def test_reliable_sync_completes_with_overhead(self, sweep):
        row = next(
            r
            for r in sweep.sync_rows
            if r.loss_rate > 0 and r.mode == "reliable"
        )
        assert row.completed
        assert row.retransmits > 0
        assert row.overhead_percent > 0

    def test_json_round_trip(self, sweep):
        data = json.loads(sweep.to_json())
        assert len(data["cells"]) == len(sweep.cells)
        assert data["sync_baseline_makespan"] == sweep.sync_baseline_makespan
        assert {c["mode"] for c in data["cells"]} == {"reliable", "bare"}

    def test_format_mentions_diagnosis(self, sweep):
        text = format_fault_sweep(sweep)
        assert "Fault sweep" in text
        assert "Chained sync under loss" in text
        assert "stuck at iteration" in text


class TestCli:
    def test_parser_accepts_faults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["faults", "--json", "out.json"])
        assert args.command == "faults"
        assert args.json == "out.json"

    def test_cli_writes_json_artifact(self, tmp_path, monkeypatch, sweep):
        import repro.harness.faultsweep as fs
        from repro.cli import main

        monkeypatch.setattr(fs, "run_fault_sweep", lambda seed: sweep)
        out = tmp_path / "artifacts" / "FAULTS_sweep.json"
        assert main(["faults", "--json", str(out)]) == 0
        data = json.loads(out.read_text())
        assert len(data["cells"]) == len(sweep.cells)

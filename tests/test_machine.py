"""Tests for the functional FASDA machine (datapath fidelity + accounting)."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.md.reference import compute_forces_cells
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def small_machine():
    """A 3x3x3 single-node machine with a reduced dataset (fast)."""
    cfg = MachineConfig((3, 3, 3))
    system, _ = build_dataset((3, 3, 3), particles_per_cell=16, seed=7)
    return FasdaMachine(cfg, system=system), system


@pytest.fixture(scope="module")
def distributed_machine():
    """An 8-node 4x4x4 machine with a reduced dataset."""
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=8)
    return FasdaMachine(cfg, system=system), system


class TestConstruction:
    def test_box_mismatch_rejected(self):
        cfg = MachineConfig((3, 3, 3))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=4)
        with pytest.raises(ConfigError, match="does not match"):
            FasdaMachine(cfg, system=system)

    def test_default_dataset_generated(self):
        m = FasdaMachine(MachineConfig((3, 3, 3)))
        assert m.system.n == 27 * 64

    def test_caller_system_not_mutated(self):
        cfg = MachineConfig((3, 3, 3))
        system, _ = build_dataset((3, 3, 3), particles_per_cell=8, seed=1)
        before = system.positions.copy()
        m = FasdaMachine(cfg, system=system)
        m.run(2, record_every=0)
        np.testing.assert_array_equal(system.positions, before)


class TestForceFidelity:
    def test_forces_match_reference_within_datapath_error(self, small_machine):
        machine, system = small_machine
        machine.compute_forces(collect_traffic=False)
        from repro.md.cells import CellGrid

        grid = CellGrid((3, 3, 3), 8.5)
        f_ref, e_ref = compute_forces_cells(system, grid)
        f_mac = machine.forces.astype(np.float64)
        scale = np.abs(f_ref).max()
        assert np.abs(f_mac - f_ref).max() / scale < 1e-3

    def test_energy_matches_reference(self, small_machine):
        machine, system = small_machine
        stats = machine.compute_forces(collect_traffic=False)
        from repro.md.cells import CellGrid

        _, e_ref = compute_forces_cells(system, CellGrid((3, 3, 3), 8.5))
        assert stats.potential_energy == pytest.approx(e_ref, rel=1e-3)

    def test_newtons_third_law(self, small_machine):
        machine, _ = small_machine
        machine.compute_forces(collect_traffic=False)
        total = machine.forces.astype(np.float64).sum(axis=0)
        # float32 accumulation: zero to float32 roundoff of the force sums.
        assert np.abs(total).max() < 1e-2

    def test_forces_are_float32(self, small_machine):
        machine, _ = small_machine
        assert machine.forces.dtype == np.float32
        assert machine.velocities.dtype == np.float32


class TestWorkloadStats:
    def test_acceptance_rate_near_theory(self):
        """Paper Eq. 3: ~15.5% of candidates are valid pairs."""
        machine = FasdaMachine(MachineConfig((3, 3, 3)))
        stats = machine.measure_workload()
        assert 0.12 < stats.acceptance_rate < 0.17

    def test_candidate_count_formula(self):
        """Candidates = home pairs + 13 * occ^2 per cell for uniform 64."""
        machine = FasdaMachine(MachineConfig((3, 3, 3)))
        stats = machine.measure_workload()
        expected_per_cell = 64 * 63 // 2 + 13 * 64 * 64
        np.testing.assert_array_equal(stats.candidates_per_cell, expected_per_cell)

    def test_single_node_has_no_remote_traffic(self, small_machine):
        machine, _ = small_machine
        stats = machine.measure_workload()
        assert stats.position_records == {}
        assert stats.force_records == {}

    def test_distributed_traffic_present(self, distributed_machine):
        machine, _ = distributed_machine
        stats = machine.measure_workload()
        assert stats.position_records
        assert stats.force_records
        # Traffic is symmetric in structure: every node both sends and
        # receives positions.
        senders = {s for s, _ in stats.position_records}
        receivers = {d for _, d in stats.position_records}
        assert senders == receivers == set(range(8))

    def test_forces_fewer_than_positions_to_far_nodes(self, distributed_machine):
        """Zero forces are discarded: force records to a corner node are
        rarer than position records from it (paper Sec. 5.4)."""
        machine, _ = distributed_machine
        stats = machine.measure_workload()
        total_pos = sum(stats.position_records.values())
        total_frc = sum(stats.force_records.values())
        assert total_frc < total_pos

    def test_ring_loads_populated_per_node(self, distributed_machine):
        machine, _ = distributed_machine
        stats = machine.measure_workload()
        assert set(stats.pr_load) == set(range(8))
        for load in stats.pr_load.values():
            assert load.total_records > 0
            assert load.min_cycles > 0

    def test_occupancy_sums_to_n(self, distributed_machine):
        machine, system = distributed_machine
        stats = machine.measure_workload()
        assert stats.occupancy_per_cell.sum() == system.n


class TestSparseSystems:
    """The machine must handle empty and near-empty cells (real systems
    are not uniformly filled the way the paper's benchmark is)."""

    def _sparse_system(self, n=40, seed=31):
        import numpy as np

        from repro.md import CellGrid, LJTable, ParticleSystem

        rng = np.random.default_rng(seed)
        grid = CellGrid((3, 3, 3), 8.5)
        lj = LJTable(("Na",))
        # Cluster all particles into one octant: most cells stay empty.
        pos = rng.uniform(0, 8.0, size=(n, 3))
        keep = [0]
        for i in range(1, n):
            d = pos[keep] - pos[i]
            if np.min(np.sum(d * d, axis=1)) > 2.2 ** 2:
                keep.append(i)
        pos = pos[keep]
        return (
            ParticleSystem(
                positions=pos,
                velocities=np.zeros_like(pos),
                species=np.zeros(len(pos), dtype=np.int32),
                lj_table=lj,
                box=grid.box,
            ),
            grid,
        )

    def test_force_pass_with_empty_cells(self):
        import numpy as np

        from repro.md.reference import compute_forces_cells

        system, grid = self._sparse_system()
        machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
        machine.compute_forces(collect_traffic=True)
        f_ref, _ = compute_forces_cells(system, grid)
        scale = max(float(np.abs(f_ref).max()), 1e-9)
        assert np.abs(machine.forces.astype(np.float64) - f_ref).max() / scale < 2e-3

    def test_dynamics_with_empty_cells(self):
        system, grid = self._sparse_system()
        machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
        recs = machine.run(10, record_every=5)
        e0 = recs[0].total
        for rec in recs:
            assert abs(rec.total - e0) / max(abs(e0), 1e-9) < 5e-2

    def test_single_particle_system(self):
        import numpy as np

        from repro.md import CellGrid, LJTable, ParticleSystem

        grid = CellGrid((3, 3, 3), 8.5)
        system = ParticleSystem(
            positions=np.array([[5.0, 5.0, 5.0]]),
            velocities=np.zeros((1, 3)),
            species=np.zeros(1, dtype=np.int32),
            lj_table=LJTable(("Na",)),
            box=grid.box,
        )
        machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
        stats = machine.compute_forces(collect_traffic=True)
        assert stats.total_candidates == 0
        assert stats.total_accepted == 0
        np.testing.assert_array_equal(machine.forces, 0.0)


class TestDynamics:
    def test_energy_conservation_short_run(self, small_machine):
        machine, _ = small_machine
        recs = machine.run(40, record_every=10)
        e0 = recs[0].total
        for rec in recs:
            assert abs(rec.total - e0) / abs(e0) < 5e-3

    def test_machine_tracks_reference_energy(self):
        """The Fig. 19 property on a small system: machine total energy
        stays within 1e-3 of the float64 reference trajectory's."""
        from repro.md import ReferenceEngine
        from repro.md.cells import CellGrid

        system, grid = build_dataset((3, 3, 3), particles_per_cell=16, seed=3)
        machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system.copy())
        reference = ReferenceEngine(system.copy(), grid, dt_fs=2.0)
        m_recs = machine.run(30, record_every=10)
        r_recs = reference.run(30, record_every=10)
        for m, r in zip(m_recs, r_recs):
            assert abs(m.total - r.total) / abs(r.total) < 1e-3

    def test_positions_stay_in_box(self, small_machine):
        machine, _ = small_machine
        machine.run(5, record_every=0)
        assert np.all(machine.system.positions >= 0)
        assert np.all(machine.system.positions < machine.system.box)

    def test_negative_steps_rejected(self, small_machine):
        machine, _ = small_machine
        with pytest.raises(Exception):
            machine.run(-1)

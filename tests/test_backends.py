"""Tests for the selectable compiled force backends (PR 6 tentpole).

The contract under test, per layer:

* registry — numpy/soa always available; unknown names raise; an
  unavailable *optional* backend (numba not installed, no compiler)
  resolves to numpy instead of failing; ``REPRO_FORCE_IMPL`` selects
  the process default and ignores unknown names.
* engine — every available backend reproduces the per-cell float64
  loop oracle and the O(N^2) brute-force golden model within the
  documented ``FORCE_ATOL``/``ENERGY_RTOL`` bounds, on both the fresh
  and the state-reuse paths, at small/medium/paper-density sizes.
* machine — admissions run through the exact float64 recheck on every
  backend, so ``StepStats`` and the float32 force banks are **bitwise
  identical** across backends (padded and chunked paths, reuse on and
  off); same for :class:`DistributedMachine` per node.
* persistence — checkpoint v2 round-trips the ``force_impl`` knob for
  engine, machine and distributed payloads, and pre-knob checkpoints
  (no ``force_impl`` key) still restore.
* campaign — the rate workers record which backend produced each
  number, and per-backend design points ride the default campaign.
"""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint_v2, save_checkpoint_v2
from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.md.backends import (
    ENERGY_RTOL,
    ENV_VAR,
    FORCE_ATOL,
    ForceBackend,
    _REGISTRY,
    _apply_env_default,
    available_backends,
    backend_names,
    backend_status,
    compiled_backends,
    get_force_backend,
    register_backend,
    resolve_backend,
    set_force_backend,
)
from repro.md.dataset import build_dataset
from repro.md.engine import ReferenceEngine
from repro.md.reference import (
    compute_forces_bruteforce,
    compute_forces_cells,
    compute_forces_cells_loop,
)
from repro.util.errors import ValidationError

BACKENDS = available_backends()


@pytest.fixture(autouse=True)
def _restore_default_backend():
    """Every test leaves the process default where it found it."""
    before = get_force_backend()
    yield
    set_force_backend(before)


# ---------------------------------------------------------------------------
# Registry, probing, fallback
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_numpy_and_soa_always_available(self):
        assert "numpy" in BACKENDS
        assert "soa" in BACKENDS
        assert resolve_backend("numpy").is_reference

    def test_all_four_backends_registered(self):
        # Registered regardless of availability — status says why.
        assert set(backend_names()) >= {"numpy", "soa", "numba", "cext"}
        status = backend_status()
        for name in backend_names():
            assert status[name] == "available" or status[name].startswith(
                "unavailable: "
            )

    def test_unknown_backend_raises(self):
        with pytest.raises(ValidationError, match="unknown force backend"):
            resolve_backend("fortran77")
        with pytest.raises(ValidationError):
            set_force_backend("fortran77")

    def test_unavailable_optional_falls_back_to_numpy(self):
        fake = register_backend(
            ForceBackend("fake-jit", available=False, why="not installed")
        )
        try:
            assert resolve_backend("fake-jit").name == "numpy"
            assert set_force_backend("fake-jit") == "numpy"
            assert get_force_backend() == "numpy"
        finally:
            del _REGISTRY[fake.name]

    def test_numba_resolution_matches_probe(self):
        resolved = resolve_backend("numba")
        if "numba" in BACKENDS:
            assert resolved.name == "numba"
        else:
            assert resolved.name == "numpy"  # gated, never an error

    def test_set_get_roundtrip(self):
        assert set_force_backend("soa") == "soa"
        assert get_force_backend() == "soa"
        assert resolve_backend(None).name == "soa"
        assert resolve_backend().name == "soa"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "soa")
        assert _apply_env_default() == "soa"
        assert get_force_backend() == "soa"

    def test_env_unknown_name_ignored(self, monkeypatch):
        set_force_backend("numpy")
        monkeypatch.setenv(ENV_VAR, "no-such-backend")
        assert _apply_env_default() == "numpy"

    def test_compiled_backends_subset(self):
        assert set(compiled_backends()) <= {"numba", "cext"}
        assert set(compiled_backends()) <= set(BACKENDS)


# ---------------------------------------------------------------------------
# Engine layer: bounded equivalence vs the float64 oracles
# ---------------------------------------------------------------------------

#: (dims, particles_per_cell) -> ~54 / ~1k / ~9.6k particles.
SIZES = [((3, 3, 3), 2), ((4, 4, 4), 16), ((5, 5, 6), 64)]


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", BACKENDS)
    @pytest.mark.parametrize("dims,per_cell", SIZES[:2])
    def test_forces_match_loop_and_bruteforce(self, name, dims, per_cell):
        system, grid = build_dataset(
            dims, particles_per_cell=per_cell, seed=2023
        )
        f_b, e_b = compute_forces_cells(system, grid, force_impl=name)
        f_loop, e_loop = compute_forces_cells_loop(system, grid)
        f_ref, e_ref = compute_forces_bruteforce(system, grid.cell_edge)
        assert np.abs(f_b - f_loop).max() < FORCE_ATOL
        assert np.abs(f_b - f_ref).max() < FORCE_ATOL
        assert abs(e_b - e_loop) <= ENERGY_RTOL * max(abs(e_loop), 1.0)
        assert abs(e_b - e_ref) <= ENERGY_RTOL * max(abs(e_ref), 1.0)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_paper_density_vs_loop_oracle(self, name):
        system, grid = build_dataset(SIZES[2][0],
                                     particles_per_cell=SIZES[2][1], seed=2023)
        f_b, e_b = compute_forces_cells(system, grid, force_impl=name)
        f_loop, e_loop = compute_forces_cells_loop(system, grid)
        assert np.abs(f_b - f_loop).max() < FORCE_ATOL
        assert abs(e_b - e_loop) <= ENERGY_RTOL * max(abs(e_loop), 1.0)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_state_reuse_path(self, name):
        system, grid = build_dataset((4, 4, 4), particles_per_cell=16,
                                     seed=7)
        eng = ReferenceEngine(
            system=system.copy(), grid=grid, reuse_state=True,
            force_impl=name,
        )
        eng.run(5)
        ref = ReferenceEngine(system=system.copy(), grid=grid,
                              reuse_state=False)
        ref.run(5)
        # Same admitted pairs, different accumulation order: the
        # trajectories agree to round-off over a short run.
        assert np.abs(
            eng.system.positions - ref.system.positions
        ).max() < 1e-8
        assert abs(
            eng.history[-1].potential - ref.history[-1].potential
        ) <= 1e-7 * abs(ref.history[-1].potential)

    def test_multi_species_bucket_gather(self):
        from repro.md import CellGrid, LJTable, ParticleSystem

        rng = np.random.default_rng(5)
        grid = CellGrid((3, 3, 4), 4.0)
        n = 150
        pos = rng.uniform(0, grid.box, size=(n, 3))
        keep = [0]
        for i in range(1, n):
            dr = pos[keep] - pos[i]
            dr -= grid.box * np.rint(dr / grid.box)
            if np.min(np.sum(dr * dr, axis=1)) > 1.8 ** 2:
                keep.append(i)
        pos = pos[keep]
        lj = LJTable(("Na", "Cl", "Ar"))
        system = ParticleSystem(
            positions=pos,
            velocities=np.zeros_like(pos),
            species=(np.arange(len(pos)) % 3).astype(np.int32),
            lj_table=lj,
            box=grid.box,
        )
        f_loop, e_loop = compute_forces_cells_loop(system, grid)
        for name in BACKENDS:
            f_b, e_b = compute_forces_cells(system, grid, force_impl=name)
            assert np.abs(f_b - f_loop).max() < FORCE_ATOL, name
            assert abs(e_b - e_loop) <= ENERGY_RTOL * max(abs(e_loop), 1.0)

    def test_default_backend_is_used_when_knob_is_none(self):
        system, grid = build_dataset((3, 3, 3), particles_per_cell=4,
                                     seed=3)
        f_soa, _ = compute_forces_cells(system, grid, force_impl="soa")
        set_force_backend("soa")
        f_def, _ = compute_forces_cells(system, grid, force_impl=None)
        np.testing.assert_array_equal(f_def, f_soa)


# ---------------------------------------------------------------------------
# Machine layer: bitwise identity across backends
# ---------------------------------------------------------------------------


def _stats_signature(stats):
    return (
        stats.position_records,
        stats.force_records,
        stats.candidates_per_cell.tobytes(),
        stats.accepted_per_cell.tobytes(),
        stats.neighbor_force_records_per_cell.tobytes(),
        float(stats.potential_energy),
    )


class TestMachineBitwise:
    @pytest.mark.parametrize("pair_path", ["auto", "chunked"])
    @pytest.mark.parametrize("reuse", [False, True])
    def test_stats_and_forces_identical_across_backends(
        self, pair_path, reuse
    ):
        ref_sig = ref_forces = None
        for name in BACKENDS:
            machine = FasdaMachine(MachineConfig((4, 4, 4)), seed=11)
            machine.pair_path = pair_path
            machine.reuse_state = reuse
            machine.force_impl = name
            stats = machine.compute_forces(collect_traffic=True)
            stats = machine.compute_forces(collect_traffic=True)  # reuse hit
            sig = _stats_signature(stats)
            forces = machine.forces.copy()
            if ref_sig is None:
                ref_sig, ref_forces = sig, forces
            else:
                assert sig == ref_sig, (name, pair_path, reuse)
                np.testing.assert_array_equal(forces, ref_forces)

    def test_step_trajectory_bitwise(self):
        ref = None
        for name in BACKENDS:
            machine = FasdaMachine(MachineConfig((3, 3, 3)), seed=4)
            machine.reuse_state = True
            machine.force_impl = name
            for _ in range(3):
                machine.step()
            pos = machine.system.positions.copy()
            if ref is None:
                ref = pos
            else:
                np.testing.assert_array_equal(pos, ref)

    def test_distributed_bitwise_across_backends(self):
        ref_forces = ref_pot = None
        for name in BACKENDS:
            m = DistributedMachine(MachineConfig((4, 4, 4), (1, 1, 2)),
                                   seed=9)
            m.force_impl = name
            potential = m.compute_forces()
            if ref_forces is None:
                ref_forces = m.forces.copy()
                ref_pot = potential
            else:
                np.testing.assert_array_equal(m.forces, ref_forces)
                assert potential == ref_pot


# ---------------------------------------------------------------------------
# Checkpoint v2 round-trip
# ---------------------------------------------------------------------------


class TestCheckpointKnob:
    def test_engine_roundtrip(self, tmp_path):
        system, grid = build_dataset((3, 3, 3), particles_per_cell=4,
                                     seed=1)
        eng = ReferenceEngine(system=system, grid=grid, force_impl="soa")
        eng.run(2)
        path = save_checkpoint_v2(eng, str(tmp_path / "e.npz"))
        eng2, _ = load_checkpoint_v2(path)
        assert eng2.force_impl == "soa"
        # And the restored engine keeps integrating identically.
        eng.run(2)
        eng2.run(2)
        np.testing.assert_array_equal(
            eng.system.positions, eng2.system.positions
        )

    def test_machine_roundtrip(self, tmp_path):
        m = FasdaMachine(MachineConfig((3, 3, 3)), seed=2)
        m.force_impl = "soa"
        m.step()
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))
        m2, _ = load_checkpoint_v2(path)
        assert m2.force_impl == "soa"

    def test_distributed_roundtrip(self, tmp_path):
        d = DistributedMachine(MachineConfig((4, 4, 4), (1, 1, 2)), seed=3)
        d.force_impl = "soa"
        d.step()
        path = save_checkpoint_v2(d, str(tmp_path / "d.npz"))
        d2, _ = load_checkpoint_v2(path)
        assert d2.force_impl == "soa"

    def test_missing_key_restores_as_default(self):
        # Old checkpoints predate the knob: restore must not require it.
        import json

        from repro.core.checkpoint import _machine_payload, _restore_machine

        m = FasdaMachine(MachineConfig((3, 3, 3)), seed=2)
        m.force_impl = "soa"
        m.step()
        meta, arrays = _machine_payload(m)
        meta = json.loads(json.dumps(meta))  # same round-trip as the file
        meta.pop("force_impl")
        m2, _ = _restore_machine(meta, arrays)
        assert m2.force_impl is None


# ---------------------------------------------------------------------------
# Campaign integration
# ---------------------------------------------------------------------------


class TestCampaignBackends:
    def test_engine_rate_records_backend(self):
        from repro.harness.campaign import engine_rate

        res = engine_rate(seed=2023, dims=(3, 3, 3), steps=2,
                          force_impl="soa")
        assert res["backend"] == "soa"
        res_default = engine_rate(seed=2023, dims=(3, 3, 3), steps=2)
        assert res_default["backend"] == get_force_backend()
        # Deterministic payload (timing aside) is backend-independent
        # at engine tolerance.
        assert abs(
            res["final_potential"] - res_default["final_potential"]
        ) <= 1e-7 * abs(res_default["final_potential"])

    def test_machine_rate_identical_across_backends(self):
        from repro.harness.campaign import machine_rate

        base = machine_rate(seed=2023, dims=(3, 3, 3), steps=2,
                            reuse=True)
        for name in BACKENDS:
            res = machine_rate(seed=2023, dims=(3, 3, 3), steps=2,
                               reuse=True, force_impl=name)
            assert res["backend"] == name
            assert res["potential_energy"] == base["potential_energy"]

    def test_default_campaign_has_backend_points(self):
        from repro.harness.campaign import build_default_campaign

        labels = {p.label for p in build_default_campaign()}
        for name in BACKENDS:
            if name == "numpy":
                continue
            assert f"engine/reuse-{name}" in labels
            assert f"machine/reuse-{name}" in labels


# ---------------------------------------------------------------------------
# Kernel-level cross-checks (compiled vs soa, when compiled available)
# ---------------------------------------------------------------------------


class TestKernelContracts:
    @pytest.mark.parametrize("name", compiled_backends() or ["soa"])
    def test_screen_dr_bitwise_vs_numpy(self, name):
        from repro.md.cells import CellList
        from repro.md.pairplan import iter_pair_chunks, plan_for_grid

        machine = FasdaMachine(MachineConfig((3, 3, 3)), seed=6)
        pos = machine.system.positions
        grid = machine.grid
        from repro.core.datapath import quantize_cell_fractions

        coords = grid.coords_of_positions(pos)
        frac = quantize_cell_fractions(
            pos, coords, machine.config.cutoff, machine.fmt
        )
        clist = CellList(grid, pos)
        plan = plan_for_grid(grid)
        b = resolve_backend(name)
        ref = resolve_backend("soa")
        for chunk in iter_pair_chunks(
            plan, clist.counts, clist.start, clist.order
        ):
            dr_b, r2_b = b.screen_dr(frac, chunk.ii, chunk.jj,
                                     plan.offset, chunk.row)
            dr_r, r2_r = ref.screen_dr(frac, chunk.ii, chunk.jj,
                                       plan.offset, chunk.row)
            np.testing.assert_array_equal(dr_b, dr_r)
            np.testing.assert_array_equal(r2_b, r2_r)

"""Node-failure recovery: bitwise-lossless crashes, soak, watchdog."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.sync import diagnose_dead_node
from repro.faults import (
    NodeFaultEvent,
    NodeFaultInjector,
    NodeFaultPlan,
)
from repro.md import build_dataset
from repro.network.topology import TorusTopology
from repro.util.errors import ConfigError, NodeFailureError, ValidationError

DIMS = (4, 4, 4)
FPGA = (2, 2, 2)


def _machine(seed, node_faults=None, shadow_interval=2, n_steps=0):
    cfg = MachineConfig(DIMS, FPGA)
    system, _ = build_dataset(DIMS, particles_per_cell=16, seed=seed)
    m = DistributedMachine(
        cfg, system=system, node_faults=node_faults,
        shadow_interval=shadow_interval,
    )
    for _ in range(n_steps):
        m.step()
    return m


class TestPlanValidation:
    def test_event_validation(self):
        with pytest.raises(ValidationError):
            NodeFaultEvent(node=-1, iteration=0)
        with pytest.raises(ValidationError):
            NodeFaultEvent(node=0, iteration=0, kind="meltdown")

    def test_plan_validation(self):
        with pytest.raises(ValidationError):
            NodeFaultPlan(crash_rate=1.5)
        with pytest.raises(ValidationError):
            NodeFaultPlan(restart_iterations=0)
        with pytest.raises(ValidationError):
            NodeFaultPlan.from_mtbf(0.5)

    def test_from_mtbf(self):
        plan = NodeFaultPlan.from_mtbf(4.0, seed=3)
        assert plan.crash_rate == pytest.approx(0.25)
        assert plan.has_node_faults

    def test_injector_deterministic(self):
        plan = NodeFaultPlan(seed=11, crash_rate=0.3, slowdown_rate=0.2)
        a, b = NodeFaultInjector(plan), NodeFaultInjector(plan)
        for it in range(6):
            assert a.crashes_at(it, 8) == b.crashes_at(it, 8)
            for node in range(8):
                assert a.work_multiplier(node, it) == b.work_multiplier(node, it)

    def test_scripted_event_fires_once(self):
        plan = NodeFaultPlan(events=(NodeFaultEvent(node=2, iteration=1),))
        inj = NodeFaultInjector(plan)
        assert inj.crashes_at(0, 8) == []
        assert inj.crashes_at(1, 8) == [2]
        assert inj.crashes_at(2, 8) == []

    def test_machine_knob_validation(self):
        cfg = MachineConfig(DIMS, FPGA)
        with pytest.raises(ConfigError):
            DistributedMachine(cfg, shadow_interval=0)
        with pytest.raises(ConfigError):
            DistributedMachine(cfg, watchdog_timeout_cycles=-1.0)


SCHEDULES = {
    "early": (NodeFaultEvent(node=1, iteration=1),),
    "late-two": (
        NodeFaultEvent(node=3, iteration=2),
        NodeFaultEvent(node=6, iteration=4),
    ),
}


class TestBitwiseLosslessRecovery:
    @pytest.mark.parametrize("seed", [2023, 7, 99])
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    def test_scripted_crash_is_bitwise_lossless(self, seed, schedule):
        """The recovery contract: trajectory identical, accounting nonzero."""
        n_steps = 5
        baseline = _machine(seed, n_steps=n_steps)
        plan = NodeFaultPlan(events=SCHEDULES[schedule])
        m = _machine(seed, node_faults=plan, n_steps=n_steps)
        np.testing.assert_array_equal(
            m.system.positions, baseline.system.positions
        )
        np.testing.assert_array_equal(m._forces32, baseline._forces32)
        assert [
            (a.step, a.kinetic, a.potential) for a in m.history
        ] == [(b.step, b.kinetic, b.potential) for b in baseline.history]
        # ... but the crash really happened and was paid for.
        assert len(m.recovery_log) == len(SCHEDULES[schedule])
        summary = m.recovery_summary()
        assert summary["records_moved"] > 0
        assert summary["cycles_lost"] > 0
        assert summary["recovery_traffic_records"] > 0
        assert m.shadow_traffic_records > 0
        assert baseline.recovery_summary()["n_recoveries"] == 0

    def test_random_mtbf_crashes_bitwise(self):
        baseline = _machine(5, n_steps=6)
        plan = NodeFaultPlan.from_mtbf(3.0, seed=5)
        m = _machine(5, node_faults=plan, n_steps=6)
        assert len(m.recovery_log) > 0
        np.testing.assert_array_equal(
            m.system.positions, baseline.system.positions
        )

    def test_recovery_record_fields(self):
        plan = NodeFaultPlan(
            events=(NodeFaultEvent(node=1, iteration=3),)
        )
        m = _machine(2023, node_faults=plan, shadow_interval=2, n_steps=5)
        (rec,) = m.recovery_log
        assert rec.node == 1
        assert rec.crash_iteration == rec.detected_iteration == 3
        assert rec.buddy == 2
        assert rec.shadow_iteration == 2
        assert rec.replay_iterations == 1
        assert rec.cells_moved > 0
        assert rec.records_moved == rec.migration_cross_node > 0
        assert rec.cycles_lost >= m.watchdog_timeout_cycles

    def test_restart_window_suppresses_rapid_recrash(self):
        """A node already down cannot crash again until it restarts."""
        plan = NodeFaultPlan(
            events=(
                NodeFaultEvent(node=1, iteration=1),
                NodeFaultEvent(node=1, iteration=2),
            ),
            restart_iterations=3,
        )
        m = _machine(2023, node_faults=plan, n_steps=5)
        assert len(m.recovery_log) == 1

    def test_all_nodes_down_raises(self):
        events = tuple(
            NodeFaultEvent(node=k, iteration=1) for k in range(8)
        )
        plan = NodeFaultPlan(events=events)
        with pytest.raises(NodeFailureError, match="8"):
            _machine(2023, node_faults=plan, n_steps=3)

    def test_reuse_state_survives_crash_bitwise(self):
        baseline = _machine(2023)
        baseline.reuse_state = True
        for _ in range(5):
            baseline.step()
        plan = NodeFaultPlan(events=(NodeFaultEvent(node=4, iteration=2),))
        m = _machine(2023, node_faults=plan)
        m.reuse_state = True
        for _ in range(5):
            m.step()
        np.testing.assert_array_equal(
            m.system.positions, baseline.system.positions
        )
        # Recovery invalidates the reuse caches, so the recovered run
        # pays at least as many rebuilds.
        assert m.state_builds >= baseline.state_builds
        assert len(m.recovery_log) == 1

    def test_slowdown_events_logged(self):
        plan = NodeFaultPlan(seed=3, slowdown_rate=0.5, slowdown_factor=2.5)
        m = _machine(2023, node_faults=plan, n_steps=4)
        assert len(m.node_slowdown_log) > 0
        assert all(f == 2.5 for _, _, f in m.node_slowdown_log)
        assert m.recovery_summary()["slowdown_events"] == len(
            m.node_slowdown_log
        )


class TestWatchdogDiagnosis:
    def test_dead_node_named(self):
        text = diagnose_dead_node(TorusTopology(FPGA), 1)
        assert "from node(s) 1" in text

    def test_bad_node_rejected(self):
        with pytest.raises(ConfigError):
            diagnose_dead_node(TorusTopology(FPGA), 8)


class TestNodeSoak:
    def test_small_soak_all_recovered(self):
        from repro.harness.faultsweep import format_node_soak, run_node_soak

        res = run_node_soak(
            mtbfs=(3.0,), intervals=(1, 2), n_steps=4, seeds=(2023,)
        )
        assert len(res.cells) == 2
        assert res.unrecovered == 0
        assert all(c.n_recoveries > 0 for c in res.cells)
        # Shorter shadow interval -> more shadow traffic, less replay.
        by_interval = {c.shadow_interval: c for c in res.cells}
        assert (
            by_interval[1].shadow_traffic_records
            > by_interval[2].shadow_traffic_records
        )
        assert "unrecovered" in format_node_soak(res)

    def test_soak_json_roundtrip(self):
        import json

        from repro.harness.faultsweep import run_node_soak

        res = run_node_soak(
            mtbfs=(4.0,), intervals=(2,), n_steps=3, seeds=(7,)
        )
        doc = json.loads(res.to_json())
        assert doc["unrecovered"] == res.unrecovered
        assert len(doc["cells"]) == 1


class TestRecoveryDemo:
    def test_demo_document(self):
        from repro.harness.faultsweep import (
            format_recovery_demo,
            run_recovery_demo,
        )

        doc = run_recovery_demo(node=1, iteration=3)
        assert doc["bitwise_identical"]
        assert "from node(s) 1" in doc["watchdog_diagnosis"]
        assert doc["switch"]["recoveries"] == len(doc["recovery_log"]) >= 1
        assert doc["switch"]["delivered"] > 0
        assert doc["step_stats"]["recoveries"] >= 1
        assert doc["step_stats"]["recovery_cycles"] > 0
        text = format_recovery_demo(doc)
        assert "bitwise identical" in text
        assert "watchdog" in text

"""Tests for many-system batched stepping (PR 7 tentpole).

The contract under test, per layer:

* kernel — every registered backend's ``lj_flat_seg`` returns
  per-segment energies and scatters per-slot forces equal to
  evaluating each segment alone.
* engine — each packed system's trajectory is **bitwise identical** to
  a solo ``ReferenceEngine(reuse_state=True)`` run on the batched
  run's oracle backend (``solo_oracle_impl``), on every available
  backend, including across mid-run swap-out/swap-in of *other*
  segments and with per-segment thermostats.
* persistence — checkpoint v2 round-trips a ``BatchedEngine`` (handles,
  thermostats, aux payloads, cell-state counters), and the continued
  run stays bitwise equal to an uninterrupted one.
* queue — jobs finish exactly on their step budgets in priority order,
  bin-packed within ``max_systems``/``max_particles``, each result
  bitwise equal to its solo run.
* pair enumeration — the ``rows=None`` fast path of
  ``iter_pair_chunks`` honors empty and short-count systems (the
  zero-occupancy regression).
"""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint_v2, save_checkpoint_v2
from repro.md.backends import available_backends, resolve_backend
from repro.md.batch import BatchedEngine, solo_oracle_impl
from repro.md.cells import CellGrid, CellList
from repro.md.dataset import build_dataset
from repro.md.engine import ReferenceEngine
from repro.md.pairplan import iter_pair_chunks, plan_for_grid
from repro.md.thermostat import (
    BerendsenThermostat,
    VelocityRescaleThermostat,
    thermostat_from_meta,
    thermostat_meta,
)
from repro.util.errors import ValidationError

BACKENDS = available_backends()


def small_case(seed, ppc=4, dims=(3, 3, 3)):
    return build_dataset(dims, cutoff=8.5, particles_per_cell=ppc, seed=seed)


def solo_run(system, grid, impl, steps, thermostat=None):
    eng = ReferenceEngine(
        system.copy(), grid, dt_fs=2.0, shift=False,
        reuse_state=True, force_impl=impl,
    )
    if thermostat is None:
        eng.run(steps, record_every=0)
    else:
        for _ in range(steps):
            eng.run(1, record_every=0)
            thermostat.apply(eng.system)
    return eng.system


def assert_states_equal(got, want, label=""):
    assert np.array_equal(got.positions, want.positions), f"{label} positions"
    assert np.array_equal(got.velocities, want.velocities), f"{label} velocities"
    assert np.array_equal(got.forces, want.forces), f"{label} forces"


class TestSoloOracle:
    def test_numpy_maps_to_soa(self):
        assert solo_oracle_impl("numpy") == "soa"

    def test_compiled_backends_map_to_themselves(self):
        for name in BACKENDS:
            if name != "numpy":
                assert solo_oracle_impl(name) == name

    def test_default_resolves(self):
        assert solo_oracle_impl(None) in BACKENDS + ["soa"]


class TestSegKernel:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_segmented_matches_solo_segments(self, name):
        """One fused call over K segments == K independent evaluations."""
        cases = [small_case(80 + i, ppc=3 + i) for i in range(3)]
        be = BatchedEngine(force_impl=name)
        handles = [be.add(s.copy(), g) for s, g in cases]
        be.prime()
        pots = be.potentials()
        for h, (s, g) in zip(handles, cases):
            solo = ReferenceEngine(
                s.copy(), g, reuse_state=True,
                force_impl=solo_oracle_impl(name),
            )
            solo.run(0, record_every=0)  # prime only
            got = be.extract(h)
            assert np.array_equal(got.forces, solo.system.forces), name
            ref_pot = solo.history[-1].potential
            assert pots[h] == pytest.approx(ref_pot, rel=1e-9)


class TestBitwiseTrajectories:
    @pytest.mark.parametrize("name", BACKENDS)
    def test_mixed_sizes_match_solo(self, name):
        cases = [
            small_case(11, ppc=4, dims=(3, 3, 3)),
            small_case(12, ppc=6, dims=(3, 4, 3)),
            small_case(13, ppc=3, dims=(4, 3, 3)),
        ]
        oracle = solo_oracle_impl(name)
        be = BatchedEngine(force_impl=name)
        handles = [be.add(s.copy(), g) for s, g in cases]
        be.step(30)
        for h, (s, g) in zip(handles, cases):
            assert_states_equal(
                be.extract(h), solo_run(s, g, oracle, 30), f"{name}/{h}"
            )

    def test_swap_out_and_in_mid_run(self):
        """Removing/adding segments never perturbs the others."""
        cases = [small_case(20 + i, ppc=3 + i % 3) for i in range(4)]
        name = BACKENDS[-1]
        oracle = solo_oracle_impl(name)
        be = BatchedEngine(force_impl=name)
        handles = [be.add(s.copy(), g) for s, g in cases[:3]]
        be.step(12)
        removed = be.remove(handles[1])
        h3 = be.add(cases[3][0].copy(), cases[3][1])
        be.step(18)
        # Undisturbed segments: full 30 steps, bitwise.
        for idx in (0, 2):
            s, g = cases[idx]
            assert_states_equal(
                be.extract(handles[idx]), solo_run(s, g, oracle, 30),
                f"undisturbed {idx}",
            )
        # Swapped-out segment: identical to a 12-step solo run.
        assert_states_equal(
            removed, solo_run(cases[1][0], cases[1][1], oracle, 12),
            "swap-out",
        )
        # Swapped-in segment: identical to an 18-step solo run.
        assert_states_equal(
            be.extract(h3), solo_run(cases[3][0], cases[3][1], oracle, 18),
            "swap-in",
        )

    def test_per_segment_thermostats(self):
        cases = [small_case(31), small_case(32, ppc=5)]
        name = BACKENDS[0]
        oracle = solo_oracle_impl(name)
        be = BatchedEngine(force_impl=name)
        ha = be.add(
            cases[0][0].copy(), cases[0][1],
            thermostat=BerendsenThermostat(300.0, 100.0, 2.0),
        )
        hb = be.add(
            cases[1][0].copy(), cases[1][1],
            thermostat=VelocityRescaleThermostat(250.0),
        )
        be.step(15)
        want_a = solo_run(
            *cases[0], oracle, 15,
            thermostat=BerendsenThermostat(300.0, 100.0, 2.0),
        )
        want_b = solo_run(
            *cases[1], oracle, 15,
            thermostat=VelocityRescaleThermostat(250.0),
        )
        assert np.array_equal(be.extract(ha).velocities, want_a.velocities)
        assert np.array_equal(be.extract(hb).velocities, want_b.velocities)

    def test_reuse_counters_match_solo(self):
        s, g = small_case(44)
        name = BACKENDS[-1]
        be = BatchedEngine(force_impl=name)
        h = be.add(s.copy(), g)
        be.step(25)
        solo = ReferenceEngine(
            s.copy(), g, reuse_state=True, force_impl=solo_oracle_impl(name)
        )
        solo.run(25, record_every=0)
        be._sync_segment_stats()
        seg = be._by_handle[h]
        assert seg.state.builds == solo._cell_state.builds
        assert seg.state.reuse_steps == solo._cell_state.reuse_steps


class TestAdmission:
    def test_empty_system_rejected(self):
        s, g = small_case(1)
        be = BatchedEngine()
        empty = s.copy()
        object.__setattr__(empty, "positions", empty.positions[:0])
        with pytest.raises(ValidationError):
            be.add(empty, g)

    def test_mismatched_cell_edge_rejected(self):
        s1, g1 = small_case(2)
        s2, g2 = build_dataset((3, 3, 3), cutoff=9.0, particles_per_cell=4,
                               seed=3)
        be = BatchedEngine()
        be.add(s1, g1)
        with pytest.raises(ValidationError, match="cutoff"):
            be.add(s2, g2)

    def test_duplicate_handle_rejected(self):
        s, g = small_case(4)
        be = BatchedEngine()
        be.add(s.copy(), g, handle=7)
        with pytest.raises(ValidationError, match="already in use"):
            be.add(s.copy(), g, handle=7)

    def test_unknown_handle_raises(self):
        be = BatchedEngine()
        with pytest.raises(ValidationError):
            be.extract(0)

    def test_backend_without_seg_kernel_rejected(self):
        from repro.md import backends as B

        crippled = B.ForceBackend(
            name="crippled", available=True, why="test", lj_flat_seg=None
        )
        B._REGISTRY["crippled"] = crippled
        try:
            with pytest.raises(ValidationError, match="lj_flat_seg"):
                BatchedEngine(force_impl="crippled")
        finally:
            del B._REGISTRY["crippled"]


class TestCheckpointBatch:
    def test_roundtrip_and_bitwise_continuation(self, tmp_path):
        cases = [small_case(60 + i) for i in range(3)]
        be = BatchedEngine(force_impl=BACKENDS[-1])
        handles = []
        for i, (s, g) in enumerate(cases):
            th = BerendsenThermostat(300.0, 100.0, 2.0) if i == 1 else None
            handles.append(
                be.add(s.copy(), g, thermostat=th,
                       aux={"rng_seed": 60 + i, "lead": f"mol{i}"})
            )
        be.step(17)
        path = str(tmp_path / "batch.npz")
        save_checkpoint_v2(be, path)
        be2, step = load_checkpoint_v2(path)
        assert step == 17
        assert be2.handles() == handles
        assert be2.backend_name == be.backend_name
        # Per-segment metadata restored exactly.
        seg1 = be2._by_handle[handles[1]]
        assert thermostat_meta(seg1.thermostat) == {
            "kind": "berendsen", "target_k": 300.0,
            "ratio": BerendsenThermostat(300.0, 100.0, 2.0).ratio,
        }
        assert be2._by_handle[handles[2]].aux == {
            "rng_seed": 62, "lead": "mol2"
        }
        assert [be2.segment_steps(h) for h in handles] == [17, 17, 17]
        # Continued trajectories bitwise equal to the uninterrupted run.
        be.step(20)
        be2.step(20)
        for h in handles:
            assert_states_equal(be.extract(h), be2.extract(h), f"seg {h}")

    def test_restored_counters_continue(self, tmp_path):
        s, g = small_case(71)
        be = BatchedEngine()
        h = be.add(s.copy(), g)
        be.step(10)
        be._sync_segment_stats()
        builds_before = be.state_builds(h)
        path = str(tmp_path / "b.npz")
        save_checkpoint_v2(be, path)
        be2, _ = load_checkpoint_v2(path)
        be2.step(1)
        # Restoration costs exactly one extra build (the re-prime).
        assert be2.state_builds(h) >= builds_before + 1
        assert be2.segment_steps(h) == 11

    def test_thermostat_meta_roundtrip(self):
        for th in (
            None,
            VelocityRescaleThermostat(123.0),
            BerendsenThermostat(310.0, 50.0, 2.0),
        ):
            back = thermostat_from_meta(thermostat_meta(th))
            if th is None:
                assert back is None
            else:
                assert type(back) is type(th)
                assert back.target_k == th.target_k


class TestJobQueue:
    def test_priority_and_budgets_bitwise(self):
        from repro.harness.jobs import DONE, JobQueue, run_jobs

        q = JobQueue()
        cases = [small_case(40 + i, ppc=3 + i % 2) for i in range(6)]
        ids = [
            q.submit(s.copy(), g, steps=8 + 5 * i,
                     priority=1 if i % 3 == 0 else 0)
            for i, (s, g) in enumerate(cases)
        ]
        # Priority-first admission order.
        pend = [j.job_id for j in q.pending()]
        assert pend == [0, 3, 1, 2, 4, 5]
        name = BACKENDS[-1]
        summary = run_jobs(q, force_impl=name, max_systems=3, chunk_steps=6)
        assert summary["jobs_done"] == 6
        assert summary["swaps"] == 6
        oracle = solo_oracle_impl(name)
        for i, jid in enumerate(ids):
            assert q.status(jid) == DONE
            want = solo_run(*cases[i], oracle, 8 + 5 * i)
            assert_states_equal(q.result(jid), want, f"job {jid}")

    def test_result_before_done_raises(self):
        from repro.harness.jobs import JobQueue

        q = JobQueue()
        s, g = small_case(50)
        jid = q.submit(s, g, steps=5)
        with pytest.raises(ValidationError, match="queued"):
            q.result(jid)

    def test_max_particles_first_fit(self):
        from repro.harness.jobs import JobQueue, run_jobs

        q = JobQueue()
        big = small_case(51, ppc=8)
        small = small_case(52, ppc=3)
        q.submit(big[0], big[1], steps=4)
        q.submit(small[0], small[1], steps=4)
        summary = run_jobs(
            q, max_systems=2, max_particles=big[0].n + 10, chunk_steps=4
        )
        # Both finish; the big one cannot share a batch with the small.
        assert summary["jobs_done"] == 2
        assert summary["batches_formed"] >= 2

    def test_bad_budget_rejected(self):
        from repro.harness.jobs import JobQueue

        q = JobQueue()
        s, g = small_case(53)
        with pytest.raises(ValidationError):
            q.submit(s, g, steps=0)


class TestBenchAndCampaign:
    def test_batch_rate_worker(self):
        from repro.harness.campaign import _WORKERS

        result = _WORKERS["batch_rate"](seed=2023, k_systems=4, steps=5)
        assert result["k_systems"] == 4
        assert result["backend"] in BACKENDS
        assert result["timing"]["aggregate_steps_per_s"] > 0

    def test_bench_doc_gates_like_campaign(self):
        from repro.harness.campaign import check_regression
        from repro.harness.jobs import run_batch_bench

        doc = run_batch_bench(
            k_systems=6, steps=5, warm_steps=2, serial_sample=2, smoke=True
        )
        assert doc["smoke"] is True
        point = next(iter(doc["points"].values()))["result"]
        assert point["plan_cache_cold"]["misses"] >= 1
        assert point["backend"] in BACKENDS
        assert point["serial_sampled"] == 2
        # Same doc passes its own gate; a slowed clone fails it.
        assert check_regression(doc, doc) == []
        import copy

        slow = copy.deepcopy(doc)
        for p in slow["points"].values():
            p["result"]["timing"]["aggregate_steps_per_s"] *= 0.5
        assert check_regression(doc, slow) != []

    def test_default_campaign_includes_batch_point(self):
        from repro.harness.campaign import build_default_campaign

        labels = [p.label for p in build_default_campaign()]
        assert "batch/k8" in labels


class TestPairChunkEmptyCells:
    """Regression: the rows=None fast path with short/empty bincounts."""

    def test_empty_system_yields_nothing(self):
        grid = CellGrid((3, 3, 3), 8.5)
        plan = plan_for_grid(grid)
        counts = np.zeros(0, dtype=np.int64)  # np.bincount([]) shape
        start = np.zeros(1, dtype=np.int64)
        order = np.zeros(0, dtype=np.int64)
        chunks = list(iter_pair_chunks(plan, counts, start, order))
        assert chunks == []

    def test_short_counts_match_full_length(self):
        """Occupancy only in low cells: short bincount == padded one."""
        grid = CellGrid((3, 3, 3), 8.5)
        plan = plan_for_grid(grid)
        # A handful of particles clustered in the first two cells, so
        # trailing cells are empty and a minlength-less bincount is
        # short.
        rng = np.random.default_rng(90)
        positions = rng.uniform(0.5, 8.0, size=(6, 3))
        positions[3:, 2] += 8.5  # cell (0, 0, 1)
        clist = CellList(grid, positions)
        nz = np.flatnonzero(clist.counts)
        hi = int(nz[-1]) + 1
        assert hi < plan.n_cells  # the regression precondition
        short_counts = clist.counts[:hi]
        short_start = clist.start[:hi + 1]

        def pairs(counts, start):
            out = []
            for chunk in iter_pair_chunks(plan, counts, start, clist.order):
                out.extend(zip(chunk.row, chunk.ii, chunk.jj))
            return out

        assert pairs(short_counts, short_start) == pairs(
            clist.counts, clist.start
        )

"""Tests for the cycle-accounting performance model (Figs. 16-17 claims)."""

import numpy as np
import pytest

from repro.core.config import (
    MachineConfig,
    strong_scaling_configs,
    weak_scaling_configs,
)
from repro.core.cycles import (
    PE_BUSY_FRACTION,
    PE_FILTER_EFFICIENCY,
    estimate_from_config,
    estimate_performance,
)
from repro.core.machine import FasdaMachine
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def perf_by_name():
    """Cycle-model results for the seven measured design points (shared —
    measuring each costs a functional force pass)."""
    out = {}
    for name, cfg in {**weak_scaling_configs(), **strong_scaling_configs()}.items():
        out[name] = estimate_from_config(cfg)
    return out


class TestHeadlineNumbers:
    def test_weak_scaling_rate_near_2us_per_day(self, perf_by_name):
        """Paper: 'the simulation rate of FPGAs remains consistent at
        around 2 us/day for all four configurations'."""
        for name in ("3x3x3", "6x3x3", "6x6x3", "6x6x6"):
            assert 1.6 < perf_by_name[name].rate_us_per_day < 2.6

    def test_weak_scaling_flat(self, perf_by_name):
        rates = [perf_by_name[n].rate_us_per_day for n in ("3x3x3", "6x3x3", "6x6x3", "6x6x6")]
        assert max(rates) / min(rates) < 1.1

    def test_strong_scaling_c_over_a(self, perf_by_name):
        """Paper: 'the performance is increased to 5.26x with 3 PEs per
        SPE and 2 SPEs per SCBB compared to 1 PE per cell'."""
        gain = (
            perf_by_name["4x4x4-C"].rate_us_per_day
            / perf_by_name["4x4x4-A"].rate_us_per_day
        )
        assert 4.2 < gain < 6.0

    def test_strong_scaling_monotone(self, perf_by_name):
        a = perf_by_name["4x4x4-A"].rate_us_per_day
        b = perf_by_name["4x4x4-B"].rate_us_per_day
        c = perf_by_name["4x4x4-C"].rate_us_per_day
        assert a < b < c

    def test_pe_bound_for_paper_points(self, perf_by_name):
        """All evaluated points are compute-bound, which is what makes
        the PE-scaling strategy pay off."""
        for name, perf in perf_by_name.items():
            assert perf.bound == "pe", name


class TestUtilizations:
    def test_pe_time_utilization_near_80(self, perf_by_name):
        for name, perf in perf_by_name.items():
            assert 0.6 < perf.utilization["pe"].time < 0.9, name

    def test_pe_hardware_utilization_range(self, perf_by_name):
        """Paper: 'hardware utilization of approximately 50%~60%'."""
        for name, perf in perf_by_name.items():
            assert 0.40 < perf.utilization["pe"].hardware < 0.62, name

    def test_filters_match_pe(self, perf_by_name):
        """Paper: 'the upstream filters match the PEs well'."""
        for perf in perf_by_name.values():
            f = perf.utilization["filter"].hardware
            p = perf.utilization["pe"].hardware
            assert abs(f - p) < 0.2

    def test_pr_is_least_utilized_ring(self, perf_by_name):
        """Paper: 'only the PR underused due to the excellent locality
        of position data'."""
        for name, perf in perf_by_name.items():
            assert (
                perf.utilization["pr"].hardware < perf.utilization["fr"].hardware
            ), name

    def test_mu_below_5_percent(self, perf_by_name):
        """Paper: 'the MU has the lowest overall utilization (< 5%)'."""
        for name, perf in perf_by_name.items():
            assert perf.utilization["mu"].time < 0.05, name

    def test_pr_utilization_rises_with_weak_scaling(self, perf_by_name):
        """Paper: 'in weak scaling scenarios both the hardware and time
        utilizations of PR increase' (fragmented position locality)."""
        hw = [
            perf_by_name[n].utilization["pr"].hardware
            for n in ("3x3x3", "6x3x3", "6x6x3", "6x6x6")
        ]
        assert hw == sorted(hw)

    def test_rings_rise_a_to_b_then_flat_to_c(self, perf_by_name):
        """Paper: PR/FR utilization increases A -> B, then stays almost
        the same B -> C (doubling SPEs doubles the rings)."""
        a = perf_by_name["4x4x4-A"].utilization["fr"].hardware
        b = perf_by_name["4x4x4-B"].utilization["fr"].hardware
        c = perf_by_name["4x4x4-C"].utilization["fr"].hardware
        assert b > a
        assert abs(c - b) < 0.15


class TestModelMechanics:
    def test_invalid_efficiencies_rejected(self):
        cfg = MachineConfig((3, 3, 3))
        machine = FasdaMachine(cfg)
        stats = machine.measure_workload()
        with pytest.raises(ValidationError):
            estimate_performance(cfg, stats, filter_efficiency=0.0)
        with pytest.raises(ValidationError):
            estimate_performance(cfg, stats, busy_fraction=1.5)

    def test_iteration_decomposition(self, perf_by_name):
        for perf in perf_by_name.values():
            assert perf.iteration_cycles == pytest.approx(
                perf.force_cycles + perf.sync_cycles + perf.mu_cycles
            )

    def test_single_node_has_no_sync(self, perf_by_name):
        assert perf_by_name["3x3x3"].sync_cycles == 0.0
        assert perf_by_name["6x3x3"].sync_cycles > 0.0

    def test_rate_inversely_proportional_to_cycles(self, perf_by_name):
        p = perf_by_name["3x3x3"]
        expected = (
            p.config.dt_fs * 1e-9 * 86400.0
            / (p.iteration_cycles * p.config.cycle_seconds)
        )
        assert p.rate_us_per_day == pytest.approx(expected)

    def test_more_filters_speed_up_pe_bound_designs(self):
        cfg6 = MachineConfig((3, 3, 3), filters_per_pipeline=6)
        cfg12 = MachineConfig((3, 3, 3), filters_per_pipeline=12)
        machine = FasdaMachine(cfg6)
        stats = machine.measure_workload()
        p6 = estimate_performance(cfg6, stats)
        p12 = estimate_performance(cfg12, stats)
        assert p12.rate_us_per_day > p6.rate_us_per_day

    def test_per_node_cycles_shape(self, perf_by_name):
        perf = perf_by_name["6x6x6"]
        assert perf.per_node_force_cycles.shape == (8,)
        assert np.all(perf.per_node_force_cycles > 0)

    def test_efficiency_constants_documented_values(self):
        assert PE_FILTER_EFFICIENCY == 0.70
        assert PE_BUSY_FRACTION == 0.80

"""Tests for crystal lattice builders."""

import numpy as np
import pytest

from repro.md.analysis import radial_distribution_function
from repro.md.lattice import build_fcc, build_rocksalt, grid_for_system
from repro.util.errors import ValidationError


class TestFcc:
    def test_atom_count(self):
        s = build_fcc("Ar", 3, 5.26)
        assert s.n == 4 * 27

    def test_box(self):
        s = build_fcc("Ar", 4, 5.26)
        np.testing.assert_allclose(s.box, 4 * 5.26)

    def test_nearest_neighbor_distance(self):
        """FCC nearest-neighbor distance is a0 / sqrt(2)."""
        a0 = 5.26
        s = build_fcc("Ar", 3, a0)
        ii, jj = np.triu_indices(s.n, k=1)
        dr = s.positions[ii] - s.positions[jj]
        dr -= s.box * np.rint(dr / s.box)
        r = np.sqrt(np.sum(dr * dr, axis=1))
        assert r.min() == pytest.approx(a0 / np.sqrt(2), rel=1e-9)

    def test_coordination_number_12(self):
        """Each FCC atom has 12 nearest neighbors."""
        a0 = 5.26
        s = build_fcc("Ar", 3, a0)
        nn = a0 / np.sqrt(2)
        ii, jj = np.triu_indices(s.n, k=1)
        dr = s.positions[ii] - s.positions[jj]
        dr -= s.box * np.rint(dr / s.box)
        r = np.sqrt(np.sum(dr * dr, axis=1))
        close = np.abs(r - nn) < 1e-6
        counts = np.bincount(
            np.concatenate([ii[close], jj[close]]), minlength=s.n
        )
        assert np.all(counts == 12)

    def test_zero_kelvin_at_rest(self):
        s = build_fcc("Ar", 2, 5.26)
        np.testing.assert_array_equal(s.velocities, 0.0)

    def test_finite_temperature(self):
        s = build_fcc("Ar", 4, 5.26, temperature_k=80.0, seed=1)
        assert s.temperature() == pytest.approx(80.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValidationError):
            build_fcc("Ar", 0, 5.26)

    def test_rdf_shows_crystal_shells(self):
        """An FCC crystal's g(r) is a set of sharp shells."""
        a0 = 5.26
        s = build_fcc("Ar", 4, a0)
        r, g = radial_distribution_function(s, r_max=9.0, n_bins=90)
        nn = a0 / np.sqrt(2)
        # Large peak at the nearest-neighbor shell, zero just inside it.
        peak_bin = np.argmin(np.abs(r - nn))
        assert g[peak_bin - 3] == 0.0
        assert g[peak_bin] > 5.0 or g[peak_bin + 1] > 5.0 or g[peak_bin - 1] > 5.0


class TestRocksalt:
    def test_counts_and_neutrality(self):
        s = build_rocksalt(2)
        assert s.n == 8 * 8  # 4 + 4 ions per cell, 8 cells
        assert float(s.charges.sum()) == 0.0
        assert set(np.unique(s.charges)) == {-1.0, 1.0}

    def test_nearest_neighbors_are_counterions(self):
        """In rock salt every ion's nearest neighbors carry the opposite
        charge at distance a0/2."""
        a0 = 5.64
        s = build_rocksalt(2, a0)
        ii, jj = np.triu_indices(s.n, k=1)
        dr = s.positions[ii] - s.positions[jj]
        dr -= s.box * np.rint(dr / s.box)
        r = np.sqrt(np.sum(dr * dr, axis=1))
        nearest = np.abs(r - a0 / 2) < 1e-6
        qq = s.charges[ii[nearest]] * s.charges[jj[nearest]]
        assert np.all(qq == -1.0)

    def test_ionic_crystal_is_bound(self):
        """Madelung attraction beats LJ repulsion: negative total energy
        under the composite RL force field.

        Uses a relaxed lattice constant (6.5 A): our generic ionic LJ
        parameters (sigma_Cl = 4.417 A) over-pressurize the experimental
        5.64 A cell — dedicated NaCl force fields use tighter sigmas.
        """
        from repro.md.ewald import choose_beta
        from repro.md.forcefield import (
            CompositeKernel,
            EwaldRealKernel,
            LennardJonesKernel,
        )
        from repro.md.forcefield import compute_forces_kernel

        a0 = 6.5
        s = build_rocksalt(3, a0)
        grid = grid_for_system(s, cutoff=a0)
        assert grid is not None
        kernel = CompositeKernel(
            [LennardJonesKernel(), EwaldRealKernel(choose_beta(a0))]
        )
        _, energy = compute_forces_kernel(s, grid, kernel)
        assert energy < 0


class TestGridForSystem:
    def test_exact_fit(self):
        s = build_fcc("Ar", 4, 5.26)
        grid = grid_for_system(s, cutoff=5.26)
        assert grid is not None
        assert grid.dims == (4, 4, 4)

    def test_non_divisible_returns_none(self):
        s = build_fcc("Ar", 4, 5.26)
        assert grid_for_system(s, cutoff=6.0) is None

    def test_too_few_cells_returns_none(self):
        s = build_fcc("Ar", 2, 5.26)
        assert grid_for_system(s, cutoff=5.26) is None

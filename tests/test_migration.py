"""Tests for particle-migration accounting (the MU ring's workload)."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.core.migration import count_migrations, expected_migration_rate
from repro.md import CellGrid, build_dataset
from repro.util.errors import ValidationError


class TestCountMigrations:
    def test_no_motion_no_migration(self):
        grid = CellGrid((3, 3, 3), 2.0)
        pos = np.random.default_rng(0).uniform(0, 6.0, size=(50, 3))
        stats = count_migrations(grid, pos, pos)
        assert stats.total == 0
        assert stats.cross_node == 0
        assert stats.rate(50) == 0.0

    def test_single_cell_crossing(self):
        grid = CellGrid((3, 3, 3), 2.0)
        before = np.array([[1.9, 1.0, 1.0]])
        after = np.array([[2.1, 1.0, 1.0]])
        stats = count_migrations(grid, before, after)
        assert stats.total == 1
        assert stats.per_cell_outflow[int(grid.cell_id(np.array([0, 0, 0])))] == 1

    def test_wraparound_crossing(self):
        grid = CellGrid((3, 3, 3), 2.0)
        before = np.array([[5.9, 1.0, 1.0]])
        after = np.array([[0.05, 1.0, 1.0]])  # wrapped across +x face
        stats = count_migrations(grid, before, after)
        assert stats.total == 1

    def test_cross_node_accounting(self):
        grid = CellGrid((4, 4, 4), 2.0)
        # Cells 0..63; nodes by 2x2x2 blocks: cell (1,0,0)->(2,0,0) crosses.
        cell_node = np.zeros(64, dtype=np.int64)
        coords = grid.cell_coords(np.arange(64, dtype=np.int64))
        cell_node[:] = (coords[:, 0] // 2) * 4 + (coords[:, 1] // 2) * 2 + coords[:, 2] // 2
        before = np.array([[3.9, 1.0, 1.0]])  # cell (1,0,0) node 0
        after = np.array([[4.1, 1.0, 1.0]])   # cell (2,0,0) node 4
        stats = count_migrations(grid, before, after, cell_node)
        assert stats.total == 1
        assert stats.cross_node == 1

    def test_shape_mismatch_rejected(self):
        grid = CellGrid((3, 3, 3), 2.0)
        with pytest.raises(ValidationError):
            count_migrations(grid, np.zeros((2, 3)), np.zeros((3, 3)))


class TestExpectedRate:
    def test_magnitude_is_small(self):
        """At 300 K sodium with 2 fs steps and 8.5 A cells, ~0.1% of
        particles migrate per step — why the MU ring never bottlenecks."""
        rate = expected_migration_rate(300.0, 22.99, 2.0, 8.5)
        assert 1e-4 < rate < 5e-3

    def test_scales_with_dt(self):
        r1 = expected_migration_rate(300.0, 22.99, 1.0, 8.5)
        r2 = expected_migration_rate(300.0, 22.99, 2.0, 8.5)
        assert r2 == pytest.approx(2 * r1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            expected_migration_rate(-1.0, 22.99, 2.0, 8.5)


class TestMachineIntegration:
    def test_machine_records_migrations(self):
        system, _ = build_dataset((3, 3, 3), particles_per_cell=16, seed=11)
        machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
        machine.run(10, record_every=0)
        assert machine.last_migrations is not None
        # The dataset runs hot (random placement), so migrations exceed
        # the 300 K estimate but stay a small fraction of particles.
        assert machine.last_migrations.rate(system.n) < 0.05

"""Tests validating the analytic ring model against cycle-level simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rings import RingLoadModel, RingPath
from repro.core.ringsim import RingSimulator
from repro.util.errors import SimulationError, ValidationError


class TestRingSimulatorBasics:
    def test_single_record_takes_hop_count(self):
        ring = RingPath(8, +1)
        sim = RingSimulator(ring)
        sim.add_injection(0, 3)
        assert sim.run() == 3

    def test_wraparound(self):
        ring = RingPath(8, +1)
        sim = RingSimulator(ring)
        sim.add_injection(5, 2)  # 5 hops clockwise
        assert sim.run() == 5

    def test_counterclockwise(self):
        ring = RingPath(8, -1)
        sim = RingSimulator(ring)
        sim.add_injection(3, 0)
        assert sim.run() == 3

    def test_batch_serializes_at_injection(self):
        """k records from one slot need k-1 extra cycles (1/cycle inject)."""
        ring = RingPath(8, +1)
        sim = RingSimulator(ring)
        sim.add_injection(0, 4, count=5)
        assert sim.run() == 4 + 4

    def test_disjoint_streams_overlap_perfectly(self):
        ring = RingPath(8, +1)
        sim = RingSimulator(ring)
        sim.add_injection(0, 1, count=3)
        sim.add_injection(4, 5, count=3)
        assert sim.run() == 3  # fully parallel

    def test_through_traffic_blocks_injection(self):
        """A slot under a heavy through-stream cannot inject until a gap."""
        ring = RingPath(8, +1)
        sim = RingSimulator(ring)
        sim.add_injection(0, 4, count=6)   # passes slots 1..3 continuously
        sim.add_injection(2, 3, count=1)   # must wait for the stream
        cycles = sim.run()
        # Stream alone: inject 6 over 6 cycles, last arrives at 6+4-1=9;
        # the blocked record squeezes in afterward.
        assert cycles >= 9

    def test_validation(self):
        ring = RingPath(4, +1)
        sim = RingSimulator(ring)
        with pytest.raises(ValidationError):
            sim.add_injection(0, 0)
        with pytest.raises(ValidationError):
            sim.add_injection(0, 9)
        with pytest.raises(ValidationError):
            sim.add_injection(0, 1, count=-1)

    def test_livelock_guard(self):
        ring = RingPath(4, +1)
        sim = RingSimulator(ring)
        sim.add_injection(0, 2, count=10)
        with pytest.raises(SimulationError):
            sim.run(max_cycles=3)

    def test_empty_run_is_zero_cycles(self):
        assert RingSimulator(RingPath(4, +1)).run() == 0


class TestAnalyticModelValidation:
    """The cycle model's ring bound must lower-bound the true drain time
    and stay within a small factor of it."""

    @given(
        st.integers(4, 12),
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11), st.integers(1, 20)),
            min_size=1,
            max_size=12,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_min_cycles_bounds_simulation(self, n_slots, raw_injections):
        ring = RingPath(n_slots, +1)
        model = RingLoadModel(ring)
        sim = RingSimulator(ring)
        any_added = False
        for src, dst, count in raw_injections:
            src, dst = src % n_slots, dst % n_slots
            if src == dst:
                continue
            model.inject(src, dst, count)
            sim.add_injection(src, dst, count)
            any_added = True
        if not any_added:
            return
        simulated = sim.run()
        # Lower bound: the busiest link must carry its load one per cycle.
        assert model.min_cycles <= simulated
        # And the bound is tight to within ring length + total records
        # (injection serialization + pipeline fill).
        assert simulated <= model.min_cycles + n_slots + model.total_records

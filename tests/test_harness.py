"""Tests for the experiment harness (integration across the whole stack)."""

import numpy as np
import pytest

from repro.harness.experiments import (
    format_fig16,
    format_fig17,
    format_fig18,
    format_fig19,
    format_table1,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_table1,
)
from repro.harness.report import format_csv, format_table


@pytest.fixture(scope="module")
def fig16():
    return run_fig16()


@pytest.fixture(scope="module")
def fig17():
    return run_fig17()


@pytest.fixture(scope="module")
def fig18():
    return run_fig18()


class TestReportFormatting:
    def test_basic_table(self):
        txt = format_table(["a", "bb"], [["x", 1.5], ["yy", None]])
        lines = txt.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-" in lines[1]
        assert "1.50" in txt
        assert txt.splitlines()[-1].strip().endswith("-")

    def test_title(self):
        txt = format_table(["a"], [[1]], title="My Table")
        assert txt.startswith("My Table\n========")

    def test_precision(self):
        txt = format_table(["a"], [[3.14159]], precision=4)
        assert "3.1416" in txt

    def test_csv_basic(self):
        txt = format_csv(["x", "y"], [[1, 2.5], ["a", None]])
        lines = txt.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,2.500000"
        assert lines[2] == "a,"

    def test_csv_quoting(self):
        txt = format_csv(["v"], [['he said "hi", ok']])
        assert txt.splitlines()[1] == '"he said ""hi"", ok"'

    def test_bar_chart(self):
        from repro.harness.report import format_bar_chart

        txt = format_bar_chart(["a", "bb"], [10.0, 5.0], width=10, unit="x")
        lines = txt.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert "10.00x" in lines[0]

    def test_bar_chart_handles_none_and_zero(self):
        from repro.harness.report import format_bar_chart

        txt = format_bar_chart(["a", "b"], [0.0, None], width=5)
        assert "-" in txt.splitlines()[1]

    def test_bar_chart_length_mismatch(self):
        from repro.harness.report import format_bar_chart

        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])


class TestFig16(object):
    def test_sections_present(self, fig16):
        assert len(fig16.weak) == 4
        assert len(fig16.strong) == 3
        assert len(fig16.simulated) == 2

    def test_weak_scaling_flat_fpga(self, fig16):
        rates = [r.fpga for r in fig16.weak]
        assert max(rates) / min(rates) < 1.1

    def test_headline_ratios(self, fig16):
        assert 4.2 < fig16.strong_speedup_c_over_a < 6.0  # paper 5.26
        assert 3.7 < fig16.speedup_vs_best_gpu < 5.6      # paper 4.67

    def test_fpga_beats_every_baseline_on_strong_scaling(self, fig16):
        row_c = next(r for r in fig16.strong if r.name == "4x4x4-C")
        assert row_c.fpga > row_c.best_cpu
        assert row_c.fpga > row_c.best_gpu

    def test_simulated_scaleout_keeps_rate(self, fig16):
        """Fig. 16 right: 64/125-FPGA deployments keep the per-node rate
        (communication latency unchanged, each FPGA on 2x2x2 cells)."""
        row_c = next(r for r in fig16.strong if r.name == "4x4x4-C")
        for row in fig16.simulated:
            assert row.fpga == pytest.approx(row_c.fpga, rel=0.15)

    def test_gpu_efficiency_grows_with_workload(self, fig16):
        """Paper: 'the efficiency of a single GPU increases as the
        workload grows' — its rate falls much slower than 1/N."""
        small = fig16.weak[0]       # 1728 particles
        big = fig16.simulated[-1]   # 64000 particles
        rate_ratio = big.gpu_a100[1] / small.gpu_a100[1]
        workload_ratio = small.n_particles / big.n_particles  # 1/37
        assert rate_ratio > 3 * workload_ratio

    def test_gpu_competitive_only_at_small_sizes(self, fig16):
        """At 3x3x3 a single GPU is launch-bound and close to the FPGA;
        by 4x4x4-C the FPGA leads by > 4x."""
        small = fig16.weak[0]
        assert small.best_gpu > 0.5 * small.fpga
        row_c = next(r for r in fig16.strong if r.name == "4x4x4-C")
        assert row_c.fpga > 4 * row_c.best_gpu

    def test_format_contains_headline(self, fig16):
        txt = format_fig16(fig16)
        assert "paper: 5.26x" in txt
        assert "paper: 4.67x" in txt
        assert "Fig 16 (weak scaling)" in txt


class TestFig17:
    def test_seven_variants(self, fig17):
        assert len(fig17.rows) == 7

    def test_components_present(self, fig17):
        for row in fig17.rows:
            assert set(row.hardware) == {"pe", "filter", "pr", "fr", "mu"}
            assert set(row.time) == {"pe", "filter", "pr", "fr", "mu"}

    def test_utilizations_are_fractions(self, fig17):
        for row in fig17.rows:
            for v in list(row.hardware.values()) + list(row.time.values()):
                assert 0.0 <= v <= 1.0

    def test_format(self, fig17):
        txt = format_fig17(fig17)
        assert "4x4x4-C" in txt and "pr.hw" in txt


class TestFig18:
    def test_bandwidth_below_25_gbps(self, fig18):
        """Paper: 'the average bandwidth demand for an FPGA is below
        25 Gbps for either position or force'."""
        for row in fig18.rows:
            assert row.position_gbps < 25.0, row.name
            assert row.force_gbps < 25.0, row.name

    def test_bandwidth_well_below_line_rate(self, fig18):
        for row in fig18.rows:
            assert row.position_gbps < 100.0

    def test_strong_scaling_raises_bandwidth(self, fig18):
        by_name = {r.name: r for r in fig18.rows}
        assert by_name["4x4x4-C"].position_gbps > by_name["4x4x4-A"].position_gbps

    def test_force_breakdown_concentrated_near(self, fig18):
        """Paper: 'an FPGA only communicates intensely with the nodes
        logically close to it, particularly for forces'."""
        frc = fig18.breakdown["force"]
        hop1 = [frc[d] for d, h in fig18.hop_distance.items() if h == 1]
        hop3 = [frc[d] for d, h in fig18.hop_distance.items() if h == 3]
        assert min(hop1) > max(hop3)

    def test_corner_force_share_small(self, fig18):
        """Zero forces to the corner node are discarded, so its share is
        marginal (paper: 'sometimes do not pass through any filter')."""
        corner = [d for d, h in fig18.hop_distance.items() if h == 3][0]
        assert fig18.breakdown["force"][corner] < 6.0

    def test_position_breakdown_sums_to_100(self, fig18):
        assert sum(fig18.breakdown["position"].values()) == pytest.approx(100.0)

    def test_format(self, fig18):
        txt = format_fig18(fig18)
        assert "Fig 18(A)" in txt and "Fig 18(B)" in txt


class TestDeterminism:
    """Experiments are pure functions of their seed."""

    def test_fig18_deterministic(self):
        a = run_fig18(seed=7)
        b = run_fig18(seed=7)
        assert [r.position_gbps for r in a.rows] == [r.position_gbps for r in b.rows]
        assert a.breakdown == b.breakdown

    def test_table1_deterministic(self):
        assert run_table1().rows == run_table1().rows


class TestTable1:
    def test_rows_and_format(self):
        result = run_table1()
        assert len(result.rows) == 7
        txt = format_table1(result)
        assert "lut.model" in txt and "4x4x4-C" in txt

    def test_model_tracks_paper(self):
        result = run_table1()
        for name, res_map in result.rows.items():
            for res, (model, paper) in res_map.items():
                assert abs(model - paper) <= 15.0, (name, res)


class TestFig19:
    def test_short_run_error_bounds(self):
        """Paper: 'relative error is always significantly less than 1e-3
        and generally below 1e-4'."""
        result = run_fig19(n_steps=60, record_every=20, dims=(3, 3, 3))
        assert result.max_relative_error < 1e-3
        assert result.median_relative_error < 1e-4

    def test_energy_series_aligned(self):
        result = run_fig19(n_steps=40, record_every=20, dims=(3, 3, 3))
        assert len(result.steps) == len(result.machine_energy)
        assert len(result.steps) == len(result.reference_energy)
        assert result.steps[0] == 0

    def test_format(self):
        result = run_fig19(n_steps=20, record_every=20, dims=(3, 3, 3))
        txt = format_fig19(result)
        assert "rel err" in txt and "paper" in txt

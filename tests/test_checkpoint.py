"""Tests for machine checkpoint/restore."""

import numpy as np
import pytest

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.util.errors import ValidationError


@pytest.fixture()
def short_run_machine():
    system, _ = build_dataset((3, 3, 3), particles_per_cell=8, seed=6)
    machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
    machine.run(5, record_every=5)
    return machine


def test_roundtrip_state_identical(short_run_machine, tmp_path):
    machine = short_run_machine
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(machine, path)
    restored, step = load_checkpoint(path)
    assert step == 5
    np.testing.assert_array_equal(restored.system.positions, machine.system.positions)
    np.testing.assert_array_equal(restored.velocities, machine.velocities)
    np.testing.assert_array_equal(restored.forces, machine.forces)
    assert restored.config == machine.config


def test_restored_trajectory_continues_identically(short_run_machine, tmp_path):
    """The acid test: restore must be bit-transparent to the dynamics."""
    machine = short_run_machine
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(machine, path)
    restored, _ = load_checkpoint(path)
    machine.run(5, record_every=0)
    restored.run(5, record_every=0)
    np.testing.assert_array_equal(
        restored.system.positions, machine.system.positions
    )
    np.testing.assert_array_equal(restored.velocities, machine.velocities)


def test_charged_machine_roundtrip(tmp_path):
    system, _ = build_dataset(
        (3, 3, 3), particles_per_cell=8, species=("Na", "Cl"),
        charged=True, min_distance=2.4, seed=7,
    )
    cfg = MachineConfig((3, 3, 3), force_model="lj+coulomb", dt_fs=0.5)
    machine = FasdaMachine(cfg, system=system)
    machine.run(3, record_every=0)
    path = str(tmp_path / "salt.npz")
    save_checkpoint(machine, path)
    restored, _ = load_checkpoint(path)
    assert restored.config.force_model == "lj+coulomb"
    np.testing.assert_array_equal(restored.system.charges, machine.system.charges)
    machine.run(3, record_every=0)
    restored.run(3, record_every=0)
    np.testing.assert_array_equal(restored.velocities, machine.velocities)


def test_unprimed_machine_roundtrip(tmp_path):
    system, _ = build_dataset((3, 3, 3), particles_per_cell=4, seed=8)
    machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
    path = str(tmp_path / "fresh.npz")
    save_checkpoint(machine, path)
    restored, step = load_checkpoint(path)
    assert step == 0
    assert not restored._primed


def test_bad_file_rejected(tmp_path):
    path = str(tmp_path / "bogus.npz")
    np.savez(path, format=np.array("something-else"), x=np.zeros(3))
    with pytest.raises(ValidationError, match="not a FASDA checkpoint"):
        load_checkpoint(path)

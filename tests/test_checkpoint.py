"""Tests for machine checkpoint/restore."""

import numpy as np
import pytest

import os

from repro.core.checkpoint import load_checkpoint, save_checkpoint
from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.util.errors import CheckpointError


@pytest.fixture()
def short_run_machine():
    system, _ = build_dataset((3, 3, 3), particles_per_cell=8, seed=6)
    machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
    machine.run(5, record_every=5)
    return machine


def test_roundtrip_state_identical(short_run_machine, tmp_path):
    machine = short_run_machine
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(machine, path)
    restored, step = load_checkpoint(path)
    assert step == 5
    np.testing.assert_array_equal(restored.system.positions, machine.system.positions)
    np.testing.assert_array_equal(restored.velocities, machine.velocities)
    np.testing.assert_array_equal(restored.forces, machine.forces)
    assert restored.config == machine.config


def test_restored_trajectory_continues_identically(short_run_machine, tmp_path):
    """The acid test: restore must be bit-transparent to the dynamics."""
    machine = short_run_machine
    path = str(tmp_path / "ckpt.npz")
    save_checkpoint(machine, path)
    restored, _ = load_checkpoint(path)
    machine.run(5, record_every=0)
    restored.run(5, record_every=0)
    np.testing.assert_array_equal(
        restored.system.positions, machine.system.positions
    )
    np.testing.assert_array_equal(restored.velocities, machine.velocities)


def test_charged_machine_roundtrip(tmp_path):
    system, _ = build_dataset(
        (3, 3, 3), particles_per_cell=8, species=("Na", "Cl"),
        charged=True, min_distance=2.4, seed=7,
    )
    cfg = MachineConfig((3, 3, 3), force_model="lj+coulomb", dt_fs=0.5)
    machine = FasdaMachine(cfg, system=system)
    machine.run(3, record_every=0)
    path = str(tmp_path / "salt.npz")
    save_checkpoint(machine, path)
    restored, _ = load_checkpoint(path)
    assert restored.config.force_model == "lj+coulomb"
    np.testing.assert_array_equal(restored.system.charges, machine.system.charges)
    machine.run(3, record_every=0)
    restored.run(3, record_every=0)
    np.testing.assert_array_equal(restored.velocities, machine.velocities)


def test_unprimed_machine_roundtrip(tmp_path):
    system, _ = build_dataset((3, 3, 3), particles_per_cell=4, seed=8)
    machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
    path = str(tmp_path / "fresh.npz")
    save_checkpoint(machine, path)
    restored, step = load_checkpoint(path)
    assert step == 0
    assert not restored._primed


def test_bad_file_rejected(tmp_path):
    path = str(tmp_path / "bogus.npz")
    np.savez(path, format=np.array("something-else"), x=np.zeros(3))
    with pytest.raises(CheckpointError, match="not a FASDA checkpoint"):
        load_checkpoint(path)


def test_truncated_file_rejected(short_run_machine, tmp_path):
    path = save_checkpoint(short_run_machine, str(tmp_path / "trunc.npz"))
    raw = open(path, "rb").read()
    open(path, "wb").write(raw[: len(raw) // 2])
    with pytest.raises(CheckpointError, match="corrupt or unreadable"):
        load_checkpoint(path)


def test_bit_flipped_file_rejected(short_run_machine, tmp_path):
    """A single flipped payload bit fails the zip CRC with a clear error."""
    path = save_checkpoint(short_run_machine, str(tmp_path / "flip.npz"))
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointError, match=r"corrupt or unreadable.*flip"):
        load_checkpoint(path)


def test_non_roundtripping_config_rejected(short_run_machine, tmp_path):
    import dataclasses
    import json

    path = save_checkpoint(short_run_machine, str(tmp_path / "cfg.npz"))
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files}
    cfg = json.loads(str(arrays["config"]))
    cfg["no_such_field"] = 1
    arrays["config"] = np.array(json.dumps(cfg))
    np.savez(path, **arrays)
    with pytest.raises(CheckpointError, match="does not reconstruct"):
        load_checkpoint(path)


def test_save_is_atomic_no_tmp_leftovers(short_run_machine, tmp_path):
    """Overwriting an existing checkpoint never leaves a torn/partial file."""
    path = str(tmp_path / "atomic.npz")
    first = save_checkpoint(short_run_machine, path)
    short_run_machine.run(2)
    second = save_checkpoint(short_run_machine, path)
    assert first == second == path
    assert [f for f in os.listdir(tmp_path) if ".tmp." in f] == []
    restored, step = load_checkpoint(path)
    assert step == 7
    np.testing.assert_array_equal(
        restored.system.positions, short_run_machine.system.positions
    )


def test_suffix_appended_like_np_savez(short_run_machine, tmp_path):
    path = save_checkpoint(short_run_machine, str(tmp_path / "noext"))
    assert path.endswith("noext.npz")
    load_checkpoint(path)

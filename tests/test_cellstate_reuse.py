"""Bitwise equivalence of the step-persistent cell state (PR: reuse).

The amortization contract: with ``reuse_state`` on, every layer
(ReferenceEngine, FasdaMachine, DistributedMachine) must produce the
*same trajectory bit for bit* as the rebuild-every-step oracle — the
persistent :class:`~repro.md.cellstate.CellState` is a pure evaluation
shortcut, never an approximation.  These tests run the reuse path and
the oracle side by side for 50+ steps and compare positions, velocities,
and forces exactly, including under a forced mid-run rebuild (a kicked
particle) and under fault injection on the distributed machine.
"""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.faults import FaultInjector, FaultPlan, TransportConfig
from repro.md.dataset import build_dataset
from repro.md.engine import ReferenceEngine


def _machine_pair(dims=(4, 4, 4), ppc=16, seed=11):
    system, _ = build_dataset(dims, particles_per_cell=ppc, seed=seed)
    oracle = FasdaMachine(MachineConfig(dims), system=system.copy())
    reuse = FasdaMachine(MachineConfig(dims), system=system.copy())
    reuse.reuse_state = True
    return oracle, reuse


class TestMachineReuseBitwise:
    def test_50_step_trajectory_bitwise(self):
        oracle, reuse = _machine_pair()
        for _ in range(50):
            pa = oracle.step(collect_traffic=True)
            pb = reuse.step(collect_traffic=True)
            assert pa == pb
        assert np.array_equal(oracle.system.positions, reuse.system.positions)
        assert np.array_equal(oracle.system.velocities, reuse.system.velocities)
        assert np.array_equal(oracle.forces, reuse.forces)
        sa, sb = oracle.last_stats, reuse.last_stats
        assert sa.potential_energy == sb.potential_energy
        # The whole point: most steps must have reused the state.
        assert sb.state_builds is not None
        assert sb.state_builds < 50

    def test_forced_midrun_rebuild_stays_bitwise(self):
        """A particle kicked past skin/2 forces a rebuild; the reuse
        trajectory must absorb it and stay bitwise equal."""
        oracle, reuse = _machine_pair(seed=3)
        for _ in range(5):
            oracle.step(collect_traffic=True)
            reuse.step(collect_traffic=True)
        builds_before = reuse.last_stats.state_builds
        kick = np.array([0.3 * oracle.grid.cell_edge, 0.0, 0.0])
        for m in (oracle, reuse):
            m.system.positions[0] += kick
            m.system.wrap()
        for _ in range(5):
            pa = oracle.step(collect_traffic=True)
            pb = reuse.step(collect_traffic=True)
            assert pa == pb
        assert np.array_equal(oracle.system.positions, reuse.system.positions)
        assert np.array_equal(oracle.forces, reuse.forces)
        assert reuse.last_stats.state_builds > builds_before

    def test_stats_and_traffic_match(self):
        oracle, reuse = _machine_pair(seed=19)
        sa = oracle.compute_forces(collect_traffic=True)
        sb = reuse.compute_forces(collect_traffic=True)
        sb2 = reuse.compute_forces(collect_traffic=True)  # pure-reuse pass
        for stats in (sb, sb2):
            assert stats.potential_energy == sa.potential_energy
            assert np.array_equal(
                stats.accepted_per_cell, sa.accepted_per_cell
            )
            assert stats.position_records == sa.position_records
        assert sb2.state_reused is True


class TestEngineReuseBitwise:
    def test_50_step_trajectory_bitwise(self):
        system, grid = build_dataset((4, 4, 4), particles_per_cell=16, seed=7)
        oracle = ReferenceEngine(system=system.copy(), grid=grid)
        reuse = ReferenceEngine(
            system=system.copy(), grid=grid, reuse_state=True
        )
        oracle.run(50)
        reuse.run(50)
        assert np.array_equal(oracle.system.positions, reuse.system.positions)
        assert np.array_equal(
            oracle.system.velocities, reuse.system.velocities
        )
        assert np.array_equal(oracle.system.forces, reuse.system.forces)
        # Energies are round-off-equal only: the per-offset sums run
        # over differently sized candidate arrays (see reference.py).
        for ra, rb in zip(oracle.history, reuse.history):
            assert rb.potential == pytest.approx(ra.potential, rel=1e-12)
        assert 1 <= reuse.state_builds < 50
        assert oracle.state_builds == 0

    def test_run_primes_force_fn_once(self, monkeypatch):
        """Regression: priming used to evaluate the same configuration
        twice (potential_energy() then run()'s own prime)."""
        import repro.md.engine as engine_mod

        calls = {"n": 0}
        real = engine_mod.compute_forces_cells

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "compute_forces_cells", counting)
        system, grid = build_dataset((3, 3, 3), particles_per_cell=8, seed=3)
        eng = ReferenceEngine(system=system, grid=grid)
        eng.potential_energy()
        eng.run(3)
        # 1 priming pass + 3 step passes; historically this was 5.
        assert calls["n"] == 4


def _distributed_pair(seed=5, **kwargs):
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=seed)
    oracle = DistributedMachine(cfg, system=system.copy(), **kwargs)
    reuse = DistributedMachine(cfg, system=system.copy(), **kwargs)
    reuse.reuse_state = True
    return oracle, reuse


class TestDistributedReuseBitwise:
    def test_50_step_trajectory_bitwise(self):
        oracle, reuse = _distributed_pair()
        recs_a = oracle.run(50, record_every=10)
        recs_b = reuse.run(50, record_every=10)
        for ra, rb in zip(recs_a, recs_b):
            assert ra.potential == rb.potential
            assert ra.kinetic == rb.kinetic
        assert np.array_equal(oracle.system.positions, reuse.system.positions)
        assert np.array_equal(oracle.forces, reuse.forces)
        assert oracle.total_position_packets == reuse.total_position_packets
        assert reuse.state_builds >= 1
        assert reuse.state_reused_steps > reuse.state_builds

    def test_fault_injection_composes_bitwise(self):
        """Reuse must not change which packets exist, so the seeded
        fault stream (drops, retransmissions, degradations) and the
        degraded trajectory stay identical."""

        def fault_kwargs():
            return dict(
                injector=FaultInjector(FaultPlan(seed=5, drop_rate=0.05)),
                transport=TransportConfig(retry_budget=2),
                degradation="stale",
            )

        oracle, reuse = _distributed_pair(seed=5, **fault_kwargs())
        oracle.run(15)
        reuse.run(15)
        assert np.array_equal(oracle.system.positions, reuse.system.positions)
        assert np.array_equal(oracle.forces, reuse.forces)
        assert len(oracle.degradation_log) == len(reuse.degradation_log)
        assert oracle.transport_stats == reuse.transport_stats

"""Tests for the FPGA resource model (Table 1)."""

import pytest

from repro.core.config import (
    MachineConfig,
    strong_scaling_configs,
    weak_scaling_configs,
)
from repro.core.resources import (
    PAPER_TABLE1,
    U280,
    comm_neighbor_count,
    estimate_resources,
)


@pytest.fixture(scope="module")
def model_table():
    configs = {**weak_scaling_configs(), **strong_scaling_configs()}
    return {
        name: estimate_resources(cfg).utilization_percent()
        for name, cfg in configs.items()
    }


class TestAgainstPaperTable1:
    @pytest.mark.parametrize("resource,tolerance", [
        ("lut", 2.0), ("ff", 1.0), ("dsp", 1.0), ("bram", 15.0), ("uram", 7.0),
    ])
    def test_within_tolerance(self, model_table, resource, tolerance):
        """LUT/FF/DSP reproduce Table 1 tightly; BRAM/URAM within the
        noise of the paper's own BRAM<->URAM rebalancing (Sec. 5.5)."""
        for name, paper in PAPER_TABLE1.items():
            model = model_table[name][resource]
            assert abs(model - paper[resource]) <= tolerance, (
                f"{name} {resource}: model {model:.1f} vs paper {paper[resource]}"
            )

    def test_strong_scaling_monotone_in_pes(self, model_table):
        """A < B < C on every resource (more PEs cost more)."""
        for res in ("lut", "ff", "bram", "dsp"):
            a = model_table["4x4x4-A"][res]
            b = model_table["4x4x4-B"][res]
            c = model_table["4x4x4-C"][res]
            assert a < b < c, res

    def test_distributed_costs_more_than_single(self, model_table):
        """3x3x3 -> 6x3x3 keeps the per-node design but adds remote-data
        handling (paper: 'significant change in design required')."""
        for res in ("lut", "ff", "bram", "uram"):
            assert model_table["6x3x3"][res] > model_table["3x3x3"][res], res

    def test_everything_fits_the_device(self, model_table):
        for name, util in model_table.items():
            for res, pct in util.items():
                assert pct < 100.0, f"{name} {res} over capacity"


class TestMechanics:
    def test_fits_with_margin(self):
        usage = estimate_resources(MachineConfig((4, 4, 4), (2, 2, 2)))
        assert usage.fits()
        assert usage.fits(margin=0.9)

    def test_capacities_are_u280(self):
        assert U280["dsp"] == 9024
        assert U280["bram"] == 2016
        assert U280["uram"] == 960

    def test_utilization_percent_keys(self):
        u = estimate_resources(MachineConfig((3, 3, 3))).utilization_percent()
        assert set(u) == {"lut", "ff", "bram", "uram", "dsp"}


class TestCommNeighborCount:
    def test_single_node_zero(self):
        assert comm_neighbor_count(MachineConfig((3, 3, 3))) == 0

    def test_two_nodes_one_neighbor(self):
        assert comm_neighbor_count(MachineConfig((6, 3, 3), (2, 1, 1))) == 1

    def test_four_nodes_three_neighbors(self):
        """(2,2,1) grid: two face + one diagonal partner."""
        assert comm_neighbor_count(MachineConfig((6, 6, 3), (2, 2, 1))) == 3

    def test_eight_nodes_seven_neighbors(self):
        """(2,2,2) grid: every other node is a halo partner, as Fig. 18(B)
        shows traffic to all seven."""
        assert comm_neighbor_count(MachineConfig((6, 6, 6), (2, 2, 2))) == 7

    def test_large_grid_26_neighbors(self):
        """A 4x4x4 FPGA grid gives the full 26-neighborhood."""
        assert comm_neighbor_count(MachineConfig((8, 8, 8), (4, 4, 4))) == 26

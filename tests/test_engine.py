"""Tests for the double-precision reference engine."""

import numpy as np
import pytest

from repro.md import CellGrid, ReferenceEngine, build_dataset
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def small_run():
    """A short shared run on a small, cooler system."""
    sys_, grid = build_dataset((3, 3, 3), particles_per_cell=16, temperature_k=100.0, seed=1)
    engine = ReferenceEngine(sys_, grid, dt_fs=2.0)
    records = engine.run(60, record_every=10)
    return engine, records


def test_grid_box_mismatch_rejected():
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=8, seed=0)
    with pytest.raises(ValidationError):
        ReferenceEngine(sys_, CellGrid((4, 4, 4), 8.5))


def test_negative_steps_rejected():
    sys_, grid = build_dataset((3, 3, 3), particles_per_cell=8, seed=0)
    with pytest.raises(ValidationError):
        ReferenceEngine(sys_, grid).run(-1)


def test_history_recording(small_run):
    engine, records = small_run
    # Initial record (step 0) plus one per record_every.
    assert [r.step for r in records] == [0, 10, 20, 30, 40, 50, 60]
    assert engine.history == records


def test_energy_conservation(small_run):
    _, records = small_run
    e0 = records[0].total
    for rec in records:
        assert abs(rec.total - e0) / abs(e0) < 5e-3


def test_total_is_kinetic_plus_potential(small_run):
    _, records = small_run
    for rec in records:
        assert rec.total == rec.kinetic + rec.potential


def test_run_continues_without_repriming(small_run):
    engine, records = small_run
    more = engine.run(10, record_every=10, start_step=60)
    assert [r.step for r in more] == [70]
    assert abs(more[0].total - records[0].total) / abs(records[0].total) < 5e-3


def test_positions_stay_wrapped(small_run):
    engine, _ = small_run
    assert np.all(engine.system.positions >= 0.0)
    assert np.all(engine.system.positions < engine.system.box)


def test_potential_energy_query_is_pure():
    sys_, grid = build_dataset((3, 3, 3), particles_per_cell=8, seed=2)
    engine = ReferenceEngine(sys_, grid)
    before = sys_.positions.copy()
    engine.potential_energy()
    np.testing.assert_array_equal(sys_.positions, before)

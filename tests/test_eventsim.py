"""Tests for the discrete-event kernel and message network."""

import pytest

from repro.eventsim import EventSimulator, Message, MessageNetwork, NodeProcess
from repro.util.errors import SimulationError, ValidationError


class TestEventSimulator:
    def test_events_fire_in_time_order(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = EventSimulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            EventSimulator().schedule(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(10.0, fired.append, "b")
        sim.run(until=5.0)
        assert fired == ["a"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["a", "b"]

    def test_nested_scheduling(self):
        sim = EventSimulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            fired.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_livelock_detection(self):
        sim = EventSimulator()

        def forever():
            sim.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="budget"):
            sim.run(max_events=1000)

    def test_schedule_at_absolute(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [5.0]

    def test_events_processed_counter(self):
        sim = EventSimulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_peek(self):
        sim = EventSimulator()
        assert sim.peek() is None
        sim.schedule(4.0, lambda: None)
        assert sim.peek() == 4.0

    def test_schedule_at_past_rejected(self):
        sim = EventSimulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(ValidationError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_many_matches_per_event_order(self):
        """Bulk insert fires in exactly the order per-event schedule
        calls would: by time, then by submission order on ties."""
        events = [(2.0, "b1"), (1.0, "a"), (2.0, "b2"), (0.5, "z"), (2.0, "b3")]
        fired_one, fired_many = [], []
        sim1 = EventSimulator()
        for delay, tag in events:
            sim1.schedule(delay, fired_one.append, tag)
        sim1.run()
        sim2 = EventSimulator()
        sim2.schedule_many(
            [(delay, fired_many.append, (tag,)) for delay, tag in events]
        )
        sim2.run()
        assert fired_many == fired_one == ["z", "a", "b1", "b2", "b3"]

    def test_schedule_many_interleaves_with_schedule(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(1.5, fired.append, "mid")
        sim.schedule_many([(1.0, fired.append, ("early",)), (2.0, fired.append, ("late",))])
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_schedule_many_small_batch_on_big_heap(self):
        # Exercises the push (non-heapify) branch.
        sim = EventSimulator()
        for i in range(50):
            sim.schedule(float(i + 10), lambda: None)
        fired = []
        sim.schedule_many([(1.0, fired.append, ("x",))])
        sim.run(until=5.0)
        assert fired == ["x"]

    def test_schedule_many_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValidationError):
            sim.schedule_many([(-1.0, lambda: None, ())])

    def test_schedule_many_empty_noop(self):
        sim = EventSimulator()
        sim.schedule_many([])
        assert sim.peek() is None


class _Echo(NodeProcess):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_message(self, msg):
        self.received.append((msg.kind, msg.src, self.sim.now))
        if msg.kind == "ping":
            self.send(msg.src, "pong")


class TestMessageNetwork:
    def test_delivery_with_latency(self):
        sim = EventSimulator()
        net = MessageNetwork(sim, default_latency=3.0)
        a, b = _Echo(0), _Echo(1)
        net.attach(a)
        net.attach(b)
        sim.schedule(0.0, lambda: a.send(1, "ping"))
        sim.run()
        assert b.received == [("ping", 0, 3.0)]
        assert a.received == [("pong", 1, 6.0)]

    def test_duplicate_node_rejected(self):
        sim = EventSimulator()
        net = MessageNetwork(sim)
        net.attach(_Echo(0))
        with pytest.raises(ValidationError):
            net.attach(_Echo(0))

    def test_unknown_destination_rejected(self):
        sim = EventSimulator()
        net = MessageNetwork(sim)
        a = _Echo(0)
        net.attach(a)
        with pytest.raises(ValidationError):
            a.send(9, "ping")

    def test_message_counts(self):
        sim = EventSimulator()
        net = MessageNetwork(sim, default_latency=1.0)
        a, b = _Echo(0), _Echo(1)
        net.attach(a)
        net.attach(b)
        sim.schedule(0.0, lambda: a.send(1, "ping"))
        sim.run()
        assert net.message_counts[(0, 1)] == 1
        assert net.message_counts[(1, 0)] == 1

    def test_per_link_latency_fn(self):
        sim = EventSimulator()
        net = MessageNetwork(sim, latency_fn=lambda s, d: 10.0 if d == 1 else 1.0)
        a, b = _Echo(0), _Echo(1)
        net.attach(a)
        net.attach(b)
        sim.schedule(0.0, lambda: a.send(1, "ping"))
        sim.run()
        assert b.received[0][2] == 10.0
        assert a.received[0][2] == 11.0

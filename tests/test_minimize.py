"""Tests for steepest-descent energy minimization."""

import numpy as np
import pytest

from repro.md import CellGrid, LJTable, ParticleSystem, build_dataset
from repro.md.forcefield import LennardJonesKernel
from repro.md.minimize import minimize
from repro.util.errors import ValidationError


class TestTwoParticles:
    def test_relaxes_to_lj_minimum(self):
        """Two Na atoms relax to r = 2^(1/6) sigma."""
        grid = CellGrid((3, 3, 3), 8.5)
        lj = LJTable(("Na",))
        pos = np.array([[10.0, 10.0, 10.0], [12.2, 10.0, 10.0]])
        s = ParticleSystem(
            positions=pos,
            velocities=np.zeros_like(pos),
            species=np.zeros(2, dtype=np.int32),
            lj_table=lj,
            box=grid.box,
        )
        result = minimize(
            s, grid, LennardJonesKernel(),
            max_iterations=500, force_tolerance=1e-4,
        )
        assert result.converged
        r = np.linalg.norm(s.positions[0] - s.positions[1])
        assert r == pytest.approx(2 ** (1 / 6) * 2.575, rel=1e-3)
        assert result.final_energy == pytest.approx(-lj.eps_ij[0, 0], rel=1e-3)


class TestDatasetRelaxation:
    def test_energy_decreases_monotonically_overall(self):
        system, grid = build_dataset((3, 3, 3), particles_per_cell=16, seed=5)
        result = minimize(system, grid, LennardJonesKernel(), max_iterations=50)
        assert result.final_energy < result.initial_energy
        assert result.energy_drop > 0

    def test_max_force_shrinks(self):
        system, grid = build_dataset((3, 3, 3), particles_per_cell=16, seed=6)
        from repro.md.forcefield import compute_forces_kernel

        f0, _ = compute_forces_kernel(system, grid, LennardJonesKernel())
        before = float(np.abs(f0).max())
        result = minimize(system, grid, LennardJonesKernel(), max_iterations=60)
        assert result.max_force < before

    def test_relaxed_start_conserves_energy_better(self):
        """The practical payoff: minimizing before NVE cuts the initial
        energy transient."""
        from repro.md import ReferenceEngine

        hot, grid = build_dataset((3, 3, 3), particles_per_cell=16, seed=7)
        cold = hot.copy()
        minimize(cold, grid, LennardJonesKernel(), max_iterations=80)

        def drift(system):
            engine = ReferenceEngine(system, grid, dt_fs=2.0)
            recs = engine.run(40, record_every=40)
            e0 = recs[0].total
            return max(abs(r.total - e0) / abs(e0) for r in recs)

        assert drift(cold) < drift(hot.copy())

    def test_positions_stay_in_box(self):
        system, grid = build_dataset((3, 3, 3), particles_per_cell=8, seed=8)
        minimize(system, grid, LennardJonesKernel(), max_iterations=30)
        assert np.all(system.positions >= 0)
        assert np.all(system.positions < system.box)


def test_validation():
    system, grid = build_dataset((3, 3, 3), particles_per_cell=2, seed=9)
    with pytest.raises(ValidationError):
        minimize(system, grid, LennardJonesKernel(), max_iterations=0)
    with pytest.raises(ValidationError):
        minimize(system, grid, LennardJonesKernel(), force_tolerance=-1.0)

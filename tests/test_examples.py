"""Smoke tests: the fast examples run end-to-end.

Only the quick examples run here (the full set is exercised manually /
in benchmarks); these guard against API drift breaking the documented
entry points.
"""

import os
import runpy

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, capsys):
    runpy.run_path(os.path.join(EXAMPLES, name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "simulation rate" in out
    assert "paper: ~2" in out


def test_straggler_resilience(capsys):
    out = run_example("straggler_resilience.py", capsys)
    assert "chained sync" in out
    assert "makespan" in out


def test_custom_cluster_design(capsys):
    out = run_example("custom_cluster_design.py", capsys)
    assert "chosen design" in out
    assert "OK" in out

"""Tests for thermostats and the equilibration helper."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md import ReferenceEngine, build_dataset
from repro.md.thermostat import (
    BerendsenThermostat,
    VelocityRescaleThermostat,
    equilibrate,
)
from repro.util.errors import ValidationError


class TestVelocityRescale:
    def test_hits_target_exactly(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=8, temperature_k=500.0, seed=1)
        VelocityRescaleThermostat(300.0).apply(s)
        assert s.temperature() == pytest.approx(300.0, rel=1e-10)

    def test_scale_factor_returned(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=8, temperature_k=1200.0, seed=2)
        scale = VelocityRescaleThermostat(300.0).apply(s)
        assert scale == pytest.approx(np.sqrt(300.0 / 1200.0), rel=0.1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            VelocityRescaleThermostat(0.0)

    def test_zero_velocity_noop(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=4, temperature_k=300.0, seed=3)
        s.velocities[:] = 0.0
        assert VelocityRescaleThermostat(300.0).apply(s) == 1.0


class TestBerendsen:
    def test_moves_toward_target(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=8, temperature_k=600.0, seed=4)
        t0 = s.temperature()
        BerendsenThermostat(300.0, tau_fs=100.0, dt_fs=10.0).apply(s)
        t1 = s.temperature()
        assert 300.0 < t1 < t0  # partial relaxation, not a jump

    def test_weak_coupling_is_gentle(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=8, temperature_k=600.0, seed=5)
        t0 = s.temperature()
        BerendsenThermostat(300.0, tau_fs=10_000.0, dt_fs=2.0).apply(s)
        assert abs(s.temperature() - t0) / t0 < 1e-3

    def test_exact_relaxation_fraction(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=8, temperature_k=600.0, seed=6)
        t0 = s.temperature()
        BerendsenThermostat(300.0, tau_fs=100.0, dt_fs=50.0).apply(s)
        expected = t0 * (1.0 + 0.5 * (300.0 / t0 - 1.0))
        assert s.temperature() == pytest.approx(expected, rel=1e-10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            BerendsenThermostat(300.0, tau_fs=1.0, dt_fs=2.0)  # dt > tau
        with pytest.raises(ValidationError):
            BerendsenThermostat(-1.0, 100.0, 2.0)


class TestEquilibrate:
    def test_reference_engine_cools_toward_target(self):
        s, grid = build_dataset((3, 3, 3), particles_per_cell=16, temperature_k=300.0, seed=7)
        engine = ReferenceEngine(s, grid, dt_fs=2.0)
        # The hot dataset heats up in NVE; the thermostat pins it back.
        t = equilibrate(engine, VelocityRescaleThermostat(300.0), n_steps=30, apply_every=5)
        assert t == pytest.approx(300.0, rel=0.15)

    def test_machine_velocity_cache_stays_consistent(self):
        s, _ = build_dataset((3, 3, 3), particles_per_cell=16, temperature_k=300.0, seed=8)
        machine = FasdaMachine(MachineConfig((3, 3, 3)), system=s)
        equilibrate(machine, VelocityRescaleThermostat(300.0), n_steps=10, apply_every=5)
        np.testing.assert_allclose(
            machine.system.velocities,
            machine._velocities32.astype(np.float64),
            rtol=1e-6,
        )

    def test_validation(self):
        s, grid = build_dataset((3, 3, 3), particles_per_cell=4, seed=9)
        engine = ReferenceEngine(s, grid)
        with pytest.raises(ValidationError):
            equilibrate(engine, VelocityRescaleThermostat(300.0), n_steps=-1)

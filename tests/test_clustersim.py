"""Tests for the cluster-level integration simulation."""

import pytest

from repro.core.clustersim import (
    format_phase_breakdown,
    simulate_cluster,
)
from repro.core.config import MachineConfig
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def measured():
    """Config + workload stats for an 8-node machine (reduced dataset)."""
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=13)
    stats = FasdaMachine(cfg, system=system).measure_workload()
    return cfg, stats


class TestSimulateCluster:
    def test_event_simulation_matches_analytic_model(self, measured):
        """The integration check: protocol dynamics reproduce the
        analytic cycles/iteration without jitter."""
        cfg, stats = measured
        trace = simulate_cluster(cfg, stats, n_iterations=6)
        assert trace.agreement == pytest.approx(1.0, rel=0.02)

    def test_jitter_slows_the_cluster(self, measured):
        """Random workload jitter costs throughput (max over nodes per
        hop), never gains it."""
        cfg, stats = measured
        clean = simulate_cluster(cfg, stats, n_iterations=8)
        noisy = simulate_cluster(cfg, stats, n_iterations=8, jitter_fraction=0.2, seed=3)
        assert (
            noisy.simulated_iteration_cycles
            > clean.simulated_iteration_cycles
        )

    def test_jitter_cost_bounded_by_worst_case(self, measured):
        """With +-20% jitter the slowdown stays below the 20% worst case
        (chained sync absorbs part of the variation)."""
        cfg, stats = measured
        noisy = simulate_cluster(
            cfg, stats, n_iterations=10, jitter_fraction=0.2, seed=5
        )
        assert noisy.agreement < 1.2

    def test_single_node_rejected(self):
        cfg = MachineConfig((3, 3, 3))
        system, _ = build_dataset((3, 3, 3), particles_per_cell=8, seed=1)
        stats = FasdaMachine(cfg, system=system).measure_workload()
        with pytest.raises(ValidationError):
            simulate_cluster(cfg, stats)

    def test_bad_jitter_rejected(self, measured):
        cfg, stats = measured
        with pytest.raises(ValidationError):
            simulate_cluster(cfg, stats, jitter_fraction=1.5)

    def test_deterministic_given_seed(self, measured):
        cfg, stats = measured
        a = simulate_cluster(cfg, stats, n_iterations=4, jitter_fraction=0.1, seed=7)
        b = simulate_cluster(cfg, stats, n_iterations=4, jitter_fraction=0.1, seed=7)
        assert a.simulated_iteration_cycles == b.simulated_iteration_cycles


class TestPhaseBreakdown:
    def test_format(self, measured):
        cfg, stats = measured
        perf = estimate_performance(cfg, stats)
        txt = format_phase_breakdown(perf)
        assert txt.startswith("|")
        assert "F=force" in txt and "S=sync" in txt and "M=mu" in txt

    def test_force_dominates(self, measured):
        cfg, stats = measured
        perf = estimate_performance(cfg, stats)
        txt = format_phase_breakdown(perf)
        bar = txt.split("|")[1]
        assert bar.count("F") > bar.count("S") + bar.count("M")

"""Campaign journaling, kill-and-resume, and per-point retries.

The crashing/flaky workers communicate through filesystem side channels
whose paths travel via environment variables — *not* via point params —
so the journaled payloads stay byte-identical between the killed run and
the resumed run (the identity the resume contract is about).
"""

import json
import os
import signal

import pytest

from repro.harness.campaign import (
    CampaignPoint,
    load_journal,
    point,
    point_fingerprint,
    run_campaign,
    run_default_campaign,
)
from repro.util.errors import CampaignError, ValidationError

from repro.harness.campaign import register_worker


@register_worker("resume_marker")
def _marker_worker(seed, x=0):
    path = os.environ.get("RESUME_MARKER_DIR")
    if path:
        open(os.path.join(path, f"executed-{x}-{os.getpid()}"), "w").write("")
    return {"val": seed + x}


@register_worker("resume_kaboom")
def _kaboom_worker(seed):
    sentinel = os.environ["RESUME_KABOOM_SENTINEL"]
    if not os.path.exists(sentinel):
        open(sentinel, "w").write("armed")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"val": seed * 2}


@register_worker("resume_flaky")
def _flaky_worker(seed):
    sentinel = os.environ["RESUME_FLAKY_SENTINEL"]
    if not os.path.exists(sentinel):
        open(sentinel, "w").write("armed")
        raise RuntimeError("transient worker failure")
    return {"val": seed + 100}


def _points(n=4):
    return [
        point("resume_marker", seed=1, label=f"m{i}", x=i) for i in range(n)
    ]


class TestJournal:
    def test_journal_records_every_point(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        result = run_campaign(_points(), journal=journal)
        entries = load_journal(journal)
        assert len(entries) == 4
        keys = {point_fingerprint(p) for p in result.points}
        assert set(entries) == keys
        for entry in entries.values():
            assert entry["payload"]["result"]["val"] == 1 + entry["payload"]["params"]["x"]

    def test_fingerprint_changes_with_params(self):
        a = point("resume_marker", seed=1, label="a", x=1)
        b = point("resume_marker", seed=1, label="a", x=2)
        c = point("resume_marker", seed=2, label="a", x=1)
        assert len({point_fingerprint(p) for p in (a, b, c)}) == 3

    def test_torn_tail_tolerated(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_campaign(_points(), journal=journal)
        with open(journal, "a") as fh:
            fh.write('{"key": "torn, never flu')
        assert len(load_journal(journal)) == 4


class TestResume:
    def test_full_resume_executes_nothing(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        journal = str(tmp_path / "run.jsonl")
        first = run_campaign(_points(), journal=journal)
        monkeypatch.setenv("RESUME_MARKER_DIR", str(marker_dir))
        resumed = run_campaign(_points(), resume=journal)
        assert resumed.n_resumed == 4
        assert list(marker_dir.iterdir()) == []  # no point executed twice
        assert resumed.deterministic() == first.deterministic()

    def test_partial_resume_executes_only_remainder(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        full = str(tmp_path / "full.jsonl")
        first = run_campaign(_points(), journal=full)
        # Simulate a run killed after two completions.
        partial = str(tmp_path / "partial.jsonl")
        lines = open(full).read().splitlines()
        open(partial, "w").write("\n".join(lines[:2]) + "\n")
        monkeypatch.setenv("RESUME_MARKER_DIR", str(marker_dir))
        resumed = run_campaign(_points(), resume=partial, journal=partial)
        assert resumed.n_resumed == 2
        assert len(list(marker_dir.iterdir())) == 2
        assert resumed.deterministic() == first.deterministic()
        # The journal is now complete: a second resume executes nothing.
        for f in marker_dir.iterdir():
            f.unlink()
        again = run_campaign(_points(), resume=partial)
        assert again.n_resumed == 4
        assert list(marker_dir.iterdir()) == []

    def test_resume_into_fresh_journal_carries_entries(self, tmp_path):
        old = str(tmp_path / "old.jsonl")
        run_campaign(_points(), journal=old)
        new = str(tmp_path / "new.jsonl")
        run_campaign(_points(), resume=old, journal=new)
        assert set(load_journal(new)) == set(load_journal(old))

    def test_edited_point_reruns(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_campaign(_points(), journal=journal)
        edited = _points()
        edited[0] = point("resume_marker", seed=99, label="m0", x=0)
        resumed = run_campaign(edited, resume=journal)
        assert resumed.n_resumed == 3
        assert resumed.merged()["m0"]["result"]["val"] == 99


class TestRetries:
    def test_serial_failure_without_retries_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "RESUME_FLAKY_SENTINEL", str(tmp_path / "flaky.sentinel")
        )
        with pytest.raises(CampaignError, match="failed after 1 attempt"):
            run_campaign([point("resume_flaky", seed=3, label="fl")])

    def test_serial_retry_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "RESUME_FLAKY_SENTINEL", str(tmp_path / "flaky.sentinel")
        )
        result = run_campaign(
            [point("resume_flaky", seed=3, label="fl")],
            retries=1, retry_backoff_s=0.001,
        )
        assert result.results[0]["result"]["val"] == 103

    def test_negative_retries_rejected(self):
        with pytest.raises(ValidationError):
            run_campaign(_points(1), retries=-1)


class TestParallelKillAndResume:
    def test_sigkilled_child_retried_and_identical_to_serial(
        self, tmp_path, monkeypatch
    ):
        """A SIGKILLed pool child breaks the pool; retry must rebuild it."""
        monkeypatch.setenv(
            "RESUME_KABOOM_SENTINEL", str(tmp_path / "kaboom.sentinel")
        )
        pts = [point("resume_kaboom", seed=5, label="kb")] + _points()
        journal = str(tmp_path / "run.jsonl")
        par = run_campaign(
            pts, parallel=True, max_workers=2, journal=journal,
            retries=2, retry_backoff_s=0.001,
        )
        assert par.merged()["kb"]["result"]["val"] == 10
        ser = run_campaign(pts)  # sentinel now armed: serial is clean
        assert par.deterministic() == ser.deterministic()
        assert len(load_journal(journal)) == len(pts)

    def test_killed_run_resumes_to_identical_result(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "RESUME_KABOOM_SENTINEL", str(tmp_path / "kaboom.sentinel")
        )
        pts = [point("resume_kaboom", seed=5, label="kb")] + _points()
        full = str(tmp_path / "full.jsonl")
        uninterrupted = run_campaign(
            pts, parallel=True, max_workers=2, journal=full,
            retries=2, retry_backoff_s=0.001,
        )
        # A journal truncated mid-run stands in for the killed process.
        partial = str(tmp_path / "partial.jsonl")
        lines = open(full).read().splitlines()
        open(partial, "w").write("\n".join(lines[:3]) + "\n")
        resumed = run_campaign(
            pts, parallel=True, max_workers=2, resume=partial,
            retries=2, retry_backoff_s=0.001,
        )
        assert resumed.n_resumed == 3
        assert resumed.deterministic() == uninterrupted.deterministic()

    def test_kill_without_retries_raises(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "RESUME_KABOOM_SENTINEL", str(tmp_path / "kaboom.sentinel")
        )
        pts = [point("resume_kaboom", seed=5, label="kb"),
               point("resume_marker", seed=1, label="m0", x=0)]
        with pytest.raises(CampaignError, match="failed after"):
            run_campaign(pts, parallel=True, max_workers=2,
                         retry_backoff_s=0.001)


class TestDefaultCampaignResume:
    def test_resumed_default_campaign_matches(self, tmp_path):
        """BENCH_campaign kill-and-resume smoke at tiny scale."""
        journal = str(tmp_path / "bench.jsonl")
        kwargs = dict(
            seed=3, steps=2, dims=(3, 3, 3), compare_serial=False,
            max_workers=2,
        )
        fresh = run_default_campaign(journal=journal, **kwargs)
        partial = str(tmp_path / "partial.jsonl")
        lines = open(journal).read().splitlines()
        open(partial, "w").write("\n".join(lines[: len(lines) // 2]) + "\n")
        resumed = run_default_campaign(resume=partial, **kwargs)
        assert resumed["n_resumed"] == len(lines) // 2

        def strip(doc):
            """The deterministic BENCH_campaign content, JSON-normalized.

            Resumed payloads have been through the JSONL journal (tuples
            become lists), so the identity that matters — byte-identical
            written documents — is over the JSON form.
            """
            pts = {}
            for label, payload in doc["points"].items():
                res = {
                    k: v for k, v in payload["result"].items() if k != "timing"
                }
                pts[label] = {**payload, "result": res}
            return json.loads(json.dumps(pts, sort_keys=True))

        assert strip(resumed) == strip(fresh)

"""Tests for the host control plane (artifact workflow model)."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.host import AxiLiteRegisters, ClusterController
from repro.host.registers import REGISTER_MAP
from repro.util.errors import ConfigError, ValidationError


class TestAxiLiteRegisters:
    def test_all_registers_start_zero(self):
        regs = AxiLiteRegisters()
        for name in REGISTER_MAP:
            assert regs.read(name) == 0

    def test_write_read(self):
        regs = AxiLiteRegisters()
        regs.write("PE_cycle_cnt", 12345)
        assert regs.read("PE_cycle_cnt") == 12345

    def test_read_by_offset(self):
        regs = AxiLiteRegisters()
        regs.write("operation_cycle_cnt", 999)
        assert regs.read_offset(REGISTER_MAP["operation_cycle_cnt"]) == 999

    def test_bad_offset_rejected(self):
        with pytest.raises(ValidationError):
            AxiLiteRegisters().read_offset(99)

    def test_unknown_register_rejected(self):
        regs = AxiLiteRegisters()
        with pytest.raises(ValidationError):
            regs.read("bogus")
        with pytest.raises(ValidationError):
            regs.write("bogus", 1)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            AxiLiteRegisters().write("PE_cycle_cnt", -1)

    def test_saturating_accumulate(self):
        regs = AxiLiteRegisters()
        regs.write("iteration_cnt", (1 << 64) - 10)
        regs.accumulate("iteration_cnt", 100)
        assert regs.read("iteration_cnt") == (1 << 64) - 1

    def test_reset(self):
        regs = AxiLiteRegisters()
        regs.write("PE_cycle_cnt", 5)
        regs.reset()
        assert regs.read("PE_cycle_cnt") == 0

    def test_dump_and_iter(self):
        regs = AxiLiteRegisters()
        regs.write("pair_accepted", 7)
        assert regs.dump()["pair_accepted"] == 7
        assert dict(regs)["pair_accepted"] == 7


@pytest.fixture(scope="module")
def cluster_report():
    """A short distributed run shared across tests."""
    from repro.md import build_dataset

    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    controller = ClusterController(cfg, seed=5)
    controller.configure_all()
    # Shrink the dataset for speed: rebuild the machine on fewer particles.
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=5)
    from repro.core.machine import FasdaMachine

    controller._machine = FasdaMachine(cfg, system=system)
    report = controller.run(n_iterations=3, dump_group=0)
    return controller, report


class TestClusterController:
    def test_run_requires_configuration(self):
        controller = ClusterController(MachineConfig((3, 3, 3)))
        with pytest.raises(ConfigError, match="configure_all"):
            controller.run(1)

    def test_one_host_per_fpga(self, cluster_report):
        controller, _ = cluster_report
        assert len(controller.hosts) == 8

    def test_scheduler_address_format(self):
        controller = ClusterController(MachineConfig((3, 3, 3)))
        assert controller.scheduler_address.startswith("tcp://")

    def test_register_dumps_per_node(self, cluster_report):
        _, report = cluster_report
        assert set(report.register_dumps) == set(range(8))
        for dump in report.register_dumps.values():
            assert dump["iteration_cnt"] == 3
            assert dump["operation_cycle_cnt"] > 0
            assert dump["PE_cycle_cnt"] <= dump["operation_cycle_cnt"]
            assert dump["MU_cycle_cnt"] < dump["PE_cycle_cnt"]

    def test_traffic_registers_populated(self, cluster_report):
        _, report = cluster_report
        assert report.total_packets("pos", "out") > 0
        assert report.total_packets("frc", "out") > 0
        # Conservation: packets sent = packets received cluster-wide.
        assert report.total_packets("pos", "out") == report.total_packets("pos", "in")
        assert report.total_packets("frc", "out") == report.total_packets("frc", "in")

    def test_rate_conversion_matches_cycle_model(self, cluster_report):
        """The artifact's check: register cycles convert to the reported
        us/day rate."""
        controller, report = cluster_report
        from repro.core.cycles import estimate_performance

        stats = controller._machine.measure_workload()
        perf = estimate_performance(report.config, stats)
        assert report.rate_us_per_day() == pytest.approx(
            perf.rate_us_per_day, rel=0.05
        )

    def test_dump_group_returns_forces(self, cluster_report):
        _, report = cluster_report
        assert report.dump_forces is not None
        assert report.dump_forces.shape[1] == 3
        assert np.all(np.isfinite(report.dump_forces))

    def test_invalid_run_args(self, cluster_report):
        controller, _ = cluster_report
        with pytest.raises(ValidationError):
            controller.run(0)
        with pytest.raises(ValidationError):
            controller.run(1, dump_group=10_000)

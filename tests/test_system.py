"""Tests for the ParticleSystem state container."""

import numpy as np
import pytest

from repro.md import LJTable, ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import BOLTZMANN_KCAL_MOL_K


def make_system(n=8, box=20.0, seed=0):
    rng = np.random.default_rng(seed)
    lj = LJTable(("Na",))
    return ParticleSystem(
        positions=rng.uniform(0, box, size=(n, 3)),
        velocities=rng.normal(scale=1e-3, size=(n, 3)),
        species=np.zeros(n, dtype=np.int32),
        lj_table=lj,
        box=np.full(3, box),
    )


def test_construction_and_defaults():
    s = make_system()
    assert s.n == 8
    assert s.forces.shape == (8, 3)
    np.testing.assert_array_equal(s.forces, 0.0)
    np.testing.assert_array_equal(s.masses, 22.98976928)


def test_positions_wrapped_on_construction():
    lj = LJTable(("Na",))
    s = ParticleSystem(
        positions=np.array([[25.0, -3.0, 5.0]]),
        velocities=np.zeros((1, 3)),
        species=np.zeros(1, dtype=np.int32),
        lj_table=lj,
        box=np.full(3, 10.0),
    )
    np.testing.assert_allclose(s.positions, [[5.0, 7.0, 5.0]])


@pytest.mark.parametrize(
    "field,value",
    [
        ("velocities", np.zeros((3, 3))),
        ("species", np.zeros(3, dtype=np.int32)),
    ],
)
def test_shape_mismatch_rejected(field, value):
    lj = LJTable(("Na",))
    kwargs = dict(
        positions=np.zeros((2, 3)),
        velocities=np.zeros((2, 3)),
        species=np.zeros(2, dtype=np.int32),
        lj_table=lj,
        box=np.full(3, 10.0),
    )
    kwargs[field] = value
    with pytest.raises(ValidationError):
        ParticleSystem(**kwargs)


def test_species_out_of_range_rejected():
    lj = LJTable(("Na",))
    with pytest.raises(ValidationError):
        ParticleSystem(
            positions=np.zeros((1, 3)),
            velocities=np.zeros((1, 3)),
            species=np.array([1], dtype=np.int32),
            lj_table=lj,
            box=np.full(3, 10.0),
        )


def test_bad_box_rejected():
    lj = LJTable(("Na",))
    with pytest.raises(ValidationError):
        ParticleSystem(
            positions=np.zeros((1, 3)),
            velocities=np.zeros((1, 3)),
            species=np.zeros(1, dtype=np.int32),
            lj_table=lj,
            box=np.array([10.0, -1.0, 10.0]),
        )


def test_kinetic_energy_known_value():
    """One Na at |v| = 1e-3 A/fs: KE = m v^2 / 2 converted to kcal/mol."""
    lj = LJTable(("Na",))
    s = ParticleSystem(
        positions=np.zeros((1, 3)),
        velocities=np.array([[1e-3, 0.0, 0.0]]),
        species=np.zeros(1, dtype=np.int32),
        lj_table=lj,
        box=np.full(3, 10.0),
    )
    expected = 0.5 * 22.98976928 * 1e-6 / 4.184e-4  # internal -> kcal/mol
    assert s.kinetic_energy() == pytest.approx(expected, rel=1e-3)


def test_temperature_definition():
    s = make_system(n=100, seed=3)
    t = s.temperature()
    expected = 2 * s.kinetic_energy() / (3 * s.n * BOLTZMANN_KCAL_MOL_K)
    assert t == pytest.approx(expected)


def test_remove_com_velocity():
    s = make_system(n=50, seed=5)
    s.remove_com_velocity()
    momentum = (s.masses[:, None] * s.velocities).sum(axis=0)
    np.testing.assert_allclose(momentum, 0.0, atol=1e-12)


def test_copy_is_independent():
    s = make_system()
    c = s.copy()
    c.positions += 1.0
    c.velocities += 1.0
    assert not np.allclose(c.positions, s.positions)
    assert not np.allclose(c.velocities, s.velocities)
    assert c.lj_table is s.lj_table  # immutable table is shared

"""Tests for shortest-path routing and link-load analysis."""

import numpy as np
import pytest

from repro.network.routing import (
    fasda_traffic_matrix,
    route_traffic,
    shortest_path,
)
from repro.network.topology import (
    HyperRingTopology,
    RingTopology,
    SwitchTopology,
    TorusTopology,
)
from repro.util.errors import ValidationError


class TestShortestPath:
    def test_trivial(self):
        assert shortest_path(RingTopology(6), 2, 2) == [2]

    def test_ring_path(self):
        path = shortest_path(RingTopology(6), 0, 2)
        assert path == [0, 1, 2]

    def test_ring_wraps(self):
        path = shortest_path(RingTopology(6), 0, 5)
        assert path == [0, 5]

    def test_path_length_matches_hop_distance(self):
        topo = TorusTopology((3, 3, 2))
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = rng.integers(0, topo.n_nodes, size=2)
            path = shortest_path(topo, int(a), int(b))
            assert len(path) - 1 == topo.hop_distance(int(a), int(b))
            # Consecutive path nodes are adjacent.
            for x, y in zip(path[:-1], path[1:]):
                assert y in topo.neighbors(x)


class TestRouteTraffic:
    def test_single_flow_loads_path_links(self):
        topo = RingTopology(6)
        report = route_traffic(topo, {(0, 2): 10.0})
        assert report.link_loads[(0, 1)] == 10.0
        assert report.link_loads[(1, 2)] == 10.0
        assert report.link_loads[(2, 3)] == 0.0
        assert report.total_traffic == 10.0

    def test_zero_and_self_flows_ignored(self):
        topo = RingTopology(4)
        report = route_traffic(topo, {(0, 0): 5.0, (0, 1): 0.0})
        assert report.total_traffic == 0.0
        assert report.max_link_load == 0.0

    def test_negative_volume_rejected(self):
        with pytest.raises(ValidationError):
            route_traffic(RingTopology(4), {(0, 1): -1.0})

    def test_switch_uplinks_charged(self):
        topo = SwitchTopology(4)
        report = route_traffic(topo, {(0, 1): 8.0})
        assert report.link_loads[(0, 0)] == 4.0
        assert report.link_loads[(1, 1)] == 4.0

    def test_imbalance_metric(self):
        topo = RingTopology(4)
        report = route_traffic(topo, {(0, 1): 4.0})
        assert report.max_link_load == 4.0
        assert report.load_imbalance == pytest.approx(4.0)  # 1 of 4 links


class TestFasdaPatternOnFabrics:
    """The paper's Sec. 4.1 argument, quantified: neighbor-dominated
    traffic keeps hyper-rings viable."""

    @pytest.fixture(scope="class")
    def traffic(self):
        """Measured position traffic of the 8-node 4x4x4 machine."""
        from repro.core.config import MachineConfig
        from repro.core.machine import FasdaMachine
        from repro.md import build_dataset

        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=4)
        stats = FasdaMachine(cfg, system=system).measure_workload()
        return fasda_traffic_matrix(cfg.fpga_grid, stats.position_records)

    def test_total_traffic_preserved(self, traffic):
        topo = TorusTopology((2, 2, 2))
        report = route_traffic(topo, traffic)
        assert report.total_traffic == sum(traffic.values())

    def test_hyper_ring_max_load_within_factor_of_torus(self, traffic):
        torus = route_traffic(TorusTopology((2, 2, 2)), traffic)
        hyper = route_traffic(
            HyperRingTopology(group_size=4, n_groups=2, order=2), traffic
        )
        # Fewer links concentrate load, but only by a small factor under
        # neighbor-dominated traffic (vs. the link-count savings).
        assert hyper.max_link_load < 4.0 * torus.max_link_load

    def test_neighbor_flows_dominate(self, traffic):
        """Volume between 1-hop torus neighbors exceeds corner flows."""
        torus = TorusTopology((2, 2, 2))
        near = sum(
            v for (s, d), v in traffic.items() if torus.hop_distance(s, d) == 1
        )
        far = sum(
            v for (s, d), v in traffic.items() if torus.hop_distance(s, d) == 3
        )
        assert near > far

"""Tests for the indexed linear-interpolation tables (paper Eqs. 8-10)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import ForceTableSet, InterpolationTable
from repro.arith.interp import section_bin_indices
from repro.util.errors import ValidationError


class TestSectionBinIndices:
    def test_section_edges(self):
        n_s, n_b = 8, 16
        # Left edge of section s is 2**(s - n_s).
        for s in range(n_s):
            r2 = np.array([2.0 ** (s - n_s)])
            si, bi = section_bin_indices(r2, n_s, n_b)
            assert si[0] == s
            assert bi[0] == 0

    def test_last_bin_of_section(self):
        n_s, n_b = 8, 16
        # Just below the right edge of section 3.
        r2 = np.array([2.0 ** (4 - n_s) * (1 - 1e-12)])
        si, bi = section_bin_indices(r2, n_s, n_b)
        assert si[0] == 3
        assert bi[0] == n_b - 1

    def test_cutoff_value_folds_into_last_bin(self):
        si, bi = section_bin_indices(np.array([1.0]), 8, 16)
        assert si[0] == 7
        assert bi[0] == 15

    def test_out_of_range_raises(self):
        with pytest.raises(ValidationError):
            section_bin_indices(np.array([2.0 ** -9]), 8, 16)
        with pytest.raises(ValidationError):
            section_bin_indices(np.array([1.5]), 8, 16)

    @given(st.floats(min_value=2.0 ** -14, max_value=1.0, exclude_max=True))
    @settings(max_examples=300, deadline=None)
    def test_indices_match_paper_formulas(self, r2):
        """Cross-check the frexp path against Eqs. 9-10 evaluated directly."""
        n_s, n_b = 14, 64
        si, bi = section_bin_indices(np.array([r2]), n_s, n_b)
        s_ref = int(np.floor(np.log2(r2))) + n_s
        # Guard against log2 landing exactly on an integer boundary from below.
        if 2.0 ** (s_ref - n_s) > r2:
            s_ref -= 1
        elif 2.0 ** (s_ref - n_s + 1) <= r2:
            s_ref += 1
        b_ref = int(np.floor((2.0 ** (n_s - s_ref) * r2 - 1.0) * n_b))
        b_ref = min(b_ref, n_b - 1)
        assert si[0] == s_ref
        assert bi[0] == b_ref


class TestInterpolationTable:
    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            InterpolationTable(alpha=0)
        with pytest.raises(ValidationError):
            InterpolationTable(alpha=8, n_s=0)
        with pytest.raises(ValidationError):
            InterpolationTable(alpha=8, n_b=0)

    def test_exact_at_bin_edges(self):
        """Endpoint-fit segments are exact at every bin edge."""
        t = InterpolationTable(alpha=8, n_s=6, n_b=8)
        for s in range(6):
            lo = 2.0 ** (s - 6)
            edges = lo + (lo / 8) * np.arange(8)
            np.testing.assert_allclose(t.evaluate(edges), t.exact(edges), rtol=1e-12)

    @pytest.mark.parametrize("alpha", [6, 8, 12, 14])
    def test_error_small_at_default_size(self, alpha):
        t = InterpolationTable(alpha=alpha)
        assert t.max_relative_error() < 5e-4

    def test_error_shrinks_quadratically_with_bins(self):
        """First-order interpolation: error ~ (bin width)^2."""
        e_64 = InterpolationTable(alpha=14, n_s=10, n_b=64).max_relative_error()
        e_256 = InterpolationTable(alpha=14, n_s=10, n_b=256).max_relative_error()
        ratio = e_64 / e_256
        assert 12 < ratio < 20  # ideal 16

    def test_interpolant_overestimates_convex_function(self):
        """r^-alpha is convex, so the chord lies above the function."""
        t = InterpolationTable(alpha=14, n_s=8, n_b=16)
        rng = np.random.default_rng(7)
        r2 = rng.uniform(2.0 ** -8, 1.0, size=500)
        assert np.all(t.evaluate(r2) >= t.exact(r2) * (1 - 1e-12))

    def test_bram_words(self):
        t = InterpolationTable(alpha=8, n_s=10, n_b=32)
        assert t.bram_words == 2 * 10 * 32

    @given(
        st.floats(min_value=2.0 ** -10, max_value=1.0),
        st.sampled_from([6, 8, 12, 14]),
    )
    @settings(max_examples=300, deadline=None)
    def test_relative_error_bounded_everywhere(self, r2, alpha):
        t = InterpolationTable(alpha=alpha, n_s=10, n_b=256)
        approx = float(t.evaluate(np.array([r2]))[0])
        exact = float(t.exact(np.array([r2]))[0])
        assert abs(approx - exact) / exact < 1e-3


class TestSharedIndexEvaluation:
    def test_evaluate_f32_at_matches_evaluate_f32(self):
        """The pipelines decode section/bin once for all tables; the
        shared-index path must equal the standalone one exactly."""
        t = InterpolationTable(alpha=14, n_s=10, n_b=64)
        rng = np.random.default_rng(0)
        r2_32 = rng.uniform(2.0 ** -9, 0.999, size=500).astype(np.float32)
        s, b = section_bin_indices(r2_32.astype(np.float64), 10, 64)
        np.testing.assert_array_equal(
            t.evaluate_f32_at(s, b, r2_32), t.evaluate_f32(r2_32)
        )

    def test_unchecked_indices_match_checked(self):
        rng = np.random.default_rng(1)
        r2 = rng.uniform(2.0 ** -9, 0.999, size=300)
        s1, b1 = section_bin_indices(r2, 10, 64, checked=True)
        s2, b2 = section_bin_indices(r2, 10, 64, checked=False)
        np.testing.assert_array_equal(s1, s2)
        np.testing.assert_array_equal(b1, b2)


class TestForceTableSet:
    def test_contains_force_and_energy_tables(self):
        ts = ForceTableSet(n_s=8, n_b=32)
        for alpha in (14, 8, 12, 6):
            assert ts[alpha].alpha == alpha

    def test_energy_tables_optional(self):
        ts = ForceTableSet(n_s=8, n_b=32, with_energy=False)
        with pytest.raises(KeyError):
            ts[12]

    def test_bram_accounting(self):
        ts = ForceTableSet(n_s=8, n_b=32)
        assert ts.bram_words == 4 * 2 * 8 * 32

    def test_r2_min(self):
        assert ForceTableSet(n_s=12, n_b=16).r2_min == 2.0 ** -12

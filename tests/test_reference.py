"""Tests for the double-precision reference force kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import CellGrid, LJTable, ParticleSystem
from repro.md.reference import (
    compute_forces_bruteforce,
    compute_forces_cells,
)
from repro.util.errors import ValidationError


def random_system(n, box_cells, cell_edge=4.0, seed=0, species=("Na",)):
    rng = np.random.default_rng(seed)
    grid = CellGrid((box_cells,) * 3, cell_edge)
    lj = LJTable(species)
    # Keep a minimum distance so forces are finite and well-conditioned.
    pos = rng.uniform(0, grid.box, size=(n, 3))
    keep = [0]
    for i in range(1, n):
        dr = pos[keep] - pos[i]
        dr -= grid.box * np.rint(dr / grid.box)
        if np.min(np.sum(dr * dr, axis=1)) > 2.0 ** 2:
            keep.append(i)
    pos = pos[keep]
    sys_ = ParticleSystem(
        positions=pos,
        velocities=np.zeros_like(pos),
        species=(np.arange(len(pos)) % len(species)).astype(np.int32),
        lj_table=lj,
        box=grid.box,
    )
    return sys_, grid


class TestTwoParticleForce:
    def _two_particle(self, r, cell_edge=4.0):
        grid = CellGrid((3, 3, 3), cell_edge)
        lj = LJTable(("Na",))
        pos = np.array([[1.0, 1.0, 1.0], [1.0 + r, 1.0, 1.0]])
        return (
            ParticleSystem(
                positions=pos,
                velocities=np.zeros_like(pos),
                species=np.zeros(2, dtype=np.int32),
                lj_table=lj,
                box=grid.box,
            ),
            grid,
        )

    def test_analytic_force_value(self):
        r = 3.0
        sys_, grid = self._two_particle(r)
        forces, energy = compute_forces_cells(sys_, grid)
        lj = sys_.lj_table
        expected_scalar = lj.c14[0, 0] * r ** -14 - lj.c8[0, 0] * r ** -8
        # Particle 0 at smaller x: force on it points in -x if repulsive.
        assert forces[0, 0] == pytest.approx(-expected_scalar * r)
        assert forces[1, 0] == pytest.approx(expected_scalar * r)
        expected_e = lj.c12[0, 0] * r ** -12 - lj.c6[0, 0] * r ** -6
        assert energy == pytest.approx(expected_e)

    def test_force_zero_beyond_cutoff(self):
        sys_, grid = self._two_particle(4.5)  # beyond cutoff = cell edge 4.0
        forces, energy = compute_forces_cells(sys_, grid)
        np.testing.assert_array_equal(forces, 0.0)
        assert energy == 0.0

    def test_repulsive_inside_rmin(self):
        sys_, grid = self._two_particle(2.0)  # < sigma
        forces, _ = compute_forces_cells(sys_, grid)
        assert forces[0, 0] < 0  # pushed apart
        assert forces[1, 0] > 0

    def test_attractive_outside_rmin(self):
        sys_, grid = self._two_particle(3.5)  # > 2^(1/6) sigma ~ 2.89
        forces, _ = compute_forces_cells(sys_, grid)
        assert forces[0, 0] > 0  # pulled together
        assert forces[1, 0] < 0

    def test_pbc_interaction_across_boundary(self):
        """Particles near opposite box faces interact through the boundary."""
        grid = CellGrid((3, 3, 3), 4.0)
        lj = LJTable(("Na",))
        pos = np.array([[0.5, 6.0, 6.0], [11.5, 6.0, 6.0]])  # 1.0 apart via PBC
        sys_ = ParticleSystem(
            positions=pos,
            velocities=np.zeros_like(pos),
            species=np.zeros(2, dtype=np.int32),
            lj_table=lj,
            box=grid.box,
        )
        forces, energy = compute_forces_cells(sys_, grid)
        assert energy > 0  # strongly repulsive at r = 1.0
        assert forces[0, 0] > 0  # pushed inward (+x, away from the face)
        assert forces[1, 0] < 0


class TestCellsVsBruteforce:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_forces_match(self, seed):
        sys_, grid = random_system(150, 3, seed=seed)
        f_cells, e_cells = compute_forces_cells(sys_, grid)
        f_brute, e_brute = compute_forces_bruteforce(sys_, grid.cell_edge)
        np.testing.assert_allclose(f_cells, f_brute, rtol=1e-9, atol=1e-10)
        assert e_cells == pytest.approx(e_brute, rel=1e-12)

    def test_forces_match_multispecies(self):
        sys_, grid = random_system(120, 3, seed=9, species=("Na", "Ar", "Ne"))
        f_cells, e_cells = compute_forces_cells(sys_, grid)
        f_brute, e_brute = compute_forces_bruteforce(sys_, grid.cell_edge)
        np.testing.assert_allclose(f_cells, f_brute, rtol=1e-9, atol=1e-10)
        assert e_cells == pytest.approx(e_brute, rel=1e-12)

    def test_forces_match_larger_grid(self):
        sys_, grid = random_system(400, 4, seed=4)
        f_cells, _ = compute_forces_cells(sys_, grid)
        f_brute, _ = compute_forces_bruteforce(sys_, grid.cell_edge)
        np.testing.assert_allclose(f_cells, f_brute, rtol=1e-9, atol=1e-10)


class TestInvariants:
    def test_newtons_third_law_total_force_zero(self):
        sys_, grid = random_system(200, 3, seed=11)
        forces, _ = compute_forces_cells(sys_, grid)
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_translation_invariance(self, seed_shift):
        """Rigid translation (with rewrap) leaves forces unchanged."""
        sys_, grid = random_system(80, 3, seed=2)
        f0, e0 = compute_forces_cells(sys_, grid)
        rng = np.random.default_rng(seed_shift)
        shift = rng.uniform(0, grid.box)
        moved = sys_.copy()
        moved.positions += shift
        moved.wrap()
        f1, e1 = compute_forces_cells(moved, grid)
        np.testing.assert_allclose(f1, f0, rtol=1e-7, atol=1e-8)
        assert e1 == pytest.approx(e0, rel=1e-9)

    def test_energy_shift_changes_energy_not_forces(self):
        sys_, grid = random_system(100, 3, seed=3)
        f0, e0 = compute_forces_cells(sys_, grid, shift=False)
        f1, e1 = compute_forces_cells(sys_, grid, shift=True)
        np.testing.assert_allclose(f0, f1)
        assert e1 != pytest.approx(e0)

    def test_shift_rejected_for_multispecies(self):
        sys_, grid = random_system(50, 3, seed=5, species=("Na", "Ar"))
        with pytest.raises(ValidationError):
            compute_forces_cells(sys_, grid, shift=True)

    def test_grid_box_mismatch_rejected(self):
        sys_, _ = random_system(10, 3, seed=6)
        wrong_grid = CellGrid((4, 4, 4), 4.0)
        with pytest.raises(ValidationError):
            compute_forces_cells(sys_, wrong_grid)

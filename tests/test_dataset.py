"""Tests for the paper's dataset generator (Sec. 5.1)."""

import numpy as np
import pytest

from repro.md import build_dataset
from repro.md.dataset import (
    DEFAULT_MIN_DISTANCE_A,
    PAPER_CUTOFF_A,
    PAPER_PARTICLES_PER_CELL,
    maxwell_boltzmann_velocities,
)
from repro.md.cells import CellList
from repro.util.errors import ValidationError
from repro.util.units import BOLTZMANN_KCAL_MOL_K, KCAL_MOL_TO_INTERNAL


def min_image_min_distance(positions, box):
    n = len(positions)
    ii, jj = np.triu_indices(n, k=1)
    dr = positions[ii] - positions[jj]
    dr -= box * np.rint(dr / box)
    return float(np.sqrt(np.min(np.sum(dr * dr, axis=1))))


def test_paper_constants():
    assert PAPER_CUTOFF_A == 8.5
    assert PAPER_PARTICLES_PER_CELL == 64


def test_particle_count_and_box():
    sys_, grid = build_dataset((3, 3, 3))
    assert sys_.n == 27 * 64
    np.testing.assert_allclose(grid.box, 3 * 8.5)
    np.testing.assert_allclose(sys_.box, grid.box)


def test_each_cell_has_exactly_64_particles():
    sys_, grid = build_dataset((3, 3, 3), seed=42)
    cl = CellList(grid, sys_.positions)
    np.testing.assert_array_equal(cl.occupancies(), 64)


def test_minimum_distance_respected_jittered():
    sys_, grid = build_dataset((3, 3, 3), seed=7)
    assert min_image_min_distance(sys_.positions, sys_.box) >= DEFAULT_MIN_DISTANCE_A


def test_minimum_distance_respected_rsa():
    sys_, grid = build_dataset(
        (3, 3, 3), particles_per_cell=8, method="rsa", min_distance=2.5, seed=3
    )
    assert sys_.n == 27 * 8
    assert min_image_min_distance(sys_.positions, sys_.box) >= 2.5


def test_rsa_fails_gracefully_at_impossible_density():
    with pytest.raises(ValidationError, match="RSA placement failed"):
        build_dataset(
            (3, 3, 3), particles_per_cell=64, method="rsa", min_distance=4.0
        )


def test_deterministic_given_seed():
    a, _ = build_dataset((3, 3, 3), seed=11)
    b, _ = build_dataset((3, 3, 3), seed=11)
    np.testing.assert_array_equal(a.positions, b.positions)
    np.testing.assert_array_equal(a.velocities, b.velocities)


def test_different_seeds_differ():
    a, _ = build_dataset((3, 3, 3), seed=1)
    b, _ = build_dataset((3, 3, 3), seed=2)
    assert not np.allclose(a.positions, b.positions)


def test_com_momentum_zero():
    sys_, _ = build_dataset((3, 3, 3), seed=5)
    momentum = (sys_.masses[:, None] * sys_.velocities).sum(axis=0)
    np.testing.assert_allclose(momentum, 0.0, atol=1e-10)


def test_temperature_near_target():
    sys_, _ = build_dataset((4, 4, 4), temperature_k=300.0, seed=9)
    # 4096 particles: sample temperature within a few percent of target.
    assert sys_.temperature() == pytest.approx(300.0, rel=0.05)


def test_unknown_method_rejected():
    with pytest.raises(ValidationError):
        build_dataset((3, 3, 3), method="magic")


def test_impossible_jitter_rejected():
    with pytest.raises(ValidationError, match="cannot fit"):
        build_dataset((3, 3, 3), min_distance=3.0)  # spacing 2.125 < 3.0


def test_multispecies_cycling():
    sys_, _ = build_dataset((3, 3, 3), species=("Na", "Ar"), seed=1)
    assert set(np.unique(sys_.species)) == {0, 1}
    # Species alternate by particle index.
    assert sys_.species[0] == 0 and sys_.species[1] == 1


class TestGradientDataset:
    def test_occupancy_ramps_along_x(self):
        from repro.md.dataset import build_gradient_dataset

        system, grid = build_gradient_dataset((4, 4, 4), min_per_cell=8, max_per_cell=32, seed=1)
        cl = CellList(grid, system.positions)
        occ = cl.occupancies().reshape(grid.dims)
        per_slab = occ.sum(axis=(1, 2)) / (grid.dims[1] * grid.dims[2])
        assert per_slab[0] == 8
        assert per_slab[-1] == 32
        assert list(per_slab) == sorted(per_slab)

    def test_min_distance_respected(self):
        from repro.md.dataset import build_gradient_dataset

        system, _ = build_gradient_dataset((3, 3, 3), min_per_cell=4, max_per_cell=16, seed=2)
        assert min_image_min_distance(system.positions, system.box) >= DEFAULT_MIN_DISTANCE_A

    def test_validation(self):
        from repro.md.dataset import build_gradient_dataset

        with pytest.raises(ValidationError):
            build_gradient_dataset((3, 3, 3), min_per_cell=10, max_per_cell=5)


def test_maxwell_boltzmann_statistics():
    rng = np.random.default_rng(0)
    masses = np.full(20000, 22.98976928)
    v = maxwell_boltzmann_velocities(rng, masses, 300.0)
    kt_internal = BOLTZMANN_KCAL_MOL_K * 300.0 * KCAL_MOL_TO_INTERNAL
    sigma_expected = np.sqrt(kt_internal / masses[0])
    assert np.std(v) == pytest.approx(sigma_expected, rel=0.02)
    assert np.mean(v) == pytest.approx(0.0, abs=sigma_expected * 0.05)

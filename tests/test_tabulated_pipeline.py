"""Tests for the generic tabulated pipeline (the Sec. 3.4 generality claim)."""

import numpy as np
import pytest

from repro.arith.interp import RadialTable
from repro.core.datapath import TabulatedRadialPipeline
from repro.md.ewald import (
    choose_beta,
    ewald_real_energy_scalar,
    ewald_real_scalar,
)
from repro.md.params import LJTable
from repro.util.errors import ValidationError


CUTOFF = 8.5


def ewald_pipeline(beta, n_b=256):
    return TabulatedRadialPipeline.from_physical(
        lambda r2: ewald_real_scalar(r2, beta),
        lambda r2: ewald_real_energy_scalar(r2, beta),
        cutoff=CUTOFF,
        n_b=n_b,
    )


class TestRadialTableGeneral:
    def test_arbitrary_kernel(self):
        t = RadialTable(lambda r2: np.exp(-3.0 * r2), n_s=10, n_b=128)
        r2 = np.linspace(2.0 ** -9, 0.99, 200)
        np.testing.assert_allclose(t.evaluate(r2), np.exp(-3.0 * r2), rtol=1e-4)

    def test_error_metric_handles_zero_crossings(self):
        """A kernel crossing zero must not blow up the error metric."""
        t = RadialTable(lambda r2: r2 - 0.25, n_s=6, n_b=32)
        assert np.isfinite(t.max_relative_error())

    def test_validation(self):
        with pytest.raises(ValidationError):
            RadialTable(lambda r2: r2, n_s=0)


class TestEwaldThroughThePipeline:
    """Same datapath, different ROM: electrostatics via table lookup."""

    def test_force_matches_analytic(self):
        beta = choose_beta(CUTOFF)
        pipe = ewald_pipeline(beta)
        r_phys = 4.0
        rn = r_phys / CUTOFF
        dr = np.array([[rn, 0.0, 0.0]])
        r2 = np.array([rn * rn], dtype=np.float32)
        qq = np.array([1.0])  # e.g. Na+ Na+
        f, e = pipe.compute(dr, r2, qq)
        expected_f = ewald_real_scalar(np.array([r_phys ** 2]), beta)[0] * r_phys
        expected_e = ewald_real_energy_scalar(np.array([r_phys ** 2]), beta)[0]
        assert f[0, 0] == pytest.approx(expected_f, rel=2e-3)
        assert e[0] == pytest.approx(expected_e, rel=2e-3)

    def test_pair_scale_applies_charges(self):
        pipe = ewald_pipeline(0.35)
        dr = np.array([[0.4, 0.0, 0.0]])
        r2 = np.sum(dr * dr, axis=1).astype(np.float32)
        f_pp, e_pp = pipe.compute(dr, r2, np.array([1.0]))
        f_pm, e_pm = pipe.compute(dr, r2, np.array([-1.0]))
        np.testing.assert_allclose(f_pm, -f_pp)
        np.testing.assert_allclose(e_pm, -e_pp)

    def test_accuracy_across_domain(self):
        beta = choose_beta(CUTOFF)
        pipe = ewald_pipeline(beta)
        rng = np.random.default_rng(1)
        rn = rng.uniform(0.2, 0.99, size=400)
        dr = np.zeros((400, 3))
        dr[:, 0] = rn
        r2 = (rn * rn).astype(np.float32)
        f, _ = pipe.compute(dr, r2, np.ones(400))
        r_phys = rn * CUTOFF
        expected = ewald_real_scalar(r_phys ** 2, beta) * r_phys
        np.testing.assert_allclose(f[:, 0], expected, rtol=5e-3)

    def test_outputs_float32(self):
        pipe = ewald_pipeline(0.35)
        dr = np.array([[0.3, 0.1, 0.0]])
        r2 = np.sum(dr * dr, axis=1).astype(np.float32)
        f, e = pipe.compute(dr, r2, np.array([1.0]))
        assert f.dtype == np.float32 and e.dtype == np.float32


class TestLJThroughGenericPipeline:
    """The LJ force itself also fits the generic pipeline — confirming
    that the specialized and generic datapaths agree."""

    def test_matches_specialized_lj_pipeline(self):
        lj = LJTable(("Na",))

        def force_fn(r2):
            return lj.c14[0, 0] * r2 ** -7.0 - lj.c8[0, 0] * r2 ** -4.0

        def energy_fn(r2):
            return lj.c12[0, 0] * r2 ** -6.0 - lj.c6[0, 0] * r2 ** -3.0

        pipe = TabulatedRadialPipeline.from_physical(force_fn, energy_fn, CUTOFF)
        rn = 0.45
        dr = np.array([[rn, 0.0, 0.0]])
        r2 = np.array([rn * rn], dtype=np.float32)
        f, e = pipe.compute(dr, r2, np.array([1.0]))
        r_phys = rn * CUTOFF
        expected_f = (lj.c14[0, 0] * r_phys ** -14 - lj.c8[0, 0] * r_phys ** -8) * r_phys
        expected_e = lj.c12[0, 0] * r_phys ** -12 - lj.c6[0, 0] * r_phys ** -6
        assert f[0, 0] == pytest.approx(expected_f, rel=5e-3)
        assert e[0] == pytest.approx(expected_e, rel=5e-2)

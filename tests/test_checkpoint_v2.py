"""fasda-checkpoint-v2: three-layer round trips, corruption, manager."""

import os

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointManager,
    load_checkpoint_v2,
    save_checkpoint_v2,
)
from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.faults import (
    FaultInjector,
    FaultPlan,
    NodeFaultEvent,
    NodeFaultPlan,
    TransportConfig,
)
from repro.md import build_dataset
from repro.md.cells import CellGrid
from repro.md.engine import ReferenceEngine
from repro.util.errors import CheckpointError, ValidationError

CFG = MachineConfig((4, 4, 4), (2, 2, 2))


def _flip_middle_byte(path):
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(path, "wb").write(bytes(raw))


class TestMachineRoundTrip:
    def test_trajectory_continues_bitwise(self, tmp_path):
        m = FasdaMachine(CFG)
        m.reuse_state = True
        m.run(4)
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))
        m2, step = load_checkpoint_v2(path)
        assert step == 4
        m.run(3)
        m2.run(3)
        np.testing.assert_array_equal(m.system.positions, m2.system.positions)
        np.testing.assert_array_equal(m._forces32, m2._forces32)
        assert [(r.step, r.kinetic, r.potential) for r in m.history] == [
            (r.step, r.kinetic, r.potential) for r in m2.history
        ]

    def test_knobs_and_cellstate_meta_restored(self, tmp_path):
        m = FasdaMachine(CFG)
        m.reuse_state = True
        m.pair_path = "padded"
        m.run(4)
        builds_before = m._cell_state.builds
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))
        m2, _ = load_checkpoint_v2(path)
        assert m2.pair_path == "padded"
        assert m2.reuse_state
        assert m2._cell_state.builds == builds_before


class TestEngineRoundTrip:
    def test_trajectory_continues_bitwise(self, tmp_path):
        system, _ = build_dataset((4, 4, 4), cutoff=8.0, seed=11)
        grid = CellGrid((4, 4, 4), 8.0)
        e = ReferenceEngine(system=system.copy(), grid=grid, reuse_state=True)
        e.run(4)
        path = save_checkpoint_v2(e, str(tmp_path / "e.npz"))
        e2, step = load_checkpoint_v2(path)
        assert step == 4
        e.run(3, start_step=step)
        e2.run(3, start_step=step)
        np.testing.assert_array_equal(e.system.positions, e2.system.positions)
        np.testing.assert_array_equal(
            e.system.velocities, e2.system.velocities
        )
        assert e2.reuse_state and e2.state_builds >= 1


class TestDistributedRoundTrip:
    def _make(self):
        return DistributedMachine(
            CFG,
            injector=FaultInjector(FaultPlan(seed=5, drop_rate=0.02)),
            transport=TransportConfig(retry_budget=6),
            node_faults=NodeFaultPlan(
                seed=7, events=(NodeFaultEvent(node=1, iteration=2),)
            ),
            shadow_interval=2,
        )

    def test_trajectory_continues_bitwise_with_active_faults(self, tmp_path):
        """The hardest case: every fault subsystem mid-flight at save time."""
        d = self._make()
        d.run(4)
        path = save_checkpoint_v2(d, str(tmp_path / "d.npz"))
        d2, step = load_checkpoint_v2(path)
        assert step == 4
        d.run(3)
        d2.run(3)
        np.testing.assert_array_equal(d.system.positions, d2.system.positions)
        # Restored == uninterrupted run of the same plans.
        ref = self._make()
        ref.run(7)
        np.testing.assert_array_equal(
            ref.system.positions, d2.system.positions
        )

    def test_fault_state_restored(self, tmp_path):
        d = self._make()
        d.run(4)
        path = save_checkpoint_v2(d, str(tmp_path / "d.npz"))
        d2, _ = load_checkpoint_v2(path)
        assert d2._iteration == d._iteration
        assert d2.transport_stats == d.transport_stats
        assert d2.recovery_log == d.recovery_log
        assert d2.degradation_log == d.degradation_log
        assert d2._down_until == d._down_until
        assert d2._shadow_iteration == d._shadow_iteration
        assert d2.shadow_traffic_records == d.shadow_traffic_records
        assert set(d2._stale_halo) == set(d._stale_halo)
        for key, (it, data) in d._stale_halo.items():
            it2, data2 = d2._stale_halo[key]
            assert it2 == it
            np.testing.assert_array_equal(data2.particle_ids, data.particle_ids)
            np.testing.assert_array_equal(data2.fractions, data.fractions)
        assert d2.node_injector.plan == d.node_injector.plan
        assert d2.injector.plan == d.injector.plan
        assert d2.transport == d.transport


class TestCorruptionDetection:
    def test_bit_flip_rejected(self, tmp_path):
        m = FasdaMachine(CFG)
        m.run(2)
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))
        _flip_middle_byte(path)
        with pytest.raises(CheckpointError):
            load_checkpoint_v2(path)

    def test_truncation_rejected(self, tmp_path):
        m = FasdaMachine(CFG)
        m.run(2)
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 3])
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            load_checkpoint_v2(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "v1like.npz")
        np.savez(path, format=np.array("fasda-checkpoint-v1"), x=np.zeros(2))
        with pytest.raises(CheckpointError, match="lacks"):
            load_checkpoint_v2(path)

    def test_unsupported_object_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot checkpoint"):
            save_checkpoint_v2(object(), str(tmp_path / "x.npz"))


class TestCheckpointManager:
    def test_interval_saves_and_pruning(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ck"), interval=2, keep=3)
        m = FasdaMachine(CFG)
        for step in range(1, 9):
            m.run(1)
            mgr.maybe_save(m, step)
        assert [s for s, _ in mgr.checkpoints()] == [4, 6, 8]

    def test_quarantine_and_fallback(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ck"), interval=2, keep=3)
        m = FasdaMachine(CFG)
        for step in range(1, 9):
            m.run(1)
            mgr.maybe_save(m, step)
        newest = mgr.checkpoints()[-1][1]
        _flip_middle_byte(newest)
        obj, step, path = mgr.load_latest()
        assert step == 6
        assert path.endswith("0000000006.npz")
        assert len(mgr.quarantined) == 1
        assert mgr.quarantined[0].endswith(".corrupt")
        assert os.path.exists(mgr.quarantined[0])
        # The corrupt file no longer shadows good state.
        assert [s for s, _ in mgr.checkpoints()] == [4, 6]

    def test_all_corrupt_raises(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ck"), interval=1, keep=2)
        m = FasdaMachine(CFG)
        m.run(1)
        mgr.save(m, 1)
        mgr.save(m, 2)
        for _, p in mgr.checkpoints():
            _flip_middle_byte(p)
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            mgr.load_latest()

    def test_empty_directory_raises(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ck"))
        with pytest.raises(CheckpointError, match="none written yet"):
            mgr.load_latest()

    def test_no_tmp_leftovers(self, tmp_path):
        mgr = CheckpointManager(str(tmp_path / "ck"), interval=1, keep=2)
        m = FasdaMachine(CFG)
        for step in range(1, 4):
            m.run(1)
            mgr.save(m, step)
        assert [
            f for f in os.listdir(tmp_path / "ck") if ".tmp." in f
        ] == []

    def test_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            CheckpointManager(str(tmp_path), interval=0)
        with pytest.raises(ValidationError):
            CheckpointManager(str(tmp_path), keep=0)


class TestSystemKind:
    def test_bare_system_round_trip(self, tmp_path):
        system, _ = build_dataset((3, 3, 3), particles_per_cell=3, seed=9)
        path = str(tmp_path / "sys.npz")
        save_checkpoint_v2(system, path)
        back, step = load_checkpoint_v2(path)
        assert step == 0
        assert np.array_equal(back.positions, system.positions)
        assert np.array_equal(back.velocities, system.velocities)
        assert np.array_equal(back.forces, system.forces)
        assert np.array_equal(back.species, system.species)


class TestPoisonedStateRejected:
    """Finite-array validation on load: a poisoned checkpoint (however
    it got poisoned) must never be resumed silently."""

    def _poison_saved_system(self, tmp_path, field):
        system, _ = build_dataset((3, 3, 3), particles_per_cell=3, seed=10)
        getattr(system, field)[1, 2] = np.nan
        path = str(tmp_path / "bad.npz")
        # Bypass any in-memory screening: write the arrays as they are.
        save_checkpoint_v2(system, path)
        return path

    @pytest.mark.parametrize("field", ["positions", "velocities", "forces"])
    def test_system_kind_rejects_nonfinite(self, tmp_path, field):
        path = self._poison_saved_system(tmp_path, field)
        with pytest.raises(CheckpointError, match="non-finite"):
            load_checkpoint_v2(path)

    def test_engine_kind_rejects_nonfinite(self, tmp_path):
        system, grid = build_dataset((3, 3, 3), particles_per_cell=3, seed=11)
        eng = ReferenceEngine(system, grid, reuse_state=True)
        eng.run(2, record_every=0)
        eng.system.velocities[0, 0] = np.inf
        path = str(tmp_path / "eng.npz")
        save_checkpoint_v2(eng, path)
        with pytest.raises(CheckpointError, match="non-finite"):
            load_checkpoint_v2(path)

    def test_batch_kind_rejects_nonfinite_naming_segment(self, tmp_path):
        from repro.md.batch import BatchedEngine

        be = BatchedEngine()
        handles = []
        for i in range(3):
            s, g = build_dataset((3, 3, 3), particles_per_cell=2,
                                 seed=12 + i)
            handles.append(be.add(s, g))
        be.step(2)
        seg = be._by_handle[handles[1]]
        be._vel[seg.base, 0] = np.nan
        path = str(tmp_path / "batch.npz")
        save_checkpoint_v2(be, path)
        with pytest.raises(CheckpointError, match="handle=1"):
            load_checkpoint_v2(path)


class TestPartitionValidation:
    """Satellite: reject payloads whose node count disagrees with the map."""

    def _elastic_machine(self, n_nodes):
        from repro.core.elasticity import fpga_grid_for

        dims = (12, 3, 3)
        cfg = MachineConfig(dims, fpga_grid_for(dims, n_nodes))
        system, _ = build_dataset(dims, particles_per_cell=2, seed=5)
        m = DistributedMachine(cfg, system=system)
        m.step()
        return m

    @staticmethod
    def _tamper(path, mutate):
        """Rewrite a v2 container with ``mutate(meta, arrays)`` applied.

        Re-serializes the inner payload and recomputes the CRC, so the
        corruption detector stays green and only the semantic partition
        validator can catch the inconsistency.
        """
        import io
        import json
        import zlib

        with np.load(path, allow_pickle=False) as outer:
            kind = str(outer["kind"])
            payload = outer["payload"].tobytes()
        with np.load(io.BytesIO(payload), allow_pickle=False) as inner:
            meta = json.loads(str(inner["meta"]))
            arrays = {k: inner[k] for k in inner.files if k != "meta"}
        mutate(meta, arrays)

        def npz_bytes(**kw):
            buf = io.BytesIO()
            np.savez_compressed(buf, **kw)
            return buf.getvalue()

        new_payload = npz_bytes(meta=np.array(json.dumps(meta)), **arrays)
        container = npz_bytes(
            format=np.array("fasda-checkpoint-v2"),
            kind=np.array(kind),
            crc32=np.array(zlib.crc32(new_payload), dtype=np.int64),
            payload=np.frombuffer(new_payload, dtype=np.uint8),
        )
        open(path, "wb").write(container)

    def test_cell_node_mismatch_rejected(self, tmp_path):
        # Written at 6 nodes, then the config is doctored to claim a
        # 4-node grid: the stored partition map no longer matches the
        # config-derived one and must be rejected by name, up front.
        m = self._elastic_machine(6)
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))

        def mutate(meta, arrays):
            meta["config"]["fpga_grid"] = [4, 1, 1]

        self._tamper(path, mutate)
        with pytest.raises(CheckpointError, match="cell_node"):
            load_checkpoint_v2(path)

    def test_down_until_out_of_range_rejected(self, tmp_path):
        m = self._elastic_machine(4)
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))

        def mutate(meta, arrays):
            meta["down_until"] = {"9": 5}

        self._tamper(path, mutate)
        with pytest.raises(CheckpointError, match="down_until"):
            load_checkpoint_v2(path)

    def test_shadow_records_out_of_range_rejected(self, tmp_path):
        m = self._elastic_machine(4)
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))

        def mutate(meta, arrays):
            meta["shadow_records"] = {"-1": 7}

        self._tamper(path, mutate)
        with pytest.raises(CheckpointError, match="shadow_records"):
            load_checkpoint_v2(path)

    def test_untampered_elastic_round_trip(self, tmp_path):
        # Control: the validator passes a healthy elastic checkpoint,
        # including one written after a committed rescale.
        m = self._elastic_machine(4)
        assert m.rescale(6)
        m.step()
        path = save_checkpoint_v2(m, str(tmp_path / "m.npz"))
        m2, _ = load_checkpoint_v2(path)
        assert m2.config.fpga_grid == (6, 1, 1)
        assert len(m2.rescale_log) == 1
        assert m2.rescale_log[0].flows == m.rescale_log[0].flows

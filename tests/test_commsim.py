"""Tests for the communication-overlap simulation (Sec. 5.4's claim)."""

import pytest

from repro.core.commsim import simulate_comm_overlap
from repro.core.config import MachineConfig, strong_scaling_configs
from repro.core.cycles import estimate_performance
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def measured_c():
    """The most communication-intensive paper design (4x4x4-C)."""
    cfg = strong_scaling_configs()["4x4x4-C"]
    machine = FasdaMachine(cfg)
    stats = machine.measure_workload()
    perf = estimate_performance(cfg, stats)
    return cfg, stats, perf


class TestOverlap:
    def test_exchange_hidden_under_compute(self, measured_c):
        """The paper's claim: cooldown-paced communication completes
        inside the force phase even for the fastest design."""
        cfg, stats, perf = measured_c
        result = simulate_comm_overlap(cfg, stats, perf)
        assert result.dropped == 0
        assert result.hidden
        assert result.worst_overlap_fraction < 0.6

    def test_default_cooldown_is_lossless(self, measured_c):
        cfg, stats, perf = measured_c
        assert cfg.cooldown_cycles == 8
        result = simulate_comm_overlap(cfg, stats, perf)
        assert result.dropped == 0

    def test_unpaced_exchange_would_drop(self, measured_c):
        """Without pacing the synchronized exchange overflows the switch
        — the failure mode the cooldown counters exist to prevent."""
        import dataclasses

        cfg, stats, _ = measured_c
        fast_cfg = dataclasses.replace(cfg, cooldown_cycles=1)
        machine_perf = estimate_performance(fast_cfg, stats)
        result = simulate_comm_overlap(fast_cfg, stats, machine_perf)
        assert result.dropped > 0
        assert not result.hidden

    def test_every_receiving_node_has_arrival_time(self, measured_c):
        cfg, stats, perf = measured_c
        result = simulate_comm_overlap(cfg, stats, perf)
        assert set(result.last_arrival) == set(range(cfg.n_fpgas))

    def test_requires_per_node_cycles(self, measured_c):
        cfg, stats, perf = measured_c
        import dataclasses

        broken = dataclasses.replace(perf, per_node_force_cycles=None)
        with pytest.raises(ValidationError):
            simulate_comm_overlap(cfg, stats, broken)


class TestAcrossDesigns:
    def test_hidden_for_all_paper_points(self):
        from repro.core.config import weak_scaling_configs

        for name, cfg in {
            **weak_scaling_configs(), **strong_scaling_configs()
        }.items():
            if not cfg.is_distributed:
                continue
            system, _ = build_dataset(
                cfg.global_cells, particles_per_cell=16, seed=3
            )
            machine = FasdaMachine(cfg, system=system)
            stats = machine.measure_workload()
            perf = estimate_performance(cfg, stats)
            result = simulate_comm_overlap(cfg, stats, perf)
            assert result.hidden, name

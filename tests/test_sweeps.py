"""Tests for design-space sweeps (scaling curve + sensitivity)."""

import pytest

from repro.harness.sweeps import (
    _divisor_grids,
    best_fitting_config,
    run_fpga_scaling,
    run_sensitivity,
)
from repro.util.errors import ValidationError


class TestDivisorGrids:
    def test_eight_nodes_on_4x4x4(self):
        grids = _divisor_grids((4, 4, 4), 8)
        assert (2, 2, 2) in grids
        # Balanced decomposition preferred.
        assert grids[0] == (2, 2, 2)

    def test_all_grids_divide_evenly(self):
        for grid in _divisor_grids((6, 6, 6), 4):
            assert all(g % f == 0 for g, f in zip((6, 6, 6), grid))

    def test_impossible_node_count(self):
        assert _divisor_grids((4, 4, 4), 7) == []


class TestBestFittingConfig:
    def test_single_fpga_is_resource_bound(self):
        cfg = best_fitting_config((4, 4, 4), 1)
        assert cfg is not None
        assert cfg.pes_per_cbb == 1  # 64 CBBs leave no room for more

    def test_eight_fpgas_afford_many_pes(self):
        cfg = best_fitting_config((4, 4, 4), 8)
        assert cfg is not None
        assert cfg.pes_per_cbb >= 6

    def test_returns_none_when_impossible(self):
        assert best_fitting_config((4, 4, 4), 7) is None

    def test_fits_the_device(self):
        from repro.core.resources import estimate_resources

        for n in (1, 2, 4, 8):
            cfg = best_fitting_config((4, 4, 4), n)
            assert estimate_resources(cfg).fits(margin=0.9)


class TestScalingSweep:
    @pytest.fixture(scope="class")
    def scaling(self):
        return run_fpga_scaling(node_counts=(1, 8))

    def test_speedup_normalized_to_first(self, scaling):
        assert scaling.rows[0].speedup == 1.0
        assert scaling.rows[0].efficiency == 1.0

    def test_eight_nodes_much_faster(self, scaling):
        assert scaling.rows[-1].speedup > 6.0

    def test_invalid_counts_raise(self):
        with pytest.raises(ValidationError):
            run_fpga_scaling(node_counts=(7,))


class TestWeakScalingExtension:
    def test_flat_out_to_27(self):
        from repro.harness.sweeps import run_weak_scaling_extension

        result = run_weak_scaling_extension(
            multipliers=((1, 1, 1), (3, 3, 3))
        )
        assert result.flatness < 1.05
        assert result.rows[-1].n_fpgas == 27


class TestLatencySweep:
    def test_monotone_and_bounded(self):
        from repro.harness.ablations import run_latency_sweep

        result = run_latency_sweep(latencies_cycles=(200, 20_000))
        rates = [r.rate_us_per_day for r in result.rows]
        assert rates[0] > rates[1]
        assert result.rows[0].sync_share < result.rows[1].sync_share
        assert result.tight_vs_loose > 5


class TestSensitivity:
    def test_center_point_matches_defaults(self):
        result = run_sensitivity(perturbations=(1.0,))
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.rate_3x3x3 == pytest.approx(2.09, abs=0.05)
        assert row.strong_gain_c_over_a == pytest.approx(5.2, abs=0.2)

    def test_gain_robust_to_perturbation(self):
        result = run_sensitivity()
        gains = [r.strong_gain_c_over_a for r in result.rows]
        assert max(gains) - min(gains) < 0.5

"""Tests for XYZ trajectory I/O."""

import io

import numpy as np
import pytest

from repro.md import build_dataset
from repro.md.trajectory import TrajectoryWriter, dump_trajectory, read_xyz
from repro.util.errors import ValidationError


def test_write_read_roundtrip():
    system, _ = build_dataset((3, 3, 3), particles_per_cell=2, seed=0)
    buf = io.StringIO()
    writer = TrajectoryWriter(buf)
    writer.write_frame(system, step=0)
    system.positions += 0.5
    system.wrap()
    writer.write_frame(system, step=10)
    frames = read_xyz(io.StringIO(buf.getvalue()))
    assert len(frames) == 2
    step0, box0, symbols0, pos0 = frames[0]
    step1, _, _, pos1 = frames[1]
    assert step0 == 0 and step1 == 10
    np.testing.assert_allclose(box0, system.box, atol=1e-6)
    assert symbols0[0] == "Na"
    np.testing.assert_allclose(pos1, system.positions, atol=1e-6)
    assert not np.allclose(pos0, pos1)


def test_file_roundtrip(tmp_path):
    system, _ = build_dataset((3, 3, 3), particles_per_cell=2, seed=1)
    path = str(tmp_path / "traj.xyz")
    with TrajectoryWriter(path) as writer:
        writer.write_frame(system)
    frames = read_xyz(path)
    assert len(frames) == 1
    np.testing.assert_allclose(frames[0][3], system.positions, atol=1e-6)


def test_dump_trajectory_with_reference_engine(tmp_path):
    from repro.md import ReferenceEngine

    system, grid = build_dataset((3, 3, 3), particles_per_cell=4, seed=2)
    engine = ReferenceEngine(system, grid, dt_fs=2.0)
    path = str(tmp_path / "run.xyz")
    n_frames = dump_trajectory(engine, path, n_steps=20, dump_every=5)
    assert n_frames == 5  # initial + 4 chunks
    frames = read_xyz(path)
    assert [f[0] for f in frames] == [0, 5, 10, 15, 20]


def test_dump_trajectory_with_machine(tmp_path):
    from repro.core import FasdaMachine, MachineConfig

    system, _ = build_dataset((3, 3, 3), particles_per_cell=4, seed=3)
    machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system)
    path = str(tmp_path / "machine.xyz")
    n_frames = dump_trajectory(machine, path, n_steps=10, dump_every=5)
    assert n_frames == 3


def test_bad_count_line_rejected():
    with pytest.raises(ValidationError, match="count line"):
        read_xyz(io.StringIO("notanumber\ncomment\n"))


def test_bad_atom_line_rejected():
    with pytest.raises(ValidationError, match="atom line"):
        read_xyz(io.StringIO('1\nstep=0 box="1 1 1"\nNa 1.0 2.0\n'))


def test_dump_validation(tmp_path):
    from repro.md import ReferenceEngine

    system, grid = build_dataset((3, 3, 3), particles_per_cell=2, seed=4)
    engine = ReferenceEngine(system, grid)
    with pytest.raises(ValidationError):
        dump_trajectory(engine, str(tmp_path / "x.xyz"), n_steps=-1)

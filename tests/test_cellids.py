"""Tests for the two-level cell-ID conversion (paper Sec. 4.2, Fig. 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cellids import (
    RCID_HOME,
    gcid,
    gcid_coords,
    gcid_to_lcid,
    lcid_to_rcid,
    node_of_cell,
    node_origin,
    rcid_valid,
)
from repro.util.errors import ValidationError


class TestGcid:
    def test_matches_eq7(self):
        dims = (4, 5, 6)
        assert gcid(np.array([3, 4, 5]), dims) == 3 * 30 + 4 * 6 + 5

    @given(st.integers(0, 4 * 5 * 6 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, cid):
        dims = (4, 5, 6)
        assert int(gcid(gcid_coords(np.int64(cid), dims), dims)) == cid


class TestNodeMapping:
    def test_node_of_cell(self):
        # 6x6x6 cells, 2x2x2 nodes of 3x3x3 cells each.
        local = (3, 3, 3)
        np.testing.assert_array_equal(node_of_cell(np.array([0, 0, 0]), local), [0, 0, 0])
        np.testing.assert_array_equal(node_of_cell(np.array([3, 2, 5]), local), [1, 0, 1])

    def test_node_origin(self):
        np.testing.assert_array_equal(node_origin(np.array([1, 0, 1]), (3, 3, 3)), [3, 0, 3])


class TestGcidToLcid:
    """The two worked examples of paper Fig. 9 (2-D, embedded in 3-D with
    a trivial z axis).  Nodes are 3x3 cells; global space 6x6."""

    LOCAL = (3, 3, 3)
    GLOBAL = (6, 6, 3)

    def test_paper_example_left(self):
        # Particle from cell GCID (5,2) in node (1,0) sent to node (0,0):
        # LCID stays (5,2).
        lcid = gcid_to_lcid(
            np.array([5, 2, 0]), np.array([0, 0, 0]), self.LOCAL, self.GLOBAL
        )
        np.testing.assert_array_equal(lcid, [5, 2, 0])

    def test_paper_example_right(self):
        # Particle from cell GCID (2,1) in node (0,0) sent to node (1,0):
        # LCID becomes (5,1).
        lcid = gcid_to_lcid(
            np.array([2, 1, 0]), np.array([1, 0, 0]), self.LOCAL, self.GLOBAL
        )
        np.testing.assert_array_equal(lcid, [5, 1, 0])

    def test_destination_cell_appears_local(self):
        # The destination cell GCID (3,0) in node (1,0) appears as (0,0).
        lcid = gcid_to_lcid(
            np.array([3, 0, 0]), np.array([1, 0, 0]), self.LOCAL, self.GLOBAL
        )
        np.testing.assert_array_equal(lcid, [0, 0, 0])

    @given(
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 2)),
        st.tuples(st.integers(0, 1), st.integers(0, 1)),
    )
    @settings(max_examples=200, deadline=None)
    def test_homogeneity(self, cell, node_xy):
        """Every node's own cells always map to 0..local_dims-1."""
        node = np.array([node_xy[0], node_xy[1], 0])
        origin = node_origin(node, self.LOCAL)
        local_cell = np.mod(np.asarray(cell), (3, 3, 3)) + origin
        lcid = gcid_to_lcid(local_cell, node, self.LOCAL, self.GLOBAL)
        assert np.all(lcid >= 0)
        assert np.all(lcid < np.asarray(self.LOCAL))


class TestLcidToRcid:
    def test_home_cell_is_222(self):
        rcid = lcid_to_rcid(np.array([1, 1, 1]), np.array([1, 1, 1]), (6, 6, 6))
        np.testing.assert_array_equal(rcid, [RCID_HOME] * 3)

    def test_positive_neighbor(self):
        rcid = lcid_to_rcid(np.array([2, 1, 1]), np.array([1, 1, 1]), (6, 6, 6))
        np.testing.assert_array_equal(rcid, [3, 2, 2])

    def test_negative_neighbor_with_wrap(self):
        # Cell 5 is the -1 neighbor of cell 0 under periodic wrap.
        rcid = lcid_to_rcid(np.array([5, 0, 0]), np.array([0, 0, 0]), (6, 6, 6))
        np.testing.assert_array_equal(rcid, [1, 2, 2])

    def test_non_neighbor_rejected(self):
        with pytest.raises(ValidationError, match="not neighbors"):
            lcid_to_rcid(np.array([3, 0, 0]), np.array([0, 0, 0]), (6, 6, 6))

    @given(
        st.tuples(st.integers(-1, 1), st.integers(-1, 1), st.integers(-1, 1)),
        st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=200, deadline=None)
    def test_all_neighbor_offsets_valid(self, offset, dest):
        dims = (6, 6, 6)
        nbr = np.mod(np.asarray(dest) + np.asarray(offset), dims)
        rcid = lcid_to_rcid(nbr, np.asarray(dest), dims)
        assert rcid_valid(rcid)
        np.testing.assert_array_equal(rcid, np.asarray(offset) + RCID_HOME)


def test_rcid_valid_bounds():
    assert rcid_valid(np.array([1, 2, 3]))
    assert not rcid_valid(np.array([0, 2, 2]))
    assert not rcid_valid(np.array([2, 4, 2]))

"""Tests for the velocity-Verlet integrator."""

import numpy as np
import pytest

from repro.md import LJTable, ParticleSystem, VelocityVerlet
from repro.util.errors import ValidationError
from repro.util.units import KCAL_MOL_TO_INTERNAL


def free_particle_system(v):
    lj = LJTable(("Na",))
    return ParticleSystem(
        positions=np.array([[5.0, 5.0, 5.0]]),
        velocities=np.array([v]),
        species=np.zeros(1, dtype=np.int32),
        lj_table=lj,
        box=np.full(3, 100.0),
    )


def zero_force(system):
    return np.zeros_like(system.positions), 0.0


def test_bad_dt_rejected():
    with pytest.raises(ValidationError):
        VelocityVerlet(0.0)
    with pytest.raises(ValidationError):
        VelocityVerlet(-1.0)


def test_free_particle_moves_linearly():
    s = free_particle_system([0.01, 0.0, -0.02])
    integ = VelocityVerlet(2.0)
    integ.prime(s, zero_force)
    for _ in range(10):
        integ.step(s, zero_force)
    np.testing.assert_allclose(s.positions[0], [5.0 + 0.01 * 20, 5.0, 5.0 - 0.02 * 20])
    np.testing.assert_allclose(s.velocities[0], [0.01, 0.0, -0.02])


def test_constant_force_quadratic_trajectory():
    """Under constant F, x(t) = x0 + v0 t + a t^2 / 2 exactly (Verlet is
    exact for constant acceleration)."""
    f_const = np.array([[1.0, 0.0, 0.0]])  # kcal/mol/A

    def const_force(system):
        return f_const.copy(), 0.0

    s = free_particle_system([0.0, 0.0, 0.0])
    m = s.masses[0]
    a = 1.0 * KCAL_MOL_TO_INTERNAL / m
    integ = VelocityVerlet(2.0)
    integ.prime(s, const_force)
    n = 25
    for _ in range(n):
        integ.step(s, const_force)
    t = 2.0 * n
    assert s.positions[0, 0] == pytest.approx(5.0 + 0.5 * a * t * t, rel=1e-12)
    assert s.velocities[0, 0] == pytest.approx(a * t, rel=1e-12)


def test_harmonic_oscillator_energy_conservation():
    """A particle on a (linearized) spring conserves energy to O(dt^2)."""
    k = 10.0  # kcal/mol/A^2 around x=5

    def spring(system):
        x = system.positions[0, 0] - 5.0
        f = np.zeros_like(system.positions)
        f[0, 0] = -k * x
        return f, 0.5 * k * x * x

    s = free_particle_system([1e-3, 0.0, 0.0])
    integ = VelocityVerlet(0.5)
    pot = integ.prime(s, spring)
    e0 = s.kinetic_energy() + pot
    for _ in range(2000):
        pot = integ.step(s, spring)
    e1 = s.kinetic_energy() + pot
    assert abs(e1 - e0) / abs(e0) < 1e-4


def test_time_reversibility():
    """Running forward then with negated velocities returns to the start."""
    k = 4.0

    def spring(system):
        x = system.positions[0] - 5.0
        return (-k * x)[None, :], float(0.5 * k * np.sum(x * x))

    s = free_particle_system([2e-3, -1e-3, 5e-4])
    start = s.positions.copy()
    integ = VelocityVerlet(1.0)
    integ.prime(s, spring)
    for _ in range(100):
        integ.step(s, spring)
    s.velocities *= -1.0
    # Re-prime not needed: forces already match current positions.
    for _ in range(100):
        integ.step(s, spring)
    np.testing.assert_allclose(s.positions, start, atol=1e-9)


def test_step_updates_forces_in_system():
    calls = []

    def recording_force(system):
        calls.append(system.positions.copy())
        return np.full_like(system.positions, 0.5), 0.0

    s = free_particle_system([0.0, 0.0, 0.0])
    integ = VelocityVerlet(2.0)
    integ.prime(s, recording_force)
    integ.step(s, recording_force)
    np.testing.assert_array_equal(s.forces, 0.5)
    assert len(calls) == 2  # one prime + one step

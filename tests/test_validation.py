"""Tests for argument-validation helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro.util import (
    ConfigError,
    FasdaError,
    SimulationError,
    ValidationError,
    check_positive,
    check_shape,
    ensure_f64,
)


def test_exception_hierarchy():
    for exc in (ConfigError, ValidationError, SimulationError):
        assert issubclass(exc, FasdaError)
    assert issubclass(FasdaError, Exception)


def test_check_positive_accepts_positive():
    assert check_positive("x", 2.5) == 2.5


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_check_positive_rejects(bad):
    with pytest.raises(ValidationError, match="x must be positive"):
        check_positive("x", bad)


def test_check_shape_exact():
    a = np.zeros((4, 3))
    assert check_shape("a", a, (4, 3)) is a


def test_check_shape_wildcard():
    a = np.zeros((7, 3))
    assert check_shape("a", a, (-1, 3)) is a


def test_check_shape_rejects_wrong_rank():
    with pytest.raises(ValidationError):
        check_shape("a", np.zeros(3), (-1, 3))


def test_check_shape_rejects_wrong_extent():
    with pytest.raises(ValidationError):
        check_shape("a", np.zeros((3, 4)), (-1, 3))


def test_ensure_f64_casts():
    out = ensure_f64(np.arange(3, dtype=np.int32))
    assert out.dtype == np.float64
    assert out.flags["C_CONTIGUOUS"]


def test_ensure_f64_passthrough_is_view():
    a = np.zeros(5, dtype=np.float64)
    out = ensure_f64(a)
    out[0] = 1.0
    assert a[0] == 1.0  # no copy for already-conforming input

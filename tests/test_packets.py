"""Tests for the communication interface (packets, gates, chains)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packets import (
    F2RGate,
    P2REncapsulatorChain,
    Packet,
    PacketGate,
    Record,
    unpack,
)
from repro.util.errors import ValidationError


def pos_record(pid, cell=(0, 0, 0)):
    return Record("position", pid, cell, (0.1, 0.2, 0.3))


def frc_record(pid, cell=(0, 0, 0)):
    return Record("force", pid, cell, (1.0, -1.0, 0.5))


class TestRecord:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError):
            Record("velocity", 0, (0, 0, 0), (0.0,))


class TestPacket:
    def test_size_limits(self):
        with pytest.raises(ValidationError):
            Packet(0, records=())
        with pytest.raises(ValidationError):
            Packet(0, records=tuple(pos_record(i) for i in range(5)))

    def test_unpack_roundtrip(self):
        records = tuple(pos_record(i) for i in range(3))
        assert unpack(Packet(1, records)) == records


class TestPacketGate:
    def test_emits_on_fourth_record(self):
        gate = PacketGate(dst=2)
        assert gate.push(pos_record(0)) is None
        assert gate.push(pos_record(1)) is None
        assert gate.push(pos_record(2)) is None
        pkt = gate.push(pos_record(3))
        assert pkt is not None
        assert len(pkt.records) == 4
        assert not pkt.last
        assert pkt.dst == 2

    def test_flush_partial_sets_last(self):
        gate = PacketGate(dst=0)
        gate.push(pos_record(0))
        pkt = gate.flush()
        assert pkt is not None
        assert pkt.last
        assert len(pkt.records) == 1

    def test_flush_empty_returns_none(self):
        assert PacketGate(dst=0).flush() is None

    def test_counters(self):
        gate = PacketGate(dst=0)
        for i in range(6):
            gate.push(pos_record(i))
        gate.flush()
        assert gate.records_sent == 6
        assert gate.packets_sent == 2  # one full + one partial

    @given(st.integers(0, 40))
    @settings(max_examples=50, deadline=None)
    def test_packet_count_is_ceil(self, n):
        gate = PacketGate(dst=0)
        for i in range(n):
            gate.push(pos_record(i))
        gate.flush()
        assert gate.packets_sent == (n + 3) // 4
        assert gate.records_sent == n


class TestP2RChain:
    def test_duplicate_neighbors_rejected(self):
        with pytest.raises(ValidationError):
            P2REncapsulatorChain([1, 1])

    def test_rejects_forces(self):
        chain = P2REncapsulatorChain([1])
        with pytest.raises(ValidationError):
            chain.route(frc_record(0), [1])

    def test_multi_destination_copies(self):
        """One position with three destination nodes lands in three gates."""
        chain = P2REncapsulatorChain([1, 2, 3])
        for i in range(4):
            chain.route(pos_record(i), [1, 2, 3])
        # Each gate filled exactly once.
        assert chain.packets_sent == 3
        for gate in chain.gates.values():
            assert gate.records_sent == 4

    def test_unknown_destination_rejected(self):
        chain = P2REncapsulatorChain([1])
        with pytest.raises(ValidationError, match="departure gate"):
            chain.route(pos_record(0), [9])

    def test_flush_all_flushes_every_gate(self):
        chain = P2REncapsulatorChain([1, 2])
        chain.route(pos_record(0), [1])
        chain.route(pos_record(1), [2])
        pkts = chain.flush_all()
        assert len(pkts) == 2
        assert all(p.last for p in pkts)


class TestPacketFuzz:
    """Property tests: arbitrary routing patterns conserve records."""

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 200),          # particle id
                st.sets(st.integers(1, 5), min_size=1, max_size=5),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_chain_conserves_records(self, routes):
        chain = P2REncapsulatorChain([1, 2, 3, 4, 5])
        packets = []
        expected = {dst: 0 for dst in (1, 2, 3, 4, 5)}
        for pid, dests in routes:
            packets.extend(chain.route(pos_record(pid), sorted(dests)))
            for d in dests:
                expected[d] += 1
        packets.extend(chain.flush_all())
        received = {dst: 0 for dst in (1, 2, 3, 4, 5)}
        for pkt in packets:
            received[pkt.dst] += len(pkt.records)
        assert received == expected
        # Only the final packet per destination carries `last`.
        for dst in (1, 2, 3, 4, 5):
            lasts = [p.last for p in packets if p.dst == dst]
            assert sum(lasts) <= 1
            if lasts:
                assert not any(lasts[:-1])

    @given(st.lists(st.integers(1, 3), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_f2r_conserves_records(self, destinations):
        gate = F2RGate([1, 2, 3])
        packets = []
        for i, dst in enumerate(destinations):
            pkt = gate.route(frc_record(i), dst)
            if pkt is not None:
                packets.append(pkt)
        packets.extend(gate.flush_all())
        total = sum(len(p.records) for p in packets)
        assert total == len(destinations)


class TestF2RGate:
    def test_rejects_positions(self):
        gate = F2RGate([1])
        with pytest.raises(ValidationError):
            gate.route(pos_record(0), 1)

    def test_single_destination(self):
        gate = F2RGate([1, 2])
        for i in range(4):
            assert gate.route(frc_record(i), 1) is None or i == 3
        assert gate.gates[1].packets_sent == 1
        assert gate.gates[2].packets_sent == 0

    def test_unknown_destination_rejected(self):
        with pytest.raises(ValidationError):
            F2RGate([1]).route(frc_record(0), 5)

    def test_flush_all(self):
        gate = F2RGate([1, 2])
        gate.route(frc_record(0), 2)
        pkts = gate.flush_all()
        assert len(pkts) == 1
        assert pkts[0].dst == 2 and pkts[0].last

"""Tests for reciprocal-space Ewald (the LR complement / validation)."""

import numpy as np
import pytest

from repro.md.ewald import COULOMB_KCAL_MOL_A
from repro.md.longrange import (
    ewald_reciprocal_energy,
    ewald_self_energy,
    ewald_total_energy,
    madelung_constant_rocksalt,
)
from repro.util.errors import ValidationError


class TestSelfEnergy:
    def test_formula(self):
        charges = np.array([1.0, -1.0, 2.0])
        beta = 0.4
        expected = -COULOMB_KCAL_MOL_A * beta / np.sqrt(np.pi) * 6.0
        assert ewald_self_energy(charges, beta) == pytest.approx(expected)

    def test_always_negative_for_charged_particles(self):
        assert ewald_self_energy(np.array([1.0]), 0.3) < 0


class TestReciprocal:
    def test_neutral_uniform_pair(self):
        """Two opposite charges: reciprocal energy is finite and real."""
        pos = np.array([[2.0, 5.0, 5.0], [8.0, 5.0, 5.0]])
        q = np.array([1.0, -1.0])
        e = ewald_reciprocal_energy(pos, q, np.full(3, 10.0), beta=0.35)
        assert np.isfinite(e)

    def test_invariant_under_translation(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 12.0, size=(16, 3))
        q = np.tile([1.0, -1.0], 8)
        box = np.full(3, 12.0)
        e0 = ewald_reciprocal_energy(pos, q, box, beta=0.4)
        e1 = ewald_reciprocal_energy((pos + 3.7) % box, q, box, beta=0.4)
        assert e1 == pytest.approx(e0, rel=1e-9)

    def test_converged_in_kmax(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 10.0, size=(8, 3))
        q = np.tile([1.0, -1.0], 4)
        box = np.full(3, 10.0)
        e8 = ewald_reciprocal_energy(pos, q, box, beta=0.45, k_max=8)
        e12 = ewald_reciprocal_energy(pos, q, box, beta=0.45, k_max=12)
        assert e8 == pytest.approx(e12, rel=1e-5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ewald_reciprocal_energy(
                np.zeros((2, 3)), np.zeros(3), np.full(3, 10.0), 0.3
            )
        with pytest.raises(ValidationError):
            ewald_reciprocal_energy(
                np.zeros((2, 3)), np.zeros(2), np.full(3, 10.0), 0.3, k_max=0
            )


class TestTotalEnergy:
    def test_beta_independence(self):
        """The physical total must not depend on the splitting parameter
        — the definitive internal-consistency check of an Ewald sum."""
        from repro.md.lattice import build_rocksalt

        s = build_rocksalt(2, 6.0)
        box = s.box
        cutoff = float(np.min(box)) / 2.0 * 0.999
        totals = []
        # Betas large enough that erfc(beta * cutoff) is fully converged;
        # smaller betas would need a bigger real-space cutoff.
        for beta in (0.55, 0.65, 0.8):
            real, rec, self_e = ewald_total_energy(
                s.positions, s.charges, box, beta, cutoff, k_max=12
            )
            totals.append(real + rec + self_e)
        assert totals[0] == pytest.approx(totals[1], rel=1e-5)
        assert totals[1] == pytest.approx(totals[2], rel=1e-5)

    def test_charged_system_rejected(self):
        with pytest.raises(ValidationError, match="neutral"):
            ewald_total_energy(
                np.zeros((1, 3)), np.array([1.0]), np.full(3, 10.0), 0.4, 4.0
            )


class TestMadelung:
    def test_rocksalt_madelung_constant(self):
        """The classic Ewald validation: NaCl Madelung = 1.747565."""
        m = madelung_constant_rocksalt(n_cells=2, k_max=10)
        assert m == pytest.approx(1.747565, rel=2e-4)

    def test_independent_of_lattice_constant(self):
        """Madelung is dimensionless: any a0 gives the same value."""
        m1 = madelung_constant_rocksalt(n_cells=2, lattice_constant=5.0, k_max=10)
        m2 = madelung_constant_rocksalt(n_cells=2, lattice_constant=7.0, k_max=10)
        assert m1 == pytest.approx(m2, rel=1e-4)

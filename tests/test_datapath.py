"""Tests for the functional filter and force pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import FixedPointFormat, ForceTableSet
from repro.core.datapath import (
    ForcePipeline,
    PairFilter,
    quantize_cell_fractions,
)
from repro.md.params import LJTable
from repro.util.errors import ValidationError


@pytest.fixture(scope="module")
def tables():
    return ForceTableSet(n_s=14, n_b=256)


@pytest.fixture(scope="module")
def pipeline(tables):
    return ForcePipeline(LJTable(("Na",)), cutoff=8.5, tables=tables)


class TestPairFilter:
    def test_r2_min_validation(self):
        with pytest.raises(ValidationError):
            PairFilter(0.0)
        with pytest.raises(ValidationError):
            PairFilter(1.0)

    def test_accepts_inside_cutoff(self):
        f = PairFilter(2.0 ** -14)
        res = f.check(np.array([[0.5, 0.0, 0.0]]))
        assert res.mask[0]
        assert res.n_accepted == 1
        assert res.r2[0] == pytest.approx(0.25)

    def test_rejects_outside_cutoff(self):
        f = PairFilter(2.0 ** -14)
        res = f.check(np.array([[0.8, 0.8, 0.0]]))  # r2 = 1.28
        assert not res.mask[0]
        assert res.n_accepted == 0
        assert res.n_candidates == 1

    def test_exactly_at_cutoff_rejected(self):
        f = PairFilter(2.0 ** -14)
        res = f.check(np.array([[1.0, 0.0, 0.0]]))
        assert not res.mask[0]

    def test_collapse_raises(self):
        f = PairFilter(2.0 ** -6)
        with pytest.raises(ValidationError, match="excluded small-r"):
            f.check(np.array([[0.01, 0.0, 0.0]]))

    def test_r2_is_float32(self):
        f = PairFilter(2.0 ** -14)
        res = f.check(np.array([[0.3, 0.2, 0.1]]))
        assert res.r2.dtype == np.float32

    @given(
        st.lists(
            st.tuples(
                st.floats(-0.99, 0.99), st.floats(-0.99, 0.99), st.floats(-0.99, 0.99)
            ),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_mask_matches_r2_threshold(self, vectors):
        f = PairFilter(2.0 ** -20)
        dr = np.asarray(vectors)
        r2 = np.sum(dr * dr, axis=1)
        # Keep clear of both thresholds to avoid f32-rounding ambiguity.
        keep = (np.abs(r2 - 1.0) > 1e-6) & (r2 > 2.0 ** -18)
        dr = dr[keep]
        if len(dr) == 0:
            return
        res = f.check(dr)
        expected = np.sum(dr * dr, axis=1) < 1.0
        np.testing.assert_array_equal(res.mask, expected)


class TestForcePipeline:
    def test_force_matches_analytic(self, pipeline):
        """Pipeline output ~ double-precision Eq. 2 within table error."""
        lj = LJTable(("Na",))
        cutoff = 8.5
        r_phys = 4.0
        rn = r_phys / cutoff
        dr = np.array([[rn, 0.0, 0.0]])
        r2 = np.array([rn * rn], dtype=np.float32)
        f, e = pipeline.compute(dr, r2, np.array([0]), np.array([0]))
        scalar = lj.c14[0, 0] * r_phys ** -14 - lj.c8[0, 0] * r_phys ** -8
        expected_fx = scalar * r_phys  # kcal/mol/A along +x
        assert f[0, 0] == pytest.approx(expected_fx, rel=2e-3)
        expected_e = lj.c12[0, 0] * r_phys ** -12 - lj.c6[0, 0] * r_phys ** -6
        assert e[0] == pytest.approx(expected_e, rel=2e-3)

    def test_output_dtype_is_float32(self, pipeline):
        dr = np.array([[0.3, 0.1, 0.0]])
        r2 = np.sum(dr * dr, axis=1).astype(np.float32)
        f, e = pipeline.compute(dr, r2, np.array([0]), np.array([0]))
        assert f.dtype == np.float32
        assert e.dtype == np.float32

    def test_antisymmetric_in_dr(self, pipeline):
        dr = np.array([[0.3, -0.2, 0.1]])
        r2 = np.sum(dr * dr, axis=1).astype(np.float32)
        f_pos, _ = pipeline.compute(dr, r2, np.array([0]), np.array([0]))
        f_neg, _ = pipeline.compute(-dr, r2, np.array([0]), np.array([0]))
        np.testing.assert_array_equal(f_pos, -f_neg)

    def test_multispecies_coefficients(self, tables):
        """Na-Ar pairs use mixed coefficients, not either pure pair."""
        lj = LJTable(("Na", "Ar"))
        pipe = ForcePipeline(lj, 8.5, tables)
        dr = np.array([[0.4, 0.0, 0.0]])
        r2 = np.sum(dr * dr, axis=1).astype(np.float32)
        f_nana, _ = pipe.compute(dr, r2, np.array([0]), np.array([0]))
        f_naar, _ = pipe.compute(dr, r2, np.array([0]), np.array([1]))
        f_arar, _ = pipe.compute(dr, r2, np.array([1]), np.array([1]))
        assert f_nana[0, 0] != f_naar[0, 0] != f_arar[0, 0]

    @given(st.floats(min_value=0.25, max_value=0.99))
    @settings(max_examples=100, deadline=None)
    def test_relative_error_vs_double(self, rn):
        """Pipeline force stays within combined table+f32 error bounds."""
        lj = LJTable(("Na",))
        cutoff = 8.5
        tables = ForceTableSet(n_s=14, n_b=256)
        pipe = ForcePipeline(lj, cutoff, tables)
        dr = np.array([[rn, 0.0, 0.0]])
        r2 = np.array([rn * rn], dtype=np.float32)
        f, _ = pipe.compute(dr, r2, np.array([0]), np.array([0]))
        r_phys = rn * cutoff
        expected = (lj.c14[0, 0] * r_phys ** -14 - lj.c8[0, 0] * r_phys ** -8) * r_phys
        if abs(expected) > 1e-6:
            assert f[0, 0] == pytest.approx(expected, rel=5e-3, abs=1e-5)


class TestQuantizeCellFractions:
    def test_basic_quantization(self):
        fmt = FixedPointFormat(frac_bits=8)
        pos = np.array([[1.0, 2.5, 8.4]])
        coords = np.array([[0, 0, 0]])
        frac = quantize_cell_fractions(pos, coords, 8.5, fmt)
        assert np.all(frac >= 0) and np.all(frac < 1.0)
        np.testing.assert_allclose(frac[0], pos[0] / 8.5, atol=2 ** -9 + 1e-12)

    def test_face_particle_clamped(self):
        """A particle numerically at the cell's upper face stays in [0,1)."""
        fmt = FixedPointFormat(frac_bits=8)
        pos = np.array([[8.5, 0.0, 0.0]])
        coords = np.array([[0, 0, 0]])  # assigned to cell 0 despite pos = edge
        frac = quantize_cell_fractions(pos, coords, 8.5, fmt)
        assert frac[0, 0] == 1.0 - 2.0 ** -8

    def test_fraction_relative_to_cell(self):
        fmt = FixedPointFormat(frac_bits=16)
        pos = np.array([[9.0, 17.5, 0.5]])
        coords = np.array([[1, 2, 0]])
        frac = quantize_cell_fractions(pos, coords, 8.5, fmt)
        np.testing.assert_allclose(
            frac[0], [0.5 / 8.5, 0.5 / 8.5, 0.5 / 8.5], atol=2 ** -17 + 1e-12
        )

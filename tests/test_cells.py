"""Tests for cell-space partitioning and the half-shell method."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md.cells import (
    CellGrid,
    CellList,
    FULL_SHELL_OFFSETS,
    HALF_SHELL_OFFSETS,
)
from repro.util.errors import ValidationError


class TestOffsets:
    def test_half_shell_has_13(self):
        assert len(HALF_SHELL_OFFSETS) == 13

    def test_full_shell_has_26(self):
        assert len(FULL_SHELL_OFFSETS) == 26

    def test_half_shell_and_negations_partition_full_shell(self):
        """Half shell + its negations = the 26 neighbors, no overlap."""
        negated = {tuple(-o for o in off) for off in HALF_SHELL_OFFSETS}
        half = set(HALF_SHELL_OFFSETS)
        assert not (half & negated)
        assert half | negated == set(FULL_SHELL_OFFSETS)


class TestCellGrid:
    def test_dims_below_three_rejected(self):
        with pytest.raises(ValidationError):
            CellGrid((2, 3, 3), 8.5)

    def test_bad_edge_rejected(self):
        with pytest.raises(ValidationError):
            CellGrid((3, 3, 3), 0.0)

    def test_cell_id_formula(self):
        """CID = Dy*Dz*x + Dz*y + z (paper Eq. 7)."""
        g = CellGrid((4, 5, 6), 1.0)
        assert g.cell_id(np.array([0, 0, 0])) == 0
        assert g.cell_id(np.array([0, 0, 1])) == 1
        assert g.cell_id(np.array([0, 1, 0])) == 6
        assert g.cell_id(np.array([1, 0, 0])) == 30
        assert g.cell_id(np.array([3, 4, 5])) == 3 * 30 + 4 * 6 + 5

    @given(
        st.tuples(
            st.integers(3, 8), st.integers(3, 8), st.integers(3, 8)
        ),
        st.integers(0, 10_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_cell_id_roundtrip(self, dims, raw):
        g = CellGrid(dims, 1.0)
        cid = raw % g.n_cells
        coords = g.cell_coords(np.int64(cid))
        assert int(g.cell_id(coords)) == cid
        assert np.all(coords >= 0)
        assert np.all(coords < np.asarray(dims))

    def test_coords_of_positions_interior(self):
        g = CellGrid((3, 3, 3), 2.0)
        coords = g.coords_of_positions(np.array([[0.1, 2.1, 5.9]]))
        np.testing.assert_array_equal(coords, [[0, 1, 2]])

    def test_coords_of_positions_clamps_box_face(self):
        """A wrapped position numerically equal to the box edge stays in range."""
        g = CellGrid((3, 3, 3), 2.0)
        coords = g.coords_of_positions(np.array([[6.0, 0.0, 0.0]]))
        assert coords[0, 0] == 2

    def test_neighbor_with_shift_no_wrap(self):
        g = CellGrid((4, 4, 4), 2.0)
        ncoord, shift = g.neighbor_with_shift((1, 1, 1), (1, 0, -1))
        assert ncoord == (2, 1, 0)
        np.testing.assert_array_equal(shift, 0.0)

    def test_neighbor_with_shift_wraps_positive(self):
        g = CellGrid((4, 4, 4), 2.0)
        ncoord, shift = g.neighbor_with_shift((3, 0, 0), (1, 0, 0))
        assert ncoord == (0, 0, 0)
        np.testing.assert_array_equal(shift, [8.0, 0.0, 0.0])

    def test_neighbor_with_shift_wraps_negative(self):
        g = CellGrid((4, 4, 4), 2.0)
        ncoord, shift = g.neighbor_with_shift((0, 0, 0), (-1, 0, 0))
        assert ncoord == (3, 0, 0)
        np.testing.assert_array_equal(shift, [-8.0, 0.0, 0.0])

    def test_box_property(self):
        g = CellGrid((3, 4, 5), 8.5)
        np.testing.assert_allclose(g.box, [25.5, 34.0, 42.5])


class TestCellList:
    def test_every_particle_in_exactly_one_cell(self):
        rng = np.random.default_rng(0)
        g = CellGrid((3, 3, 3), 2.0)
        pos = rng.uniform(0, 6.0, size=(200, 3))
        cl = CellList(g, pos)
        seen = np.concatenate(
            [cl.particles_in_cell(c) for c in range(g.n_cells)]
        )
        assert sorted(seen) == list(range(200))

    def test_particles_assigned_to_containing_cell(self):
        g = CellGrid((3, 3, 3), 2.0)
        pos = np.array([[0.5, 0.5, 0.5], [5.5, 5.5, 5.5], [2.5, 0.5, 4.5]])
        cl = CellList(g, pos)
        assert list(cl.particles_in_cell(int(g.cell_id(np.array([0, 0, 0]))))) == [0]
        assert list(cl.particles_in_cell(int(g.cell_id(np.array([2, 2, 2]))))) == [1]
        assert list(cl.particles_in_cell(int(g.cell_id(np.array([1, 0, 2]))))) == [2]

    def test_occupancies_sum_to_n(self):
        rng = np.random.default_rng(1)
        g = CellGrid((4, 3, 5), 1.5)
        pos = rng.uniform(0, g.box, size=(333, 3))
        cl = CellList(g, pos)
        assert cl.occupancies().sum() == 333

    def test_empty_cells_listed_correctly(self):
        g = CellGrid((3, 3, 3), 2.0)
        pos = np.array([[0.5, 0.5, 0.5]])
        cl = CellList(g, pos)
        np.testing.assert_array_equal(cl.cells_nonempty(), [0])

    def test_occupancies_memoized_per_build(self):
        """occupancies() returns the constructor's counts array itself —
        repeated calls in a step are free and see identical data."""
        rng = np.random.default_rng(2)
        g = CellGrid((4, 3, 5), 1.5)
        pos = rng.uniform(0, g.box, size=(200, 3))
        cl = CellList(g, pos)
        first = cl.occupancies()
        assert first is cl.occupancies()
        assert first is cl.counts

"""Tests for the pair-plan subsystem and the batched force hot path.

The contract under test: the cached :class:`CellPairPlan` topology, the
step-wide chunked enumerator, the padded-broadcast fast path, and the
bincount scatter must all reproduce the original per-cell half-shell
traversal *exactly* — same pair set, same workload statistics, and
forces/energies within float64 round-off (<= 1e-10) of both the per-cell
loop and the O(N^2) brute-force golden model.
"""

import numpy as np
import pytest

from repro.md import CellGrid, LJTable, ParticleSystem
from repro.md.cells import CellList, HALF_SHELL_OFFSETS
from repro.md.kernels import scatter_add
from repro.md.neighborlist import VerletNeighborList
from repro.md.pairplan import (
    ROWS_PER_CELL,
    CellPairPlan,
    candidates_per_cell,
    iter_pair_chunks,
    plan_for_dims,
    plan_for_grid,
)
from repro.md.reference import (
    _forces_cells_padded,
    _padded_viable,
    compute_forces_bruteforce,
    compute_forces_cells,
    compute_forces_cells_loop,
)
from repro.core.config import MachineConfig
from repro.core.datapath import quantize_cell_fractions
from repro.core.machine import FasdaMachine
from repro.util.errors import ValidationError


def random_system(dims, cell_edge=4.0, per_cell=6, seed=0, species=("Na",)):
    """Random multi-cell box with a minimum separation for finite forces."""
    rng = np.random.default_rng(seed)
    grid = CellGrid(dims, cell_edge)
    n = per_cell * grid.n_cells
    pos = rng.uniform(0, grid.box, size=(n, 3))
    keep = [0]
    for i in range(1, n):
        dr = pos[keep] - pos[i]
        dr -= grid.box * np.rint(dr / grid.box)
        if np.min(np.sum(dr * dr, axis=1)) > 1.8 ** 2:
            keep.append(i)
    pos = pos[keep]
    lj = LJTable(species)
    sys_ = ParticleSystem(
        positions=pos,
        velocities=np.zeros_like(pos),
        species=(np.arange(len(pos)) % len(species)).astype(np.int32),
        lj_table=lj,
        box=grid.box,
    )
    return sys_, grid


def reference_pair_set(plan, clist):
    """Every half-shell candidate pair, derived cell-by-cell in Python."""
    pairs = set()
    for cid in range(plan.n_cells):
        home = list(clist.particles_in_cell(cid))
        for x, i in enumerate(home):
            for j in home[x + 1 :]:
                pairs.add((cid * ROWS_PER_CELL, i, j))
        for k in range(1, ROWS_PER_CELL):
            row = cid * ROWS_PER_CELL + k
            for i in home:
                for j in clist.particles_in_cell(plan.nbr[row]):
                    pairs.add((row, i, j))
    return pairs


class TestPlanTopology:
    def test_matches_neighbor_with_shift(self):
        grid = CellGrid((3, 4, 5), 4.0)
        plan = plan_for_grid(grid)
        for cid in range(grid.n_cells):
            base = cid * ROWS_PER_CELL
            assert plan.home[base] == plan.nbr[base] == cid
            assert plan.is_self[base]
            assert not plan.has_shift[base]
            np.testing.assert_array_equal(plan.shift[base], 0.0)
            coord = tuple(int(c) for c in grid.cell_coords(np.int64(cid)))
            for k, off in enumerate(HALF_SHELL_OFFSETS, start=1):
                ncoord, img_shift = grid.neighbor_with_shift(coord, off)
                row = base + k
                assert plan.home[row] == cid
                assert plan.nbr[row] == grid.cell_id(np.asarray(ncoord))
                assert not plan.is_self[row]
                np.testing.assert_allclose(plan.shift[row], img_shift)
                assert plan.has_shift[row] == bool(np.any(img_shift != 0))

    def test_neighbor_ids_shape_and_distinct(self):
        plan = plan_for_dims((3, 3, 3), (4.0, 4.0, 4.0))
        ids = plan.neighbor_ids
        assert ids.shape == (27, 13)
        # dims >= 3 guarantees the 13 half-shell neighbors are distinct
        # cells (and none equals the home cell).
        for cid in range(27):
            assert len(set(ids[cid])) == 13
            assert cid not in set(ids[cid])

    def test_cell_coords_roundtrip(self):
        plan = plan_for_dims((3, 4, 5), (4.0, 4.0, 4.0))
        cids = np.arange(plan.n_cells)
        np.testing.assert_array_equal(
            plan.cell_id(plan.cell_coords_of(cids)), cids
        )

    def test_plan_cache_identity(self):
        grid = CellGrid((3, 3, 3), 4.0)
        assert plan_for_grid(grid) is plan_for_grid(CellGrid((3, 3, 3), 4.0))
        assert plan_for_grid(grid) is not plan_for_dims(
            (3, 3, 3), (5.0, 5.0, 5.0)
        )

    def test_validation(self):
        with pytest.raises(ValidationError):
            CellPairPlan((2, 3, 3), (4.0, 4.0, 4.0))
        with pytest.raises(ValidationError):
            CellPairPlan((3, 3, 3), (4.0, -1.0, 4.0))


class TestScatterAdd:
    def test_matches_add_at_2d(self):
        rng = np.random.default_rng(3)
        idx = rng.integers(0, 50, size=1000)
        vals = rng.normal(size=(1000, 3))
        a = np.zeros((50, 3))
        b = np.zeros((50, 3))
        scatter_add(a, idx, vals)
        np.add.at(b, idx, vals)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_matches_add_at_1d_and_counting(self):
        rng = np.random.default_rng(4)
        idx = rng.integers(0, 20, size=500)
        vals = rng.normal(size=500)
        a = np.zeros(20)
        b = np.zeros(20)
        scatter_add(a, idx, vals)
        np.add.at(b, idx, vals)
        np.testing.assert_allclose(a, b, atol=1e-12)
        counts = np.zeros(20, dtype=np.int64)
        scatter_add(counts, idx)
        np.testing.assert_array_equal(counts, np.bincount(idx, minlength=20))

    def test_empty_index_noop(self):
        a = np.ones((4, 3))
        scatter_add(a, np.array([], dtype=np.int64), np.empty((0, 3)))
        np.testing.assert_array_equal(a, 1.0)


class TestEnumerator:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_pair_set_matches_reference(self, seed):
        sys_, grid = random_system((3, 4, 3), per_cell=3, seed=seed)
        clist = CellList(grid, sys_.positions)
        plan = plan_for_grid(grid)
        got = set()
        for chunk in iter_pair_chunks(
            plan, clist.counts, clist.start, clist.order
        ):
            for r, i, j in zip(chunk.row, chunk.ii, chunk.jj):
                key = (int(r), int(i), int(j))
                assert key not in got, "duplicate candidate pair"
                got.add(key)
        assert got == reference_pair_set(plan, clist)

    def test_tiny_chunks_same_pairs(self):
        sys_, grid = random_system((3, 3, 3), per_cell=4, seed=2)
        clist = CellList(grid, sys_.positions)
        plan = plan_for_grid(grid)

        def collect(target):
            out = []
            for chunk in iter_pair_chunks(
                plan, clist.counts, clist.start, clist.order,
                target_pairs=target,
            ):
                out.extend(zip(chunk.row, chunk.ii, chunk.jj))
            return out

        assert collect(7) == collect(10**9)

    def test_rows_subset(self):
        sys_, grid = random_system((3, 3, 3), per_cell=3, seed=5)
        clist = CellList(grid, sys_.positions)
        plan = plan_for_grid(grid)
        rows = np.arange(ROWS_PER_CELL)  # cell 0 only
        got = set()
        for chunk in iter_pair_chunks(
            plan, clist.counts, clist.start, clist.order, rows=rows
        ):
            got.update(zip(chunk.row, chunk.ii, chunk.jj))
        want = {
            (r, i, j)
            for (r, i, j) in reference_pair_set(plan, clist)
            if r < ROWS_PER_CELL
        }
        assert {(int(r), int(i), int(j)) for r, i, j in got} == want

    def test_candidate_formula_matches_enumeration(self):
        sys_, grid = random_system((3, 4, 5), per_cell=5, seed=3)
        clist = CellList(grid, sys_.positions)
        plan = plan_for_grid(grid)
        analytic = candidates_per_cell(plan, clist.counts)
        counted = np.zeros(plan.n_cells, dtype=np.int64)
        for chunk in iter_pair_chunks(
            plan, clist.counts, clist.start, clist.order
        ):
            scatter_add(counted, plan.home[chunk.row])
        np.testing.assert_array_equal(analytic, counted)

    def test_empty_and_single_particle(self):
        grid = CellGrid((3, 3, 3), 4.0)
        plan = plan_for_grid(grid)
        counts = np.zeros(27, dtype=np.int64)
        start = np.zeros(28, dtype=np.int64)
        assert list(iter_pair_chunks(plan, counts, start)) == []
        counts[13] = 1
        start[14:] = 1
        assert list(iter_pair_chunks(plan, counts, start)) == []
        assert candidates_per_cell(plan, counts).sum() == 0


class TestForceEquivalence:
    @pytest.mark.parametrize("species", [("Na",), ("Na", "Cl"), ("Na", "Cl", "Ar")])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_batched_vs_loop_vs_brute(self, species, seed):
        sys_, grid = random_system(
            (3, 3, 4), per_cell=5, seed=seed, species=species
        )
        f_new, e_new = compute_forces_cells(sys_, grid)
        f_old, e_old = compute_forces_cells_loop(sys_, grid)
        f_ref, e_ref = compute_forces_bruteforce(sys_, grid.cell_edge)
        scale = max(np.abs(f_ref).max(), 1.0)
        assert np.abs(f_new - f_old).max() <= 1e-10 * scale
        assert np.abs(f_new - f_ref).max() <= 1e-10 * scale
        assert abs(e_new - e_old) <= 1e-10 * max(abs(e_old), 1.0)
        assert abs(e_new - e_ref) <= 1e-10 * max(abs(e_ref), 1.0)

    def test_padded_and_chunked_agree(self):
        # Dense enough that the padded gate turns on; compare the padded
        # path directly against the chunked enumerator's result.
        sys_, grid = random_system((3, 3, 3), per_cell=12, seed=7)
        clist = CellList(grid, sys_.positions)
        plan = plan_for_grid(grid)
        assert _padded_viable(plan, clist)
        f_pad, e_pad = _forces_cells_padded(
            sys_.positions,
            sys_.species,
            sys_.lj_table,
            plan,
            clist,
            grid.cell_edge ** 2,
            0.0,
        )
        f_loop, e_loop = compute_forces_cells_loop(sys_, grid)
        scale = max(np.abs(f_loop).max(), 1.0)
        assert np.abs(f_pad - f_loop).max() <= 1e-10 * scale
        assert abs(e_pad - e_loop) <= 1e-10 * max(abs(e_loop), 1.0)

    def test_sparse_box_takes_chunked_path(self):
        # One crowded cell in an otherwise empty box: padding waste makes
        # the gate refuse, and the chunked fallback must still be exact.
        grid = CellGrid((5, 5, 5), 4.0)
        rng = np.random.default_rng(9)
        pos = rng.uniform(0.5, 3.5, size=(40, 3))  # all inside cell (0,0,0)
        pos = pos[
            [
                i
                for i in range(len(pos))
                if i == 0
                or np.min(np.sum((pos[:i] - pos[i]) ** 2, axis=1)) > 1.5 ** 2
            ]
        ]
        lj = LJTable(("Na",))
        sys_ = ParticleSystem(
            positions=pos,
            velocities=np.zeros_like(pos),
            species=np.zeros(len(pos), dtype=np.int32),
            lj_table=lj,
            box=grid.box,
        )
        clist = CellList(grid, pos)
        assert not _padded_viable(plan_for_grid(grid), clist)
        f_new, e_new = compute_forces_cells(sys_, grid)
        f_ref, e_ref = compute_forces_bruteforce(sys_, grid.cell_edge)
        assert np.abs(f_new - f_ref).max() <= 1e-10 * max(np.abs(f_ref).max(), 1.0)
        assert abs(e_new - e_ref) <= 1e-10 * max(abs(e_ref), 1.0)


class TestMachineStats:
    def test_stats_match_direct_half_shell_count(self):
        machine = FasdaMachine(MachineConfig((3, 3, 3)))
        stats = machine.compute_forces()
        clist = CellList(machine.grid, machine.system.positions)
        plan = plan_for_grid(machine.grid)
        np.testing.assert_array_equal(
            stats.candidates_per_cell, candidates_per_cell(plan, clist.counts)
        )
        # Accepted counts: recount by brute-force distance test over the
        # plan's candidate pairs using the machine's quantized fractions.
        pos = machine.system.positions
        coords = machine.grid.coords_of_positions(pos)
        frac = quantize_cell_fractions(
            pos, coords, machine.config.cutoff, machine.fmt
        )
        accepted = np.zeros(machine.grid.n_cells, dtype=np.int64)
        for chunk in iter_pair_chunks(
            plan, clist.counts, clist.start, clist.order
        ):
            dr = frac[chunk.ii] - frac[chunk.jj] - plan.offset[chunk.row]
            r2 = np.einsum("ij,ij->i", dr, dr).astype(np.float32)
            scatter_add(accepted, plan.home[chunk.row[r2 < 1.0]])
        np.testing.assert_array_equal(stats.accepted_per_cell, accepted)


class TestVerletBucketed:
    def test_bucketed_matches_bruteforce_pairs(self):
        # Box large enough for >= 3 cells per axis at cutoff + skin: the
        # bucketed and O(N^2) builders must list the identical pair set.
        rng = np.random.default_rng(12)
        box = np.array([13.0, 14.0, 15.0])
        pos = rng.uniform(0, box, size=(300, 3))
        fast = VerletNeighborList(cutoff=3.5, skin=0.5, box=box)
        fast.build(pos)
        slow = VerletNeighborList(cutoff=3.5, skin=0.5, box=box)
        slow._build_bruteforce(pos)
        fast_pairs = set(zip(*fast.pairs()))
        slow_pairs = set(zip(*slow.pairs()))
        assert fast_pairs == slow_pairs

    def test_small_box_falls_back_to_bruteforce(self):
        rng = np.random.default_rng(13)
        box = np.array([8.0, 8.0, 8.0])  # < 3 cells at cutoff + skin
        pos = rng.uniform(0, box, size=(60, 3))
        nl = VerletNeighborList(cutoff=2.5, skin=0.5, box=box)
        nl.build(pos)
        ref = VerletNeighborList(cutoff=2.5, skin=0.5, box=box)
        ref._build_bruteforce(pos)
        assert set(zip(*nl.pairs())) == set(zip(*ref.pairs()))


def test_cells_nonempty_returns_ndarray():
    grid = CellGrid((3, 3, 3), 4.0)
    pos = np.array([[1.0, 1.0, 1.0], [9.0, 9.0, 9.0]])
    clist = CellList(grid, pos)
    ids = clist.cells_nonempty()
    assert isinstance(ids, np.ndarray)
    assert ids.dtype == np.int64
    np.testing.assert_array_equal(ids, np.nonzero(clist.counts)[0])


class TestPlanCacheKeying:
    """The plan cache keys on a quantized edge, not the raw float —
    round-trip noise in a recomputed cell edge must not spawn duplicate
    plans (satellite fix: raw-float cache keying)."""

    def test_ulp_wobbled_edge_hits_the_same_plan(self):
        from repro.md.pairplan import plan_cache_info

        g1 = CellGrid((4, 4, 4), 1.2)
        p1 = plan_for_grid(g1)
        hits_before = plan_cache_info().hits
        g2 = CellGrid((4, 4, 4), float(np.nextafter(1.2, 2.0)))
        p2 = plan_for_grid(g2)
        assert p2 is p1
        assert plan_cache_info().hits == hits_before + 1
        # The plan was built from the quantized edge, so equal cache
        # keys imply exactly equal geometry.
        np.testing.assert_array_equal(p1.edges, p2.edges)

    def test_distinct_edges_stay_distinct(self):
        p1 = plan_for_grid(CellGrid((4, 4, 4), 1.2))
        p2 = plan_for_grid(CellGrid((4, 4, 4), 1.3))
        assert p1 is not p2

    def test_cache_info_exposed(self):
        from repro.md.pairplan import plan_cache_info

        info = plan_cache_info()
        assert hasattr(info, "hits") and hasattr(info, "misses")

    def test_clear_plan_cache(self):
        from repro.md.pairplan import clear_plan_cache, plan_cache_info

        grid = CellGrid((4, 4, 4), 1.2)
        p1 = plan_for_grid(grid)
        clear_plan_cache()
        info = plan_cache_info()
        assert info.hits == 0 and info.misses == 0 and info.currsize == 0
        p2 = plan_for_grid(grid)
        assert p2 is not p1  # genuinely rebuilt, not a stale entry
        assert plan_cache_info().misses == 1


class TestPaddedDecode:
    """The flat-index decode tables are hoisted onto the cached plan."""

    def test_tables_match_divmod(self):
        plan = plan_for_dims((3, 3, 3), (4.0, 4.0, 4.0))
        cap = 5
        cell_of, i_of, j_of = plan.padded_decode(cap)
        f = np.arange(plan.n_cells * cap * cap, dtype=np.int64)
        np.testing.assert_array_equal(cell_of, f // (cap * cap))
        np.testing.assert_array_equal(i_of, (f // cap) % cap)
        np.testing.assert_array_equal(j_of, f % cap)
        for arr in (cell_of, i_of, j_of):
            assert arr.dtype == np.int32

    def test_one_entry_cache(self):
        plan = plan_for_dims((3, 3, 4), (4.0, 4.0, 4.0))
        t1 = plan.padded_decode(6)
        assert plan.padded_decode(6) is t1  # warm: same tuple back
        t2 = plan.padded_decode(7)  # cap change evicts
        assert t2 is not t1
        assert len(t2[0]) == plan.n_cells * 49

"""Tests for chained vs. bulk synchronization (paper Sec. 4.4)."""

import numpy as np
import pytest

from repro.core.sync import (
    constant_work,
    random_straggler_work,
    run_bulk_sync,
    run_chained_sync,
    straggler_work,
)
from repro.network.topology import RingTopology, TorusTopology
from repro.util.errors import ConfigError


TORUS = TorusTopology((2, 2, 2))


class TestWorkFunctions:
    def test_constant(self):
        fn = constant_work(100.0)
        assert fn(0, 0) == 100.0
        assert fn(7, 99) == 100.0

    def test_straggler_all_iterations(self):
        fn = straggler_work(100.0, straggler_node=2, slowdown=3.0)
        assert fn(2, 5) == 300.0
        assert fn(1, 5) == 100.0

    def test_straggler_selected_iterations(self):
        fn = straggler_work(100.0, 2, 3.0, iterations=[1])
        assert fn(2, 1) == 300.0
        assert fn(2, 0) == 100.0

    def test_random_straggler_deterministic(self):
        fn = random_straggler_work(100.0, 4.0, probability=0.5, seed=1)
        assert fn(3, 7) == fn(3, 7)
        vals = {fn(n, k) for n in range(4) for k in range(10)}
        assert vals == {100.0, 400.0}


class TestChainedSync:
    def test_uniform_work_all_nodes_finish_together(self):
        res = run_chained_sync(TORUS, constant_work(1000.0), n_iterations=3)
        # Symmetric system: all nodes complete each iteration simultaneously.
        for k in range(3):
            assert res.start_spread(k) == pytest.approx(0.0, abs=1e-9)

    def test_iteration_time_composition(self):
        res = run_chained_sync(
            TORUS,
            constant_work(1000.0),
            n_iterations=1,
            link_latency=200.0,
            mu_cycles=100.0,
            position_tail_fraction=0.05,
        )
        # t = work + latency + tail + mu + latency(last force back).
        expected = 1000.0 + 200.0 + 0.05 * 1000.0 + 200.0 + 100.0
        assert res.makespan == pytest.approx(expected)

    def test_steady_state_rate_bounded_by_straggler(self):
        """A persistent straggler bounds throughput (paper admits this)."""
        base, slow = 1000.0, 2.0
        res = run_chained_sync(
            TORUS, straggler_work(base, 0, slow), n_iterations=10
        )
        assert res.mean_iteration_time() >= base * slow

    def test_head_start_after_transient_straggler(self):
        """A one-iteration straggler lets distant nodes run ahead —
        the decoupling Fig. 12 illustrates."""
        res = run_chained_sync(
            RingTopology(8),
            straggler_work(1000.0, 0, 5.0, iterations=[0]),
            n_iterations=2,
        )
        # After iteration 0, nodes far from the straggler finished earlier.
        assert res.start_spread(0) > 0.0

    def test_straggler_delay_propagates_one_hop_per_iteration(self):
        """The "chain reaction" of Sec. 4.4: a straggle on node 0 stalls
        only its neighbors immediately; a node at ring distance d keeps
        running free for ~d iterations before the delay wave arrives."""
        work = straggler_work(1000.0, 0, 5.0, iterations=[0])
        res = run_chained_sync(
            RingTopology(8), work, n_iterations=3, link_latency=50.0
        )
        done = res.iteration_complete
        free0 = done[4, 0]  # node at max distance: free-running at iter 0
        # Iteration 0: only direct neighbors (distance 1) are delayed.
        assert done[1, 0] > free0 and done[7, 0] > free0
        for far in (2, 3, 4, 5, 6):
            assert done[far, 0] == pytest.approx(free0)
        # Iteration 1: the wave reaches distance-2 nodes; distance >= 3
        # nodes still run free.
        free1 = done[4, 1]
        assert done[2, 1] > free1 and done[6, 1] > free1
        for far in (3, 4, 5):
            assert done[far, 1] == pytest.approx(free1)
        # Iteration 2: distance-3 nodes get hit.
        assert done[3, 2] > done[4, 2] or done[5, 2] > done[4, 2]

    def test_invalid_iterations(self):
        with pytest.raises(ConfigError):
            run_chained_sync(TORUS, constant_work(10.0), n_iterations=0)

    def test_monotone_completion_times(self):
        res = run_chained_sync(
            TORUS, random_straggler_work(1000.0, 2.0, 0.3, seed=3), n_iterations=5
        )
        diffs = np.diff(res.iteration_complete, axis=1)
        assert np.all(diffs > 0)


class TestBulkSync:
    def test_all_nodes_finish_together(self):
        res = run_bulk_sync(8, constant_work(1000.0), n_iterations=3)
        for k in range(3):
            assert res.start_spread(k) == 0.0

    def test_iteration_time(self):
        res = run_bulk_sync(
            4, constant_work(1000.0), n_iterations=1,
            barrier_latency=200.0, mu_cycles=100.0,
        )
        assert res.makespan == pytest.approx(1000.0 + 400.0 + 100.0)

    def test_host_coordination_costs_milliseconds(self):
        """Host-driven barriers add ~ms per iteration (paper Sec. 4.4)."""
        fpga = run_bulk_sync(4, constant_work(1000.0), 1, host_coordinated=False)
        host = run_bulk_sync(4, constant_work(1000.0), 1, host_coordinated=True)
        # 2 x 200k cycles = 2 ms at 200 MHz, vs 2 x 200 cycles.
        assert host.makespan - fpga.makespan == pytest.approx(2 * 200_000 - 2 * 200)

    def test_every_straggle_hits_everyone(self):
        work = random_straggler_work(1000.0, 2.0, 0.2, seed=5)
        res = run_bulk_sync(8, work, n_iterations=20, barrier_latency=0.0, mu_cycles=0.0)
        expected = sum(
            max(work(n, k) for n in range(8)) for k in range(20)
        )
        assert res.makespan == pytest.approx(expected)

    def test_invalid_iterations(self):
        with pytest.raises(ConfigError):
            run_bulk_sync(4, constant_work(10.0), n_iterations=0)


class TestProtocolProperties:
    """Hypothesis: protocol invariants over random work matrices."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.lists(st.floats(100.0, 5000.0), min_size=3, max_size=3),
            min_size=8,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_completion_lower_bound(self, work_matrix):
        """Every node's final completion is at least the sum of its own
        work plus per-iteration protocol minima."""
        import numpy as np

        work = np.asarray(work_matrix)  # (nodes, iterations)

        def work_fn(node, iteration):
            return float(work[node, iteration])

        res = run_chained_sync(
            TorusTopology((2, 2, 2)), work_fn, n_iterations=3,
            link_latency=50.0, mu_cycles=10.0,
        )
        for node in range(8):
            own = float(work[node].sum()) + 3 * (10.0 + 50.0)
            assert res.iteration_complete[node, -1] >= own - 1e-6

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_makespan_at_least_slowest_chain(self, seed):
        """Makespan >= any single node's total work (no time travel)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        work = rng.uniform(500.0, 3000.0, size=(8, 4))

        def work_fn(node, iteration):
            return float(work[node, iteration])

        res = run_chained_sync(
            TorusTopology((2, 2, 2)), work_fn, n_iterations=4, link_latency=10.0
        )
        assert res.makespan >= work.sum(axis=1).max()
        # And bounded above by a serial execution of all nodes' work.
        assert res.makespan <= work.sum() + 4 * 8 * (100.0 + 2 * 10.0 + 3000.0)


class TestFaultInjection:
    """The protocol's failure mode: a lost `last` signal deadlocks.

    The paper's transport is UDP with no retransmission — correctness
    relies on the cooldown mechanism keeping the switch lossless.  These
    tests confirm the simulated protocol exhibits (and detects) exactly
    that failure mode.
    """

    def test_lost_last_position_deadlocks(self):
        from repro.util.errors import SimulationError

        dropped = {"done": False}

        def drop_first_last_position(msg):
            if msg.kind == "last_position" and not dropped["done"]:
                dropped["done"] = True
                return True
            return False

        with pytest.raises(SimulationError, match="deadlock"):
            run_chained_sync(
                TORUS, constant_work(1000.0), n_iterations=2,
                drop_message_fn=drop_first_last_position,
            )

    def test_lost_last_force_deadlocks(self):
        from repro.util.errors import SimulationError

        dropped = {"done": False}

        def drop_first_last_force(msg):
            if msg.kind == "last_force" and not dropped["done"]:
                dropped["done"] = True
                return True
            return False

        with pytest.raises(SimulationError, match="deadlock"):
            run_chained_sync(
                TORUS, constant_work(1000.0), n_iterations=2,
                drop_message_fn=drop_first_last_force,
            )

    def test_no_drops_is_healthy(self):
        res = run_chained_sync(
            TORUS, constant_work(1000.0), n_iterations=2,
            drop_message_fn=lambda msg: False,
        )
        assert res.makespan > 0


class TestChainedVsBulkUnderRandomStragglers:
    def test_chained_faster_on_average(self):
        """The paper's core claim: chained sync mitigates stragglers."""
        work = random_straggler_work(1000.0, 3.0, probability=0.15, seed=11)
        chained = run_chained_sync(
            TorusTopology((2, 2, 2)), work, n_iterations=15, link_latency=100.0
        )
        bulk = run_bulk_sync(8, work, n_iterations=15, barrier_latency=100.0)
        assert chained.makespan < bulk.makespan

"""Tests for LJ parameters, mixing rules, and coefficient scaling."""

import numpy as np
import pytest

from repro.md.params import ELEMENTS, LJTable
from repro.util.errors import ValidationError


def test_registry_contains_sodium():
    na = ELEMENTS["Na"]
    assert na.mass == pytest.approx(22.98976928)
    assert na.sigma > 0 and na.epsilon > 0


def test_empty_species_rejected():
    with pytest.raises(ValidationError):
        LJTable(())


def test_unknown_species_rejected():
    with pytest.raises(ValidationError, match="unknown element"):
        LJTable(("Na", "Unobtainium"))


def test_lorentz_berthelot_mixing():
    t = LJTable(("Na", "Ar"))
    na, ar = ELEMENTS["Na"], ELEMENTS["Ar"]
    assert t.sigma_ij[0, 1] == pytest.approx(0.5 * (na.sigma + ar.sigma))
    assert t.eps_ij[0, 1] == pytest.approx(np.sqrt(na.epsilon * ar.epsilon))
    # Symmetry.
    np.testing.assert_allclose(t.sigma_ij, t.sigma_ij.T)
    np.testing.assert_allclose(t.eps_ij, t.eps_ij.T)


def test_coefficient_definitions():
    t = LJTable(("Ar",))
    ar = ELEMENTS["Ar"]
    assert t.c14[0, 0] == pytest.approx(48 * ar.epsilon * ar.sigma ** 12)
    assert t.c8[0, 0] == pytest.approx(24 * ar.epsilon * ar.sigma ** 6)
    assert t.c12[0, 0] == pytest.approx(4 * ar.epsilon * ar.sigma ** 12)
    assert t.c6[0, 0] == pytest.approx(4 * ar.epsilon * ar.sigma ** 6)


def test_force_is_gradient_of_energy():
    """F(r) = -dV/dr numerically, from the coefficient tables."""
    t = LJTable(("Na",))
    r = np.linspace(2.5, 8.0, 40)
    h = 1e-6

    def energy(rr):
        return t.c12[0, 0] * rr ** -12 - t.c6[0, 0] * rr ** -6

    f_scalar = t.c14[0, 0] * r ** -14 - t.c8[0, 0] * r ** -8  # multiplies r_vec
    f_radial = f_scalar * r  # magnitude along r
    numeric = -(energy(r + h) - energy(r - h)) / (2 * h)
    np.testing.assert_allclose(f_radial, numeric, rtol=1e-5)


def test_energy_zero_at_sigma():
    t = LJTable(("Na",))
    sigma = ELEMENTS["Na"].sigma
    v = t.c12[0, 0] * sigma ** -12 - t.c6[0, 0] * sigma ** -6
    assert v == pytest.approx(0.0, abs=1e-10)


def test_minimum_at_rmin():
    """LJ force vanishes at r = 2^(1/6) sigma."""
    t = LJTable(("Na",))
    rmin = 2.0 ** (1.0 / 6.0) * ELEMENTS["Na"].sigma
    f = t.c14[0, 0] * rmin ** -14 - t.c8[0, 0] * rmin ** -8
    assert f == pytest.approx(0.0, abs=1e-12)


class TestScaled:
    def test_energy_invariant_under_scaling(self):
        t = LJTable(("Na",))
        L = 8.5
        ts = t.scaled(L)
        r = 4.0  # angstrom
        rn = r / L
        v_phys = t.c12[0, 0] * r ** -12 - t.c6[0, 0] * r ** -6
        v_norm = ts.c12[0, 0] * rn ** -12 - ts.c6[0, 0] * rn ** -6
        assert v_norm == pytest.approx(v_phys, rel=1e-12)

    def test_force_scaling_relation(self):
        """Normalized-space force = physical force * L (chain rule)."""
        t = LJTable(("Na",))
        L = 8.5
        ts = t.scaled(L)
        r = 3.7
        rn = r / L
        # Radial force magnitudes: scalar * r.
        f_phys = (t.c14[0, 0] * r ** -14 - t.c8[0, 0] * r ** -8) * r
        f_norm = (ts.c14[0, 0] * rn ** -14 - ts.c8[0, 0] * rn ** -8) * rn
        assert f_norm == pytest.approx(f_phys * L, rel=1e-12)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValidationError):
            LJTable(("Na",)).scaled(0.0)

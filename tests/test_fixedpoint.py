"""Tests for the fixed-point position format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import FixedPointFormat
from repro.util.errors import ValidationError


def test_default_format_widths():
    fmt = FixedPointFormat()
    assert fmt.total_bits == 25
    assert fmt.scale == 2.0 ** -23


def test_invalid_widths_rejected():
    with pytest.raises(ValidationError):
        FixedPointFormat(frac_bits=0)
    with pytest.raises(ValidationError):
        FixedPointFormat(frac_bits=60)
    with pytest.raises(ValidationError):
        FixedPointFormat(frac_bits=8, int_bits=0)


def test_roundtrip_exact_values():
    fmt = FixedPointFormat(frac_bits=8)
    values = np.array([0.0, 0.5, 1.25, 3.99609375])  # all multiples of 2^-8
    np.testing.assert_array_equal(fmt.quantize(values), values)


def test_quantize_rounds_to_nearest():
    fmt = FixedPointFormat(frac_bits=2)  # LSB = 0.25
    assert fmt.quantize(np.array([0.3]))[0] == pytest.approx(0.25)
    assert fmt.quantize(np.array([0.4]))[0] == pytest.approx(0.5)


def test_overflow_raises():
    fmt = FixedPointFormat(frac_bits=4, int_bits=2)
    with pytest.raises(ValidationError, match="overflow"):
        fmt.to_raw(np.array([4.0]))
    with pytest.raises(ValidationError, match="overflow"):
        fmt.to_raw(np.array([-0.1]))


def test_max_value_representable():
    fmt = FixedPointFormat(frac_bits=4, int_bits=2)
    assert fmt.quantize(np.array([fmt.max_value]))[0] == fmt.max_value


def test_quantize_fraction_domain():
    fmt = FixedPointFormat(frac_bits=8)
    with pytest.raises(ValidationError):
        fmt.quantize_fraction(np.array([1.0]))
    with pytest.raises(ValidationError):
        fmt.quantize_fraction(np.array([-0.01]))


def test_quantize_fraction_clamps_below_one():
    fmt = FixedPointFormat(frac_bits=4)
    # 0.99 rounds to 1.0 at 4 fraction bits; must clamp to 1 - 2^-4.
    out = fmt.quantize_fraction(np.array([0.99]))
    assert out[0] == 1.0 - 2.0 ** -4


@given(
    st.floats(min_value=0.0, max_value=3.9, allow_nan=False),
    st.integers(min_value=4, max_value=30),
)
@settings(max_examples=200, deadline=None)
def test_quantization_error_bounded_by_half_lsb(value, frac_bits):
    fmt = FixedPointFormat(frac_bits=frac_bits)
    q = fmt.quantize(np.array([value]))[0]
    assert abs(q - value) <= 0.5 * fmt.scale + 1e-15


@given(st.lists(st.floats(min_value=0.0, max_value=0.9999), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_quantize_fraction_idempotent(fractions):
    fmt = FixedPointFormat(frac_bits=16)
    once = fmt.quantize_fraction(np.asarray(fractions))
    twice = fmt.quantize_fraction(once)
    np.testing.assert_array_equal(once, twice)


@given(st.integers(min_value=2, max_value=20))
@settings(max_examples=30, deadline=None)
def test_raw_roundtrip_is_identity(frac_bits):
    fmt = FixedPointFormat(frac_bits=frac_bits)
    raw = np.arange(0, 1 << min(frac_bits + 2, 12), dtype=np.int64)
    np.testing.assert_array_equal(fmt.to_raw(fmt.from_raw(raw)), raw)

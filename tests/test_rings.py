"""Tests for on-chip ring structure and load accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rings import RingLoadModel, RingPath, cbb_ring_order
from repro.util.errors import ValidationError


class TestRingPath:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RingPath(0)
        with pytest.raises(ValidationError):
            RingPath(4, direction=2)

    def test_clockwise_hops(self):
        ring = RingPath(8, +1)
        assert ring.hops(0, 3) == 3
        assert ring.hops(3, 0) == 5  # must go around
        assert ring.hops(5, 5) == 0

    def test_counterclockwise_hops(self):
        ring = RingPath(8, -1)
        assert ring.hops(3, 0) == 3
        assert ring.hops(0, 3) == 5

    def test_links_traversed(self):
        ring = RingPath(5, +1)
        assert ring.links_traversed(3, 1) == [3, 4, 0]
        assert ring.links_traversed(1, 1) == []

    def test_links_traversed_ccw(self):
        ring = RingPath(5, -1)
        assert ring.links_traversed(1, 4) == [1, 0]

    @given(st.integers(2, 20), st.integers(0, 19), st.integers(0, 19))
    @settings(max_examples=200, deadline=None)
    def test_opposite_directions_sum_to_circumference(self, n, a, b):
        a, b = a % n, b % n
        if a == b:
            return
        cw = RingPath(n, +1).hops(a, b)
        ccw = RingPath(n, -1).hops(a, b)
        assert cw + ccw == n


class TestRingLoadModel:
    def test_inject_accounts_links(self):
        model = RingLoadModel(RingPath(4, +1))
        model.inject(0, 2, count=3)
        np.testing.assert_array_equal(model.link_load, [3, 3, 0, 0])
        assert model.total_hops == 6
        assert model.total_records == 3
        assert model.min_cycles == 3

    def test_zero_count_noop(self):
        model = RingLoadModel(RingPath(4, +1))
        model.inject(0, 2, count=0)
        assert model.total_records == 0

    def test_negative_count_rejected(self):
        model = RingLoadModel(RingPath(4, +1))
        with pytest.raises(ValidationError):
            model.inject(0, 1, count=-1)

    def test_broadcast_rides_once(self):
        """A broadcast stream to several destinations crosses each link at
        most once per record, up to the farthest destination."""
        model = RingLoadModel(RingPath(6, +1))
        model.broadcast(0, [1, 2, 4], count=2)
        np.testing.assert_array_equal(model.link_load, [2, 2, 2, 2, 0, 0])
        assert model.total_records == 2
        assert model.total_hops == 8

    def test_broadcast_empty_dsts_noop(self):
        model = RingLoadModel(RingPath(6, +1))
        model.broadcast(0, [], count=5)
        assert model.total_records == 0

    def test_min_cycles_is_busiest_link(self):
        model = RingLoadModel(RingPath(4, +1))
        model.inject(0, 1, count=5)
        model.inject(3, 1, count=2)  # links 3, 0
        np.testing.assert_array_equal(model.link_load, [7, 0, 0, 2])
        assert model.min_cycles == 7

    def test_mean_link_load(self):
        model = RingLoadModel(RingPath(4, +1))
        model.inject(0, 2, count=4)
        assert model.mean_link_load == pytest.approx(2.0)


class TestBatchedAccounting:
    """inject_many/broadcast_many are bitwise-equivalent to per-record calls."""

    @given(
        st.integers(2, 12),
        st.sampled_from([+1, -1]),
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11), st.integers(0, 7)),
            min_size=0,
            max_size=30,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_inject_many_matches_loop(self, n, direction, triples):
        triples = [(s % n, d % n, c) for s, d, c in triples]
        loop = RingLoadModel(RingPath(n, direction))
        for s, d, c in triples:
            loop.inject(s, d, count=c)
        batched = RingLoadModel(RingPath(n, direction))
        if triples:
            src, dst, cnt = (np.array(col) for col in zip(*triples))
            batched.inject_many(src, dst, cnt)
        np.testing.assert_array_equal(batched.link_load, loop.link_load)
        assert batched.total_records == loop.total_records
        assert batched.total_hops == loop.total_hops

    @given(
        st.integers(2, 12),
        st.sampled_from([+1, -1]),
        st.lists(
            st.tuples(
                st.integers(0, 11),
                st.lists(st.integers(0, 11), min_size=1, max_size=5),
                st.integers(0, 7),
            ),
            min_size=0,
            max_size=20,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_broadcast_many_matches_loop(self, n, direction, streams):
        streams = [(s % n, [d % n for d in ds], c) for s, ds, c in streams]
        loop = RingLoadModel(RingPath(n, direction))
        for s, ds, c in streams:
            loop.broadcast(s, ds, count=c)
        batched = RingLoadModel(RingPath(n, direction))
        if streams:
            src = np.array([s for s, _, _ in streams])
            far = np.array(
                [
                    max(loop.ring.hops(s, d) for d in ds)
                    for s, ds, _ in streams
                ]
            )
            cnt = np.array([c for _, _, c in streams])
            batched.broadcast_many(src, far, cnt)
        np.testing.assert_array_equal(batched.link_load, loop.link_load)
        assert batched.total_records == loop.total_records
        assert batched.total_hops == loop.total_hops

    def test_inject_many_wraparound_ccw(self):
        # Direction -1 with a wrapped span: 1 -> 4 on a 5-ring crosses
        # links 1, 0, 4 (ccw), exercising the difference-array wrap.
        loop = RingLoadModel(RingPath(5, -1))
        loop.inject(1, 4, count=3)
        batched = RingLoadModel(RingPath(5, -1))
        batched.inject_many(np.array([1]), np.array([4]), np.array([3]))
        np.testing.assert_array_equal(batched.link_load, loop.link_load)

    def test_inject_many_validation(self):
        model = RingLoadModel(RingPath(4, +1))
        with pytest.raises(ValidationError):
            model.inject_many(np.array([0]), np.array([1]), np.array([-1]))
        with pytest.raises(ValidationError):
            model.inject_many(np.array([4]), np.array([1]), np.array([1]))

    def test_broadcast_many_validation(self):
        model = RingLoadModel(RingPath(4, +1))
        with pytest.raises(ValidationError):
            model.broadcast_many(np.array([0]), np.array([4]), np.array([1]))

    def test_empty_batches_noop(self):
        model = RingLoadModel(RingPath(4, +1))
        model.inject_many(np.array([]), np.array([]), np.array([]))
        model.broadcast_many(np.array([]), np.array([]), np.array([]))
        assert model.total_records == 0


def test_cbb_ring_order_matches_eq7():
    order = cbb_ring_order((2, 2, 2))
    assert order[0] == (0, 0, 0)
    assert order[1] == (0, 0, 1)
    assert order[2] == (0, 1, 0)
    assert order[-1] == (1, 1, 1)
    assert len(order) == 8
    assert len(set(order)) == 8

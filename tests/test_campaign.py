"""The parallel campaign runner and its perf-regression gate."""

import copy

import pytest

from repro.harness.campaign import (
    CampaignPoint,
    build_default_campaign,
    check_regression,
    format_campaign,
    point,
    run_campaign,
    worker_names,
)
from repro.util.errors import ValidationError


def _small_points():
    """Cheap heterogeneous points: analytic model workers only."""
    return [
        point("fpga_scaling", label="scaling/1", n_fpgas=1),
        point("sensitivity", label="sens/lo", pf=0.9, pb=1.0),
        point("sensitivity", label="sens/hi", pf=1.1, pb=1.0),
        point("filter_ablation", label="filt/6", filters=6),
    ]


class TestRunner:
    def test_serial_matches_parallel_bitwise(self):
        """The determinism contract: merged deterministic payloads are
        identical whether points run inline or across processes."""
        pts = _small_points()
        ser = run_campaign(pts, parallel=False)
        par = run_campaign(pts, parallel=True, max_workers=2)
        assert ser.deterministic() == par.deterministic()
        assert ser.mode == "serial" and par.mode == "parallel"
        assert [p["label"] for p in par.results] == [
            p.label for p in pts
        ]  # submission order, not completion order

    def test_reruns_are_reproducible(self):
        pts = _small_points()
        a = run_campaign(pts)
        b = run_campaign(pts)
        assert a.deterministic() == b.deterministic()

    def test_duplicate_labels_rejected(self):
        pts = [
            point("sensitivity", label="x", pf=0.9),
            point("sensitivity", label="x", pf=1.1),
        ]
        with pytest.raises(ValidationError, match="unique"):
            run_campaign(pts)

    def test_unknown_worker_rejected(self):
        with pytest.raises(ValidationError, match="unknown campaign worker"):
            run_campaign([CampaignPoint("no-such-worker")])

    def test_registry_has_the_standard_workers(self):
        names = worker_names()
        for expected in (
            "engine_rate", "machine_rate", "fpga_scaling",
            "sensitivity", "filter_ablation",
        ):
            assert expected in names

    def test_default_campaign_points_have_unique_labels(self):
        pts = build_default_campaign()
        labels = [p.label for p in pts]
        assert len(labels) == len(set(labels))
        assert len(pts) >= 10


def _fake_doc():
    """A BENCH_campaign-shaped document for gate tests."""
    return {
        "n_points": 2,
        "cpu_count": 4,
        "parallel_wall_s": 1.0,
        "parallel_workers": 2,
        "points": {
            "engine/fresh": {
                "label": "engine/fresh",
                "result": {
                    "rebuild_rate": 1.0,
                    "timing": {"steps_per_s": 100.0},
                },
            },
            "scaling/8": {
                "label": "scaling/8",
                "result": {"rate_us_per_day": 12.0},
            },
        },
    }


class TestRegressionGate:
    def test_clean_comparison_passes(self):
        doc = _fake_doc()
        assert check_regression(doc, doc) == []

    def test_wall_clock_rate_regression_detected(self):
        base, fresh = _fake_doc(), _fake_doc()
        fresh["points"]["engine/fresh"]["result"]["timing"][
            "steps_per_s"
        ] = 50.0
        failures = check_regression(base, fresh, threshold=0.30)
        assert len(failures) == 1
        assert "engine/fresh.steps_per_s" in failures[0]

    def test_model_rate_regression_detected(self):
        base, fresh = _fake_doc(), _fake_doc()
        fresh["points"]["scaling/8"]["result"]["rate_us_per_day"] = 5.0
        failures = check_regression(base, fresh)
        assert len(failures) == 1
        assert "scaling/8.rate_us_per_day" in failures[0]

    def test_within_threshold_passes(self):
        base, fresh = _fake_doc(), _fake_doc()
        fresh["points"]["engine/fresh"]["result"]["timing"][
            "steps_per_s"
        ] = 75.0  # 25% drop < 30% threshold
        assert check_regression(base, fresh) == []

    def test_new_and_removed_points_ignored(self):
        base, fresh = _fake_doc(), _fake_doc()
        del base["points"]["scaling/8"]
        fresh["points"]["extra"] = {
            "label": "extra", "result": {"rate_us_per_day": 1.0}
        }
        assert check_regression(base, fresh) == []

    def test_threshold_validated(self):
        doc = _fake_doc()
        with pytest.raises(ValidationError):
            check_regression(doc, doc, threshold=1.5)

    def test_format_campaign_renders(self):
        text = format_campaign(_fake_doc())
        assert "engine/fresh" in text
        assert "cpu_count=4" in text


class TestCLI:
    def _patched(self, monkeypatch, doc):
        import repro.harness.campaign as campaign_mod

        monkeypatch.setattr(
            campaign_mod, "run_default_campaign",
            lambda **kwargs: copy.deepcopy(doc),
        )

    def test_campaign_writes_json_and_passes_gate(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.harness.campaign import load_campaign_json

        self._patched(monkeypatch, _fake_doc())
        out = tmp_path / "BENCH_campaign.json"
        code = main(
            ["campaign", "--json", str(out), "--baseline", str(out)]
        )
        assert code == 0
        assert load_campaign_json(str(out))["n_points"] == 2
        assert "no baseline" in capsys.readouterr().out

    def test_campaign_gate_fails_on_regression(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.harness.campaign import write_campaign_json

        baseline = _fake_doc()
        baseline["points"]["engine/fresh"]["result"]["timing"][
            "steps_per_s"
        ] = 1000.0
        base_path = tmp_path / "baseline.json"
        write_campaign_json(baseline, str(base_path))
        self._patched(monkeypatch, _fake_doc())
        code = main(["campaign", "--baseline", str(base_path)])
        assert code == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

    def test_campaign_gate_passes_against_equal_baseline(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.harness.campaign import write_campaign_json

        doc = _fake_doc()
        base_path = tmp_path / "baseline.json"
        write_campaign_json(doc, str(base_path))
        self._patched(monkeypatch, doc)
        code = main(["campaign", "--baseline", str(base_path)])
        assert code == 0
        assert "perf gate" in capsys.readouterr().out


class TestSweepWiring:
    def test_fpga_scaling_parallel_identical(self):
        from repro.harness.sweeps import run_fpga_scaling

        ser = run_fpga_scaling(node_counts=(1, 8))
        par = run_fpga_scaling(node_counts=(1, 8), parallel=True)
        assert [
            (r.n_fpgas, r.config, r.rate_us_per_day, r.speedup, r.efficiency)
            for r in ser.rows
        ] == [
            (r.n_fpgas, r.config, r.rate_us_per_day, r.speedup, r.efficiency)
            for r in par.rows
        ]

    def test_filter_sweep_parallel_identical(self):
        from repro.harness.ablations import run_filter_sweep

        ser = run_filter_sweep(filter_counts=(2, 6))
        par = run_filter_sweep(filter_counts=(2, 6), parallel=True)
        assert ser == par

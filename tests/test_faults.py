"""Unit tests for the fault-injection plan, injector, and transport."""

import numpy as np
import pytest

from repro.faults import (
    CLEAN,
    FaultDecision,
    FaultInjector,
    FaultPlan,
    PredicateInjector,
    TransportConfig,
    TransportStats,
    send_flow,
)
from repro.util.errors import ValidationError


class TestFaultPlan:
    def test_default_plan_injects_nothing(self):
        plan = FaultPlan()
        assert not plan.has_message_faults
        assert not plan.has_stall_faults

    def test_rate_validation(self):
        with pytest.raises(ValidationError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValidationError):
            FaultPlan(corrupt_rate=-0.1)
        with pytest.raises(ValidationError):
            FaultPlan(stall_factor=0.5)
        with pytest.raises(ValidationError):
            FaultPlan(delay_cycles=-1)
        with pytest.raises(ValidationError):
            FaultPlan(onset_iteration=-1)

    def test_clean_decision(self):
        assert CLEAN.clean
        assert not FaultDecision(drop=True).clean
        assert not FaultDecision(delay=5.0).clean


class TestInjectorDeterminism:
    KEYS = [
        (s, d, ch, it, u, a)
        for s in (0, 3)
        for d in (1, 7)
        for ch in ("position", "last_force")
        for it in (0, 5)
        for u in (0, 2)
        for a in (0, 1)
    ]

    def test_same_plan_same_decisions(self):
        a = FaultInjector(FaultPlan(seed=42, drop_rate=0.3, duplicate_rate=0.2,
                                    delay_rate=0.2, corrupt_rate=0.2))
        b = FaultInjector(FaultPlan(seed=42, drop_rate=0.3, duplicate_rate=0.2,
                                    delay_rate=0.2, corrupt_rate=0.2))
        for key in self.KEYS:
            assert a.decide(*key) == b.decide(*key)

    def test_decisions_independent_of_call_order(self):
        plan = FaultPlan(seed=9, drop_rate=0.4, corrupt_rate=0.3)
        forward = [FaultInjector(plan).decide(*k) for k in self.KEYS]
        backward = [FaultInjector(plan).decide(*k) for k in reversed(self.KEYS)]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        plan_a = FaultPlan(seed=1, drop_rate=0.5)
        plan_b = FaultPlan(seed=2, drop_rate=0.5)
        drops_a = [FaultInjector(plan_a).decide(*k).drop for k in self.KEYS]
        drops_b = [FaultInjector(plan_b).decide(*k).drop for k in self.KEYS]
        assert drops_a != drops_b

    def test_zero_rates_always_clean(self):
        inj = FaultInjector(FaultPlan(seed=123))
        for key in self.KEYS:
            assert inj.decide(*key) is CLEAN
        drop, corrupt = inj.drop_corrupt_arrays(0, 1, "position", 0, 64)
        assert not drop.any() and not corrupt.any()
        assert inj.work_multiplier(3, 7) == 1.0

    def test_onset_iteration_gates_faults(self):
        inj = FaultInjector(FaultPlan(seed=4, drop_rate=1.0, onset_iteration=2))
        assert inj.decide(0, 1, "position", 0) is CLEAN
        assert inj.decide(0, 1, "position", 1) is CLEAN
        assert inj.decide(0, 1, "position", 2).drop
        drop, _ = inj.drop_corrupt_arrays(0, 1, "position", 1, 8)
        assert not drop.any()
        drop, _ = inj.drop_corrupt_arrays(0, 1, "position", 2, 8)
        assert drop.all()

    def test_certain_rates(self):
        inj = FaultInjector(FaultPlan(seed=0, drop_rate=1.0, corrupt_rate=1.0))
        dec = inj.decide(2, 3, "force", 1)
        assert dec.drop and dec.corrupt
        drop, corrupt = inj.drop_corrupt_arrays(2, 3, "force", 1, 16)
        assert drop.all() and corrupt.all()

    def test_array_masks_reproducible(self):
        plan = FaultPlan(seed=7, drop_rate=0.3, corrupt_rate=0.1)
        d1, c1 = FaultInjector(plan).drop_corrupt_arrays(1, 2, "position", 3, 100)
        d2, c2 = FaultInjector(plan).drop_corrupt_arrays(1, 2, "position", 3, 100)
        np.testing.assert_array_equal(d1, d2)
        np.testing.assert_array_equal(c1, c2)

    def test_retransmit_attempt_redraws(self):
        """A retransmission faces an independent loss draw."""
        inj = FaultInjector(FaultPlan(seed=5, drop_rate=0.5))
        drops = [
            inj.drop_corrupt_arrays(0, 1, "position", 0, 200, attempt=a)[0]
            for a in range(2)
        ]
        assert not np.array_equal(drops[0], drops[1])


class TestCorruptionAndStalls:
    def test_int_payload_bit_flip(self):
        inj = FaultInjector(FaultPlan(seed=3, corrupt_rate=1.0))
        corrupted = inj.corrupt_payload(10, 0, 1, "last_position", 4)
        assert corrupted != 10
        flipped = corrupted ^ 10
        assert flipped & (flipped - 1) == 0  # exactly one bit
        assert flipped < (1 << 16)

    def test_object_payload_marker(self):
        inj = FaultInjector(FaultPlan(seed=3, corrupt_rate=1.0))
        assert inj.corrupt_payload("data", 0, 1, "x", 0) == ("corrupt", "data")

    def test_work_multiplier(self):
        always = FaultInjector(FaultPlan(seed=1, stall_rate=1.0, stall_factor=3.0))
        assert always.work_multiplier(0, 0) == 3.0
        never = FaultInjector(FaultPlan(seed=1, stall_rate=0.0))
        assert never.work_multiplier(0, 0) == 1.0


class TestPredicateInjector:
    def test_wraps_predicate(self):
        from repro.eventsim.messages import Message

        inj = PredicateInjector(lambda m: m.kind == "last_position")
        drop = inj.decide_message(Message("last_position", 0, 1, 0), 0)
        keep = inj.decide_message(Message("last_force", 0, 1, 0), 0)
        assert drop.drop and keep is CLEAN


class TestTransportConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            TransportConfig(retry_budget=-1)
        with pytest.raises(ValidationError):
            TransportConfig(backoff=0.5)
        with pytest.raises(ValidationError):
            TransportConfig(timeout_cycles=-1)


class TestTransportStats:
    def test_merge(self):
        a = TransportStats(packets_sent=10, retransmits=1, delivered=10,
                           rounds=2, overhead_cycles=100.0)
        b = TransportStats(packets_sent=5, lost=1, delivered=4, rounds=3,
                           overhead_cycles=50.0)
        m = a + b
        assert m.packets_sent == 15
        assert m.delivered == 14
        assert m.lost == 1
        assert m.rounds == 3  # max, not sum
        assert m.overhead_cycles == 150.0

    def test_sum_builtin(self):
        parts = [TransportStats(packets_sent=i, delivered=i) for i in (1, 2, 3)]
        total = sum(parts)
        assert total.packets_sent == 6

    def test_rates(self):
        s = TransportStats(packets_sent=12, retransmits=2, delivered=9,
                           lost=1, overhead_cycles=50.0)
        assert s.delivery_rate == 0.9
        assert s.overhead_per_packet == 5.0
        assert TransportStats().delivery_rate == 1.0
        assert TransportStats().overhead_per_packet == 0.0


class TestSendFlow:
    def test_lossless_fabric(self):
        delivered, stats = send_flow(None, 0, 1, "position", 0, 10)
        assert delivered.all()
        assert stats.packets_sent == 10
        assert stats.overhead_cycles == 0.0

    def test_zero_fault_injector_has_zero_overhead(self):
        inj = FaultInjector(FaultPlan(seed=1))
        delivered, stats = send_flow(
            inj, 0, 1, "position", 0, 50, TransportConfig()
        )
        assert delivered.all()
        assert stats.retransmits == 0
        assert stats.overhead_cycles == 0.0
        assert stats.rounds == 1

    def test_bare_udp_loses_without_retry(self):
        inj = FaultInjector(FaultPlan(seed=2, drop_rate=0.5))
        delivered, stats = send_flow(inj, 0, 1, "position", 0, 200)
        assert 0 < stats.lost < 200
        assert stats.retransmits == 0
        assert stats.delivered == int(np.count_nonzero(delivered))

    def test_bare_udp_corruption_is_loss(self):
        """The NIC checksum discards corrupted packets silently."""
        inj = FaultInjector(FaultPlan(seed=2, corrupt_rate=1.0))
        delivered, stats = send_flow(inj, 0, 1, "position", 0, 10)
        assert not delivered.any()
        assert stats.corrupt_detected == 10
        assert stats.lost == 10

    def test_retries_recover_moderate_loss(self):
        inj = FaultInjector(FaultPlan(seed=3, drop_rate=0.2))
        delivered, stats = send_flow(
            inj, 0, 1, "position", 0, 100, TransportConfig(retry_budget=8)
        )
        assert delivered.all()
        assert stats.lost == 0
        assert stats.retransmits > 0
        assert stats.overhead_cycles > 0

    def test_budget_exhaustion_loses(self):
        inj = FaultInjector(FaultPlan(seed=4, drop_rate=1.0))
        delivered, stats = send_flow(
            inj, 0, 1, "position", 0, 10, TransportConfig(retry_budget=2)
        )
        assert not delivered.any()
        assert stats.lost == 10
        assert stats.rounds == 3  # original + 2 retries
        assert stats.retransmits == 20

    def test_ack_loss_causes_duplicates_not_loss(self):
        inj = FaultInjector(FaultPlan(seed=5, drop_rate=0.3))
        _, with_acks = send_flow(
            inj, 0, 1, "position", 0, 300,
            TransportConfig(retry_budget=10, model_acks=True),
        )
        assert with_acks.lost == 0
        assert with_acks.duplicates == with_acks.ack_drops > 0

    def test_overhead_grows_with_backoff(self):
        inj = FaultInjector(FaultPlan(seed=6, drop_rate=1.0))
        _, fast = send_flow(
            inj, 0, 1, "p", 0, 4,
            TransportConfig(retry_budget=3, backoff=1.0, timeout_cycles=100.0),
        )
        _, slow = send_flow(
            inj, 0, 1, "p", 0, 4,
            TransportConfig(retry_budget=3, backoff=2.0, timeout_cycles=100.0),
        )
        assert slow.overhead_cycles > fast.overhead_cycles

    def test_empty_flow(self):
        delivered, stats = send_flow(
            FaultInjector(FaultPlan(drop_rate=1.0)), 0, 1, "p", 0, 0
        )
        assert len(delivered) == 0
        assert stats.packets_sent == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            send_flow(None, 0, 1, "p", 0, -1)

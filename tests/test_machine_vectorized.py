"""Equivalence suite for the vectorized machine step (PR 2).

Three oracles guard the batched hot paths:

* traffic accounting — ``traffic_impl="vectorized"`` group-by passes vs
  the retained ``"loop"`` per-row walk, across 1/2/4/8-node configs;
* pair enumeration — ``pair_path="padded"`` broadcast matmuls vs the
  ``"chunked"`` gather enumeration (bitwise-identical admissions and
  integer workload statistics);
* distributed exchange — array-packed ``RecordBatch`` flows vs the
  per-particle P2R chain walk (identical halos and packet counts).
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.md import build_dataset

GRIDS = [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]


def _machine(fpga_grid, **kw):
    cfg = MachineConfig((4, 4, 4), fpga_grid)
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=11)
    return FasdaMachine(cfg, system=system, **kw)


def _stats_signature(stats):
    """Everything StepStats carries, in comparable form."""
    return dict(
        position_records=stats.position_records,
        force_records=stats.force_records,
        pr_load={n: asdict(s) for n, s in stats.pr_load.items()},
        fr_load={n: asdict(s) for n, s in stats.fr_load.items()},
        candidates=stats.candidates_per_cell.tolist(),
        accepted=stats.accepted_per_cell.tolist(),
        occupancy=stats.occupancy_per_cell.tolist(),
        nbr_frc=stats.neighbor_force_records_per_cell.tolist(),
    )


class TestTrafficAccountingEquivalence:
    @pytest.mark.parametrize("fpga_grid", GRIDS)
    def test_vectorized_matches_loop_oracle(self, fpga_grid):
        m = _machine(fpga_grid)
        m.traffic_impl = "vectorized"
        vec = _stats_signature(m.compute_forces())
        m.traffic_impl = "loop"
        loop = _stats_signature(m.compute_forces())
        assert vec == loop

    def test_vectorized_matches_loop_after_steps(self):
        # Same equivalence on a perturbed (non-lattice) configuration.
        m = _machine((2, 2, 2))
        m.run(3)
        m.traffic_impl = "vectorized"
        vec = _stats_signature(m.compute_forces())
        m.traffic_impl = "loop"
        loop = _stats_signature(m.compute_forces())
        assert vec == loop

    def test_traffic_off_produces_empty_accounting(self):
        m = _machine((2, 2, 2))
        stats = m.compute_forces(collect_traffic=False)
        assert stats.position_records == {}
        assert stats.force_records == {}
        assert all(s.total_records == 0 for s in stats.pr_load.values())


class TestPairPathEquivalence:
    def test_padded_matches_chunked_exactly(self):
        m = _machine((2, 2, 2))
        m.pair_path = "padded"
        sp = m.compute_forces()
        fp = m.forces.copy()
        m.pair_path = "chunked"
        sc = m.compute_forces()
        fc = m.forces.copy()
        # Integer workload statistics are bitwise equal (same admitted
        # pair set through the real filter on both paths).
        assert _stats_signature(sp) == _stats_signature(sc)
        # Forces/energy differ only in float32 accumulation grouping.
        scale = np.abs(fc).max()
        assert np.abs(fp - fc).max() <= 1e-4 * max(scale, 1.0)
        assert sp.potential_energy == pytest.approx(
            sc.potential_energy, rel=1e-4
        )

    def test_auto_selects_padded_on_dense_box(self):
        from repro.md.cells import CellList
        from repro.md.reference import _padded_viable

        m = _machine((1, 1, 1))
        clist = CellList(m.grid, m.system.positions)
        assert _padded_viable(m._plan, clist)

    def test_partition_invariance_holds_on_padded_path(self):
        banks = []
        for fpga_grid in GRIDS:
            m = _machine(fpga_grid)
            m.pair_path = "padded"
            m.compute_forces()
            banks.append(m.forces.copy())
        for other in banks[1:]:
            assert np.array_equal(banks[0], other)


class TestDistributedExchangeEquivalence:
    def _exchange_signature(self, machine, impl):
        machine.exchange_impl = impl
        nodes = machine._build_nodes()
        machine._exchange_positions(nodes)
        sig = {}
        for nid in sorted(nodes):
            node = nodes[nid]
            halo = {
                cid: (
                    node.halo[cid].particle_ids.tolist(),
                    node.halo[cid].fractions.tolist(),
                    node.halo[cid].species.tolist(),
                )
                for cid in sorted(node.halo)
            }
            sig[nid] = (node.packets_in, node.packets_out, halo)
        return sig

    @pytest.mark.parametrize("fpga_grid", [(2, 1, 1), (2, 2, 1), (2, 2, 2)])
    def test_batched_matches_loop_oracle(self, fpga_grid):
        cfg = MachineConfig((4, 4, 4), fpga_grid)
        system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=11)
        d = DistributedMachine(cfg, system=system)
        batched = self._exchange_signature(d, "batched")
        loop = self._exchange_signature(d, "loop")
        assert batched == loop

    def test_batched_total_packet_counter_matches_loop(self):
        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=11)
        counts = {}
        for impl in ("batched", "loop"):
            d = DistributedMachine(cfg, system=system.copy())
            d.exchange_impl = impl
            d.run(2)
            counts[impl] = (d.total_position_packets, d.total_force_packets)
        assert counts["batched"] == counts["loop"]

"""Tests for pluggable force-field kernels over the cell-list driver."""

import numpy as np
import pytest

from repro.md import CellGrid, LJTable, ParticleSystem
from repro.md.ewald import choose_beta, ewald_real_forces_bruteforce
from repro.md.forcefield import (
    CompositeKernel,
    EwaldRealKernel,
    LennardJonesKernel,
    compute_forces_kernel,
)
from repro.md.reference import compute_forces_cells
from repro.util.errors import ValidationError


@pytest.fixture()
def charged_system():
    rng = np.random.default_rng(3)
    grid = CellGrid((3, 3, 3), 6.0)
    lj = LJTable(("Na",))
    pos = rng.uniform(0, grid.box, size=(250, 3))
    # Thin out close pairs for well-conditioned forces.
    keep = [0]
    for i in range(1, len(pos)):
        dr = pos[keep] - pos[i]
        dr -= grid.box * np.rint(dr / grid.box)
        if np.min(np.sum(dr * dr, axis=1)) > 4.0:
            keep.append(i)
    pos = pos[keep]
    charges = rng.choice([-1.0, 1.0], size=len(pos))
    system = ParticleSystem(
        positions=pos,
        velocities=np.zeros_like(pos),
        species=np.zeros(len(pos), dtype=np.int32),
        lj_table=lj,
        box=grid.box,
        charges=charges,
    )
    return system, grid


class TestLennardJonesKernel:
    def test_matches_reference_implementation(self, charged_system):
        system, grid = charged_system
        f_kernel, e_kernel = compute_forces_kernel(
            system, grid, LennardJonesKernel()
        )
        f_ref, e_ref = compute_forces_cells(system, grid)
        np.testing.assert_allclose(f_kernel, f_ref, rtol=1e-10, atol=1e-12)
        assert e_kernel == pytest.approx(e_ref, rel=1e-12)


class TestEwaldRealKernel:
    def test_matches_bruteforce(self, charged_system):
        system, grid = charged_system
        beta = choose_beta(grid.cell_edge)
        f_kernel, e_kernel = compute_forces_kernel(
            system, grid, EwaldRealKernel(beta)
        )
        f_brute, e_brute = ewald_real_forces_bruteforce(
            system.positions, system.charges, system.box, grid.cell_edge, beta
        )
        np.testing.assert_allclose(f_kernel, f_brute, rtol=1e-9, atol=1e-10)
        assert e_kernel == pytest.approx(e_brute, rel=1e-10)

    def test_bad_beta_rejected(self):
        with pytest.raises(ValidationError):
            EwaldRealKernel(0.0)

    def test_newtons_third_law(self, charged_system):
        system, grid = charged_system
        f, _ = compute_forces_kernel(system, grid, EwaldRealKernel(0.4))
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-9)


class TestCompositeKernel:
    def test_sums_components(self, charged_system):
        """LJ + Ewald = the full RL force of paper Sec. 2.1."""
        system, grid = charged_system
        beta = 0.4
        lj, ew = LennardJonesKernel(), EwaldRealKernel(beta)
        f_composite, e_composite = compute_forces_kernel(
            system, grid, CompositeKernel([lj, ew])
        )
        f_lj, e_lj = compute_forces_kernel(system, grid, lj)
        f_ew, e_ew = compute_forces_kernel(system, grid, ew)
        np.testing.assert_allclose(f_composite, f_lj + f_ew, rtol=1e-10, atol=1e-12)
        assert e_composite == pytest.approx(e_lj + e_ew, rel=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            CompositeKernel([])


class TestDriver:
    def test_box_mismatch_rejected(self, charged_system):
        system, _ = charged_system
        with pytest.raises(ValidationError):
            compute_forces_kernel(system, CellGrid((4, 4, 4), 6.0), LennardJonesKernel())

    def test_charged_dynamics_integrates(self, charged_system):
        """A composite kernel drives the generic integrator."""
        from repro.md.integrator import VelocityVerlet

        system, grid = charged_system
        kernel = CompositeKernel([LennardJonesKernel(), EwaldRealKernel(0.4)])

        def force_fn(s):
            return compute_forces_kernel(s, grid, kernel)

        integ = VelocityVerlet(1.0)
        integ.prime(system, force_fn)
        for _ in range(3):
            integ.step(system, force_fn)
        assert np.all(np.isfinite(system.positions))
        assert np.all(np.isfinite(system.velocities))

"""Tests for the phase-timed, allocation-free step (PR 9 tentpole).

The contract under test, per layer:

* degenerate traffic — ``_account_traffic`` (vectorized + compiled
  ``traffic_flat``) vs the ``"loop"`` per-row oracle on configurations
  the group-by passes can get wrong: a single-node fpga grid, a system
  with exactly one occupied cell, a mostly-empty lattice, and a system
  whose pair filter admits zero pairs.
* accounting kernels — every available backend's ``traffic_flat`` /
  ``ring_charge`` is bitwise the numpy oracle, including empty inputs.
* fused force kernels — ``rom_eval``/``scatter_cols`` backends drive a
  multi-step state-reuse trajectory bitwise identical to the numpy
  sequence (float32 positions/forces and potential), and the
  ``scatter_cols`` kernel alone reproduces the three-bincount helper.
* phase timings — ``StepTimings`` counts every machine phase and every
  distributed phase once armed, and ``StepStats.timings`` carries them.
* satellites — the pairplan LRU evicts and counts; oversized jobs are
  routed solo by ``batch_max_n``; a 1-worker campaign takes the serial
  path; ``run_profile`` assembles a gate-compatible document with its
  in-run bitwise asserts green.
"""

from dataclasses import asdict

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.harness.campaign import check_regression, point, run_campaign
from repro.harness.jobs import JobQueue, run_jobs
from repro.harness.profiling import (
    DISTRIBUTED_PHASES,
    MACHINE_PHASES,
    check_accounting_kernels,
    run_profile,
)
from repro.md import CellGrid, LJTable, ParticleSystem
from repro.md.backends import (
    available_backends,
    resolve_backend,
    ring_charge_numpy,
    traffic_flat_numpy,
)
from repro.md.dataset import build_dataset
from repro.md.pairplan import (
    clear_plan_cache,
    plan_cache_info,
    plan_for_grid,
    set_plan_cache_maxsize,
)

DIMS = (3, 3, 3)


def _stats_signature(stats):
    """Everything StepStats carries, in comparable form."""
    return dict(
        position_records=stats.position_records,
        force_records=stats.force_records,
        pr_load={n: asdict(s) for n, s in stats.pr_load.items()},
        fr_load={n: asdict(s) for n, s in stats.fr_load.items()},
        candidates=stats.candidates_per_cell.tolist(),
        accepted=stats.accepted_per_cell.tolist(),
        occupancy=stats.occupancy_per_cell.tolist(),
        nbr_frc=stats.neighbor_force_records_per_cell.tolist(),
    )


def _subset(system, keep):
    """A ParticleSystem restricted to the ``keep`` particle mask."""
    return ParticleSystem(
        positions=system.positions[keep],
        velocities=system.velocities[keep],
        species=system.species[keep],
        lj_table=system.lj_table,
        box=system.box,
        charges=None if system.charges is None else system.charges[keep],
    )


def _signatures_match(system, fpga_grid=(1, 1, 1)):
    """Vectorized-vs-loop traffic equivalence on one system."""
    cfg = MachineConfig(DIMS, fpga_grid)
    vec = FasdaMachine(cfg, system=system)
    vec.traffic_impl = "vectorized"
    loop = FasdaMachine(cfg, system=system)
    loop.pair_path = "chunked"
    loop.traffic_impl = "loop"
    sv = vec.compute_forces()
    sl = loop.compute_forces()
    assert _stats_signature(sv) == _stats_signature(sl)
    return sv


class TestDegenerateTrafficConfigs:
    """_account_traffic vs the loop oracle where group-bys go wrong."""

    @pytest.mark.parametrize("fpga_grid", [(1, 1, 1), (3, 1, 1), (3, 3, 3)])
    def test_dense_lattice(self, fpga_grid):
        system, _ = build_dataset(DIMS, particles_per_cell=4, seed=5)
        _signatures_match(system, fpga_grid)

    def test_single_occupied_cell(self):
        system, grid = build_dataset(DIMS, particles_per_cell=6, seed=7)
        keep = np.all(system.positions < grid.cell_edge, axis=1)
        assert 2 <= keep.sum() < system.n
        stats = _signatures_match(_subset(system, keep))
        assert (stats.occupancy_per_cell > 0).sum() == 1

    def test_mostly_empty_lattice(self):
        system, _ = build_dataset(DIMS, particles_per_cell=4, seed=9)
        keep = np.zeros(system.n, dtype=bool)
        keep[::7] = True
        _signatures_match(_subset(system, keep))

    def test_zero_admitted_pairs(self):
        # Two particles at maximum min-image separation: every candidate
        # pair fails the cutoff filter, so the traffic passes see empty
        # admission arrays on every offset.
        _, grid = build_dataset(DIMS, particles_per_cell=1, seed=1)
        e = grid.cell_edge
        pos = np.array([[0.1, 0.1, 0.1], [1.5 * e, 1.5 * e, 1.5 * e]])
        system = ParticleSystem(
            positions=pos,
            velocities=np.zeros_like(pos),
            species=np.zeros(2, dtype=np.int32),
            lj_table=LJTable(("Ar",)),
            box=grid.box,
        )
        stats = _signatures_match(system)
        assert int(stats.accepted_per_cell.sum()) == 0
        assert sum(stats.force_records.values()) == 0


class TestAccountingKernelContracts:
    """Compiled traffic_flat / ring_charge vs the numpy oracles."""

    def _compiled(self):
        names = [
            n for n in available_backends()
            if resolve_backend(n).traffic_flat is not None
        ]
        if not names:
            pytest.skip("no backend provides compiled accounting kernels")
        return names

    def test_traffic_flat_matches_numpy(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, size=4096).astype(np.int64)
        weights = rng.random(4096)
        aux = rng.integers(-3, 900, size=4096).astype(np.int64)
        cases = [
            (keys, weights, aux),
            (keys, weights, None),
            (keys, None, aux),
            (keys, None, None),
            (np.empty(0, dtype=np.int64), np.empty(0), None),
            (np.full(16, 7, dtype=np.int64), weights[:16], aux[:16]),
        ]
        for name in self._compiled():
            kern = resolve_backend(name).traffic_flat
            for k, w, a in cases:
                got = kern(k, w, a)
                ref = traffic_flat_numpy(k, w, a)
                for g, r in zip(got, ref):
                    if r is None:
                        assert g is None
                    else:
                        assert np.array_equal(g, r), name

    def test_ring_charge_matches_numpy(self):
        rng = np.random.default_rng(1)
        n = 13
        src = rng.integers(0, n, size=64).astype(np.int64)
        hops = rng.integers(1, n, size=64).astype(np.int64)
        counts = rng.integers(1, 40, size=64).astype(np.int64)
        for name in self._compiled():
            kern = resolve_backend(name).ring_charge
            if kern is None:
                continue
            for direction in (+1, -1):
                a = np.zeros(n, dtype=np.int64)
                b = np.zeros(n, dtype=np.int64)
                kern(a, direction, src, hops, counts)
                ring_charge_numpy(b, direction, src, hops, counts)
                assert np.array_equal(a, b), (name, direction)
                # Conservation: every (src, hops) span lands in full.
                assert a.sum() == int((hops * counts).sum())

    def test_check_accounting_kernels_reports_coverage(self):
        # The checker raises on any bitwise mismatch; its return value
        # records which contracts the backend actually carries.
        for name in available_backends():
            backend = resolve_backend(name)
            doc = check_accounting_kernels(name)
            assert doc["traffic_flat"] == (backend.traffic_flat is not None)
            assert doc["ring_charge"] == (backend.ring_charge is not None)


class TestFusedKernelBitwise:
    """rom_eval/scatter_cols drive trajectories bitwise with numpy."""

    def _fused(self):
        names = [
            n for n in available_backends()
            if resolve_backend(n).rom_eval is not None
        ]
        if not names:
            pytest.skip("no backend provides fused ROM kernels")
        return names

    def _trajectory(self, force_impl, steps=5):
        system, _ = build_dataset((3, 3, 4), particles_per_cell=6, seed=13)
        m = FasdaMachine(MachineConfig((3, 3, 4), (1, 1, 2)), system=system)
        m.force_impl = force_impl
        m.reuse_state = True
        last = None
        for _ in range(steps):
            last = m.step(collect_traffic=False)  # returns the potential
        return m, last

    def test_reuse_trajectory_matches_numpy_sequence(self):
        ref, ref_e = self._trajectory("numpy")
        for name in self._fused():
            m, e = self._trajectory(name)
            assert np.array_equal(
                m.system.positions, ref.system.positions
            ), name
            assert np.array_equal(m.forces, ref.forces), name
            assert e == ref_e, name

    def test_scatter_cols_matches_bincount_helper(self):
        rng = np.random.default_rng(3)
        n, mrows = 37, 500
        idx = rng.integers(0, n, size=mrows).astype(np.int64)
        cols = rng.standard_normal((3, mrows)).astype(np.float32)
        expected = rng.standard_normal((n, 3)).astype(np.float32)
        base = expected.copy()
        for k in range(3):
            expected[:, k] += np.bincount(
                idx, weights=cols[k].astype(np.float64), minlength=n
            ).astype(np.float32)
        for name in self._fused():
            scat = resolve_backend(name).scatter_cols
            if scat is None:
                continue
            bank = base.copy()
            acc = np.empty(3 * n, dtype=np.float64)
            scat(bank, idx, cols[0], cols[1], cols[2], n, acc)
            assert np.array_equal(bank, expected), name

    def test_admit_flat_copy_false_matches_copy_true(self):
        # The no-copy admit views must hold the same admitted pairs as
        # the compacted copies (the machine consumes them in one pass).
        rng = np.random.default_rng(6)
        for name in self._fused():
            backend = resolve_backend(name)
            if backend.admit_flat is None:
                continue
            m = 300
            fsx, fsy, fsz = rng.standard_normal((3, m)).astype(np.float32)
            a = rng.integers(0, m, size=m).astype(np.int64)
            b = rng.integers(0, m, size=m).astype(np.int64)
            segs = np.array([0, m // 2, m], dtype=np.int64)
            offs = np.array([[0, 0, 0], [0.25, 0, 0]], dtype=np.float64)
            cop = backend.admit_flat(fsx, fsy, fsz, a, b, segs, offs)
            view = backend.admit_flat(
                fsx, fsy, fsz, a, b, segs, offs, copy=False
            )
            for c, v in zip(cop, view):
                assert np.array_equal(c, v), name


class TestStepTimings:
    """Phase counters on the machine and distributed steps."""

    def test_machine_phase_counters(self):
        system, _ = build_dataset(DIMS, particles_per_cell=2, seed=4)
        m = FasdaMachine(MachineConfig(DIMS, (1, 1, 1)), system=system)
        stats = m.compute_forces(collect_traffic=True)
        assert stats.timings is None  # off by default: zero overhead
        m.timings.enabled = True
        m.step(collect_traffic=True)  # integrate only runs in step()
        snap = m.timings.snapshot()
        for name in MACHINE_PHASES:
            assert snap[f"{name}_calls"] >= 1, name
            assert snap[name] >= 0.0
        # StepStats carries the counters, monotonic until reset.
        stats = m.compute_forces(collect_traffic=True)
        assert stats.timings["force_calls"] > snap["force_calls"]
        m.timings.reset()
        assert m.timings.snapshot() == {}

    def test_distributed_phase_counters(self):
        system, _ = build_dataset(DIMS, particles_per_cell=2, seed=4)
        d = DistributedMachine(
            MachineConfig(DIMS, (3, 1, 1)), system=system
        )
        d.timings.enabled = True
        d.step()
        snap = d.timings.snapshot()
        for name in DISTRIBUTED_PHASES:
            assert snap[f"{name}_calls"] >= 1, name


class TestPlanCacheEviction:
    """The bounded pairplan LRU evicts oldest and counts it."""

    def test_evictions_counted_and_bounded(self):
        info0 = plan_cache_info()
        clear_plan_cache()
        set_plan_cache_maxsize(2)
        try:
            g = [CellGrid(DIMS, 4.0 + 0.5 * i) for i in range(4)]
            plans = [plan_for_grid(gr) for gr in g]
            info = plan_cache_info()
            assert info.maxsize == 2
            assert info.currsize == 2
            assert info.evictions == 2
            # Newest two still cached; oldest was evicted and rebuilds.
            assert plan_for_grid(g[3]) is plans[3]
            assert plan_for_grid(g[0]) is not plans[0]
        finally:
            clear_plan_cache()
            set_plan_cache_maxsize(info0.maxsize)

    def test_shrinking_evicts_immediately(self):
        info0 = plan_cache_info()
        clear_plan_cache()
        set_plan_cache_maxsize(8)
        try:
            for i in range(5):
                plan_for_grid(CellGrid(DIMS, 4.0 + 0.5 * i))
            set_plan_cache_maxsize(1)
            info = plan_cache_info()
            assert info.currsize == 1
            assert info.evictions == 4
            with pytest.raises(Exception):
                set_plan_cache_maxsize(0)
        finally:
            clear_plan_cache()
            set_plan_cache_maxsize(info0.maxsize)


class TestJobsSoloRouting:
    """batch_max_n sends oversized systems through a solo engine."""

    def _queue(self):
        q = JobQueue()
        big, gb = build_dataset(DIMS, particles_per_cell=8, seed=30)
        q.submit(big, gb, steps=4)  # 216 particles: over the threshold
        for i in range(3):
            s, g = build_dataset(DIMS, particles_per_cell=2, seed=31 + i)
            q.submit(s, g, steps=4)
        return q

    def test_big_job_owns_the_engine(self):
        summary = run_jobs(self._queue(), chunk_steps=2, batch_max_n=100)
        assert summary["jobs_done"] == 4
        assert summary["batches_formed"] == 2  # {big} then {3 small}

    def test_threshold_none_cobatches_everything(self):
        summary = run_jobs(self._queue(), chunk_steps=2, batch_max_n=None)
        assert summary["jobs_done"] == 4
        assert summary["batches_formed"] == 1


class TestCampaignSerialFallback:
    def test_one_worker_takes_serial_path(self):
        pts = [
            point("fpga_scaling", label="scaling/1", n_fpgas=1),
            point("sensitivity", label="sens/lo", pf=0.9, pb=1.0),
        ]
        res = run_campaign(pts, parallel=True, max_workers=1)
        assert res.mode == "serial"
        assert res.n_workers == 1


class TestRunProfileDocument:
    """End-to-end smoke of the profile harness and its gate shape."""

    @pytest.fixture(scope="class")
    def doc(self):
        return run_profile(smoke=True, reps=1)

    def test_bitwise_asserts_ran_green(self, doc):
        assert doc["machine"]["forces_match_numpy_sequence"] is True
        assert doc["machine"]["stats_match_loop_oracle"] is True
        assert doc["distributed"]["process_trajectory_bitwise"] is True
        assert doc["distributed"]["exchange_batched_bitwise"] is True
        assert doc["kernel_checks"]["traffic_flat"] is True

    def test_phase_tables_cover_every_phase(self, doc):
        for name in MACHINE_PHASES:
            assert name in doc["machine"]["phases_s"]
        for name in DISTRIBUTED_PHASES:
            assert name in doc["distributed"]["phases_s"]

    def test_points_feed_the_regression_gate(self, doc):
        assert check_regression(doc, doc) == []
        worse = {
            "points": {
                k: {"result": {m: v * 2 for m, v in p["result"].items()}}
                for k, p in doc["points"].items()
            }
        }
        assert check_regression(worse, doc)

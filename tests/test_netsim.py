"""Tests for the packet-level switch model (cooldown justification)."""

import numpy as np
import pytest

from repro.network.netsim import Burst, OutputQueuedSwitch, incast_loss_rate
from repro.util.errors import ValidationError


class TestBurst:
    def test_emission_schedule(self):
        b = Burst(src=1, dst=0, n_packets=3, gap_cycles=4, start_cycle=10)
        np.testing.assert_array_equal(b.emission_cycles(), [10, 14, 18])

    def test_validation(self):
        with pytest.raises(ValidationError):
            Burst(0, 1, n_packets=-1)
        with pytest.raises(ValidationError):
            Burst(0, 1, 1, gap_cycles=0)


class TestOutputQueuedSwitch:
    def test_validation(self):
        with pytest.raises(ValidationError):
            OutputQueuedSwitch(1)
        with pytest.raises(ValidationError):
            OutputQueuedSwitch(4, drain_per_cycle=0)
        switch = OutputQueuedSwitch(4)
        with pytest.raises(ValidationError):
            switch.run([Burst(0, 9, 1)])

    def test_single_sender_never_drops(self):
        """One paced sender stays under the port's line rate."""
        switch = OutputQueuedSwitch(4, buffer_packets=4)
        stats = switch.run([Burst(1, 0, n_packets=500, gap_cycles=2)])
        assert stats.dropped == 0
        assert stats.delivered == 500

    def test_everything_accounted(self):
        switch = OutputQueuedSwitch(8, buffer_packets=8)
        bursts = [Burst(s, 0, 100, gap_cycles=1) for s in range(1, 8)]
        stats = switch.run(bursts)
        assert stats.delivered + stats.dropped == 700

    def test_incast_without_pacing_drops(self):
        """7 synchronized line-rate senders to one port overflow it."""
        loss, peak = incast_loss_rate(
            n_senders=7, packets_per_sender=200, cooldown_cycles=1,
            buffer_packets=64,
        )
        assert loss > 0.3
        assert peak == 64  # buffer pinned at its limit

    def test_incast_with_sufficient_cooldown_is_lossless(self):
        """Pacing each sender to 1/8 line rate keeps the aggregate under
        the port's drain rate: zero loss."""
        loss, peak = incast_loss_rate(
            n_senders=7, packets_per_sender=200, cooldown_cycles=8,
            buffer_packets=64,
        )
        assert loss == 0.0
        assert peak < 64

    def test_loss_monotone_in_cooldown(self):
        losses = [
            incast_loss_rate(7, 200, c, buffer_packets=64)[0]
            for c in (1, 2, 4, 8)
        ]
        assert all(a >= b for a, b in zip(losses, losses[1:]))
        assert losses[0] > losses[-1]

    def test_bigger_buffer_absorbs_more(self):
        small = incast_loss_rate(7, 100, 1, buffer_packets=16)[0]
        large = incast_loss_rate(7, 100, 1, buffer_packets=512)[0]
        assert large < small

    def test_staggered_bursts_avoid_incast(self):
        """The same traffic spread in time (what cooldown effectively
        does across iterations) is lossless even unpaced per train."""
        switch = OutputQueuedSwitch(8, buffer_packets=32)
        bursts = [
            Burst(s, 0, 100, gap_cycles=1, start_cycle=s * 150)
            for s in range(1, 8)
        ]
        stats = switch.run(bursts)
        assert stats.dropped == 0

    def test_zero_packet_burst(self):
        switch = OutputQueuedSwitch(4)
        stats = switch.run([Burst(1, 0, 0)])
        assert stats.delivered == 0 and stats.dropped == 0


class TestSwitchStatsComposition:
    """Satellite: rescale traffic composes with recovery counters."""

    def test_add_composes_rescales_with_recoveries(self):
        from repro.network.netsim import SwitchStats

        recovery = SwitchStats(
            delivered=100, dropped=2, max_occupancy={0: 5}, recoveries=3
        )
        rescale = SwitchStats(
            delivered=258, dropped=0, max_occupancy={0: 9, 1: 4}, rescales=2
        )
        merged = recovery + rescale
        assert merged.delivered == 358
        assert merged.dropped == 2
        assert merged.recoveries == 3
        assert merged.rescales == 2
        # peak occupancy takes the max per port, not the sum
        assert merged.max_occupancy == {0: 9, 1: 4}

    def test_sum_over_mixed_stats(self):
        from repro.network.netsim import SwitchStats

        parts = [
            SwitchStats(delivered=10, dropped=0, rescales=1),
            SwitchStats(delivered=20, dropped=1, recoveries=1),
            SwitchStats(delivered=30, dropped=0, rescales=1, recoveries=2),
        ]
        total = sum(parts)
        assert total.delivered == 60
        assert total.rescales == 2
        assert total.recoveries == 3

    def test_default_rescales_zero(self):
        switch = OutputQueuedSwitch(4)
        stats = switch.run([Burst(1, 0, n_packets=8, gap_cycles=2)])
        assert stats.rescales == 0 and stats.recoveries == 0

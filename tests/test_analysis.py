"""Tests for trajectory/structure analysis."""

import numpy as np
import pytest

from repro.md import CellGrid, LJTable, ParticleSystem, build_dataset
from repro.md.analysis import (
    UnwrappedTrajectory,
    radial_distribution_function,
    velocity_autocorrelation,
    virial_pressure,
)
from repro.md.forcefield import LennardJonesKernel
from repro.util.errors import ValidationError


def ideal_gas_system(n=2000, box=30.0, seed=0):
    rng = np.random.default_rng(seed)
    lj = LJTable(("Na",))
    return ParticleSystem(
        positions=rng.uniform(0, box, size=(n, 3)),
        velocities=rng.normal(scale=1e-3, size=(n, 3)),
        species=np.zeros(n, dtype=np.int32),
        lj_table=lj,
        box=np.full(3, box),
    )


class TestRDF:
    def test_ideal_gas_is_flat_at_one(self):
        s = ideal_gas_system()
        r, g = radial_distribution_function(s, r_max=12.0, n_bins=24)
        # Beyond a couple of angstrom, g(r) ~ 1 for uniform random points.
        far = g[r > 3.0]
        assert np.all(np.abs(far - 1.0) < 0.25)

    def test_exclusion_zone_visible(self):
        """The generated dataset's minimum distance shows as g(r) = 0."""
        s, _ = build_dataset((3, 3, 3), seed=1)
        r, g = radial_distribution_function(s, r_max=10.0, n_bins=50)
        assert np.all(g[r < 1.5] == 0.0)
        assert g[r > 3.0].max() > 0.5

    def test_rmax_bounded_by_half_box(self):
        s = ideal_gas_system(box=20.0)
        with pytest.raises(ValidationError, match="half the box"):
            radial_distribution_function(s, r_max=11.0)

    def test_bad_args(self):
        s = ideal_gas_system()
        with pytest.raises(ValidationError):
            radial_distribution_function(s, r_max=-1.0)


class TestUnwrappedTrajectory:
    def test_unwraps_across_boundary(self):
        lj = LJTable(("Na",))
        s = ParticleSystem(
            positions=np.array([[9.9, 5.0, 5.0]]),
            velocities=np.zeros((1, 3)),
            species=np.zeros(1, dtype=np.int32),
            lj_table=lj,
            box=np.full(3, 10.0),
        )
        traj = UnwrappedTrajectory(s)
        # Particle crosses the +x boundary: wrapped 9.9 -> 0.3.
        s.positions[0, 0] = 0.3
        traj.record(s)
        assert traj.frames[1][0, 0] == pytest.approx(10.3)

    def test_msd_free_particle(self):
        lj = LJTable(("Na",))
        s = ParticleSystem(
            positions=np.array([[5.0, 5.0, 5.0]]),
            velocities=np.array([[0.5, 0.0, 0.0]]),
            species=np.zeros(1, dtype=np.int32),
            lj_table=lj,
            box=np.full(3, 10.0),
        )
        traj = UnwrappedTrajectory(s)
        for _ in range(5):
            s.positions += s.velocities * 1.0  # dt = 1
            s.wrap()
            traj.record(s)
        msd = traj.mean_squared_displacement()
        expected = (0.5 * np.arange(6)) ** 2
        np.testing.assert_allclose(msd, expected, atol=1e-12)


class TestVACF:
    def test_starts_at_one(self):
        frames = [np.random.default_rng(0).normal(size=(50, 3))]
        assert velocity_autocorrelation(frames)[0] == pytest.approx(1.0)

    def test_uncorrelated_frames_near_zero(self):
        rng = np.random.default_rng(1)
        frames = [rng.normal(size=(5000, 3)) for _ in range(3)]
        vacf = velocity_autocorrelation(frames)
        assert abs(vacf[1]) < 0.05
        assert abs(vacf[2]) < 0.05

    def test_validation(self):
        with pytest.raises(ValidationError):
            velocity_autocorrelation([])
        with pytest.raises(ValidationError):
            velocity_autocorrelation([np.zeros((4, 3))])


class TestStructureFactor:
    def test_bragg_peak_of_fcc_crystal(self):
        """An FCC crystal's (200) reflection gives S(k) ~ N; a
        non-reciprocal-lattice vector gives S ~ 0."""
        from repro.md.analysis import commensurate_k, static_structure_factor
        from repro.md.lattice import build_fcc

        s = build_fcc("Ar", 3, 5.26)  # box = 3 a0
        k_bragg = commensurate_k(s, (6, 0, 0))      # = 2pi (2,0,0)/a0
        k_off = commensurate_k(s, (1, 0, 0))        # incommensurate with lattice
        sk = static_structure_factor(s, np.stack([k_bragg, k_off]))
        assert sk[0] == pytest.approx(s.n, rel=1e-9)
        assert sk[1] < 1e-9

    def test_forbidden_reflection_vanishes(self):
        """FCC forbids mixed-parity (hkl): the (100) reflection is zero."""
        from repro.md.analysis import commensurate_k, static_structure_factor
        from repro.md.lattice import build_fcc

        s = build_fcc("Ar", 3, 5.26)
        k_100 = commensurate_k(s, (3, 0, 0))  # = 2pi (1,0,0)/a0
        assert static_structure_factor(s, k_100)[0] < 1e-9

    def test_random_gas_near_one(self):
        from repro.md.analysis import commensurate_k, static_structure_factor

        s = ideal_gas_system(n=5000, box=30.0, seed=8)
        ks = np.stack([commensurate_k(s, (m, 0, 0)) for m in range(3, 9)])
        sk = static_structure_factor(s, ks)
        assert np.all(sk < 5.0)  # no spurious order

    def test_shape_validation(self):
        from repro.md.analysis import static_structure_factor
        from repro.util.errors import ValidationError

        s = ideal_gas_system(n=10)
        with pytest.raises(ValidationError):
            static_structure_factor(s, np.zeros((2, 2)))


class TestVirialPressure:
    def test_dilute_gas_near_ideal(self):
        """Well-separated particles: P ~ N kB T / V (interactions ~ 0).

        Random uniform placement would put some pairs deep inside the
        repulsive core and blow up the virial, so the gas sits on a
        jittered 10-angstrom lattice where LJ forces are negligible.
        """
        from repro.util.units import BOLTZMANN_KCAL_MOL_K

        rng = np.random.default_rng(4)
        axis = 10.0 * np.arange(6) + 5.0
        pos = np.stack(
            np.meshgrid(axis, axis, axis, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        pos += rng.uniform(-1.0, 1.0, size=pos.shape)
        lj = LJTable(("Na",))
        s = ParticleSystem(
            positions=pos,
            velocities=rng.normal(scale=1e-3, size=pos.shape),
            species=np.zeros(len(pos), dtype=np.int32),
            lj_table=lj,
            box=np.full(3, 60.0),
        )
        grid = CellGrid((6, 6, 6), 10.0)
        p = virial_pressure(s, grid, LennardJonesKernel())
        ideal = s.n * BOLTZMANN_KCAL_MOL_K * s.temperature() / 60.0 ** 3
        assert p == pytest.approx(ideal, rel=0.1)

    def test_dense_repulsive_system_above_ideal(self):
        """The paper's dense dataset is strongly repulsive: P >> ideal."""
        from repro.util.units import BOLTZMANN_KCAL_MOL_K

        s, grid = build_dataset((3, 3, 3), seed=2)
        p = virial_pressure(s, grid, LennardJonesKernel())
        ideal = s.n * BOLTZMANN_KCAL_MOL_K * s.temperature() / float(np.prod(s.box))
        assert p > 2 * ideal

"""Tests for the LJ + short-range-Ewald machine (force-model plugability)."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.md.cells import CellGrid
from repro.md.ewald import choose_beta
from repro.md.forcefield import (
    CompositeKernel,
    EwaldRealKernel,
    LennardJonesKernel,
    compute_forces_kernel,
)
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def salt_setup():
    """A small NaCl system and the machine + reference kernel for it."""
    cfg = MachineConfig((3, 3, 3), force_model="lj+coulomb", dt_fs=0.5)
    system, grid = build_dataset(
        (3, 3, 3),
        particles_per_cell=16,
        species=("Na", "Cl"),
        charged=True,
        min_distance=2.4,
        temperature_k=100.0,
        seed=17,
    )
    machine = FasdaMachine(cfg, system=system.copy())
    kernel = CompositeKernel(
        [LennardJonesKernel(), EwaldRealKernel(machine.ewald_beta)]
    )
    return cfg, system, grid, machine, kernel


class TestConfig:
    def test_unknown_force_model_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig((3, 3, 3), force_model="amber")

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig((3, 3, 3), ewald_tolerance=0.0)

    def test_lj_machine_has_no_coulomb_pipeline(self):
        machine = FasdaMachine(MachineConfig((3, 3, 3)))
        assert machine.coulomb_pipeline is None


class TestChargedDataset:
    def test_alternating_formal_charges(self):
        system, _ = build_dataset(
            (3, 3, 3), particles_per_cell=4, species=("Na", "Cl"),
            charged=True, min_distance=2.0, seed=1,
        )
        assert set(np.unique(system.charges)) == {-1.0, 1.0}
        # Overall neutral (even particle count, alternating species).
        assert float(system.charges.sum()) == 0.0

    def test_uncharged_default(self):
        system, _ = build_dataset((3, 3, 3), particles_per_cell=4, seed=1)
        np.testing.assert_array_equal(system.charges, 0.0)


class TestForceFidelity:
    def test_forces_match_composite_reference(self, salt_setup):
        _, system, grid, machine, kernel = salt_setup
        machine.compute_forces(collect_traffic=False)
        f_ref, _ = compute_forces_kernel(system, grid, kernel)
        f_mac = machine.forces.astype(np.float64)
        scale = np.abs(f_ref).max()
        assert np.abs(f_mac - f_ref).max() / scale < 5e-3

    def test_energy_matches_composite_reference(self, salt_setup):
        _, system, grid, machine, kernel = salt_setup
        stats = machine.compute_forces(collect_traffic=False)
        _, e_ref = compute_forces_kernel(system, grid, kernel)
        assert stats.potential_energy == pytest.approx(e_ref, rel=5e-3)

    def test_coulomb_changes_the_answer(self, salt_setup):
        """Sanity: the charged machine differs from an LJ-only machine on
        the same system."""
        _, system, _, machine, _ = salt_setup
        machine.compute_forces(collect_traffic=False)
        lj_machine = FasdaMachine(MachineConfig((3, 3, 3)), system=system.copy())
        lj_machine.compute_forces(collect_traffic=False)
        assert not np.allclose(machine.forces, lj_machine.forces, atol=1e-3)

    def test_newtons_third_law(self, salt_setup):
        _, _, _, machine, _ = salt_setup
        machine.compute_forces(collect_traffic=False)
        assert np.abs(machine.forces.astype(np.float64).sum(axis=0)).max() < 1e-2


class TestDynamics:
    def test_energy_conservation_with_coulomb(self, salt_setup):
        """The random ionic start is violent (like charges adjacent), so
        the run heats hard; total energy must still be conserved."""
        cfg, system, _, _, _ = salt_setup
        machine = FasdaMachine(cfg, system=system.copy())
        recs = machine.run(30, record_every=10)
        e0 = recs[0].total
        for rec in recs:
            assert abs(rec.total - e0) / abs(e0) < 1e-2

    def test_beta_matches_tolerance(self, salt_setup):
        cfg, _, _, machine, _ = salt_setup
        from scipy.special import erfc

        assert erfc(machine.ewald_beta * cfg.cutoff) <= cfg.ewald_tolerance

"""Property-based equivalence tests for the FASDA machine.

These are the reproduction's strongest correctness guarantees: on
arbitrary (well-conditioned) particle systems the machine's datapath
must agree with the float64 reference within the documented table +
float32 error, and its outputs must be invariant to how the cell space
is partitioned across FPGA nodes (the partitioning only changes *where*
work happens, never *what* is computed).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md import CellGrid, LJTable, ParticleSystem
from repro.md.reference import compute_forces_cells


def make_random_system(seed: int, n_target: int = 120, dims=(3, 3, 3), edge=8.5):
    """A random system with a safe minimum distance."""
    rng = np.random.default_rng(seed)
    grid = CellGrid(dims, edge)
    lj = LJTable(("Na",))
    pos = rng.uniform(0, grid.box, size=(n_target, 3))
    keep = [0]
    for i in range(1, n_target):
        dr = pos[keep] - pos[i]
        dr -= grid.box * np.rint(dr / grid.box)
        if np.min(np.sum(dr * dr, axis=1)) > 2.2 ** 2:
            keep.append(i)
    pos = pos[keep]
    return (
        ParticleSystem(
            positions=pos,
            velocities=np.zeros_like(pos),
            species=np.zeros(len(pos), dtype=np.int32),
            lj_table=lj,
            box=grid.box,
        ),
        grid,
    )


class TestMachineMatchesReference:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_forces_within_datapath_error(self, seed):
        system, grid = make_random_system(seed)
        machine = FasdaMachine(MachineConfig(grid.dims), system=system)
        machine.compute_forces(collect_traffic=False)
        f_ref, e_ref = compute_forces_cells(system, grid)
        f_mac = machine.forces.astype(np.float64)
        scale = max(float(np.abs(f_ref).max()), 1e-6)
        assert np.abs(f_mac - f_ref).max() / scale < 2e-3
        if abs(e_ref) > 1e-6:
            # Absolute energy error scales with the number of pairs
            # (float32 accumulation), so bound it per-pair.
            pairs = max(machine.last_stats.total_accepted, 1)
            assert abs(machine.last_stats.potential_energy - e_ref) / pairs < 1e-3

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_total_force_conserved(self, seed):
        system, grid = make_random_system(seed)
        machine = FasdaMachine(MachineConfig(grid.dims), system=system)
        machine.compute_forces(collect_traffic=False)
        total = machine.forces.astype(np.float64).sum(axis=0)
        assert np.abs(total).max() < 1e-2


class TestPartitionInvariance:
    """The node mapping must not change the physics."""

    @pytest.mark.parametrize(
        "fpga_grid", [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]
    )
    def test_forces_identical_across_partitionings(self, fpga_grid):
        system, grid = make_random_system(77, n_target=160, dims=(4, 4, 4))
        cfg = MachineConfig((4, 4, 4), fpga_grid)
        machine = FasdaMachine(cfg, system=system)
        machine.compute_forces(collect_traffic=True)
        if not hasattr(TestPartitionInvariance, "_baseline"):
            TestPartitionInvariance._baseline = machine.forces.copy()
            TestPartitionInvariance._baseline_e = machine.last_stats.potential_energy
        np.testing.assert_array_equal(
            machine.forces, TestPartitionInvariance._baseline
        )
        assert machine.last_stats.potential_energy == pytest.approx(
            TestPartitionInvariance._baseline_e, rel=1e-7
        )

    def test_candidates_invariant_across_partitionings(self):
        system, _ = make_random_system(5, n_target=160, dims=(4, 4, 4))
        totals = []
        for fg in [(1, 1, 1), (2, 2, 2)]:
            machine = FasdaMachine(MachineConfig((4, 4, 4), fg), system=system)
            stats = machine.measure_workload()
            totals.append((stats.total_candidates, stats.total_accepted))
        assert totals[0] == totals[1]

    def test_pe_organization_does_not_change_physics(self):
        """A vs C organizations compute through the identical datapath."""
        system, _ = make_random_system(9, n_target=160, dims=(4, 4, 4))
        base = MachineConfig((4, 4, 4), (2, 2, 2))
        m_a = FasdaMachine(base.with_scaling(1, 1), system=system)
        m_c = FasdaMachine(base.with_scaling(3, 2), system=system)
        m_a.compute_forces(collect_traffic=False)
        m_c.compute_forces(collect_traffic=False)
        np.testing.assert_array_equal(m_a.forces, m_c.forces)


class TestTrajectoryDeterminism:
    def test_same_seed_same_trajectory(self):
        cfg = MachineConfig((3, 3, 3))
        a = FasdaMachine(cfg, seed=123)
        b = FasdaMachine(cfg, seed=123)
        a.run(5, record_every=0)
        b.run(5, record_every=0)
        np.testing.assert_array_equal(a.system.positions, b.system.positions)
        np.testing.assert_array_equal(a.velocities, b.velocities)

"""Tests for the CBB/SPE/SCBB structural composition."""

import numpy as np
import pytest

from repro.core.blocks import (
    build_scbb,
    interleave_particles,
    load_imbalance,
    pe_candidate_split,
)
from repro.core.config import MachineConfig, strong_scaling_configs
from repro.util.errors import ValidationError


class TestBuildScbb:
    def test_design_a_structure(self):
        """1-SPE 1-PE: the original CBB — 2 FCs, no HPC."""
        scbb = build_scbb(strong_scaling_configs()["4x4x4-A"])
        assert scbb.n_pes == 1
        assert scbb.n_force_caches == 2
        assert not scbb.has_home_position_cache
        assert scbb.n_ring_node_sets == 1

    def test_design_b_structure(self):
        """1-SPE 3-PE: 4 FCs (n+1), still one ring set."""
        scbb = build_scbb(strong_scaling_configs()["4x4x4-B"])
        assert scbb.n_pes == 3
        assert scbb.n_force_caches == 4
        assert not scbb.has_home_position_cache

    def test_design_c_structure(self):
        """2-SPE 3-PE (Fig. 15): 8 FCs, HPC present, 2 ring sets."""
        scbb = build_scbb(strong_scaling_configs()["4x4x4-C"])
        assert scbb.n_pes == 6
        assert scbb.n_force_caches == 8
        assert scbb.has_home_position_cache
        assert scbb.n_ring_node_sets == 2

    def test_vc_mu_do_not_scale(self):
        """VC, MU, and the MU routing do not scale with the SCBB."""
        for cfg in strong_scaling_configs().values():
            scbb = build_scbb(cfg)
            assert scbb.has_velocity_cache
            assert scbb.has_motion_update

    def test_filters_per_pe(self):
        scbb = build_scbb(MachineConfig((3, 3, 3), filters_per_pipeline=8))
        assert scbb.spes[0].pes[0].filters == 8


class TestInterleaving:
    def test_even_odd_split(self):
        ids = np.arange(10)
        pc0, pc1 = interleave_particles(ids, 2)
        np.testing.assert_array_equal(pc0, [0, 2, 4, 6, 8])
        np.testing.assert_array_equal(pc1, [1, 3, 5, 7, 9])

    def test_partition_is_disjoint_and_complete(self):
        ids = np.arange(64)
        parts = interleave_particles(ids, 3)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, ids)

    def test_balanced_within_one(self):
        parts = interleave_particles(np.arange(64), 3)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_single_spe_identity(self):
        parts = interleave_particles(np.arange(5), 1)
        assert len(parts) == 1
        np.testing.assert_array_equal(parts[0], np.arange(5))

    def test_validation(self):
        with pytest.raises(ValidationError):
            interleave_particles(np.arange(4), 0)


class TestPECandidateSplit:
    def test_totals_preserved_single_pe(self):
        cfg = MachineConfig((3, 3, 3))
        split = pe_candidate_split(64, (64,) * 13, cfg)
        expected = 64 * 63 // 2 + 13 * 64 * 64
        assert split.sum() == expected
        assert len(split) == 1

    def test_balanced_for_design_c(self):
        cfg = strong_scaling_configs()["4x4x4-C"]
        split = pe_candidate_split(64, (64,) * 13, cfg)
        assert len(split) == 6
        assert load_imbalance(split) < 1.05  # interleaving balances well

    def test_imbalance_metric(self):
        assert load_imbalance(np.array([10, 10, 10])) == 1.0
        assert load_imbalance(np.array([20, 10, 0])) == 2.0
        assert load_imbalance(np.array([0, 0])) == 1.0

"""Tests for the batched engine's numerical health guards (DESIGN.md §12).

The contract under test:

* guards are read-only — a guarded healthy run is **bitwise identical**
  to an unguarded one, on every available backend;
* a poisoned segment trips exactly once, is quarantined through the
  swap-out machinery at its step boundary, and every survivor is
  bitwise identical to a run that never contained the poisoned job —
  including when the quarantine composes with overflow-driven repacks
  and mid-run admissions;
* admission screening rejects non-finite uploads with a typed error;
* the chaos plan is deterministic (same seed, same decisions) and
  corrupts copies, never its input.
"""

import numpy as np
import pytest

from repro.faults.health import (
    CHAOS_MODES,
    GuardConfig,
    JobChaosPlan,
    REASON_DISPLACEMENT,
    REASON_DRIFT,
    REASON_INPUT,
    check_system_finite,
)
from repro.md.backends import available_backends
from repro.md.batch import BatchedEngine, solo_oracle_impl
from repro.md.dataset import build_dataset
from repro.md.engine import ReferenceEngine
from repro.md.thermostat import VelocityRescaleThermostat
from repro.util.errors import JobPoisonedError, ValidationError

BACKENDS = available_backends()


def small_case(seed, ppc=3, dims=(3, 3, 3)):
    return build_dataset(dims, cutoff=8.5, particles_per_cell=ppc, seed=seed)


def run_batch(cases, steps, impl, guard=None, poison_handle=None,
              poison_step=None):
    """Step a batch; optionally NaN one segment's velocity mid-run."""
    eng = BatchedEngine(force_impl=impl, guard=guard)
    handles = [eng.add(s.copy(), g) for s, g in cases]
    if poison_step is None:
        eng.step(steps)
    else:
        eng.step(poison_step)
        seg = eng._by_handle[poison_handle]
        eng._vel[seg.base, 0] = np.nan
        eng.step(steps - poison_step)
    return eng, handles


class TestGuardedHealthyPath:
    def test_bitwise_identical_to_unguarded_all_backends(self):
        cases = [small_case(70 + i, ppc=3 + i % 2) for i in range(5)]
        for name in BACKENDS:
            plain, hp = run_batch(cases, 25, name)
            guarded, hg = run_batch(cases, 25, name, guard=GuardConfig())
            assert not guarded.poison_log
            for a, b in zip(hp, hg):
                pa, ga = plain.extract(a), guarded.extract(b)
                assert np.array_equal(pa.positions, ga.positions), name
                assert np.array_equal(pa.velocities, ga.velocities), name
                assert np.array_equal(pa.forces, ga.forces), name

    def test_guard_config_defaults(self):
        g = GuardConfig()
        assert g.resolved_max_disp(8.5) == pytest.approx(0.25 * 8.5)
        assert GuardConfig(max_step_displacement=1.5).resolved_max_disp(8.5) == 1.5
        with pytest.raises(ValidationError):
            GuardConfig(max_step_displacement=-1.0).resolved_max_disp(8.5)


class TestQuarantine:
    def test_k64_one_nan_job_all_backends(self):
        """The acceptance scenario: K=64, one NaN-seeded job.

        Exactly that job quarantines; all 63 survivors are bitwise
        identical to a run that never contained it — on every backend.
        """
        k = 64
        cases = [small_case(200 + i, ppc=2) for i in range(k)]
        bad = 31
        for name in BACKENDS:
            poisoned = cases[bad][0].copy()
            poisoned.velocities[0, 0] = np.nan

            eng = BatchedEngine(force_impl=name, guard=GuardConfig())
            handles = []
            for i, (s, g) in enumerate(cases):
                sysv = poisoned if i == bad else s.copy()
                # The NaN job must get past admission to test the
                # in-flight tripwire.
                if i == bad:
                    eng.guard = GuardConfig(check_input=False)
                handles.append(eng.add(sysv, g))
                if i == bad:
                    eng.guard = GuardConfig()
            eng.step(8)
            assert len(eng.poison_log) == 1
            rec = eng.poison_log[0]
            assert rec.handle == handles[bad]
            assert rec.reason == REASON_DISPLACEMENT
            assert eng.n_segments == k - 1

            ref = BatchedEngine(force_impl=name, guard=GuardConfig())
            ref_handles = [
                ref.add(s.copy(), g)
                for i, (s, g) in enumerate(cases) if i != bad
            ]
            ref.step(8)
            survivors = [h for i, h in enumerate(handles) if i != bad]
            for h, hr in zip(survivors, ref_handles):
                a, b = eng.extract(h), ref.extract(hr)
                assert np.array_equal(a.positions, b.positions), name
                assert np.array_equal(a.velocities, b.velocities), name

    def test_trip_records_and_segment_steps(self):
        cases = [small_case(80 + i) for i in range(4)]
        eng, handles = run_batch(
            cases, 12, BACKENDS[-1], guard=GuardConfig(),
            poison_handle=2, poison_step=5,
        )
        assert [r.handle for r in eng.poison_log] == [2]
        rec = eng.poison_log[0]
        assert rec.reason == REASON_DISPLACEMENT
        assert rec.step == 6  # NaN injected after step 5, tripped on 6
        assert rec.segment_steps == 6
        assert rec.system is not None and rec.system.n == cases[2][0].n
        d = rec.asdict()
        assert d["reason"] == REASON_DISPLACEMENT
        assert "system" not in d

    def test_multiple_trips_same_step(self):
        """Two segments poisoned in the same step both quarantine cleanly."""
        cases = [small_case(90 + i) for i in range(5)]
        eng = BatchedEngine(force_impl=BACKENDS[-1], guard=GuardConfig())
        handles = [eng.add(s.copy(), g) for s, g in cases]
        eng.step(3)
        for h in (handles[1], handles[3]):
            seg = eng._by_handle[h]
            eng._vel[seg.base, 0] = np.nan
        eng.step(4)
        assert sorted(r.handle for r in eng.poison_log) == [1, 3]
        assert eng.n_segments == 3

    def test_quarantine_composes_with_swap_and_repack(self):
        """Overflow-repack + mid-run admission around a quarantined middle
        segment: survivors stay bitwise, counters keep counting."""
        impl = BACKENDS[-1]
        cases = [small_case(100 + i, ppc=2 + i % 3) for i in range(5)]
        late = small_case(110, ppc=4)

        eng = BatchedEngine(force_impl=impl, guard=GuardConfig())
        handles = [eng.add(s.copy(), g) for s, g in cases]
        eng.step(4)
        seg = eng._by_handle[handles[2]]
        eng._vel[seg.base, 0] = np.nan
        eng.step(4)  # trips on step 5, repack happens on step 6
        assert [r.handle for r in eng.poison_log] == [handles[2]]
        h_late = eng.add(late[0].copy(), late[1])  # forces another repack
        eng.step(6)

        ref = BatchedEngine(force_impl=impl, guard=GuardConfig())
        ref_handles = [
            ref.add(s.copy(), g)
            for i, (s, g) in enumerate(cases) if i != 2
        ]
        ref.step(8)
        ref_late = ref.add(late[0].copy(), late[1])
        ref.step(6)
        survivors = [h for i, h in enumerate(handles) if i != 2]
        for h, hr in zip(survivors + [h_late], ref_handles + [ref_late]):
            a, b = eng.extract(h), ref.extract(hr)
            assert np.array_equal(a.positions, b.positions)
            assert np.array_equal(a.velocities, b.velocities)
            assert eng.segment_steps(h) == ref.segment_steps(hr)
            assert eng.state_builds(h) == ref.state_builds(hr)

    def test_admission_screen(self):
        s, g = small_case(120)
        s.positions[3, 1] = np.inf
        eng = BatchedEngine(guard=GuardConfig())
        with pytest.raises(JobPoisonedError) as exc:
            eng.add(s, g)
        assert exc.value.record.reason == REASON_INPUT
        assert eng.n_segments == 0
        # check_input=False admits it (callers may want the tripwire).
        eng2 = BatchedEngine(guard=GuardConfig(check_input=False))
        eng2.add(s, g)
        assert eng2.n_segments == 1

    def test_check_system_finite_helper(self):
        s, _ = small_case(121)
        check_system_finite(s.positions, s.velocities)  # healthy: no raise
        s.velocities[0, 2] = np.nan
        with pytest.raises(JobPoisonedError):
            check_system_finite(s.positions, s.velocities)


class TestEnergyDriftWatchdog:
    def test_kick_trips_drift_guard(self):
        """A huge-but-finite velocity kick trips displacement or drift."""
        cases = [small_case(130 + i) for i in range(3)]
        guard = GuardConfig(energy_drift_tol=0.05)
        eng = BatchedEngine(force_impl=BACKENDS[-1], guard=guard)
        handles = [eng.add(s.copy(), g) for s, g in cases]
        eng.step(3)
        seg = eng._by_handle[handles[1]]
        eng._vel[seg.base] *= 50.0  # finite corruption, energy blows up
        eng.step(5)
        assert [r.handle for r in eng.poison_log] == [1]
        assert eng.poison_log[0].reason in (REASON_DISPLACEMENT, REASON_DRIFT)

    def test_thermostatted_segment_exempt(self):
        """Thermostats legitimately change E: no drift trips for them."""
        cases = [small_case(140 + i) for i in range(3)]
        guard = GuardConfig(energy_drift_tol=1e-9)  # hair trigger
        eng = BatchedEngine(force_impl=BACKENDS[-1], guard=guard)
        for s, g in cases:
            eng.add(s.copy(), g, thermostat=VelocityRescaleThermostat(400.0))
        eng.step(10)
        assert not eng.poison_log

    def test_healthy_nve_survives_loose_tol(self):
        cases = [small_case(150 + i) for i in range(3)]
        eng = BatchedEngine(
            force_impl=BACKENDS[-1], guard=GuardConfig(energy_drift_tol=0.5)
        )
        for s, g in cases:
            eng.add(s.copy(), g)
        eng.step(15)
        assert not eng.poison_log


class TestChaosPlan:
    def test_deterministic_and_pure(self):
        plan_a = JobChaosPlan(seed=11, poison_rate=0.3)
        plan_b = JobChaosPlan(seed=11, poison_rate=0.3)
        decisions = [plan_a.decide(i) for i in range(40)]
        assert decisions == [plan_b.decide(i) for i in range(40)]
        assert any(d is not None for d in decisions)
        assert any(d is None for d in decisions)
        assert set(d for d in decisions if d) <= set(CHAOS_MODES)

    def test_poison_copies_not_mutates(self):
        plan = JobChaosPlan(seed=12, poison_rate=1.0)
        s, _ = small_case(160)
        before = s.velocities.copy()
        out = plan.poison(s, 0)
        assert np.array_equal(s.velocities, before)
        assert not (
            np.array_equal(out.velocities, before)
            and np.array_equal(out.positions, s.positions)
        )

    def test_zero_rate_never_poisons(self):
        plan = JobChaosPlan(seed=13, poison_rate=0.0)
        assert all(plan.decide(i) is None for i in range(50))

"""Tests for the distributed execution mode (real packets + ID conversion)."""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine
from repro.md import build_dataset
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def pair():
    """A global machine and a distributed machine on identical state."""
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=2)
    return (
        cfg,
        FasdaMachine(cfg, system=system.copy()),
        DistributedMachine(cfg, system=system.copy()),
    )


class TestConstruction:
    def test_single_node_rejected(self):
        with pytest.raises(ConfigError):
            DistributedMachine(MachineConfig((3, 3, 3)))

    def test_coulomb_machine_constructs(self):
        system, _ = build_dataset(
            (4, 4, 4), particles_per_cell=8, species=("Na", "Cl"),
            charged=True, min_distance=2.4, seed=3,
        )
        d = DistributedMachine(
            MachineConfig((4, 4, 4), (2, 2, 2), force_model="lj+coulomb"),
            system=system,
        )
        assert d.coulomb_pipeline is not None


class TestEquivalenceWithGlobalMachine:
    def test_forces_agree_within_accumulation_noise(self, pair):
        _, global_m, dist_m = pair
        global_m.compute_forces(collect_traffic=True)
        dist_m.compute_forces()
        fg = global_m.forces.astype(np.float64)
        fd = dist_m.forces.astype(np.float64)
        scale = np.abs(fg).max()
        assert np.abs(fg - fd).max() / scale < 1e-5

    def test_potential_energy_agrees(self, pair):
        _, global_m, dist_m = pair
        stats = global_m.compute_forces(collect_traffic=True)
        dist_m.compute_forces()
        assert dist_m._last_potential == pytest.approx(
            stats.potential_energy, rel=1e-5
        )

    def test_position_packet_count_matches_traffic_accounting(self, pair):
        """The distributed execution's real packets equal the global
        machine's accounting: ceil(records / 4) per directed node pair."""
        cfg, global_m, dist_m = pair
        stats = global_m.compute_forces(collect_traffic=True)
        dist_m.total_position_packets = 0
        dist_m.compute_forces()
        expected = sum(
            int(np.ceil(r / cfg.records_per_packet))
            for r in stats.position_records.values()
        )
        assert dist_m.total_position_packets == expected

    def test_trajectories_track_each_other(self):
        """Several steps: energies agree within float32 noise growth."""
        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=5)
        g = FasdaMachine(cfg, system=system.copy())
        d = DistributedMachine(cfg, system=system.copy())
        g_recs = g.run(10, record_every=5)
        d_recs = d.run(10, record_every=5)
        for gr, dr in zip(g_recs, d_recs):
            assert dr.total == pytest.approx(gr.total, rel=1e-5)


class TestCoulombEquivalence:
    def test_charged_forces_match_global_machine(self):
        """The dual-pipeline (LJ + Ewald) datapath distributes too."""
        cfg = MachineConfig(
            (4, 4, 4), (2, 2, 2), force_model="lj+coulomb", dt_fs=0.5
        )
        system, _ = build_dataset(
            (4, 4, 4), particles_per_cell=8, species=("Na", "Cl"),
            charged=True, min_distance=2.4, temperature_k=100.0, seed=6,
        )
        g = FasdaMachine(cfg, system=system.copy())
        d = DistributedMachine(cfg, system=system.copy())
        g.compute_forces(collect_traffic=False)
        d.compute_forces()
        fg = g.forces.astype(np.float64)
        fd = d.forces.astype(np.float64)
        assert np.abs(fg - fd).max() / np.abs(fg).max() < 1e-5


class TestParallelExecution:
    def test_parallel_identical_to_serial(self):
        """Thread-pool evaluation merges deterministically: bit-identical
        forces regardless of worker scheduling."""
        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=9)
        serial = DistributedMachine(cfg, system=system.copy(), parallel=False)
        threaded = DistributedMachine(cfg, system=system.copy(), parallel=True)
        serial.compute_forces()
        threaded.compute_forces()
        np.testing.assert_array_equal(serial.forces, threaded.forces)
        assert serial._last_potential == threaded._last_potential

    def test_parallel_trajectory_identical(self):
        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=8, seed=10)
        serial = DistributedMachine(cfg, system=system.copy())
        threaded = DistributedMachine(
            cfg, system=system.copy(), parallel=True, max_workers=3
        )
        serial.run(5, record_every=0)
        threaded.run(5, record_every=0)
        np.testing.assert_array_equal(
            serial.system.positions, threaded.system.positions
        )

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_parallel_trajectory_bitwise_20_steps(self, mode):
        """Serial vs pooled trajectories stay bitwise-identical over a
        long run — positions, velocities, forces and energy history."""
        cfg = MachineConfig((4, 4, 4), (2, 2, 1))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=12, seed=12)
        serial = DistributedMachine(cfg, system=system.copy(), parallel=False)
        pooled = DistributedMachine(cfg, system=system.copy(), parallel=mode)
        try:
            serial.run(20, record_every=1)
            pooled.run(20, record_every=1)
            np.testing.assert_array_equal(
                serial.system.positions, pooled.system.positions
            )
            np.testing.assert_array_equal(serial.forces, pooled.forces)
            np.testing.assert_array_equal(
                serial.velocities, pooled.velocities
            )
            assert [(r.step, r.kinetic, r.potential) for r in serial.history] == [
                (r.step, r.kinetic, r.potential) for r in pooled.history
            ]
            assert serial.total_position_packets == pooled.total_position_packets
            assert serial.total_force_packets == pooled.total_force_packets
        finally:
            pooled.close()

    def test_executor_reused_across_steps(self):
        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        system, _ = build_dataset((4, 4, 4), particles_per_cell=8, seed=10)
        d = DistributedMachine(cfg, system=system, parallel="thread")
        try:
            d.compute_forces()
            first = d._executor
            d.compute_forces()
            assert d._executor is first
        finally:
            d.close()
        assert d._executor is None


class TestProtocolProperties:
    def test_energy_conserved(self, pair):
        cfg, _, _ = pair
        system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=7)
        d = DistributedMachine(cfg, system=system)
        recs = d.run(20, record_every=10)
        e0 = recs[0].total
        for rec in recs:
            assert abs(rec.total - e0) / abs(e0) < 5e-3

    def test_newtons_third_law_across_nodes(self, pair):
        """Forces summed over ALL nodes' particles vanish — the returned
        neighbor-force packets carry exactly the missing reactions."""
        _, _, dist_m = pair
        dist_m.compute_forces()
        total = dist_m.forces.astype(np.float64).sum(axis=0)
        assert np.abs(total).max() < 1e-2

    def test_force_packets_flow(self, pair):
        _, _, dist_m = pair
        dist_m.total_force_packets = 0
        dist_m.compute_forces()
        assert dist_m.total_force_packets > 0

    def test_negative_steps_rejected(self, pair):
        _, _, dist_m = pair
        with pytest.raises(Exception):
            dist_m.run(-1)

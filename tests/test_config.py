"""Tests for MachineConfig and the paper's named design points."""

import numpy as np
import pytest

from repro.core.config import (
    MachineConfig,
    all_paper_configs,
    simulated_scaling_configs,
    strong_scaling_configs,
    weak_scaling_configs,
)
from repro.util.errors import ConfigError


class TestValidation:
    def test_minimal_valid(self):
        cfg = MachineConfig((3, 3, 3))
        assert cfg.n_fpgas == 1
        assert cfg.cells_per_fpga == 27

    def test_global_cells_too_small(self):
        with pytest.raises(ConfigError):
            MachineConfig((2, 3, 3))

    def test_indivisible_grid_rejected(self):
        with pytest.raises(ConfigError, match="not divisible"):
            MachineConfig((4, 4, 4), (3, 1, 1))

    def test_bad_scaling_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig((3, 3, 3), pes_per_spe=0)

    def test_bad_cooldown_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig((3, 3, 3), cooldown_cycles=0)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig((3, 3, 3), clock_mhz=0)


class TestDerivedGeometry:
    def test_local_cells(self):
        cfg = MachineConfig((4, 4, 4), (2, 2, 2))
        assert cfg.local_cells == (2, 2, 2)
        assert cfg.n_fpgas == 8
        assert cfg.cells_per_fpga == 8

    def test_pes_per_cbb(self):
        cfg = MachineConfig((4, 4, 4), (2, 2, 2), pes_per_spe=3, spes_per_cbb=2)
        assert cfg.pes_per_cbb == 6
        assert cfg.pes_per_fpga == 48

    def test_box(self):
        cfg = MachineConfig((4, 4, 4), cutoff=8.5)
        np.testing.assert_allclose(cfg.box, 34.0)

    def test_clock_conversions(self):
        cfg = MachineConfig((3, 3, 3), clock_mhz=200.0)
        assert cfg.clock_hz == 200e6
        assert cfg.cycle_seconds == pytest.approx(5e-9)

    def test_is_distributed(self):
        assert not MachineConfig((3, 3, 3)).is_distributed
        assert MachineConfig((6, 3, 3), (2, 1, 1)).is_distributed

    def test_with_scaling_preserves_rest(self):
        base = MachineConfig((4, 4, 4), (2, 2, 2), clock_mhz=150.0)
        scaled = base.with_scaling(3, 2)
        assert scaled.pes_per_spe == 3
        assert scaled.spes_per_cbb == 2
        assert scaled.clock_mhz == 150.0

    def test_describe_mentions_key_facts(self):
        txt = MachineConfig((4, 4, 4), (2, 2, 2), pes_per_spe=3, spes_per_cbb=2).describe()
        assert "4x4x4" in txt and "8 FPGA" in txt and "2-SPE" in txt


class TestFromCompileArgs:
    """The artifact's ./compile.sh argument convention."""

    def test_paper_invocation(self):
        # "./compile.sh 222 444 ... configures the system for 2x2x2
        # cells per FPGA, and 4x4x4 cells in total."
        cfg = MachineConfig.from_compile_args("222", "444")
        assert cfg.global_cells == (4, 4, 4)
        assert cfg.fpga_grid == (2, 2, 2)
        assert cfg.local_cells == (2, 2, 2)

    def test_weak_scaling_invocation(self):
        cfg = MachineConfig.from_compile_args("333", "666")
        assert cfg.n_fpgas == 8

    def test_single_fpga(self):
        cfg = MachineConfig.from_compile_args("333", "333")
        assert cfg.n_fpgas == 1

    def test_extra_kwargs_forwarded(self):
        cfg = MachineConfig.from_compile_args("222", "444", pes_per_spe=3)
        assert cfg.pes_per_spe == 3

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig.from_compile_args("22", "444")
        with pytest.raises(ConfigError):
            MachineConfig.from_compile_args("2x2", "444")
        with pytest.raises(ConfigError):
            MachineConfig.from_compile_args("022", "444")

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError, match="not divisible"):
            MachineConfig.from_compile_args("322", "444")


class TestPaperPresets:
    def test_weak_scaling_fpga_counts(self):
        cfgs = weak_scaling_configs()
        assert [c.n_fpgas for c in cfgs.values()] == [1, 2, 4, 8]
        # Every weak-scaling node owns a 3x3x3 block.
        assert all(c.local_cells == (3, 3, 3) for c in cfgs.values())

    def test_strong_scaling_variants(self):
        cfgs = strong_scaling_configs()
        assert cfgs["4x4x4-A"].pes_per_cbb == 1
        assert cfgs["4x4x4-B"].pes_per_cbb == 3
        assert cfgs["4x4x4-C"].pes_per_cbb == 6
        assert all(c.n_fpgas == 8 for c in cfgs.values())

    def test_simulated_configs(self):
        cfgs = simulated_scaling_configs()
        assert cfgs["8x8x8-64F"].n_fpgas == 64
        assert cfgs["10x10x10-125F"].n_fpgas == 125
        assert all(c.local_cells == (2, 2, 2) for c in cfgs.values())

    def test_all_paper_configs_count(self):
        assert len(all_paper_configs()) == 9

    def test_config_hashable_and_comparable(self):
        """Frozen configs key performance caches (FpgaPerformanceModel)."""
        a = MachineConfig((3, 3, 3))
        b = MachineConfig((3, 3, 3))
        c = MachineConfig((3, 3, 3), pes_per_spe=2)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

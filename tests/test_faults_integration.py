"""Fault injection end to end: event network, sync protocol, machine.

Covers the headline robustness guarantees:

* a zero-rate injector leaves every layer bitwise identical to a run
  with no injector at all;
* under loss, the reliable transport recovers the exact fault-free
  trajectory within its retry budget (and accounts the cycle overhead);
* bare UDP under the same loss is *diagnosed* — stale-halo degradation
  with bounded force error on the machine, a watchdog naming the stuck
  node on the sync protocol — never a silent hang.
"""

import numpy as np
import pytest

from repro.core.config import MachineConfig
from repro.core.distributed import DistributedMachine
from repro.core.sync import run_chained_sync
from repro.eventsim import EventSimulator
from repro.faults import FaultInjector, FaultPlan, TransportConfig
from repro.md import build_dataset
from repro.network.fabric import LinkStats
from repro.network.netsim import Burst, OutputQueuedSwitch, SwitchStats
from repro.network.topology import TorusTopology
from repro.util.errors import (
    ConfigError,
    DeadlockError,
    SimulationError,
    TransportError,
)

TORUS = TorusTopology((2, 2, 2))


def constant_work(cycles):
    return lambda node, iteration: cycles


# -- stats merge helpers (satellite c) --------------------------------------


class TestStatsMerging:
    def test_switch_stats_add(self):
        a = SwitchStats(delivered=10, dropped=1, max_occupancy={0: 5, 1: 2})
        b = SwitchStats(delivered=4, dropped=0, max_occupancy={1: 7}, injected=3)
        m = a + b
        assert m.delivered == 14
        assert m.dropped == 1
        assert m.injected == 3
        assert m.max_occupancy == {0: 5, 1: 7}  # per-port peak, not sum

    def test_switch_stats_sum(self):
        parts = [SwitchStats(delivered=i, dropped=0) for i in (1, 2, 3)]
        assert sum(parts).delivered == 6

    def test_switch_loss_rate_counts_injected(self):
        s = SwitchStats(delivered=90, dropped=5, injected=5)
        assert s.loss_rate == pytest.approx(0.1)

    def test_link_stats_add(self):
        m = LinkStats(packets=3, records=12) + LinkStats(packets=2, records=5)
        assert (m.packets, m.records) == (5, 17)
        assert sum([LinkStats(packets=1), LinkStats(packets=2)]).packets == 3


# -- switch-level injection --------------------------------------------------


class TestSwitchInjection:
    def test_injector_losses_counted(self):
        switch = OutputQueuedSwitch(4, buffer_packets=16)
        inj = FaultInjector(FaultPlan(seed=1, drop_rate=1.0))
        stats = switch.run([Burst(1, 0, 50, gap_cycles=2)], injector=inj)
        assert stats.injected == 50
        assert stats.delivered == 0
        assert stats.loss_rate == 1.0

    def test_zero_rate_injector_matches_no_injector(self):
        bursts = [Burst(s, 0, 40, gap_cycles=2) for s in (1, 2, 3)]
        base = OutputQueuedSwitch(4, buffer_packets=16).run(bursts)
        inj = FaultInjector(FaultPlan(seed=1))
        faulty = OutputQueuedSwitch(4, buffer_packets=16).run(
            bursts, injector=inj
        )
        assert faulty == base

    def test_reproducible(self):
        bursts = [Burst(1, 0, 100, gap_cycles=1)]
        inj = FaultPlan(seed=9, drop_rate=0.2)
        a = OutputQueuedSwitch(2).run(bursts, injector=FaultInjector(inj))
        b = OutputQueuedSwitch(2).run(bursts, injector=FaultInjector(inj))
        assert a == b


# -- event-kernel watchdog ---------------------------------------------------


class TestWatchdog:
    def test_watchdog_raises_on_stuck_diagnosis(self):
        sim = EventSimulator()
        sim.schedule(1.0, lambda: None)
        sim.add_watchdog(lambda: "node 3 stuck")
        with pytest.raises(DeadlockError, match="node 3 stuck"):
            sim.run()

    def test_healthy_watchdog_is_silent(self):
        sim = EventSimulator()
        sim.schedule(1.0, lambda: None)
        sim.add_watchdog(lambda: None)
        sim.run()
        assert sim.events_processed == 1


# -- chained sync ------------------------------------------------------------


class TestSyncFaults:
    def test_zero_fault_injector_bitwise_identical(self):
        base = run_chained_sync(TORUS, constant_work(1000.0), n_iterations=4)
        faulty = run_chained_sync(
            TORUS,
            constant_work(1000.0),
            n_iterations=4,
            injector=FaultInjector(FaultPlan(seed=17)),
        )
        np.testing.assert_array_equal(
            faulty.iteration_complete, base.iteration_complete
        )
        assert faulty.fault_counts is not None
        assert faulty.fault_counts["dropped"] == 0

    def test_drop_without_transport_names_stuck_node(self):
        inj = FaultInjector(FaultPlan(seed=3, drop_rate=0.05))
        with pytest.raises(DeadlockError, match=r"node \d+ stuck at iteration \d+"):
            run_chained_sync(
                TORUS, constant_work(1000.0), n_iterations=10, injector=inj
            )

    def test_drop_with_transport_completes_with_overhead(self):
        base = run_chained_sync(TORUS, constant_work(1000.0), n_iterations=10)
        inj = FaultInjector(FaultPlan(seed=3, drop_rate=0.05))
        res = run_chained_sync(
            TORUS,
            constant_work(1000.0),
            n_iterations=10,
            injector=inj,
            transport=TransportConfig(retry_budget=4),
        )
        assert res.fault_counts["retransmits"] > 0
        assert res.fault_counts["lost"] == 0
        assert res.makespan > base.makespan  # retries cost time...
        assert res.makespan < 2 * base.makespan  # ...but bounded overhead

    def test_stall_faults_slow_the_run(self):
        base = run_chained_sync(TORUS, constant_work(1000.0), n_iterations=6)
        inj = FaultInjector(
            FaultPlan(seed=5, stall_rate=0.3, stall_factor=4.0)
        )
        res = run_chained_sync(
            TORUS, constant_work(1000.0), n_iterations=6, injector=inj
        )
        assert res.makespan > base.makespan

    def test_legacy_drop_message_fn_warns(self):
        with pytest.warns(DeprecationWarning, match="drop_message_fn"):
            run_chained_sync(
                TORUS,
                constant_work(1000.0),
                n_iterations=2,
                drop_message_fn=lambda msg: False,
            )

    def test_legacy_and_injector_conflict(self):
        with pytest.raises(ConfigError):
            run_chained_sync(
                TORUS,
                constant_work(1000.0),
                n_iterations=2,
                drop_message_fn=lambda msg: False,
                injector=FaultInjector(FaultPlan()),
            )

    def test_deadlock_error_is_simulation_error(self):
        """Callers catching the old SimulationError keep working."""
        assert issubclass(DeadlockError, SimulationError)
        assert issubclass(TransportError, SimulationError)


# -- distributed machine -----------------------------------------------------


@pytest.fixture(scope="module")
def dataset():
    cfg = MachineConfig((4, 4, 4), (2, 2, 2))
    system, _ = build_dataset((4, 4, 4), particles_per_cell=16, seed=2)
    return cfg, system


def _run(cfg, system, n_steps=3, **kwargs):
    machine = DistributedMachine(cfg, system=system.copy(), **kwargs)
    for _ in range(n_steps):
        machine.step()
    return machine


@pytest.fixture(scope="module")
def baseline(dataset):
    cfg, system = dataset
    return _run(cfg, system)


class TestMachineFaults:
    def test_zero_fault_injector_bitwise_identical(self, dataset, baseline):
        cfg, system = dataset
        m = _run(
            cfg,
            system,
            injector=FaultInjector(FaultPlan(seed=7)),
            transport=TransportConfig(retry_budget=2),
        )
        np.testing.assert_array_equal(
            m.system.positions, baseline.system.positions
        )
        np.testing.assert_array_equal(m.forces, baseline.forces)
        assert m.transport_stats.overhead_cycles == 0.0
        assert m.transport_stats.retransmits == 0
        assert m.degraded_records_total == 0

    def test_one_percent_loss_with_retries_recovers_exactly(
        self, dataset, baseline
    ):
        """The acceptance criterion: 1% loss + retry budget >= 2 gives a
        bitwise-identical trajectory with reported cycle overhead."""
        cfg, system = dataset
        m = _run(
            cfg,
            system,
            injector=FaultInjector(FaultPlan(seed=7, drop_rate=0.01)),
            transport=TransportConfig(retry_budget=2),
        )
        np.testing.assert_array_equal(
            m.system.positions, baseline.system.positions
        )
        assert m.transport_stats.retransmits > 0
        assert m.transport_stats.lost == 0
        assert m.transport_stats.overhead_cycles > 0
        assert m.degraded_records_total == 0

    def test_bare_loss_at_first_exchange_raises(self, dataset):
        """No stale snapshot exists yet, so degradation is impossible."""
        cfg, system = dataset
        inj = FaultInjector(FaultPlan(seed=11, drop_rate=0.05))
        with pytest.raises(TransportError, match="lost .* position records"):
            _run(cfg, system, n_steps=1, injector=inj)

    def test_bare_loss_degrades_onto_stale_halo(self, dataset, baseline):
        cfg, system = dataset
        inj = FaultInjector(
            FaultPlan(seed=11, drop_rate=0.02, onset_iteration=1)
        )
        m = _run(cfg, system, n_steps=3, injector=inj)
        assert m.degraded_records_total > 0
        assert len(m.degradation_log) > 0
        rec = m.degradation_log[0]
        assert rec.age >= 1
        assert 0 < rec.force_error_bound < 1e6  # finite, non-vacuous
        # Stale positions perturb the trajectory, but only slightly.
        err = np.abs(m.system.positions - baseline.system.positions).max()
        assert 0 < err < 1e-2

    def test_degradation_raise_mode(self, dataset):
        cfg, system = dataset
        inj = FaultInjector(
            FaultPlan(seed=11, drop_rate=0.02, onset_iteration=1)
        )
        with pytest.raises(TransportError):
            _run(cfg, system, injector=inj, degradation="raise")

    def test_raise_mode_with_exhausted_transport_budget(self, dataset):
        """The composition: reliable transport runs out of retries AND
        degradation is forbidden — the run must die loudly, with the
        exhausted-budget loss visible in the transport counters."""
        cfg, system = dataset
        inj = FaultInjector(
            FaultPlan(seed=11, drop_rate=0.35, onset_iteration=1)
        )
        machine = DistributedMachine(
            cfg, system=system.copy(), injector=inj,
            transport=TransportConfig(retry_budget=1),
            degradation="raise",
        )
        with pytest.raises(TransportError, match=r"degradation='raise'"):
            for _ in range(3):
                machine.step()
        assert machine.transport_stats.lost > 0
        assert machine.transport_stats.retransmits > 0

    def test_raise_mode_with_sufficient_budget_is_bitwise(
        self, dataset, baseline
    ):
        """raise-mode is free when the transport actually recovers."""
        cfg, system = dataset
        m = _run(
            cfg, system,
            injector=FaultInjector(FaultPlan(seed=7, drop_rate=0.01)),
            transport=TransportConfig(retry_budget=4),
            degradation="raise",
        )
        np.testing.assert_array_equal(
            m.system.positions, baseline.system.positions
        )
        assert m.transport_stats.lost == 0
        assert len(m.degradation_log) == 0

    def test_bad_degradation_mode_rejected(self, dataset):
        cfg, system = dataset
        with pytest.raises(ConfigError):
            DistributedMachine(cfg, system=system.copy(), degradation="panic")

    def test_loop_exchange_with_injector_rejected(self, dataset):
        cfg, system = dataset
        m = DistributedMachine(
            cfg, system=system.copy(),
            injector=FaultInjector(FaultPlan(seed=1)),
        )
        m.exchange_impl = "loop"
        with pytest.raises(ConfigError):
            m.compute_forces()

    def test_faulty_runs_reproducible(self, dataset):
        cfg, system = dataset
        kwargs = dict(
            injector=FaultInjector(FaultPlan(seed=13, drop_rate=0.02)),
            transport=TransportConfig(retry_budget=3),
        )
        a = _run(cfg, system, **kwargs)
        b = _run(cfg, system, **kwargs)
        np.testing.assert_array_equal(a.system.positions, b.system.positions)
        assert a.transport_stats == b.transport_stats


class TestMinimumPairDistance:
    def test_matches_bruteforce(self):
        from repro.md.neighborlist import minimum_pair_distance

        system, grid = build_dataset(
            (3, 3, 3), particles_per_cell=8, seed=4
        )
        pos = system.positions
        ii, jj = np.triu_indices(len(pos), k=1)
        dr = pos[ii] - pos[jj]
        dr -= system.box * np.rint(dr / system.box)
        expected = float(np.sqrt((dr * dr).sum(axis=1).min()))
        assert minimum_pair_distance(system, grid) == pytest.approx(expected)

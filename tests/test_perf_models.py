"""Tests for the calibrated CPU/GPU baseline models and the FPGA adapter."""

import pytest

from repro.core.config import MachineConfig, strong_scaling_configs
from repro.perf import CpuPerformanceModel, FpgaPerformanceModel, GpuPerformanceModel
from repro.util.errors import ValidationError


class TestGpuModel:
    def test_unknown_device_rejected(self):
        with pytest.raises(ValidationError):
            GpuPerformanceModel("h100")

    def test_invalid_args_rejected(self):
        g = GpuPerformanceModel()
        with pytest.raises(ValidationError):
            g.time_per_step_us(0, 100)
        with pytest.raises(ValidationError):
            g.time_per_step_us(1, 0)

    def test_a100_anchor_rate(self):
        """1 A100 on 4x4x4 (4096 particles) ~ 2.27 us/day (derived from
        the paper's 4.67x claim; see calibration module)."""
        g = GpuPerformanceModel("a100")
        assert g.rate_us_per_day(1, 4096) == pytest.approx(2.27, rel=0.02)

    def test_two_a100_lose_26_percent(self):
        """Paper Sec. 5.2: '2 GPUs ... result in 26% performance loss'."""
        g = GpuPerformanceModel("a100")
        ratio = g.rate_us_per_day(2, 4096) / g.rate_us_per_day(1, 4096)
        assert ratio == pytest.approx(0.74, abs=0.03)

    def test_four_v100_lose_49_percent(self):
        """Paper Sec. 5.2: '4 GPUs result in ... 49% performance loss'."""
        v = GpuPerformanceModel("v100")
        a = GpuPerformanceModel("a100")
        ratio = v.rate_us_per_day(4, 4096) / a.rate_us_per_day(1, 4096)
        assert ratio == pytest.approx(0.51, abs=0.03)

    def test_one_gpu_8x8x8_drops_60_percent(self):
        """Paper Sec. 5.2: 'performance only drops by 60% when
        transitioning from 4x4x4 to 8x8x8 cells'."""
        g = GpuPerformanceModel("a100")
        ratio = g.rate_us_per_day(1, 32768) / g.rate_us_per_day(1, 4096)
        assert ratio == pytest.approx(0.40, abs=0.03)

    def test_10x10x10_halves_from_8x8x8(self):
        g = GpuPerformanceModel("a100")
        ratio = g.rate_us_per_day(1, 64000) / g.rate_us_per_day(1, 32768)
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_negative_strong_scaling_even_at_64k(self):
        """Paper: 'even for 10x10x10 cells (64K particles), GPUs still
        demonstrate negative strong scaling'."""
        g = GpuPerformanceModel("a100")
        assert g.rate_us_per_day(2, 64000) < g.rate_us_per_day(1, 64000)

    def test_weak_scaling_roughly_halves(self):
        """Paper: 'doubling the number of GPUs ... only provides half the
        simulation rate' for doubled workload."""
        g = GpuPerformanceModel("a100")
        ratio = g.rate_us_per_day(2, 8192) / g.rate_us_per_day(1, 4096)
        assert 0.4 < ratio < 0.7

    def test_best_rate_picks_single_gpu_at_small_n(self):
        g = GpuPerformanceModel("a100")
        assert g.best_rate_us_per_day(2, 4096) == g.rate_us_per_day(1, 4096)


class TestCpuModel:
    def test_scales_well_to_4_threads(self):
        c = CpuPerformanceModel()
        r1 = c.rate_us_per_day(1, 4096)
        r4 = c.rate_us_per_day(4, 4096)
        assert r4 / r1 > 2.8

    def test_negative_scaling_at_32_threads(self):
        """Paper: 'negative scaling for 16 threads and beyond'."""
        c = CpuPerformanceModel()
        assert c.rate_us_per_day(32, 4096) < c.rate_us_per_day(16, 4096)

    def test_saturation_between_8_and_16(self):
        c = CpuPerformanceModel()
        r8 = c.rate_us_per_day(8, 4096)
        r16 = c.rate_us_per_day(16, 4096)
        assert abs(r16 - r8) / r8 < 0.15

    def test_competitive_at_small_sizes(self):
        """Paper: 'CPUs exhibit competitive performance for smaller space
        sizes' — best CPU within ~2x of the FPGA's ~2 us/day at 3x3x3."""
        c = CpuPerformanceModel()
        assert c.best_rate_us_per_day(32, 1728) > 1.0

    def test_invalid_threads_rejected(self):
        with pytest.raises(ValidationError):
            CpuPerformanceModel().rate_us_per_day(0, 100)

    def test_speedup_interpolation_monotone_to_16(self):
        c = CpuPerformanceModel()
        sp = [c.speedup(t) for t in (1, 2, 4, 8, 16)]
        assert sp == sorted(sp)

    def test_speedup_clamps_above_table(self):
        c = CpuPerformanceModel()
        assert c.speedup(64) == c.speedup(32)


class TestFpgaAdapter:
    def test_rate_and_cache(self):
        model = FpgaPerformanceModel()
        cfg = MachineConfig((3, 3, 3))
        r1 = model.rate_us_per_day(cfg)
        assert 1.5 < r1 < 2.7
        # Second call hits the cache (same object).
        assert model.performance(cfg) is model.performance(cfg)

    def test_time_per_step_consistent(self):
        model = FpgaPerformanceModel()
        cfg = MachineConfig((3, 3, 3))
        t_us = model.time_per_step_us(cfg)
        assert t_us == pytest.approx(model.performance(cfg).seconds_per_step * 1e6)


class TestHeadlineSpeedup:
    def test_fasda_vs_best_gpu_speedup(self):
        """The paper's headline: FASDA 4x4x4-C is ~4.67x the best GPU."""
        fpga = FpgaPerformanceModel()
        cfg_c = strong_scaling_configs()["4x4x4-C"]
        rate_c = fpga.rate_us_per_day(cfg_c)
        best_gpu = max(
            GpuPerformanceModel("a100").best_rate_us_per_day(2, 4096),
            GpuPerformanceModel("v100").best_rate_us_per_day(4, 4096),
        )
        speedup = rate_c / best_gpu
        assert 3.7 < speedup < 5.6

"""Tests for the crash-safe job service (DESIGN.md §12).

Queue hardening (typed errors, duplicate rejection, FIFO ties under
resubmission), quarantine + retry lanes, deadline preemption with an
injectable clock, the fsync journal, and SIGKILL/resume bitwise parity.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.faults.health import GuardConfig, JobChaosPlan
from repro.harness.jobs import (
    DONE,
    JobQueue,
    PREEMPTED,
    QUARANTINED,
    QUEUED,
    job_fingerprint,
    load_jobs_journal,
    run_jobs,
)
from repro.md.backends import available_backends
from repro.md.dataset import build_dataset
from repro.util.errors import (
    JobPoisonedError,
    UnknownJobError,
    ValidationError,
)

BACKENDS = available_backends()


def small_case(seed, ppc=2, dims=(3, 3, 3)):
    return build_dataset(dims, cutoff=8.5, particles_per_cell=ppc, seed=seed)


def nan_case(seed):
    s, g = small_case(seed)
    s.velocities[0, 0] = np.nan
    return s, g


def kick_case(seed, scale=1e6):
    s, g = small_case(seed)
    s.velocities[:] = scale
    return s, g


class TestQueueHardening:
    def test_duplicate_object_rejected(self):
        q = JobQueue()
        s, g = small_case(1)
        q.submit(s, g, steps=5)
        with pytest.raises(ValidationError, match="already submitted"):
            q.submit(s, g, steps=5)
        q.submit(s.copy(), g, steps=5)  # a copy is a new job

    def test_unknown_id_typed_error(self):
        q = JobQueue()
        for method in (q.status, q.result, q.final_potential):
            with pytest.raises(UnknownJobError):
                method(7)
        # UnknownJobError is still a ValidationError for old callers.
        with pytest.raises(ValidationError):
            q.status(7)

    def test_fifo_ties_stable_under_resubmission(self):
        q = JobQueue()
        ids = [q.submit(small_case(10 + i)[0], small_case(10 + i)[1],
                        steps=5) for i in range(3)]
        assert [j.job_id for j in q.pending()] == ids
        # Requeue the head: it must rejoin at the BACK of its class.
        q.requeue(q._job(ids[0]))
        assert [j.job_id for j in q.pending()] == [ids[1], ids[2], ids[0]]
        # Priorities still dominate sequence.
        hi = q.submit(small_case(14)[0], small_case(14)[1], steps=5,
                      priority=2)
        assert [j.job_id for j in q.pending()][0] == hi

    def test_quarantined_result_raises_typed(self):
        q = JobQueue()
        jid = q.submit(*nan_case(20), steps=6)
        summary = run_jobs(q, guard=GuardConfig(), chunk_steps=3)
        assert summary["quarantined"] == 1 and summary["jobs_done"] == 0
        assert q.status(jid) == QUARANTINED
        with pytest.raises(JobPoisonedError) as exc:
            q.result(jid)
        assert exc.value.record["reason"] == "nonfinite_input"

    def test_bad_deadline_rejected(self):
        q = JobQueue()
        with pytest.raises(ValidationError):
            q.submit(*small_case(21), steps=5, deadline_s=0.0)


class TestQuarantineFlow:
    def test_survivors_bitwise_vs_never_poisoned(self):
        cases = [small_case(30 + i) for i in range(6)]
        bad_i = 2
        for name in BACKENDS:
            q = JobQueue()
            ids = []
            for i, (s, g) in enumerate(cases):
                sysv = s.copy()
                if i == bad_i:
                    sysv.velocities[:] = 1e6  # finite poison: passes admission
                ids.append(q.submit(sysv, g, steps=10))
            summary = run_jobs(q, force_impl=name, max_systems=4,
                               chunk_steps=4, guard=GuardConfig())
            assert summary["quarantined"] == 1
            assert q.status(ids[bad_i]) == QUARANTINED

            q_ref = JobQueue()
            ref_ids = [
                q_ref.submit(s.copy(), g, steps=10)
                for i, (s, g) in enumerate(cases) if i != bad_i
            ]
            run_jobs(q_ref, force_impl=name, max_systems=4, chunk_steps=4,
                     guard=GuardConfig())
            live = [jid for i, jid in enumerate(ids) if i != bad_i]
            for jid, rid in zip(live, ref_ids):
                a, b = q.result(jid), q_ref.result(rid)
                assert np.array_equal(a.positions, b.positions), name
                assert np.array_equal(a.velocities, b.velocities), name

    def test_retry_succeeds_at_reduced_dt(self):
        """A job that trips at full dt completes in the half-dt lane.

        Displacement scales ~linearly with dt, so a threshold between
        the dt=2 and dt=1 step sizes deterministically separates them.
        """
        s, g = small_case(40)
        # Measure the healthy max one-step displacement at dt=2 from
        # the wrapped position delta (min-image; steps are tiny).
        from repro.md.batch import BatchedEngine

        probe = BatchedEngine(dt_fs=2.0, force_impl=BACKENDS[-1])
        h = probe.add(s.copy(), g)
        before = probe.extract(h).positions.copy()
        probe.step(1)
        delta = probe.extract(h).positions - before
        delta -= s.box * np.round(delta / s.box)
        disp = float(np.sqrt((delta ** 2).sum(axis=1)).max())

        q = JobQueue()
        jid = q.submit(s.copy(), g, steps=8)
        guard = GuardConfig(max_step_displacement=0.6 * disp)
        summary = run_jobs(
            q, force_impl=BACKENDS[-1], chunk_steps=4, guard=guard,
            retry_attempts=2, retry_dt_factor=0.25,
        )
        assert q.status(jid) == DONE
        assert summary["retries"] >= 1
        assert q._job(jid).attempts >= 1

    def test_retry_budget_exhausts_to_terminal(self):
        q = JobQueue()
        jid = q.submit(*kick_case(41), steps=8)
        summary = run_jobs(q, guard=GuardConfig(), chunk_steps=4,
                           retry_attempts=1)
        assert q.status(jid) == QUARANTINED
        assert summary["retries"] == 1
        assert q._job(jid).attempts == 2  # initial + one retry, both tripped

    def test_accounting_keys_present(self):
        q = JobQueue()
        q.submit(*small_case(42), steps=4)
        summary = run_jobs(q, chunk_steps=4)
        for key in ("quarantined", "retries", "preempted", "adopted_done",
                    "chunks", "poison_records", "journal"):
            assert key in summary
        assert summary["journal"] is None


class TestPreemption:
    def test_deadline_preempts_via_checkpoint(self, tmp_path):
        clock = {"t": 0.0}

        def fake_now():
            clock["t"] += 10.0  # each boundary looks 10s later
            return clock["t"]

        q = JobQueue()
        fast = q.submit(*small_case(50), steps=4)
        slow = q.submit(*small_case(51), steps=100, deadline_s=15.0)
        summary = run_jobs(
            q, chunk_steps=4, workdir=str(tmp_path), now_fn=fake_now,
        )
        assert q.status(fast) == DONE
        assert q.status(slow) == PREEMPTED
        assert summary["preempted"] == 1
        job = q._job(slow)
        assert 0 < job.steps_done < 100
        assert job.checkpoint_path and os.path.exists(job.checkpoint_path)
        with pytest.raises(ValidationError, match="preempted"):
            q.result(slow)

        # The checkpointed state continues to completion.
        q.resubmit_preempted(slow)
        assert q.status(slow) == QUEUED
        run_jobs(q, chunk_steps=4, workdir=str(tmp_path))
        assert q.status(slow) == DONE
        assert q._job(slow).steps_done == 100

    def test_step_timeout_preempts(self):
        q = JobQueue()
        jid = q.submit(*small_case(52), steps=50)
        summary = run_jobs(q, chunk_steps=5, job_step_timeout=10)
        assert q.status(jid) == PREEMPTED
        assert q._job(jid).steps_done == 10
        assert summary["preempted"] == 1


class TestJournalAndResume:
    def _queue(self, k=6, poison=()):
        q = JobQueue()
        ids = []
        for i in range(k):
            s, g = small_case(60 + i)
            if i in poison:
                s.velocities[:] = 1e6
            ids.append(q.submit(s, g, steps=8 + 3 * (i % 2)))
        return q, ids

    def test_journal_events_and_torn_tail(self, tmp_path):
        q, ids = self._queue(k=3, poison=(1,))
        run_jobs(q, guard=GuardConfig(), chunk_steps=4,
                 workdir=str(tmp_path), retry_attempts=0)
        path = os.path.join(str(tmp_path), "jobs.jsonl")
        events = load_jobs_journal(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "service"
        assert kinds.count("done") == 2
        assert kinds.count("quarantined") == 1
        done_ev = next(e for e in events if e["event"] == "done")
        assert os.path.exists(done_ev["result_path"])
        # A torn final line (SIGKILL mid-write) is tolerated.
        with open(path, "a") as fh:
            fh.write('{"event": "done", "key": "trunc')
        assert load_jobs_journal(path) == events

    def test_resume_without_crash_adopts_everything(self, tmp_path):
        q1, ids1 = self._queue()
        run_jobs(q1, guard=GuardConfig(), chunk_steps=4,
                 workdir=str(tmp_path))
        q2, ids2 = self._queue()
        summary = run_jobs(q2, guard=GuardConfig(), chunk_steps=4,
                           workdir=str(tmp_path), resume=True)
        assert summary["adopted_done"] == len(ids2)
        assert summary["total_steps"] == 0  # nothing re-ran
        for a, b in zip(ids1, ids2):
            ra, rb = q1.result(a), q2.result(b)
            assert np.array_equal(ra.positions, rb.positions)
            assert np.array_equal(ra.velocities, rb.velocities)
            assert q1._job(a).final_potential == q2._job(b).final_potential

    @pytest.mark.parametrize("kill_at", [1, 3])
    def test_sigkill_resume_bitwise(self, tmp_path, kill_at):
        """SIGKILL mid-campaign; resume finishes bitwise-identically."""
        if not hasattr(os, "fork"):  # pragma: no cover
            pytest.skip("no fork on this platform")
        ref_q, ref_ids = self._queue(poison=(2,))
        run_jobs(ref_q, guard=GuardConfig(), chunk_steps=4,
                 retry_attempts=1, workdir=str(tmp_path / "ref"))

        wd = str(tmp_path / "killed")
        pid = os.fork()
        if pid == 0:
            try:
                q, _ = self._queue(poison=(2,))

                def bomb(chunk, engine):
                    if chunk == kill_at:
                        os.kill(os.getpid(), signal.SIGKILL)

                run_jobs(q, guard=GuardConfig(), chunk_steps=4,
                         retry_attempts=1, workdir=wd, on_chunk=bomb)
            finally:
                os._exit(0)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status)
        assert os.WTERMSIG(status) == signal.SIGKILL

        q2, ids2 = self._queue(poison=(2,))
        run_jobs(q2, guard=GuardConfig(), chunk_steps=4,
                 retry_attempts=1, workdir=wd, resume=True)
        for a, b in zip(ref_ids, ids2):
            ja, jb = ref_q._job(a), q2._job(b)
            assert ja.status == jb.status
            assert ja.steps_done == jb.steps_done
            if ja.status == DONE:
                assert np.array_equal(ja.result.positions,
                                      jb.result.positions)
                assert np.array_equal(ja.result.velocities,
                                      jb.result.velocities)
                assert ja.final_potential == jb.final_potential

    def test_fingerprints_disambiguate_identical_jobs(self, tmp_path):
        s, g = small_case(65)
        q = JobQueue()
        a = q.submit(s.copy(), g, steps=5)
        b = q.submit(s.copy(), g, steps=5)  # identical content
        assert job_fingerprint(q._job(a)) == job_fingerprint(q._job(b))
        run_jobs(q, chunk_steps=5, workdir=str(tmp_path))
        events = load_jobs_journal(os.path.join(str(tmp_path), "jobs.jsonl"))
        done_keys = {e["key"] for e in events if e["event"] == "done"}
        assert len(done_keys) == 2  # occurrence suffix keeps them distinct

    def test_resume_requires_workdir(self):
        q, _ = self._queue(k=1)
        with pytest.raises(ValidationError, match="workdir"):
            run_jobs(q, resume=True)


class TestJobSoak:
    def test_soak_smoke(self, tmp_path):
        from repro.harness.faultsweep import format_job_soak, run_job_soak

        result = run_job_soak(
            k_jobs=10, steps=8, chunk_steps=4, seed=77, poison_rate=0.2,
            kill_at_chunk=2, workdir=str(tmp_path),
        )
        assert result.n_poisoned >= 1
        assert result.unrecovered == 0
        assert result.killed
        text = format_job_soak(result)
        assert "unrecovered: 0" in text
        doc = json.loads(result.to_json())
        assert doc["unrecovered"] == 0

"""Tests for the acceptance-matrix harness."""

import pytest

from repro.harness.acceptance import (
    AcceptanceCase,
    default_cases,
    format_acceptance,
    run_acceptance,
    run_case,
)


class TestCases:
    def test_default_matrix_covers_key_axes(self):
        cases = default_cases()
        names = {c.name for c in cases}
        assert "ionic" in names
        assert "multi-species" in names
        assert "narrow-positions" in names
        assert any(c.charged for c in cases)
        assert any(c.frac_bits != 23 for c in cases)


class TestRunCase:
    def test_paper_workload_passes(self):
        outcome = run_case(AcceptanceCase("paper"))
        assert outcome.passed
        assert outcome.force_rel_error < 2e-3

    def test_ionic_case_passes(self):
        outcome = run_case(
            AcceptanceCase(
                "salt", species=("Na", "Cl"), charged=True, min_distance=2.4
            )
        )
        assert outcome.passed

    def test_very_coarse_positions_fail(self):
        """The budget is a real gate: 4-bit positions must fail it."""
        outcome = run_case(AcceptanceCase("coarse", frac_bits=4))
        assert not outcome.passed


class TestFullMatrix:
    @pytest.fixture(scope="class")
    def report(self):
        return run_acceptance()

    def test_everything_passes(self, report):
        failing = [o.case.name for o in report.outcomes if not o.passed]
        assert report.all_passed, f"failing cases: {failing}"

    def test_report_format(self, report):
        txt = format_acceptance(report)
        assert "PASS" in txt
        assert "0 of 8 failed" in txt

"""Tests for minimal PDB I/O."""

import io

import numpy as np
import pytest

from repro.md import build_dataset
from repro.md.pdbio import pdb_string, read_pdb, write_pdb
from repro.util.errors import ValidationError


def test_roundtrip_positions_and_box():
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=4, seed=0)
    text = pdb_string(sys_)
    back = read_pdb(io.StringIO(text))
    np.testing.assert_allclose(back.box, sys_.box, atol=1e-3)
    # PDB stores 3 decimals.
    np.testing.assert_allclose(back.positions, sys_.positions, atol=5e-4)
    assert back.n == sys_.n


def test_roundtrip_species():
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=4, species=("Na", "Ar"), seed=1)
    back = read_pdb(io.StringIO(pdb_string(sys_)))
    orig_symbols = [sys_.lj_table.species[s] for s in sys_.species]
    back_symbols = [back.lj_table.species[s] for s in back.species]
    assert orig_symbols == back_symbols


def test_file_roundtrip(tmp_path):
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=2, seed=2)
    path = str(tmp_path / "system.pdb")
    write_pdb(sys_, path)
    back = read_pdb(path)
    np.testing.assert_allclose(back.positions, sys_.positions, atol=5e-4)


def test_read_resamples_velocities_at_temperature():
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=8, seed=3)
    back = read_pdb(io.StringIO(pdb_string(sys_)), temperature_k=300.0, seed=1)
    assert back.temperature() == pytest.approx(300.0, rel=0.2)


def test_read_zero_kelvin_gives_zero_velocities():
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=2, seed=4)
    back = read_pdb(io.StringIO(pdb_string(sys_)))
    np.testing.assert_array_equal(back.velocities, 0.0)


def test_missing_cryst1_rejected():
    with pytest.raises(ValidationError, match="CRYST1"):
        read_pdb(io.StringIO("HETATM    1 Na  Na  A   1       1.000   1.000   1.000\nEND\n"))


def test_empty_pdb_rejected():
    with pytest.raises(ValidationError, match="no ATOM"):
        read_pdb(io.StringIO("CRYST1   25.500   25.500   25.500  90.00  90.00  90.00 P 1           1\nEND\n"))


def test_serial_wraps_at_pdb_limit():
    """PDB serial field is 5 digits; large systems must still serialize."""
    sys_, _ = build_dataset((3, 3, 3), particles_per_cell=4, seed=5)
    text = pdb_string(sys_)
    assert "HETATM" in text
    for line in text.splitlines():
        assert len(line) <= 80

"""Tests for the real-space Ewald electrostatics substrate."""

import numpy as np
import pytest
from scipy.special import erfc

from repro.md.ewald import (
    COULOMB_KCAL_MOL_A,
    choose_beta,
    ewald_real_energy_scalar,
    ewald_real_forces_bruteforce,
    ewald_real_scalar,
)
from repro.util.errors import ValidationError


class TestChooseBeta:
    def test_meets_tolerance_tightly(self):
        beta = choose_beta(8.5, 1e-5)
        assert erfc(beta * 8.5) <= 1e-5
        # Not overly conservative: 1% smaller beta would violate it.
        assert erfc(0.99 * beta * 8.5) > 1e-5 * 0.5

    def test_tighter_tolerance_needs_larger_beta(self):
        assert choose_beta(8.5, 1e-8) > choose_beta(8.5, 1e-4)

    def test_larger_cutoff_needs_smaller_beta(self):
        assert choose_beta(12.0, 1e-5) < choose_beta(8.5, 1e-5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            choose_beta(0.0)
        with pytest.raises(ValidationError):
            choose_beta(8.5, tolerance=2.0)


class TestScalars:
    def test_force_is_gradient_of_energy(self):
        """F(r) = -dV/dr: S(r2)*r == -d/dr [E(r2)]."""
        beta = 0.35
        r = np.linspace(1.0, 8.0, 50)
        h = 1e-6
        e_plus = ewald_real_energy_scalar((r + h) ** 2, beta)
        e_minus = ewald_real_energy_scalar((r - h) ** 2, beta)
        numeric = -(e_plus - e_minus) / (2 * h)
        analytic = ewald_real_scalar(r ** 2, beta) * r
        np.testing.assert_allclose(analytic, numeric, rtol=1e-6)

    def test_reduces_to_coulomb_at_small_beta_r(self):
        """For beta*r -> 0, the kernel approaches plain Coulomb."""
        r = 2.0
        e = ewald_real_energy_scalar(np.array([r * r]), beta=1e-6)[0]
        assert e == pytest.approx(COULOMB_KCAL_MOL_A / r, rel=1e-4)

    def test_screened_at_large_beta_r(self):
        r = 8.0
        e = ewald_real_energy_scalar(np.array([r * r]), beta=0.5)[0]
        assert e < 1e-3 * COULOMB_KCAL_MOL_A / r

    def test_positive_for_like_charges(self):
        s = ewald_real_scalar(np.array([4.0, 16.0, 49.0]), beta=0.35)
        assert np.all(s > 0)  # repulsive along +dr for qq > 0


class TestBruteforce:
    def test_two_opposite_charges_attract(self):
        pos = np.array([[5.0, 5.0, 5.0], [8.0, 5.0, 5.0]])
        charges = np.array([1.0, -1.0])
        forces, energy = ewald_real_forces_bruteforce(
            pos, charges, np.full(3, 50.0), cutoff=10.0, beta=0.3
        )
        assert energy < 0
        assert forces[0, 0] > 0  # pulled toward +x
        assert forces[1, 0] < 0

    def test_newtons_third_law(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 20.0, size=(40, 3))
        charges = rng.choice([-1.0, 1.0], size=40)
        forces, _ = ewald_real_forces_bruteforce(
            pos, charges, np.full(3, 20.0), cutoff=6.0, beta=0.4
        )
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-10)

    def test_cutoff_respected(self):
        pos = np.array([[0.0, 0.0, 0.0], [7.0, 0.0, 0.0]])
        charges = np.array([1.0, 1.0])
        forces, energy = ewald_real_forces_bruteforce(
            pos, charges, np.full(3, 50.0), cutoff=5.0, beta=0.3
        )
        np.testing.assert_array_equal(forces, 0.0)
        assert energy == 0.0

    def test_charge_shape_validated(self):
        with pytest.raises(ValidationError):
            ewald_real_forces_bruteforce(
                np.zeros((3, 3)), np.zeros(2), np.full(3, 10.0), 5.0, 0.3
            )

    def test_neutral_pair_no_force(self):
        pos = np.array([[1.0, 1.0, 1.0], [3.0, 1.0, 1.0]])
        charges = np.array([0.0, 1.0])
        forces, energy = ewald_real_forces_bruteforce(
            pos, charges, np.full(3, 20.0), cutoff=8.0, beta=0.3
        )
        np.testing.assert_array_equal(forces, 0.0)
        assert energy == 0.0

"""Tests for the PE microsimulation."""

import pytest

from repro.core.pesim import simulate_pe
from repro.util.errors import ValidationError

WORKLOAD = dict(home_count=64, n_neighbor_positions=13 * 64)


class TestConservation:
    def test_every_candidate_processed(self):
        r = simulate_pe(**WORKLOAD, seed=1)
        assert r.candidates == 13 * 64 * 64

    def test_every_accepted_pair_emerges(self):
        r = simulate_pe(**WORKLOAD, seed=2)
        assert r.pipeline_outputs == r.accepted

    def test_acceptance_near_rate(self):
        r = simulate_pe(**WORKLOAD, acceptance_rate=0.155, seed=3)
        assert r.accepted / r.candidates == pytest.approx(0.155, abs=0.01)


class TestMicroarchitecture:
    def test_idealized_efficiency_upper_bounds_measured(self):
        """The idealized PE reaches ~0.95-0.99 candidates/filter/cycle;
        the RTL's measured 0.70 (Fig. 17) sits below it — the gap is
        position-distribution overhead the idealized model omits."""
        r = simulate_pe(**WORKLOAD, queue_depth=8, seed=0)
        assert 0.95 < r.filter_efficiency <= 1.0
        assert r.filter_efficiency > 0.70  # the calibrated constant

    def test_shallow_buffer_costs_efficiency(self):
        deep = simulate_pe(**WORKLOAD, queue_depth=16, seed=0)
        shallow = simulate_pe(**WORKLOAD, queue_depth=1, seed=0)
        assert shallow.filter_efficiency < deep.filter_efficiency
        assert shallow.stall_fraction > deep.stall_fraction

    def test_pipeline_saturates_beyond_matched_filters(self):
        """Past ~8 filters the 1-per-cycle pipeline binds: throughput
        stops improving and filter efficiency collapses — the quantified
        version of the paper's choice of 6."""
        six = simulate_pe(**WORKLOAD, n_filters=6, seed=0)
        twelve = simulate_pe(**WORKLOAD, n_filters=12, seed=0)
        assert twelve.cycles > 0.85 * six.cycles * 6 / 12 * 2  # little gain
        assert twelve.pipeline_utilization > 0.95
        assert twelve.filter_efficiency < 0.7

    def test_few_filters_starve_pipeline(self):
        two = simulate_pe(**WORKLOAD, n_filters=2, seed=0)
        assert two.pipeline_utilization < 0.5
        assert two.filter_efficiency > 0.95

    def test_deterministic_given_seed(self):
        a = simulate_pe(**WORKLOAD, seed=9)
        b = simulate_pe(**WORKLOAD, seed=9)
        assert a.cycles == b.cycles and a.accepted == b.accepted


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValidationError):
            simulate_pe(home_count=0)
        with pytest.raises(ValidationError):
            simulate_pe(n_filters=0)
        with pytest.raises(ValidationError):
            simulate_pe(acceptance_rate=1.5)
        with pytest.raises(ValidationError):
            simulate_pe(queue_depth=0)

    def test_zero_neighbors_rejected(self):
        """The microsim models neighbor-stream traversal; an empty
        stream has no cycles to simulate."""
        with pytest.raises(ValidationError, match="empty workload"):
            simulate_pe(home_count=8, n_neighbor_positions=0)

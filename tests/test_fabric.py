"""Tests for fabric traffic accounting (Fig. 18 math)."""

import pytest

from repro.network.fabric import Fabric, LinkStats
from repro.util.errors import ValidationError


def test_validation():
    with pytest.raises(ValidationError):
        Fabric(0)
    with pytest.raises(ValidationError):
        Fabric(2, packet_bits=0)


def test_records_packed_into_packets():
    f = Fabric(4)
    f.add_records(0, 1, "position", 9)  # ceil(9/4) = 3 packets
    stats = f.flows[(0, 1, "position")]
    assert stats.records == 9
    assert stats.packets == 3
    assert stats.bits(512) == 3 * 512


def test_zero_records_creates_no_flow():
    f = Fabric(4)
    f.add_records(0, 1, "position", 0)
    assert not f.flows


def test_unknown_channel_rejected():
    f = Fabric(2)
    with pytest.raises(ValidationError):
        f.add_records(0, 1, "velocity", 1)


def test_out_of_range_node_rejected():
    f = Fabric(2)
    with pytest.raises(ValidationError):
        f.add_records(0, 5, "position", 1)


def test_negative_records_rejected():
    f = Fabric(2)
    with pytest.raises(ValidationError):
        f.add_records(0, 1, "position", -1)


def test_node_egress_sums_destinations():
    f = Fabric(4)
    f.add_records(0, 1, "position", 4)
    f.add_records(0, 2, "position", 4)
    f.add_records(0, 1, "force", 4)
    f.add_records(1, 0, "position", 4)
    assert f.node_egress_bits(0, "position") == 2 * 512
    assert f.node_egress_bits(0, "force") == 512
    assert f.node_egress_bits(1, "position") == 512


def test_egress_gbps():
    f = Fabric(2)
    f.add_records(0, 1, "position", 4)  # 1 packet = 512 bits
    # 512 bits over 1 us = 0.000512 Gbps... over 512 ns = 1 Gbps.
    assert f.node_egress_gbps(0, "position", 512e-9) == pytest.approx(1.0)


def test_egress_gbps_bad_interval():
    f = Fabric(2)
    with pytest.raises(ValidationError):
        f.node_egress_gbps(0, "position", 0.0)


def test_max_node_egress():
    f = Fabric(3)
    f.add_records(0, 1, "position", 4)
    f.add_records(2, 1, "position", 8)
    assert f.max_node_egress_gbps("position", 1.0) == pytest.approx(
        2 * 512 / 1e9
    )


def test_breakdown_percent_sums_to_100():
    f = Fabric(4)
    f.add_records(0, 1, "force", 12)
    f.add_records(0, 2, "force", 4)
    bd = f.breakdown_percent(0, "force")
    assert sum(bd.values()) == pytest.approx(100.0)
    assert bd[1] == pytest.approx(75.0)
    assert bd[2] == pytest.approx(25.0)


def test_breakdown_empty():
    assert Fabric(2).breakdown_percent(0, "force") == {}


def test_reset():
    f = Fabric(2)
    f.add_records(0, 1, "position", 4)
    f.reset()
    assert not f.flows


class TestCooldown:
    def test_cooldown_cycles_needed(self):
        f = Fabric(2)
        # 10 packets over a 100-cycle window: gap of 11 fits ((10-1)*11=99).
        assert f.cooldown_cycles_needed(10, 100) == 11

    def test_single_packet_gets_full_window(self):
        f = Fabric(2)
        assert f.cooldown_cycles_needed(1, 100) == 100

    def test_minimum_one_cycle(self):
        f = Fabric(2)
        assert f.cooldown_cycles_needed(1000, 10) == 1

    def test_peak_gbps_with_cooldown(self):
        f = Fabric(2)
        # One 512-bit packet per 4 cycles at 200 MHz = 25.6 Gbps.
        assert f.peak_gbps_with_cooldown(4, 200e6) == pytest.approx(25.6)

    def test_cooldown_spreads_peak_below_line_rate(self):
        """The paper's mechanism: cooldown keeps peaks under 100 Gbps."""
        f = Fabric(2)
        assert f.peak_gbps_with_cooldown(1, 200e6) > 100.0  # unthrottled burst
        assert f.peak_gbps_with_cooldown(2, 200e6) < 100.0  # throttled

    def test_bad_cooldown_rejected(self):
        with pytest.raises(ValidationError):
            Fabric(2).peak_gbps_with_cooldown(0, 200e6)

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for cmd in (
            "fig16", "fig17", "fig18", "fig19", "table1",
            "ablations", "scaling", "sensitivity", "info",
        ):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.seed == 2023
        assert args.steps == 200
        assert args.output is None


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "4x4x4-C" in out and "10x10x10-125F" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "lut.model" in out

    def test_fig19_short(self, capsys):
        assert main(["fig19", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "rel err" in out

    def test_output_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.txt")
        assert main(["info", "--output", path]) == 0
        capsys.readouterr()
        with open(path) as fh:
            assert "FASDA design points" in fh.read()

    def test_fig18(self, capsys):
        assert main(["fig18"]) == 0
        out = capsys.readouterr().out
        assert "Fig 18(A)" in out and "Fig 18(B)" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "C/A gain" in out

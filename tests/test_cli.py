"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_commands(self):
        parser = build_parser()
        for cmd in (
            "fig16", "fig17", "fig18", "fig19", "table1",
            "ablations", "scaling", "sensitivity", "info",
        ):
            args = parser.parse_args([cmd])
            assert args.command == cmd

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.seed == 2023
        assert args.steps == 200
        assert args.output is None
        assert args.journal is None
        assert args.resume is None
        assert args.node == 1
        assert args.iteration == 3

    def test_recover_command_parses(self):
        args = build_parser().parse_args(
            ["recover", "--node", "3", "--iteration", "2", "--json", "x.json"]
        )
        assert args.command == "recover"
        assert args.node == 3
        assert args.iteration == 2

    def test_campaign_resume_flags_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--journal", "run.jsonl", "--resume", "run.jsonl"]
        )
        assert args.journal == "run.jsonl"
        assert args.resume == "run.jsonl"

    def test_resume_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "--resume" in out and "--journal" in out
        assert "recover" in out


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "4x4x4-C" in out and "10x10x10-125F" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "lut.model" in out

    def test_fig19_short(self, capsys):
        assert main(["fig19", "--steps", "10"]) == 0
        out = capsys.readouterr().out
        assert "rel err" in out

    def test_output_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.txt")
        assert main(["info", "--output", path]) == 0
        capsys.readouterr()
        with open(path) as fh:
            assert "FASDA design points" in fh.read()

    def test_fig18(self, capsys):
        assert main(["fig18"]) == 0
        out = capsys.readouterr().out
        assert "Fig 18(A)" in out and "Fig 18(B)" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "C/A gain" in out

    def test_recover_smoke(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli_mod
        import repro.harness.faultsweep as fs

        # Keep the CLI smoke cheap: stub the heavy soak, run the demo.
        real_soak = fs.run_node_soak

        def tiny_soak(n_steps=4, seeds=(2023,), **kwargs):
            return real_soak(
                mtbfs=(3.0,), intervals=(2,), n_steps=3, seeds=(seeds[0],)
            )

        monkeypatch.setattr(fs, "run_node_soak", tiny_soak)
        path = str(tmp_path / "FAULTS_nodes.json")
        assert main(["recover", "--json", path]) == 0
        out = capsys.readouterr().out
        assert "bitwise identical" in out
        assert "watchdog" in out
        import json

        doc = json.load(open(path))
        assert doc["unrecovered"] == 0
        assert doc["demo"]["bitwise_identical"]

"""Cluster controller: the artifact's ``run.py`` flow over the simulator.

The artifact's procedure (appendix): start a dask scheduler, attach one
worker per FPGA host, upload the bitstream, then
``python run.py <scheduler_address> <dump_group> <num_iterations>`` —
each FPGA runs independently once the hosts are set, and the hosts read
back AXI-Lite counters whose cycle values "should be the same as
reported when converted ... to us/day simulation rate".

:class:`ClusterController` reproduces that flow: ``configure`` stands in
for bitstream upload (it builds the machine for the design point),
``run`` executes iterations and fills every host's register bank from
the measured workload and the cycle model, and :class:`ClusterReport`
performs the cycles -> us/day conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.core.cycles import CyclePerformance, estimate_performance
from repro.core.machine import FasdaMachine, StepStats
from repro.host.registers import AxiLiteRegisters
from repro.util.errors import ConfigError, ValidationError
from repro.util.units import simulation_rate_us_per_day


@dataclass
class FpgaHost:
    """One host machine controlling one FPGA node (a dask worker).

    Attributes
    ----------
    node_id:
        The FPGA's logical node id in the torus.
    registers:
        The node's AXI-Lite result registers.
    configured:
        Whether a "bitstream" (design point) has been loaded.
    """

    node_id: int
    registers: AxiLiteRegisters = field(default_factory=AxiLiteRegisters)
    configured: bool = False

    def configure(self) -> None:
        """Load the overlay (bitstream) and clear result registers."""
        self.registers.reset()
        self.configured = True


@dataclass
class ClusterReport:
    """Gathered results of a cluster run."""

    config: MachineConfig
    n_iterations: int
    register_dumps: Dict[int, Dict[str, int]]
    #: Per-cell force dump for the requested dump group (particle ids ->
    #: float32 forces), if one was requested.
    dump_forces: Optional[np.ndarray] = None

    def operation_cycles(self, node_id: int) -> int:
        """Total cycles the node ran (``operation_cycle_cnt``)."""
        return self.register_dumps[node_id]["operation_cycle_cnt"]

    def rate_us_per_day(self) -> float:
        """The artifact's conversion: cycles -> us/day simulation rate.

        Uses the slowest node, which gates the whole cluster.
        """
        worst = max(d["operation_cycle_cnt"] for d in self.register_dumps.values())
        seconds_per_step = (
            worst / self.n_iterations
        ) * self.config.cycle_seconds
        return simulation_rate_us_per_day(self.config.dt_fs, seconds_per_step)

    def total_packets(self, channel: str, direction: str = "out") -> int:
        """Cluster-wide packet count for a channel/direction."""
        key = f"{direction}_traffic_packets_{channel}"
        return sum(d[key] for d in self.register_dumps.values())


class ClusterController:
    """The dask-scheduler stand-in: owns the hosts, drives a run.

    Parameters
    ----------
    config:
        The design point ("which bitstream was compiled").
    seed:
        Dataset seed.
    """

    def __init__(self, config: MachineConfig, seed: int = 2023):
        self.config = config
        self.seed = seed
        self.hosts: Dict[int, FpgaHost] = {
            n: FpgaHost(n) for n in range(config.n_fpgas)
        }
        self._machine: Optional[FasdaMachine] = None

    @property
    def scheduler_address(self) -> str:
        """A cosmetic tcp:// address, mirroring the artifact's UX."""
        return f"tcp://127.0.0.1:{8786 + (self.config.n_fpgas % 100)}"

    def configure_all(self) -> None:
        """Upload the bitstream to every host (build the machine once)."""
        self._machine = FasdaMachine(self.config, seed=self.seed)
        for host in self.hosts.values():
            host.configure()

    def run(
        self, n_iterations: int, dump_group: Optional[int] = None
    ) -> ClusterReport:
        """Execute ``n_iterations`` MD iterations and gather registers.

        Physics runs through the functional machine; per-component cycle
        counters come from the cycle model applied to the measured
        workload — the same quantities the RTL's counters accumulate.
        """
        if n_iterations < 1:
            raise ValidationError("n_iterations must be >= 1")
        if self._machine is None or not all(
            h.configured for h in self.hosts.values()
        ):
            raise ConfigError("configure_all() must run before run()")
        machine = self._machine
        stats = machine.measure_workload()
        perf = estimate_performance(self.config, stats)
        machine.run(n_iterations, record_every=0)
        self._fill_registers(stats, perf, n_iterations)

        dump = None
        if dump_group is not None:
            if not 0 <= dump_group < self.config.n_cells:
                raise ValidationError(f"dump_group {dump_group} out of range")
            from repro.md.cells import CellList

            clist = CellList(machine.grid, machine.system.positions)
            idx = clist.particles_in_cell(dump_group)
            dump = machine.forces[idx].copy()

        return ClusterReport(
            config=self.config,
            n_iterations=n_iterations,
            register_dumps={n: h.registers.dump() for n, h in self.hosts.items()},
            dump_forces=dump,
        )

    def _fill_registers(
        self, stats: StepStats, perf: CyclePerformance, n_iterations: int
    ) -> None:
        cfg = self.config
        t_iter = perf.iteration_cycles
        for node_id, host in self.hosts.items():
            regs = host.registers
            regs.reset()
            regs.write("iteration_cnt", n_iterations)
            regs.write("operation_cycle_cnt", int(t_iter * n_iterations))
            u = perf.utilization
            regs.write("PE_cycle_cnt", int(u["pe"].time * t_iter * n_iterations))
            regs.write(
                "filter_cycle_cnt", int(u["filter"].time * t_iter * n_iterations)
            )
            regs.write("PR_cycle_cnt", int(u["pr"].time * t_iter * n_iterations))
            regs.write("FR_cycle_cnt", int(u["fr"].time * t_iter * n_iterations))
            regs.write("MU_cycle_cnt", int(u["mu"].time * t_iter * n_iterations))
            regs.write("pair_candidates", stats.total_candidates * n_iterations)
            regs.write("pair_accepted", stats.total_accepted * n_iterations)

            def packets(records_map, selector) -> int:
                return sum(
                    int(np.ceil(r / cfg.records_per_packet))
                    for (s, d), r in records_map.items()
                    if selector(s, d)
                ) * n_iterations

            regs.write(
                "out_traffic_packets_pos",
                packets(stats.position_records, lambda s, d: s == node_id),
            )
            regs.write(
                "in_traffic_packets_pos",
                packets(stats.position_records, lambda s, d: d == node_id),
            )
            regs.write(
                "out_traffic_packets_frc",
                packets(stats.force_records, lambda s, d: s == node_id),
            )
            regs.write(
                "in_traffic_packets_frc",
                packets(stats.force_records, lambda s, d: d == node_id),
            )

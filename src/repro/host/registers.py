"""The AXI-Lite result register map (artifact appendix).

The artifact reads these registers after a run:

* ``out_traffic_packets_pos`` / ``out_traffic_packets_frc`` /
  ``in_traffic_packets_pos`` / ``in_traffic_packets_frc`` — the
  communication workload in 512-bit packets;
* ``operation_cycle_cnt`` — overall performance in cycles;
* ``PE_cycle_cnt`` "and other cycle counters" — cycles each key
  component was active.

We model the map as named 64-bit saturating counters with a fixed
address layout, so host code reads registers exactly the way a pynq
``MMIO.read`` would.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.util.errors import ValidationError

#: Register name -> word offset (AXI-Lite addresses are offset * 8).
REGISTER_MAP: Dict[str, int] = {
    "operation_cycle_cnt": 0,
    "PE_cycle_cnt": 1,
    "filter_cycle_cnt": 2,
    "PR_cycle_cnt": 3,
    "FR_cycle_cnt": 4,
    "MU_cycle_cnt": 5,
    "out_traffic_packets_pos": 6,
    "out_traffic_packets_frc": 7,
    "in_traffic_packets_pos": 8,
    "in_traffic_packets_frc": 9,
    "iteration_cnt": 10,
    "pair_candidates": 11,
    "pair_accepted": 12,
}

_MAX_U64 = (1 << 64) - 1


class AxiLiteRegisters:
    """A bank of named 64-bit saturating counters."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in REGISTER_MAP}

    def write(self, name: str, value: int) -> None:
        """Set a register (clamped to u64; negative rejected)."""
        self._check(name)
        if value < 0:
            raise ValidationError(f"register {name} cannot hold {value}")
        self._values[name] = min(int(value), _MAX_U64)

    def accumulate(self, name: str, delta: int) -> None:
        """Add to a register, saturating at 2^64-1."""
        self._check(name)
        if delta < 0:
            raise ValidationError("accumulate delta must be >= 0")
        self._values[name] = min(self._values[name] + int(delta), _MAX_U64)

    def read(self, name: str) -> int:
        """Read a register by name."""
        self._check(name)
        return self._values[name]

    def read_offset(self, offset: int) -> int:
        """Read by word offset, like ``MMIO.read(offset * 8)``."""
        for name, off in REGISTER_MAP.items():
            if off == offset:
                return self._values[name]
        raise ValidationError(f"no register at offset {offset}")

    def reset(self) -> None:
        """Zero every counter (start of a run)."""
        for name in self._values:
            self._values[name] = 0

    def dump(self) -> Dict[str, int]:
        """Snapshot of all registers."""
        return dict(self._values)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self._values.items())

    def _check(self, name: str) -> None:
        if name not in self._values:
            raise ValidationError(f"unknown register {name!r}")

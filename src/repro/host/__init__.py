"""Host-side control plane: the artifact's dask + pynq workflow, modeled.

The paper's artifact drives the FPGA cluster from Python: a *dask*
scheduler coordinates one host per FPGA, each host configures its board
through *pynq*, data moves over AXI-Stream, and results come back as
AXI-Lite registers ("the overall execution cycles, the execution cycles
of each key component, and the communication statistics ... correspond
to the results illustrated in the figures").

This package reproduces that control plane over the simulated machine:

* :class:`~repro.host.registers.AxiLiteRegisters` — the register map
  the artifact names (``operation_cycle_cnt``, ``PE_cycle_cnt``,
  ``out_traffic_packets_pos`` ...), populated from a run;
* :class:`~repro.host.controller.FpgaHost` — one per-node host
  (the dask worker + pynq overlay);
* :class:`~repro.host.controller.ClusterController` — the scheduler:
  configure all nodes, run N iterations, gather register dumps, convert
  cycles to the paper's us/day metric exactly as the artifact does.
"""

from repro.host.controller import ClusterController, ClusterReport, FpgaHost
from repro.host.registers import AxiLiteRegisters

__all__ = ["AxiLiteRegisters", "FpgaHost", "ClusterController", "ClusterReport"]

"""Exception hierarchy for the FASDA reproduction.

All library-raised exceptions derive from :class:`FasdaError` so callers can
catch everything from this package with one ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""


class FasdaError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(FasdaError):
    """An invalid or inconsistent system / machine configuration."""


class ValidationError(FasdaError):
    """An argument failed validation (bad shape, dtype, or range)."""


class SimulationError(FasdaError):
    """The simulation reached a physically or logically invalid state.

    Examples: particle overlap below the exclusion radius, non-finite
    forces, or a synchronization deadlock in the event simulator.
    """

"""Exception hierarchy for the FASDA reproduction.

All library-raised exceptions derive from :class:`FasdaError` so callers can
catch everything from this package with one ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""


class FasdaError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(FasdaError):
    """An invalid or inconsistent system / machine configuration."""


class ValidationError(FasdaError):
    """An argument failed validation (bad shape, dtype, or range)."""


class SimulationError(FasdaError):
    """The simulation reached a physically or logically invalid state.

    Examples: particle overlap below the exclusion radius, non-finite
    forces, or a synchronization deadlock in the event simulator.
    """


class TransportError(SimulationError):
    """The communication layer lost data it could not recover.

    Raised when a packet stays undelivered after the reliable
    transport's retry budget is exhausted (or immediately in bare-UDP
    mode) and the receiver has no stale fallback to degrade onto.
    """


class DeadlockError(SimulationError):
    """A synchronization protocol stopped making progress.

    Carries a diagnosis naming the first stalled node, the iteration it
    is stuck in, and the missing handshake edges — produced by the event
    kernel's progress watchdog instead of a silent drained queue.
    """


class UnknownJobError(ValidationError):
    """A job id that the queue has never issued (or no longer tracks).

    Subclasses :class:`ValidationError` so existing ``except
    ValidationError`` call sites keep working; exists so service callers
    can distinguish "you typed the wrong id" from "your input was bad".
    """


class JobPoisonedError(SimulationError):
    """A batched job tripped a numerical health guard and was quarantined.

    Carries the machine-readable poison record (handle, step, reason,
    offending magnitude) so schedulers can decide on retry policy
    without parsing the message.  Raised by
    :meth:`~repro.md.batch.BatchedEngine.add` when an input system fails
    admission screening, and by ``JobQueue.result`` for quarantined
    jobs; mid-run trips are *recorded* (``BatchedEngine.poison_log``)
    rather than raised, so one poisoned tenant never aborts the healthy
    remainder of the batch.
    """

    def __init__(self, message: str, record=None):
        super().__init__(message)
        #: The :class:`~repro.faults.health.PoisonRecord` behind this
        #: error, when one exists (admission rejections carry one too).
        self.record = record


class CheckpointError(FasdaError):
    """A checkpoint file could not be written, read, or trusted.

    Raised for truncated / bit-flipped / wrong-format files, digest
    mismatches, and configurations that fail to round-trip — instead of
    letting ``zipfile``/``zlib``/``KeyError`` internals leak to callers.
    The message always names the offending path.
    """


class NodeFailureError(SimulationError):
    """Node crashes exceeded what the recovery protocol can absorb.

    Raised when every node of a :class:`~repro.core.distributed.DistributedMachine`
    is down in the same iteration: with no surviving peer holding a
    shadow checkpoint there is nothing to replay from, so the run is
    unrecoverable in-band (restore from an interval checkpoint instead).
    """


class CampaignError(SimulationError):
    """A campaign point kept failing after its retry budget.

    Carries the first failing point's label and the underlying worker
    exception; points journaled before the failure remain resumable.
    """

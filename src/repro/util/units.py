"""Internal unit system and physical constants.

The library works in:

========  =======================  =========================
Quantity  Unit                     Symbol used in docstrings
========  =======================  =========================
length    angstrom                 A
time      femtosecond              fs
mass      atomic mass unit         amu
energy    kcal/mol                 kcal/mol
force     kcal/mol/A               (converted for integration)
velocity  A/fs
========  =======================  =========================

Newton's second law in these units needs one conversion constant:
``a [A/fs^2] = F [kcal/mol/A] * KCAL_MOL_TO_INTERNAL / m [amu]``.

Derivation: 1 kcal/mol = 4184 J / N_A = 6.947695e-21 J per molecule, and
1 amu*A^2/fs^2 = 1.66053906660e-27 kg * 1e-20 m^2 / 1e-30 s^2
= 1.66053906660e-17 J, hence the ratio below (~4.184e-4).
"""

from __future__ import annotations

import numpy as np

#: Joules in one kcal/mol, per molecule.
_KCAL_MOL_IN_J = 4184.0 / 6.02214076e23

#: Joules in one amu*A^2/fs^2.
_AMU_A2_FS2_IN_J = 1.66053906660e-27 * 1e-20 / 1e-30

#: Multiply a kcal/mol energy (or kcal/mol/A force) by this to get
#: amu*A^2/fs^2 (or amu*A/fs^2).
KCAL_MOL_TO_INTERNAL: float = _KCAL_MOL_IN_J / _AMU_A2_FS2_IN_J

#: Boltzmann constant in kcal/mol/K.
BOLTZMANN_KCAL_MOL_K: float = 0.0019872041

#: Mass of a sodium atom in amu (the paper's dataset is neutral sodium).
MASS_SODIUM_AMU: float = 22.98976928

#: Femtoseconds in one day; used to convert seconds-per-timestep into the
#: paper's "microseconds of simulated time per day" metric.
FS_PER_DAY: float = 86400.0 * 1e15


def acceleration_from_force(forces: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Convert forces in kcal/mol/A into accelerations in A/fs^2.

    Parameters
    ----------
    forces:
        ``(N, 3)`` array of forces in kcal/mol/A.
    masses:
        ``(N,)`` array of masses in amu.

    Returns
    -------
    ``(N, 3)`` array of accelerations in A/fs^2.
    """
    return forces * (KCAL_MOL_TO_INTERNAL / masses)[:, None]


def simulation_rate_us_per_day(dt_fs: float, seconds_per_step: float) -> float:
    """The paper's headline metric: microseconds of simulation per wall day.

    Parameters
    ----------
    dt_fs:
        MD timestep in femtoseconds (the paper uses 2 fs).
    seconds_per_step:
        Wall-clock seconds to execute one timestep.
    """
    steps_per_day = 86400.0 / seconds_per_step
    return steps_per_day * dt_fs * 1e-9  # fs -> us

"""Shared utilities: units, constants, errors, and validation helpers.

Everything in :mod:`repro` uses one internal unit system (see
:mod:`repro.util.units`): angstrom / femtosecond / atomic-mass-unit, with
energies in kcal/mol.  The conversion constants needed to integrate
Newton's equations in those units live here so no module hard-codes them.
"""

from repro.util.errors import (
    ConfigError,
    FasdaError,
    SimulationError,
    ValidationError,
)
from repro.util.units import (
    BOLTZMANN_KCAL_MOL_K,
    KCAL_MOL_TO_INTERNAL,
    MASS_SODIUM_AMU,
    FS_PER_DAY,
    acceleration_from_force,
)
from repro.util.validation import (
    check_positive,
    check_shape,
    ensure_f64,
)

__all__ = [
    "FasdaError",
    "ConfigError",
    "SimulationError",
    "ValidationError",
    "KCAL_MOL_TO_INTERNAL",
    "BOLTZMANN_KCAL_MOL_K",
    "MASS_SODIUM_AMU",
    "FS_PER_DAY",
    "acceleration_from_force",
    "check_positive",
    "check_shape",
    "ensure_f64",
]

"""Small argument-validation helpers used across the package."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ValidationError


def check_positive(name: str, value: float) -> float:
    """Raise :class:`ValidationError` unless ``value > 0``; returns it."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Sequence[int]) -> np.ndarray:
    """Validate an array shape; ``-1`` in ``shape`` matches any extent."""
    actual = np.shape(array)
    if len(actual) != len(shape) or any(
        expected not in (-1, got) for expected, got in zip(shape, actual)
    ):
        raise ValidationError(f"{name} must have shape {tuple(shape)}, got {actual}")
    return array


def ensure_f64(array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a contiguous float64 ndarray (view when possible)."""
    return np.ascontiguousarray(array, dtype=np.float64)

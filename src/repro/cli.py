"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig16            # scalability comparison
    python -m repro fig17            # utilization breakdown
    python -m repro fig18            # communication intensity
    python -m repro fig19 --steps 200
    python -m repro table1           # resource utilization
    python -m repro ablations        # all five ablation studies
    python -m repro faults --json benchmarks/results/FAULTS_sweep.json
    python -m repro recover --json benchmarks/results/FAULTS_nodes.json
    python -m repro rescale --json benchmarks/results/FAULTS_rescale.json
    python -m repro campaign --journal run.jsonl   # crash-resumable
    python -m repro campaign --resume run.jsonl    # finish a killed run
    python -m repro profile --json BENCH_machine.json  # phase breakdown
    python -m repro info             # design-point summary table

Each command prints the same text table the corresponding benchmark
saves under ``benchmarks/results/`` and exits 0 on success.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import all_paper_configs
from repro.core.resources import estimate_resources
from repro.harness.ablations import (
    format_cellsize,
    format_cooldown,
    format_filter_sweep,
    format_interp_sweep,
    format_latency_sweep,
    format_precision_sweep,
    format_sync_ablation,
    format_topology,
    run_cellsize_analysis,
    run_cooldown_ablation,
    run_filter_sweep,
    run_interp_sweep,
    run_latency_sweep,
    run_precision_sweep,
    run_sync_ablation,
    run_topology_comparison,
)
from repro.harness.sweeps import (
    format_fpga_scaling,
    format_sensitivity,
    run_fpga_scaling,
    run_sensitivity,
)
from repro.harness.experiments import (
    format_fig16,
    format_fig17,
    format_fig18,
    format_fig19,
    format_table1,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_table1,
)
from repro.harness.report import format_table


def _cmd_fig16(args) -> str:
    return format_fig16(run_fig16(seed=args.seed))


def _cmd_fig17(args) -> str:
    return format_fig17(run_fig17(seed=args.seed))


def _cmd_fig18(args) -> str:
    return format_fig18(run_fig18(seed=args.seed))


def _cmd_fig19(args) -> str:
    return format_fig19(
        run_fig19(
            n_steps=args.steps,
            record_every=max(1, args.steps // 10),
            seed=args.seed,
        )
    )


def _cmd_table1(args) -> str:
    return format_table1(run_table1())


def _cmd_ablations(args) -> str:
    parts = [
        format_sync_ablation(run_sync_ablation()),
        format_filter_sweep(run_filter_sweep(seed=args.seed)),
        format_interp_sweep(run_interp_sweep()),
        format_cellsize(run_cellsize_analysis()),
        format_topology(run_topology_comparison()),
        format_cooldown(run_cooldown_ablation()),
        format_precision_sweep(run_precision_sweep(seed=args.seed)),
        format_latency_sweep(run_latency_sweep(seed=args.seed)),
    ]
    return "\n\n".join(parts)


def _cmd_acceptance(args) -> str:
    from repro.harness.acceptance import format_acceptance, run_acceptance

    return format_acceptance(run_acceptance())


def _cmd_faults(args) -> str:
    from repro.harness.faultsweep import format_fault_sweep, run_fault_sweep

    result = run_fault_sweep(seed=args.seed)
    if args.json:
        import os

        dirname = os.path.dirname(args.json)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        with open(args.json, "w") as fh:
            fh.write(result.to_json() + "\n")
    return format_fault_sweep(result)


def _cmd_campaign(args):
    from repro.harness.campaign import (
        check_regression,
        format_campaign,
        load_campaign_json,
        run_default_campaign,
        write_campaign_json,
    )

    if args.force_impl:
        from repro.md.backends import set_force_backend

        # Process-wide default: every point without an explicit
        # force_impl param runs (and records) this backend.
        set_force_backend(args.force_impl)
    # Load the baseline before --json can overwrite it (the two paths
    # may legitimately be the same file for local baseline refreshes).
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_campaign_json(args.baseline)
    doc = run_default_campaign(
        seed=args.seed,
        steps=args.campaign_steps,
        journal=args.journal,
        resume=args.resume,
    )
    if args.json:
        write_campaign_json(doc, args.json)
    text = format_campaign(doc)
    if args.baseline:
        if baseline is not None:
            failures = check_regression(
                baseline, doc, threshold=args.threshold,
            )
            if failures:
                text += "\nPERF REGRESSION vs " + args.baseline + ":\n"
                text += "\n".join("  " + f for f in failures)
                return text, 1
            text += (
                f"\nperf gate vs {args.baseline}: OK "
                f"(threshold {100 * args.threshold:.0f}%)"
            )
        else:
            text += (
                f"\nperf gate: no baseline at {args.baseline}; skipped "
                "(commit the fresh JSON to arm it)"
            )
    return text


def _cmd_batch(args):
    from repro.harness.campaign import check_regression, load_campaign_json
    from repro.harness.jobs import format_batch, run_batch_bench

    # Load the baseline before --json can overwrite it (same file is
    # fine for local baseline refreshes; mirrors `campaign`).
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_campaign_json(args.baseline)
    doc = run_batch_bench(
        force_impl=args.force_impl,
        k_systems=args.batch_k,
        steps=args.batch_steps,
        seed=args.seed,
        smoke=args.smoke,
    )
    if args.json:
        import json as json_mod

        dirname = os.path.dirname(args.json)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        with open(args.json, "w") as fh:
            fh.write(json_mod.dumps(doc, indent=2, sort_keys=True) + "\n")
    text = format_batch(doc)
    if args.baseline:
        if baseline is not None:
            failures = check_regression(
                baseline, doc, threshold=args.threshold,
            )
            if failures:
                text += "\nPERF REGRESSION vs " + args.baseline + ":\n"
                text += "\n".join("  " + f for f in failures)
                return text, 1
            text += (
                f"\nperf gate vs {args.baseline}: OK "
                f"(threshold {100 * args.threshold:.0f}%)"
            )
        else:
            text += (
                f"\nperf gate: no baseline at {args.baseline}; skipped "
                "(commit the fresh JSON to arm it)"
            )
    return text


def _cmd_profile(args):
    from repro.harness.campaign import check_regression, load_campaign_json
    from repro.harness.profiling import format_profile, run_profile

    # Load the baseline before --json can overwrite it (same file is
    # fine for local baseline refreshes; mirrors `campaign`/`batch`).
    baseline = None
    if args.baseline and os.path.exists(args.baseline):
        baseline = load_campaign_json(args.baseline)
    doc = run_profile(smoke=args.smoke, force_impl=args.force_impl)
    if args.json:
        import json as json_mod

        dirname = os.path.dirname(args.json)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        with open(args.json, "w") as fh:
            fh.write(json_mod.dumps(doc, indent=2, sort_keys=True) + "\n")
    text = format_profile(doc)
    if args.baseline:
        if baseline is not None:
            failures = check_regression(
                baseline, doc, threshold=args.threshold,
            )
            if failures:
                text += "\nPERF REGRESSION vs " + args.baseline + ":\n"
                text += "\n".join("  " + f for f in failures)
                return text, 1
            text += (
                f"\nperf gate vs {args.baseline}: OK "
                f"(threshold {100 * args.threshold:.0f}%)"
            )
        else:
            text += (
                f"\nperf gate: no baseline at {args.baseline}; skipped "
                "(commit the fresh JSON to arm it)"
            )
    return text


def _cmd_recover(args):
    from repro.harness.faultsweep import (
        format_node_soak,
        format_recovery_demo,
        run_node_soak,
        run_recovery_demo,
    )

    demo = run_recovery_demo(node=args.node, iteration=args.iteration,
                             seed=args.seed)
    soak = run_node_soak(n_steps=4, seeds=(args.seed, args.seed + 1))
    if args.json:
        dirname = os.path.dirname(args.json)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        import json as json_mod

        with open(args.json, "w") as fh:
            doc = json_mod.loads(soak.to_json())
            doc["demo"] = demo
            fh.write(json_mod.dumps(doc, indent=2, sort_keys=True) + "\n")
    text = format_recovery_demo(demo) + "\n\n" + format_node_soak(soak)
    if not demo["bitwise_identical"] or soak.unrecovered:
        text += (
            f"\nRECOVERY FAILED: demo bitwise={demo['bitwise_identical']}, "
            f"soak unrecovered={soak.unrecovered}"
        )
        return text, 1
    return text


def _cmd_rescale(args):
    from repro.harness.faultsweep import (
        format_rescale_demo,
        format_rescale_soak,
        run_rescale_demo,
        run_rescale_soak,
    )

    demo = run_rescale_demo(seed=args.seed)
    soak = run_rescale_soak(seeds=(args.seed, args.seed + 1, args.seed + 2))
    if args.json:
        dirname = os.path.dirname(args.json)
        if dirname:
            os.makedirs(dirname, exist_ok=True)
        import json as json_mod

        with open(args.json, "w") as fh:
            doc = json_mod.loads(soak.to_json())
            doc["demo"] = demo
            fh.write(json_mod.dumps(doc, indent=2, sort_keys=True) + "\n")
    text = format_rescale_demo(demo) + "\n\n" + format_rescale_soak(soak)
    failed = (
        not demo["all_bitwise"]
        or not demo["conservation_ok"]
        or demo["aborted"]
        or soak.unrecovered
    )
    if failed:
        text += (
            f"\nRESCALE FAILED: demo bitwise={demo['all_bitwise']}, "
            f"conservation={demo['conservation_ok']}, "
            f"demo aborts={len(demo['aborted'])}, "
            f"soak unrecovered={soak.unrecovered}"
        )
        return text, 1
    return text


def _cmd_jobs(args):
    from repro.harness.faultsweep import format_job_soak, run_job_soak

    if args.chaos:
        soak = run_job_soak(
            k_jobs=args.batch_k if args.batch_k != 256 else 64,
            steps=args.batch_steps if args.batch_steps != 30 else 12,
            seed=args.seed,
            force_impl=args.force_impl,
        )
        if args.json:
            dirname = os.path.dirname(args.json)
            if dirname:
                os.makedirs(dirname, exist_ok=True)
            with open(args.json, "w") as fh:
                fh.write(soak.to_json() + "\n")
        text = format_job_soak(soak)
        if soak.unrecovered:
            text += (
                f"\nJOB SOAK FAILED: {soak.unrecovered} job(s) leaked "
                "their blast radius (contamination or unrecovered resume)"
            )
            return text, 1
        return text

    # Plain demo: a small guarded campaign, no chaos.
    from repro.faults.health import GuardConfig
    from repro.harness.jobs import JobQueue, run_jobs
    from repro.md.dataset import build_dataset

    queue = JobQueue()
    k = min(args.batch_k, 16)
    for i in range(k):
        system, grid = build_dataset(
            (3, 3, 3), cutoff=8.5, particles_per_cell=2, seed=args.seed + i
        )
        queue.submit(system, grid, steps=args.batch_steps)
    summary = run_jobs(
        queue, force_impl=args.force_impl, max_systems=8,
        guard=GuardConfig(), chunk_steps=10,
    )
    return (
        f"job service: {summary['jobs_done']}/{k} jobs done in "
        f"{summary['chunks']} chunks on backend {summary['backend']} "
        f"({summary['aggregate_steps_per_s']:.0f} steps/s aggregate); "
        f"quarantined {summary['quarantined']}, retried "
        f"{summary['retries']}.  Run with --chaos for the containment "
        "soak (seeded poisoned jobs + SIGKILL/resume)."
    )


def _cmd_scaling(args) -> str:
    return format_fpga_scaling(run_fpga_scaling(seed=args.seed))


def _cmd_sensitivity(args) -> str:
    return format_sensitivity(run_sensitivity(seed=args.seed))


def _cmd_info(args) -> str:
    rows = []
    for name, cfg in all_paper_configs().items():
        util = estimate_resources(cfg).utilization_percent()
        rows.append(
            [
                name,
                cfg.n_fpgas,
                "x".join(map(str, cfg.local_cells)),
                cfg.pes_per_cbb,
                cfg.n_cells * 64,
                util["lut"],
                util["dsp"],
            ]
        )
    return format_table(
        ["design", "FPGAs", "cells/FPGA", "PEs/cell", "particles", "LUT%", "DSP%"],
        rows,
        precision=0,
        title="FASDA design points (paper Sec. 5)",
    )


_COMMANDS = {
    "fig16": _cmd_fig16,
    "fig17": _cmd_fig17,
    "fig18": _cmd_fig18,
    "fig19": _cmd_fig19,
    "table1": _cmd_table1,
    "ablations": _cmd_ablations,
    "campaign": _cmd_campaign,
    "batch": _cmd_batch,
    "profile": _cmd_profile,
    "jobs": _cmd_jobs,
    "faults": _cmd_faults,
    "recover": _cmd_recover,
    "rescale": _cmd_rescale,
    "acceptance": _cmd_acceptance,
    "scaling": _cmd_scaling,
    "sensitivity": _cmd_sensitivity,
    "info": _cmd_info,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FASDA reproduction: regenerate paper tables and figures.",
    )
    parser.add_argument("command", choices=sorted(_COMMANDS))
    parser.add_argument("--seed", type=int, default=2023, help="dataset seed")
    parser.add_argument(
        "--steps", type=int, default=200, help="MD steps for fig19"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="also write the table to a file"
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="for `faults`/`campaign`: also write the result as JSON here",
    )
    parser.add_argument(
        "--campaign-steps",
        type=int,
        default=30,
        help="for `campaign`: MD steps per rate measurement point",
    )
    parser.add_argument(
        "--baseline",
        type=str,
        default=None,
        help=(
            "for `campaign`: BENCH_campaign.json to gate against; exits 1 "
            "when a rate metric regresses beyond --threshold"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="for `campaign`: fractional rate regression that fails the gate",
    )
    parser.add_argument(
        "--journal",
        type=str,
        default=None,
        help=(
            "for `campaign`: append each completed point to this JSONL "
            "journal the moment it finishes (fsynced), so a killed run "
            "can be resumed with --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        type=str,
        default=None,
        help=(
            "for `campaign`: adopt completed points from this journal (a "
            "--journal file left by a killed run) instead of re-executing "
            "them; the resumed result is identical to an uninterrupted run"
        ),
    )
    parser.add_argument(
        "--force-impl",
        type=str,
        default=None,
        help=(
            "for `campaign`: force backend for all points "
            "(numpy/soa/numba/cext; default numpy; an unavailable "
            "optional backend falls back to numpy). Per-backend extra "
            "points run regardless and record their own backend."
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "for `batch`: CI-sized run (K=64, smallest system size only, "
            "20 steps)"
        ),
    )
    parser.add_argument(
        "--batch-k",
        type=int,
        default=256,
        help="for `batch`: systems per batch (smoke caps this at 64)",
    )
    parser.add_argument(
        "--batch-steps",
        type=int,
        default=30,
        help="for `batch`: timed MD steps per measurement point",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "for `jobs`: run the containment soak instead of the demo — "
            "seeded poisoned jobs, quarantine/retry accounting, a "
            "SIGKILL mid-campaign and a journal resume; exits 1 if any "
            "job's blast radius leaked (--batch-k/--batch-steps resize "
            "it, --json writes the FAULTS_jobs.json artifact)"
        ),
    )
    parser.add_argument(
        "--node",
        type=int,
        default=1,
        help="for `recover`: node to kill in the recovery demo",
    )
    parser.add_argument(
        "--iteration",
        type=int,
        default=3,
        help="for `recover`: iteration at which the node crashes",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Commands normally return the table text; a command may instead
    return ``(text, exit_code)`` — the campaign perf gate uses this to
    fail the process while still printing its findings.
    """
    args = build_parser().parse_args(argv)
    out = _COMMANDS[args.command](args)
    text, code = out if isinstance(out, tuple) else (out, 0)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""FASDA reproduction: simulator-level model of an FPGA-aided, scalable,
distributed accelerator for range-limited molecular dynamics (SC '23).

Public API layers:

* :mod:`repro.md` — the double-precision reference MD engine (OpenMM
  numerical stand-in) and the paper's dataset generator.
* :mod:`repro.core` — the FASDA machine: functional datapath
  (fixed-point positions, interpolation-table force pipelines) plus
  cycle, traffic, and resource accounting across simulated FPGA nodes.
* :mod:`repro.network` — inter-FPGA fabric topologies (hyper-ring,
  torus mapping, switch).
* :mod:`repro.perf` — calibrated CPU/GPU baseline performance models and
  the FPGA cycle model behind Fig. 16.
* :mod:`repro.harness` — one experiment driver per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Elastic cluster sizing: valid partitions and the grow/shrink policy.

The paper evaluates FASDA on a fixed 8-board testbed; a production fleet
must treat the node count as a *runtime policy*.  This module provides
the two host-side pieces of that policy:

* :func:`fpga_grid_for` — the deterministic mapping from a target node
  count to an FPGA grid that divides the global cell grid, so every
  rescale (and every checkpoint restore after one) derives the same
  canonical partition;
* :class:`LoadBalancer` — watches the per-node record counts the
  distributed machine already surfaces and proposes grow/shrink targets
  on *sustained* load excursions, with hysteresis (separate high/low
  water marks), a sustain count, and a post-rescale cooldown so one
  noisy observation can never flap the cluster.

The transactional rescale itself (two-phase prepare/commit with
rollback) lives in
:meth:`~repro.core.distributed.DistributedMachine.rescale`; the balancer
only decides *when* and *to what size*.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigError, ValidationError


def fpga_grid_for(
    global_cells: Sequence[int], n_nodes: int
) -> Tuple[int, int, int]:
    """Canonical FPGA grid with ``n_nodes`` boards for ``global_cells``.

    Enumerates every factorization ``fx * fy * fz == n_nodes`` whose
    axes divide the global cell grid and picks the one whose smallest
    local-cell axis is largest (the squarest partition has the smallest
    halo surface), tie-broken toward the lexicographically smallest
    grid.  The choice is a pure function of its arguments — a rescale
    and a later checkpoint restore always agree on the partition.
    """
    gc = tuple(int(d) for d in global_cells)
    n = int(n_nodes)
    if len(gc) != 3 or any(d < 1 for d in gc):
        raise ConfigError(f"global_cells must be 3 positive dims, got {gc}")
    if n < 1:
        raise ConfigError(f"n_nodes must be >= 1, got {n}")
    best: Optional[Tuple[int, Tuple[int, int, int]]] = None
    for fx in range(1, n + 1):
        if n % fx or gc[0] % fx:
            continue
        rem = n // fx
        for fy in range(1, rem + 1):
            if rem % fy or gc[1] % fy:
                continue
            fz = rem // fy
            if gc[2] % fz:
                continue
            local_min = min(gc[0] // fx, gc[1] // fy, gc[2] // fz)
            key = (-local_min, fx, fy, fz)
            if best is None or key < best[0]:
                best = (key, (fx, fy, fz))
    if best is None:
        raise ConfigError(
            f"no FPGA grid with {n} node(s) divides global cells {gc}"
        )
    return best[1]


def valid_node_counts(
    global_cells: Sequence[int], max_nodes: Optional[int] = None
) -> List[int]:
    """Distributed-capable node counts for ``global_cells`` (ascending).

    Counts start at 2 (:class:`~repro.core.distributed.DistributedMachine`
    requires a distributed config) and stop at ``max_nodes`` (default:
    one node per cell, the hard geometric ceiling).
    """
    gc = tuple(int(d) for d in global_cells)
    ceiling = int(np.prod(gc))
    limit = ceiling if max_nodes is None else min(int(max_nodes), ceiling)
    counts = []
    for n in range(2, limit + 1):
        try:
            fpga_grid_for(gc, n)
        except ConfigError:
            continue
        counts.append(n)
    return counts


@dataclass(frozen=True)
class ElasticityPolicy:
    """Declarative grow/shrink policy with hysteresis and cooldown.

    Attributes
    ----------
    high_water:
        Records on the busiest node at or above which a grow arms.
    low_water:
        Records on the busiest node at or below which a shrink arms.
        Must sit strictly below ``high_water`` — the gap between the two
        marks is the hysteresis band where the balancer holds steady.
    sustain:
        Consecutive observations a mark must stay crossed before the
        balancer proposes a rescale (one noisy sample never triggers).
    cooldown:
        Observations ignored after any rescale attempt (committed *or*
        aborted), so the cluster settles before the next decision.
    min_nodes / max_nodes:
        Bounds on the proposed sizes; ``min_nodes`` must keep the
        machine distributed (>= 2), ``max_nodes`` ``None`` means
        geometry-limited only.
    """

    high_water: float = 48.0
    low_water: float = 16.0
    sustain: int = 3
    cooldown: int = 5
    min_nodes: int = 2
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.low_water < self.high_water:
            raise ValidationError(
                f"low_water ({self.low_water}) must be below high_water "
                f"({self.high_water}): the gap is the hysteresis band"
            )
        if self.sustain < 1:
            raise ValidationError(f"sustain must be >= 1, got {self.sustain}")
        if self.cooldown < 0:
            raise ValidationError(
                f"cooldown must be >= 0, got {self.cooldown}"
            )
        if self.min_nodes < 2:
            raise ValidationError(
                f"min_nodes must be >= 2 (distributed), got {self.min_nodes}"
            )
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ValidationError(
                f"max_nodes ({self.max_nodes}) must be >= min_nodes "
                f"({self.min_nodes})"
            )


class LoadBalancer:
    """Turns per-node load observations into rescale proposals.

    Feed :meth:`observe` the per-node record counts once per iteration
    boundary (``DistributedMachine.maybe_rescale`` does this); it
    returns a proposed node count, or ``None`` to hold.  Growth targets
    the next larger valid size, shrink the next smaller one — one step
    at a time, so every move stays reviewable in the rescale log.

    A shrink additionally projects the post-shrink peak load
    (``peak * n_now / n_smaller``, assuming load scales with owned
    cells) and holds unless that projection stays under the high-water
    mark — without the guard, a shrink could immediately re-arm a grow
    and flap against the cooldown.
    """

    def __init__(
        self, policy: ElasticityPolicy, global_cells: Sequence[int]
    ):
        self.policy = policy
        self.global_cells = tuple(int(d) for d in global_cells)
        #: Valid sizes within the policy bounds (ascending).
        self.sizes = [
            n
            for n in valid_node_counts(self.global_cells, policy.max_nodes)
            if n >= policy.min_nodes
        ]
        if not self.sizes:
            raise ConfigError(
                f"no valid node count in [{policy.min_nodes}, "
                f"{policy.max_nodes}] divides global cells "
                f"{self.global_cells}"
            )
        self._grow_streak = 0
        self._shrink_streak = 0
        self._cooldown_left = 0
        #: Total observations / proposals made (for reporting).
        self.observations = 0
        self.proposals = 0

    def observe(self, per_node_records: Sequence[int]) -> Optional[int]:
        """One load observation; returns a proposed node count or None."""
        loads = [int(v) for v in per_node_records]
        if not loads:
            raise ValidationError("observe needs at least one node load")
        n_now = len(loads)
        self.observations += 1
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            self._grow_streak = 0
            self._shrink_streak = 0
            return None
        peak = max(loads)
        policy = self.policy
        if peak >= policy.high_water:
            self._grow_streak += 1
            self._shrink_streak = 0
        elif peak <= policy.low_water:
            self._shrink_streak += 1
            self._grow_streak = 0
        else:
            self._grow_streak = 0
            self._shrink_streak = 0
        target: Optional[int] = None
        if self._grow_streak >= policy.sustain:
            larger = [n for n in self.sizes if n > n_now]
            if larger:
                target = larger[0]
        elif self._shrink_streak >= policy.sustain:
            smaller = [n for n in self.sizes if n < n_now]
            if smaller and peak * n_now / smaller[-1] < policy.high_water:
                target = smaller[-1]
        if target is not None:
            self._grow_streak = 0
            self._shrink_streak = 0
            self.proposals += 1
        return target

    def notify_rescale(self, committed: bool) -> None:
        """Start the cooldown window after a rescale attempt.

        Aborted attempts cool down too: the condition that triggered
        the proposal is still present, and hammering a faulty fabric
        with back-to-back migrations is exactly the flap the policy
        exists to prevent.
        """
        self._cooldown_left = self.policy.cooldown
        self._grow_streak = 0
        self._shrink_streak = 0

    # -- checkpoint round-trip ----------------------------------------------

    def meta(self) -> Dict[str, Any]:
        """JSON-able mid-policy state (checkpoint-v2 payload)."""
        return {
            "policy": dataclasses.asdict(self.policy),
            "global_cells": list(self.global_cells),
            "grow_streak": int(self._grow_streak),
            "shrink_streak": int(self._shrink_streak),
            "cooldown_left": int(self._cooldown_left),
            "observations": int(self.observations),
            "proposals": int(self.proposals),
        }

    @classmethod
    def from_meta(cls, meta: Dict[str, Any]) -> "LoadBalancer":
        """Rebuild a balancer mid-policy (inverse of :meth:`meta`)."""
        balancer = cls(
            ElasticityPolicy(**meta["policy"]),
            tuple(meta["global_cells"]),
        )
        balancer._grow_streak = int(meta["grow_streak"])
        balancer._shrink_streak = int(meta["shrink_streak"])
        balancer._cooldown_left = int(meta["cooldown_left"])
        balancer.observations = int(meta["observations"])
        balancer.proposals = int(meta["proposals"])
        return balancer

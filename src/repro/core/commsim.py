"""Communication-overlap analysis: is the exchange hidden under compute?

Paper Sec. 5.4: "As communication and computation are executed
simultaneously, with computation typically much more intense than
communication, the latency loss in communication caused by cooldown is
hidden."  This module checks that claim against measured traffic: each
node's position exchange is paced by the cooldown counter and pushed
through the finite-buffer switch model; the last arrival (plus
time-of-flight) must land before the receiving node's force phase ends,
or the iteration would stretch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.cycles import CyclePerformance
from repro.core.machine import StepStats
from repro.network.netsim import Burst, OutputQueuedSwitch
from repro.util.errors import ValidationError


@dataclass
class CommOverlapResult:
    """Per-iteration communication timeline vs the compute phase."""

    #: Cycle at which the last position packet arrives, per destination node.
    last_arrival: Dict[int, float]
    #: Force-phase length per node (compute window available for overlap).
    force_cycles: Dict[int, float]
    #: Packets dropped at the switch (must be zero at the paper's cooldown).
    dropped: int

    @property
    def hidden(self) -> bool:
        """True when every node's exchange completes inside its compute."""
        return self.dropped == 0 and all(
            self.last_arrival.get(n, 0.0) <= self.force_cycles[n]
            for n in self.force_cycles
        )

    @property
    def worst_overlap_fraction(self) -> float:
        """Max over nodes of (comm completion / compute window)."""
        fractions = [
            self.last_arrival.get(n, 0.0) / c
            for n, c in self.force_cycles.items()
            if c > 0
        ]
        return max(fractions) if fractions else 0.0


def simulate_comm_overlap(
    config: MachineConfig,
    stats: StepStats,
    perf: CyclePerformance,
    buffer_packets: int = 64,
) -> CommOverlapResult:
    """Push one iteration's measured position traffic through the switch.

    Every node starts streaming at cycle 0 (the worst case: all
    exchanges synchronized), pacing one packet per ``cooldown_cycles``
    per destination gate; the time-of-flight latency is added to the
    last arrival.
    """
    if perf.per_node_force_cycles is None:
        raise ValidationError("performance estimate lacks per-node cycles")
    switch = OutputQueuedSwitch(
        config.n_fpgas,
        drain_per_cycle=config.link_gbps * 1e9 / config.packet_bits / config.clock_hz,
        buffer_packets=buffer_packets,
    )
    bursts: List[Burst] = []
    per_flow_packets: Dict[Tuple[int, int], int] = {}
    for (src, dst), records in stats.position_records.items():
        n_packets = int(np.ceil(records / config.records_per_packet))
        per_flow_packets[(src, dst)] = n_packets
        bursts.append(
            Burst(
                src=src,
                dst=dst,
                n_packets=n_packets,
                gap_cycles=config.cooldown_cycles,
            )
        )
    switch_stats = switch.run(bursts)

    # Last arrival per destination: pacing end + queue drain + flight.
    last_arrival: Dict[int, float] = {}
    for dst in range(config.n_fpgas):
        incoming = [
            (n - 1) * config.cooldown_cycles + 1
            for (s, d), n in per_flow_packets.items()
            if d == dst and n > 0
        ]
        if not incoming:
            continue
        pacing_end = max(incoming)
        queue_tail = switch_stats.max_occupancy.get(dst, 0)
        last_arrival[dst] = (
            pacing_end + queue_tail + config.inter_fpga_latency_cycles
        )
    force_cycles = {
        n: float(perf.per_node_force_cycles[n]) for n in range(config.n_fpgas)
    }
    return CommOverlapResult(
        last_arrival=last_arrival,
        force_cycles=force_cycles,
        dropped=switch_stats.dropped,
    )

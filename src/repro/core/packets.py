"""The inter-FPGA communication interface (paper Sec. 4.3, Figs. 10-11).

Data leaves a node as 512-bit AXI-Stream packets of four records each.
Positions may have several destination nodes, so a position passes an
*encapsulation chain* of P2R (position-to-remote) encapsulators — one per
neighboring FPGA — each acting as a departure gate that copies the record
into its four-register packet buffer.  Forces have exactly one
destination, so an F2R gate selects the departure port with a destination
mask and no arbitration is needed.  Packets carry a ``last`` flag used by
the chained-synchronization protocol (Sec. 4.4).

This module models the packing/unpacking logic functionally (records in,
packets out, bit-exact counts) so the traffic accounting of Fig. 18 and
the `last`-flag semantics of the sync protocol rest on tested code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Record:
    """One data record inside a packet.

    Attributes
    ----------
    kind:
        ``"position"`` or ``"force"``.
    particle_id:
        Global particle identifier (header field, Fig. 11(a)).
    cell:
        Global cell coordinates of the particle's home cell; the
        receiving node converts this to its local view (GCID -> LCID).
    payload:
        The data words (x, y, z[, element]) — opaque to the transport.
    """

    kind: str
    particle_id: int
    cell: Tuple[int, int, int]
    payload: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("position", "force"):
            raise ValidationError(f"unknown record kind {self.kind!r}")


@dataclass(frozen=True)
class Packet:
    """A 512-bit AXI-Stream packet: up to four records plus a last flag."""

    dst: int
    records: Tuple[Record, ...]
    last: bool = False

    def __post_init__(self) -> None:
        if not 1 <= len(self.records) <= 4:
            raise ValidationError("a packet carries 1..4 records")


@dataclass(frozen=True)
class RecordBatch:
    """An array-packed run of records for one (source, destination) flow.

    The wire format is unchanged — a batch of ``n`` records still ships
    as ``ceil(n / records_per_packet)`` 512-bit packets, the last one
    carrying the ``last`` flag — but the *model* keeps the columns as
    ndarrays instead of ``n`` :class:`Record` objects, so packing,
    GCID -> LCID conversion and halo bucketing on arrival all run as
    whole-array operations.

    Attributes
    ----------
    kind:
        ``"position"`` or ``"force"``.
    dst:
        Destination node id.
    particle_ids:
        ``(n,)`` int64 global particle identifiers.
    cells:
        ``(n, 3)`` int64 global cell coordinates (home cell per record).
    payload:
        ``(n, k)`` data words — ``(x, y, z, element)`` columns for
        positions, force components for forces.
    """

    kind: str
    dst: int
    particle_ids: "np.ndarray"
    cells: "np.ndarray"
    payload: "np.ndarray"

    def __post_init__(self) -> None:
        if self.kind not in ("position", "force"):
            raise ValidationError(f"unknown record kind {self.kind!r}")
        if len(self.particle_ids) != len(self.cells) or len(
            self.particle_ids
        ) != len(self.payload):
            raise ValidationError("record batch columns disagree on length")

    @property
    def n_records(self) -> int:
        return len(self.particle_ids)

    def n_packets(self, records_per_packet: int = 4) -> int:
        """Packets this batch occupies on the wire (last one flushed
        partially full, exactly like a :class:`PacketGate` stream)."""
        if records_per_packet < 1:
            raise ValidationError("records_per_packet must be >= 1")
        return -(-self.n_records // records_per_packet)


class PacketGate:
    """One departure gate: a four-register packet buffer for one destination.

    Mirrors Fig. 11(b)/(c): records accumulate in four registers; a full
    buffer emits a packet; the ``last`` signal flushes a partial buffer so
    the destination's synchronization counters can fire.
    """

    def __init__(self, dst: int, records_per_packet: int = 4):
        if records_per_packet < 1:
            raise ValidationError("records_per_packet must be >= 1")
        self.dst = dst
        self.records_per_packet = records_per_packet
        self._buffer: List[Record] = []
        self.packets_sent = 0
        self.records_sent = 0

    def push(self, record: Record) -> Optional[Packet]:
        """Add a record; returns a packet when the buffer fills."""
        self._buffer.append(record)
        self.records_sent += 1
        if len(self._buffer) == self.records_per_packet:
            return self._emit(last=False)
        return None

    def flush(self) -> Optional[Packet]:
        """Emit any buffered records with the ``last`` flag set.

        An empty buffer still yields a ``last`` indication in hardware
        (a header-only packet); we model that as a zero-record sentinel
        by returning None and letting the caller send the flag
        out-of-band — the packet *count* matters, and the hardware
        piggybacks the flag on the final data packet when one exists.
        """
        if not self._buffer:
            return None
        return self._emit(last=True)

    def _emit(self, last: bool) -> Packet:
        pkt = Packet(dst=self.dst, records=tuple(self._buffer), last=last)
        self._buffer.clear()
        self.packets_sent += 1
        return pkt


class P2REncapsulatorChain:
    """The position encapsulation chain (Fig. 11(b)).

    A position record flows through one encapsulator per neighboring
    FPGA; each encapsulator whose destination set matches copies the
    record into its gate.  The chain reuses one stream for all gates,
    which is exactly why the hardware needs no fan-out tree.
    """

    def __init__(self, neighbor_nodes: Sequence[int], records_per_packet: int = 4):
        if len(set(neighbor_nodes)) != len(neighbor_nodes):
            raise ValidationError("duplicate neighbor node in chain")
        self.gates: Dict[int, PacketGate] = {
            n: PacketGate(n, records_per_packet) for n in neighbor_nodes
        }

    def route(self, record: Record, destinations: Iterable[int]) -> List[Packet]:
        """Pass a record down the chain; returns any packets that filled."""
        if record.kind != "position":
            raise ValidationError("P2R chain only carries positions")
        out = []
        for dst in destinations:
            if dst not in self.gates:
                raise ValidationError(f"destination {dst} has no departure gate")
            pkt = self.gates[dst].push(record)
            if pkt is not None:
                out.append(pkt)
        return out

    def flush_all(self) -> List[Packet]:
        """End of iteration: flush every gate with the last flag."""
        out = []
        for gate in self.gates.values():
            pkt = gate.flush()
            if pkt is not None:
                out.append(pkt)
        return out

    @property
    def packets_sent(self) -> int:
        """Total packets emitted across all gates."""
        return sum(g.packets_sent for g in self.gates.values())


class F2RGate:
    """Force departure logic (Fig. 11(c)): unique destination per force.

    A destination mask selects the gate; at most one force packet departs
    per cycle so no arbiter exists.  Zero forces are discarded upstream
    (paper Sec. 5.4) — the caller simply never routes them.
    """

    def __init__(self, neighbor_nodes: Sequence[int], records_per_packet: int = 4):
        self.gates: Dict[int, PacketGate] = {
            n: PacketGate(n, records_per_packet) for n in neighbor_nodes
        }

    def route(self, record: Record, destination: int) -> Optional[Packet]:
        """Route a force record to its single destination gate."""
        if record.kind != "force":
            raise ValidationError("F2R gate only carries forces")
        if destination not in self.gates:
            raise ValidationError(f"destination {destination} has no gate")
        return self.gates[destination].push(record)

    def flush_all(self) -> List[Packet]:
        """End of iteration: flush every gate with the last flag."""
        out = []
        for gate in self.gates.values():
            pkt = gate.flush()
            if pkt is not None:
                out.append(pkt)
        return out

    @property
    def packets_sent(self) -> int:
        """Total packets emitted across all gates."""
        return sum(g.packets_sent for g in self.gates.values())


def unpack(packet: Packet) -> Tuple[Record, ...]:
    """Unpack a packet back into records (arrival side, Fig. 10)."""
    return packet.records

"""FPGA resource model (paper Table 1).

Resource consumption of a FASDA bitstream is a static function of the
design configuration.  We model it as a linear composition of
per-component costs over the design hierarchy:

* a static **shell** (network stack, controller, host interface);
* per-**CBB** infrastructure (MU, VC, ring nodes, control);
* per-**PE** compute (six filters, the force pipeline, dispatchers);
* per-**FC** force-cache bank (FCs scale with PEs: n+1 per n-PE SPE,
  paper Sec. 4.5);
* per-**SPE** replicated ring sets (Sec. 4.6);
* fixed **distributed-mode** infrastructure (EX nodes, packet engines,
  GCID->LCID converters) plus per-**neighbor** departure gates (P2R/F2R
  chains and buffers).

The per-component coefficients were fit (non-negative least squares)
to the seven rows of Table 1.  LUT, FF, and DSP reproduce the table to
within ~1 percentage point.  BRAM and URAM carry up to ~15 points of
error on individual rows because the paper's builds manually re-balance
BRAM against URAM between configurations (Sec. 5.5: "Resource
consumption can be, to some extent, balanced by trading off LUT, BRAM,
and URAM") — visible in the table itself, where BRAM *drops* from 38% to
33% while URAM jumps from 31% to 42% for the same per-node design.  No
monotone component model can fit both; ours tracks the totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.config import MachineConfig

#: Xilinx Alveo U280 device capacities (paper Sec. 5.1).
U280 = {
    "lut": 1_303_000.0,
    "ff": 2_607_000.0,
    "bram": 2016.0,
    "uram": 960.0,
    "dsp": 9024.0,
}

#: Per-component resource costs fit to Table 1 (see module docstring).
#: Keys: shell (static), cbb, pe, fc, spe, dist (fixed distributed
#: infrastructure), nbr (per neighboring FPGA departure gates).
COMPONENT_COSTS: Dict[str, Dict[str, float]] = {
    "lut": {"shell": 92958, "cbb": 6431, "pe": 9430, "fc": 0, "spe": 0,
            "dist": 55843, "nbr": 3723},
    "ff": {"shell": 277165, "cbb": 4459, "pe": 6518, "fc": 0, "spe": 0,
           "dist": 52140, "nbr": 0},
    "bram": {"shell": 0, "cbb": 0, "pe": 22.1, "fc": 0, "spe": 0,
             "dist": 49.7, "nbr": 44.8},
    "uram": {"shell": 0, "cbb": 0, "pe": 0, "fc": 0, "spe": 8.7,
             "dist": 92.6, "nbr": 3.0},
    "dsp": {"shell": 9.5, "cbb": 10.1, "pe": 33.8, "fc": 11.3, "spe": 0,
            "dist": 0, "nbr": 0},
}


@dataclass(frozen=True)
class ResourceUsage:
    """Absolute resource usage of one FPGA node."""

    lut: float
    ff: float
    bram: float
    uram: float
    dsp: float

    def utilization_percent(self) -> Dict[str, float]:
        """Percent of U280 capacity per resource, Table 1's format."""
        return {
            res: 100.0 * getattr(self, res) / U280[res]
            for res in ("lut", "ff", "bram", "uram", "dsp")
        }

    def fits(self, margin: float = 1.0) -> bool:
        """Whether the design fits the device (optionally with headroom).

        ``margin=0.9`` asks for 10% slack, a common routability budget.
        """
        return all(v <= 100.0 * margin for v in self.utilization_percent().values())


def comm_neighbor_count(config: MachineConfig) -> int:
    """Distinct FPGAs a node exchanges data with (face + edge + corner).

    With cell blocks adjacent under periodic wrap, halo cells can reach
    diagonal nodes, so e.g. a 2x2x2 FPGA grid gives every node 7
    communication partners (paper Fig. 18(B) shows traffic to all
    seven).
    """
    if not config.is_distributed:
        return 0
    fg = np.asarray(config.fpga_grid)
    partners = set()
    # All offsets in {-1,0,1}^3 reachable by a halo exchange.
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                if (dx, dy, dz) == (0, 0, 0):
                    continue
                nbr = tuple(np.mod(np.array([dx, dy, dz]), fg))
                if nbr != (0, 0, 0):
                    partners.add(nbr)
    return len(partners)


def estimate_resources(config: MachineConfig) -> ResourceUsage:
    """Per-FPGA resource usage for a design point (Table 1's rows)."""
    cbbs = config.cells_per_fpga
    spes = cbbs * config.spes_per_cbb
    pes = cbbs * config.pes_per_cbb
    fcs = cbbs * config.spes_per_cbb * (config.pes_per_spe + 1)
    dist = 1.0 if config.is_distributed else 0.0
    nbr = float(comm_neighbor_count(config))

    def total(res: str) -> float:
        c = COMPONENT_COSTS[res]
        return (
            c["shell"]
            + c["cbb"] * cbbs
            + c["pe"] * pes
            + c["fc"] * fcs
            + c["spe"] * spes
            + c["dist"] * dist
            + c["nbr"] * nbr
        )

    return ResourceUsage(
        lut=total("lut"),
        ff=total("ff"),
        bram=total("bram"),
        uram=total("uram"),
        dsp=total("dsp"),
    )


#: Paper Table 1, for direct comparison in tests and EXPERIMENTS.md.
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "3x3x3": {"lut": 40, "ff": 22, "bram": 29, "uram": 20, "dsp": 20},
    "6x3x3": {"lut": 44, "ff": 24, "bram": 38, "uram": 31, "dsp": 20},
    "6x6x3": {"lut": 46, "ff": 24, "bram": 33, "uram": 42, "dsp": 20},
    "6x6x6": {"lut": 46, "ff": 24, "bram": 33, "uram": 42, "dsp": 20},
    "4x4x4-A": {"lut": 23, "ff": 16, "bram": 31, "uram": 13, "dsp": 6},
    "4x4x4-B": {"lut": 35, "ff": 20, "bram": 51, "uram": 18, "dsp": 14},
    "4x4x4-C": {"lut": 52, "ff": 26, "bram": 76, "uram": 28, "dsp": 27},
}

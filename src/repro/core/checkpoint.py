"""Checkpoint / restore for machine and reference simulations.

Long-timescale campaigns (the drug-discovery workloads of the paper's
introduction run for days) need restartable state.  A checkpoint holds
the full dynamic state — positions, float32 velocity/force caches,
species, charges, box, step count — as a compressed ``.npz`` plus the
design configuration, and restores bit-identically: a restored machine
continues the exact trajectory the original would have produced.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md.params import LJTable
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError

#: Format identifier written into every checkpoint.
CHECKPOINT_FORMAT = "fasda-checkpoint-v1"


def save_checkpoint(machine: FasdaMachine, path: str) -> None:
    """Write a machine's complete state to ``path`` (.npz)."""
    cfg_json = json.dumps(dataclasses.asdict(machine.config))
    step = machine.history[-1].step if machine.history else 0
    np.savez_compressed(
        path,
        format=np.array(CHECKPOINT_FORMAT),
        config=np.array(cfg_json),
        species_names=np.array(machine.system.lj_table.species),
        positions=machine.system.positions,
        velocities32=machine.velocities,
        forces32=machine.forces,
        species=machine.system.species,
        charges=machine.system.charges,
        box=machine.system.box,
        step=np.array(step, dtype=np.int64),
        primed=np.array(machine._primed),
    )


def load_checkpoint(path: str) -> Tuple[FasdaMachine, int]:
    """Restore a machine from a checkpoint.

    Returns
    -------
    (machine, step):
        The restored machine (forces/velocities bit-identical to the
        saved float32 caches) and the step count at save time.
    """
    with np.load(path, allow_pickle=False) as data:
        if str(data["format"]) != CHECKPOINT_FORMAT:
            raise ValidationError(
                f"not a FASDA checkpoint (format {data['format']!r})"
            )
        cfg_dict = json.loads(str(data["config"]))
        # Tuples arrive as lists from JSON.
        cfg_dict["global_cells"] = tuple(cfg_dict["global_cells"])
        cfg_dict["fpga_grid"] = tuple(cfg_dict["fpga_grid"])
        config = MachineConfig(**cfg_dict)
        lj = LJTable(tuple(str(s) for s in data["species_names"]))
        system = ParticleSystem(
            positions=data["positions"],
            velocities=data["velocities32"].astype(np.float64),
            species=data["species"],
            lj_table=lj,
            box=data["box"],
            forces=data["forces32"].astype(np.float64),
            charges=data["charges"],
        )
        machine = FasdaMachine(config, system=system)
        # Restore the exact float32 caches (construction re-casts from
        # float64, which is lossless here since the values came from
        # float32, but be explicit).
        machine._velocities32 = data["velocities32"].copy()
        machine._forces32 = data["forces32"].copy()
        machine._primed = bool(data["primed"])
        step = int(data["step"])
        return machine, step

"""Crash-consistent checkpoint / restore for every simulation layer.

Long-timescale campaigns (the drug-discovery workloads of the paper's
introduction run for days) need restartable state.  Two formats live
here:

``fasda-checkpoint-v1``
    The original flat ``.npz`` covering :class:`FasdaMachine` only.
    Kept loadable forever; its writer is now atomic and its loader
    validates format and config round-trip *before* constructing
    anything, raising :class:`~repro.util.errors.CheckpointError` on
    truncated / bit-flipped / wrong-format files instead of leaking
    ``zipfile``/``KeyError`` internals.

``fasda-checkpoint-v2``
    A versioned container covering :class:`FasdaMachine`,
    :class:`~repro.md.engine.ReferenceEngine` and
    :class:`~repro.core.distributed.DistributedMachine` — including
    CellState reuse metadata, transport retry counters, stale-halo
    snapshots, fault plans and the recovery log.  The dynamic state is
    an inner ``.npz`` byte blob carried inside an outer ``.npz``
    alongside its CRC-32, so corruption anywhere in the payload is
    detected at load time before any object is constructed.

Both writers are crash-consistent: bytes go to a same-directory temp
file, ``fsync``, then ``os.replace`` — a reader never observes a torn
file, and a crash mid-write leaves the previous checkpoint intact.

Fault-plan determinism note: the injectors
(:class:`~repro.faults.FaultInjector`,
:class:`~repro.faults.NodeFaultInjector`) are *stateless* keyed-RNG
constructions — every decision is a pure function of (plan, event key).
Persisting the plans plus the iteration counter therefore fully
determines all post-restore fault decisions; there is no RNG stream
position to serialize.

:class:`CheckpointManager` adds interval policy on top: periodic saves,
pruning, and a ``load_latest`` that quarantines corrupt files (renamed
``*.corrupt``) and falls back to the previous interval checkpoint.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import re
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.core.machine import FasdaMachine
from repro.md.params import LJTable
from repro.md.system import ParticleSystem
from repro.util.errors import CheckpointError, ValidationError

#: Format identifier written into every v1 checkpoint.
CHECKPOINT_FORMAT = "fasda-checkpoint-v1"
#: Format identifier of the container format.
CHECKPOINT_FORMAT_V2 = "fasda-checkpoint-v2"

#: Object kinds a v2 checkpoint can hold.  ``system`` is a bare
#: :class:`~repro.md.system.ParticleSystem` — the job service uses it
#: for per-job result and preemption checkpoints.
V2_KINDS = ("machine", "engine", "distributed", "batch", "system")


# ---------------------------------------------------------------------------
# Atomic byte persistence
# ---------------------------------------------------------------------------


def _atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` crash-consistently.

    Temp file in the same directory (same filesystem, so the final
    ``os.replace`` is atomic), ``fsync`` before the rename so the bytes
    are durable when the name appears, then a directory ``fsync`` so the
    rename itself survives a power cut.
    """
    dirname = os.path.dirname(os.path.abspath(path)) or "."
    tmp = os.path.join(
        dirname, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointError(f"could not write checkpoint {path!r}: {exc}")
    try:
        dfd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(dfd)
    finally:
        os.close(dfd)


def _npz_bytes(**arrays: Any) -> bytes:
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


# ---------------------------------------------------------------------------
# v1: the original FasdaMachine flat format
# ---------------------------------------------------------------------------

_V1_KEYS = (
    "format", "config", "species_names", "positions", "velocities32",
    "forces32", "species", "charges", "box", "step", "primed",
)


def _with_npz_suffix(path: str) -> str:
    """Mimic ``np.savez``'s historical suffix behavior for v1 paths."""
    return path if path.endswith(".npz") else path + ".npz"


def _config_from_dict(cfg_dict: Dict[str, Any], path: str) -> MachineConfig:
    """Reconstruct and round-trip-validate a checkpointed MachineConfig."""
    d = dict(cfg_dict)
    try:
        # Tuples arrive as lists from JSON.
        d["global_cells"] = tuple(d["global_cells"])
        d["fpga_grid"] = tuple(d["fpga_grid"])
        config = MachineConfig(**d)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} carries a config that does not "
            f"reconstruct: {exc}"
        )
    if dataclasses.asdict(config) != d:
        raise CheckpointError(
            f"checkpoint {path!r} carries a config that does not "
            "round-trip (fields changed meaning between versions?)"
        )
    return config


def save_checkpoint(machine: FasdaMachine, path: str) -> str:
    """Write a machine's complete state to ``path`` (.npz), atomically.

    Returns the path actually written (``.npz`` appended if missing,
    matching the historical ``np.savez`` behavior).
    """
    cfg_json = json.dumps(dataclasses.asdict(machine.config))
    step = machine.history[-1].step if machine.history else 0
    data = _npz_bytes(
        format=np.array(CHECKPOINT_FORMAT),
        config=np.array(cfg_json),
        species_names=np.array(machine.system.lj_table.species),
        positions=machine.system.positions,
        velocities32=machine.velocities,
        forces32=machine.forces,
        species=machine.system.species,
        charges=machine.system.charges,
        box=machine.system.box,
        step=np.array(step, dtype=np.int64),
        primed=np.array(machine._primed),
    )
    path = _with_npz_suffix(path)
    _atomic_write_bytes(path, data)
    return path


def load_checkpoint(path: str) -> Tuple[FasdaMachine, int]:
    """Restore a machine from a v1 checkpoint.

    Every validation — format string, key inventory, config round-trip,
    and full payload decompression (which exercises the zip CRCs, so a
    bit-flipped file fails here) — happens *before* any machine is
    constructed.

    Returns
    -------
    (machine, step):
        The restored machine (forces/velocities bit-identical to the
        saved float32 caches) and the step count at save time.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            missing = [k for k in _V1_KEYS if k not in data.files]
            if missing:
                raise CheckpointError(
                    f"not a FASDA checkpoint: {path!r} lacks keys {missing}"
                )
            if str(data["format"]) != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"not a FASDA checkpoint (format {data['format']!r} "
                    f"in {path!r}, expected {CHECKPOINT_FORMAT!r})"
                )
            cfg_dict = json.loads(str(data["config"]))
            config = _config_from_dict(cfg_dict, path)
            # Materialize every array while still inside the error net:
            # decompression verifies the member CRCs, so truncation or a
            # bit flip surfaces as CheckpointError, not as garbage state.
            arrays = {k: data[k] for k in _V1_KEYS if k not in ("format", "config")}
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"corrupt or unreadable checkpoint {path!r}: "
            f"{type(exc).__name__}: {exc}"
        )
    _validate_finite_state(
        {
            "positions": arrays["positions"],
            "velocities": arrays["velocities32"],
            "forces": arrays["forces32"],
        },
        repr(path),
    )
    lj = LJTable(tuple(str(s) for s in arrays["species_names"]))
    system = ParticleSystem(
        positions=arrays["positions"],
        velocities=arrays["velocities32"].astype(np.float64),
        species=arrays["species"],
        lj_table=lj,
        box=arrays["box"],
        forces=arrays["forces32"].astype(np.float64),
        charges=arrays["charges"],
    )
    machine = FasdaMachine(config, system=system)
    # Restore the exact float32 caches (construction re-casts from
    # float64, which is lossless here since the values came from
    # float32, but be explicit).
    machine._velocities32 = arrays["velocities32"].copy()
    machine._forces32 = arrays["forces32"].copy()
    machine._primed = bool(arrays["primed"])
    return machine, int(arrays["step"])


# ---------------------------------------------------------------------------
# v2: the container format
# ---------------------------------------------------------------------------


def _history_arrays(history) -> Dict[str, np.ndarray]:
    return {
        "hist_step": np.array([r.step for r in history], dtype=np.int64),
        "hist_kin": np.array([r.kinetic for r in history], dtype=np.float64),
        "hist_pot": np.array([r.potential for r in history], dtype=np.float64),
    }


def _history_from_arrays(inner) -> List[Any]:
    from repro.md.engine import EnergyRecord

    return [
        EnergyRecord(int(s), float(k), float(p))
        for s, k, p in zip(
            inner["hist_step"], inner["hist_kin"], inner["hist_pot"]
        )
    ]


def _system_arrays(system: ParticleSystem) -> Dict[str, np.ndarray]:
    return {
        "species_names": np.array(system.lj_table.species),
        "positions": system.positions,
        "velocities": system.velocities,
        "forces": system.forces,
        "species": system.species,
        "charges": system.charges,
        "box": system.box,
    }


def _validate_finite_state(arrays: Dict[str, Any], context: str) -> None:
    """Refuse to resume NaN/Inf-poisoned dynamic state.

    The CRC catches bit rot, but a checkpoint *written* from an already
    poisoned run is internally consistent — this is the semantic check
    on top.  Shared by the v1 loader and every v2 kind (each batch
    segment passes through here too).
    """
    for name, arr in arrays.items():
        arr = np.asarray(arr)
        if arr.dtype.kind == "f" and not np.isfinite(arr).all():
            bad = int(np.count_nonzero(~np.isfinite(arr)))
            raise CheckpointError(
                f"checkpoint {context} carries {bad} non-finite {name} "
                "component(s); refusing to resume poisoned state"
            )


def _system_from_arrays(inner, context: str = "<v2 payload>") -> ParticleSystem:
    _validate_finite_state(
        {
            "positions": inner["positions"],
            "velocities": inner["velocities"],
            "forces": inner["forces"],
        },
        context,
    )
    return ParticleSystem(
        positions=inner["positions"],
        velocities=inner["velocities"],
        species=inner["species"],
        lj_table=LJTable(tuple(str(s) for s in inner["species_names"])),
        box=inner["box"],
        forces=inner["forces"],
        charges=inner["charges"],
    )


def _opt_asdict(obj) -> Optional[Dict[str, Any]]:
    return None if obj is None else dataclasses.asdict(obj)


# -- per-kind payload builders ------------------------------------------------


def _machine_payload(m: FasdaMachine) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    meta = {
        "config": dataclasses.asdict(m.config),
        "step": m.history[-1].step if m.history else 0,
        "primed": bool(m._primed),
        "last_potential": float(m._last_potential),
        "pair_path": m.pair_path,
        "traffic_impl": m.traffic_impl,
        "force_impl": m.force_impl,
        "reuse_state": bool(m.reuse_state),
        "reuse_skin": float(m.reuse_skin),
        "cellstate": m._cell_state.meta() if m._cell_state is not None else None,
    }
    arrays = _system_arrays(m.system)
    arrays["velocities32"] = m._velocities32
    arrays["forces32"] = m._forces32
    arrays.update(_history_arrays(m.history))
    return meta, arrays


def _restore_machine(meta, inner) -> Tuple[FasdaMachine, int]:
    config = _config_from_dict(meta["config"], "<v2 payload>")
    machine = FasdaMachine(config, system=_system_from_arrays(inner))
    machine._velocities32 = inner["velocities32"].copy()
    machine._forces32 = inner["forces32"].copy()
    machine._primed = bool(meta["primed"])
    machine._last_potential = float(meta["last_potential"])
    machine.pair_path = meta["pair_path"]
    machine.traffic_impl = meta["traffic_impl"]
    # Absent on pre-backend checkpoints: None = process-wide default.
    machine.force_impl = meta.get("force_impl")
    machine.reuse_state = bool(meta["reuse_state"])
    machine.reuse_skin = float(meta["reuse_skin"])
    machine.history = _history_from_arrays(inner)
    if meta.get("cellstate") is not None:
        machine.ensure_cell_state().restore_meta(meta["cellstate"])
    return machine, int(meta["step"])


def _engine_payload(e) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    meta = {
        "grid_dims": list(e.grid.dims),
        "cell_edge": float(e.grid.cell_edge),
        "dt_fs": float(e.dt_fs),
        "shift": bool(e.shift),
        "reuse_state": bool(e.reuse_state),
        "reuse_skin": None if e.reuse_skin is None else float(e.reuse_skin),
        "force_impl": e.force_impl,
        "step": e.history[-1].step if e.history else 0,
        "primed": bool(e._primed),
        "prime_recorded": bool(e._prime_recorded),
        "last_potential": float(e._last_potential),
        "cellstate": e._cell_state.meta() if e._cell_state is not None else None,
    }
    arrays = _system_arrays(e.system)
    arrays.update(_history_arrays(e.history))
    return meta, arrays


def _restore_engine(meta, inner):
    from repro.md.cells import CellGrid
    from repro.md.engine import ReferenceEngine

    engine = ReferenceEngine(
        system=_system_from_arrays(inner),
        grid=CellGrid(tuple(meta["grid_dims"]), meta["cell_edge"]),
        dt_fs=float(meta["dt_fs"]),
        shift=bool(meta["shift"]),
        reuse_state=bool(meta["reuse_state"]),
        reuse_skin=meta["reuse_skin"],
        force_impl=meta.get("force_impl"),
    )
    engine._primed = bool(meta["primed"])
    engine._prime_recorded = bool(meta["prime_recorded"])
    engine._last_potential = float(meta["last_potential"])
    engine.history = _history_from_arrays(inner)
    if meta.get("cellstate") is not None:
        engine.ensure_cell_state().restore_meta(meta["cellstate"])
    return engine, int(meta["step"])


def _stale_halo_arrays(m) -> Dict[str, np.ndarray]:
    """Pack the (dst, cid) -> (iteration, cell data) snapshot cache."""
    keys, pids, fracs, specs = [], [], [], []
    for (dst, cid), (it, data) in sorted(m._stale_halo.items()):
        keys.append((dst, cid, it, len(data.particle_ids)))
        pids.append(data.particle_ids)
        fracs.append(data.fractions.reshape(-1, 3))
        specs.append(data.species)
    return {
        "halo_keys": np.array(keys, dtype=np.int64).reshape(-1, 4),
        "halo_pids": (
            np.concatenate(pids) if pids else np.empty(0, dtype=np.int64)
        ),
        "halo_frac": (
            np.concatenate(fracs) if fracs else np.empty((0, 3))
        ),
        "halo_species": (
            np.concatenate(specs) if specs else np.empty(0, dtype=np.int32)
        ),
    }


def _restore_stale_halo(m, inner) -> None:
    from repro.core.distributed import _CellData

    keys = inner["halo_keys"]
    offset = 0
    for dst, cid, it, count in keys:
        lo, hi = offset, offset + int(count)
        offset = hi
        m._stale_halo[(int(dst), int(cid))] = (
            int(it),
            _CellData(
                particle_ids=inner["halo_pids"][lo:hi].copy(),
                fractions=inner["halo_frac"][lo:hi].copy(),
                species=inner["halo_species"][lo:hi].copy(),
            ),
        )


def _distributed_payload(m) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    node_plan = None
    if m.node_injector is not None:
        d = dataclasses.asdict(m.node_injector.plan)
        d["events"] = [dataclasses.asdict(e) for e in m.node_injector.plan.events]
        node_plan = d
    meta = {
        "config": dataclasses.asdict(m.config),
        "step": m.history[-1].step if m.history else 0,
        "primed": bool(m._primed),
        "iteration": int(m._iteration),
        "last_potential": float(m._last_potential),
        "exchange_impl": m.exchange_impl,
        "force_impl": m.force_impl,
        "reuse_state": bool(m.reuse_state),
        "state_builds": int(m.state_builds),
        "state_reused_steps": int(m.state_reused_steps),
        "degradation": m.degradation,
        "total_position_packets": int(m.total_position_packets),
        "total_force_packets": int(m.total_force_packets),
        "last_degraded_records": int(m.last_degraded_records),
        "lipschitz": m._lipschitz,
        "fault_plan": _opt_asdict(m.injector.plan if m.injector else None),
        "transport": _opt_asdict(m.transport),
        "transport_stats": dataclasses.asdict(m.transport_stats),
        "degradation_log": [dataclasses.asdict(r) for r in m.degradation_log],
        "node_plan": node_plan,
        "shadow_interval": int(m.shadow_interval),
        "watchdog_timeout_cycles": float(m.watchdog_timeout_cycles),
        "recovery_log": [dataclasses.asdict(r) for r in m.recovery_log],
        "down_until": {str(k): int(v) for k, v in m._down_until.items()},
        "shadow_iteration": m._shadow_iteration,
        "shadow_records": {str(k): int(v) for k, v in m._shadow_records.items()},
        "shadow_traffic_records": int(m.shadow_traffic_records),
        "node_slowdown_log": [list(t) for t in m.node_slowdown_log],
        "rescale_log": [dataclasses.asdict(r) for r in m.rescale_log],
        "rescale_aborted_log": [
            dataclasses.asdict(r) for r in m.rescale_aborted_log
        ],
        "migration_switch": dataclasses.asdict(m.migration_switch_stats),
        "migration_transport_stats": dataclasses.asdict(
            m.migration_transport_stats
        ),
        "balancer": m.balancer.meta() if m.balancer is not None else None,
    }
    arrays = _system_arrays(m.system)
    arrays["velocities32"] = m._velocities32
    arrays["forces32"] = m._forces32
    # The partition map the machine was actually running — the restore
    # validator replays the config-derived map against it, so a payload
    # whose node count disagrees with its partition is rejected up front.
    arrays["cell_node"] = m._cell_node
    arrays.update(_history_arrays(m.history))
    arrays.update(_stale_halo_arrays(m))
    return meta, arrays


def _validate_distributed_partition(config, meta, inner) -> None:
    """Reject payloads whose partition disagrees with their config.

    Runs *before* the machine is constructed, raising a
    :class:`~repro.util.errors.CheckpointError` that names the offending
    field — the alternative is an index error deep inside the first
    force pass after restore.  Pre-elasticity checkpoints carry no
    ``cell_node`` array; only the fields present are checked.
    """
    n = config.n_fpgas
    if "cell_node" in inner:
        from repro.core.cellids import cell_node_ids
        from repro.md.cells import CellGrid

        grid = CellGrid(config.global_cells, config.cutoff)
        coords = grid.cell_coords(np.arange(grid.n_cells, dtype=np.int64))
        expected = cell_node_ids(coords, config.local_cells, config.fpga_grid)
        stored = np.asarray(inner["cell_node"], dtype=np.int64)
        if stored.shape != expected.shape or not np.array_equal(
            stored, expected
        ):
            raise CheckpointError(
                "checkpoint field 'cell_node' disagrees with the restored "
                f"config's partition map ({n} node(s), fpga_grid "
                f"{tuple(config.fpga_grid)}); the payload was written at a "
                "different cluster size"
            )
    for field_name in ("down_until", "shadow_records"):
        bad = [
            k
            for k in meta.get(field_name, {})
            if not 0 <= int(k) < n
        ]
        if bad:
            raise CheckpointError(
                f"checkpoint field {field_name!r} references node(s) "
                f"{sorted(int(k) for k in bad)} outside the restored "
                f"config's {n}-node partition"
            )


def _restore_distributed(meta, inner):
    from repro.core.distributed import DistributedMachine
    from repro.faults import (
        DegradationRecord,
        FaultInjector,
        FaultPlan,
        NodeFaultEvent,
        NodeFaultPlan,
        RecoveryRecord,
        TransportConfig,
        TransportStats,
    )

    config = _config_from_dict(meta["config"], "<v2 payload>")
    _validate_distributed_partition(config, meta, inner)
    injector = None
    if meta["fault_plan"] is not None:
        injector = FaultInjector(FaultPlan(**meta["fault_plan"]))
    transport = None
    if meta["transport"] is not None:
        transport = TransportConfig(**meta["transport"])
    node_faults = None
    if meta["node_plan"] is not None:
        d = dict(meta["node_plan"])
        events = tuple(NodeFaultEvent(**e) for e in d.pop("events"))
        node_faults = NodeFaultPlan(events=events, **d)
    m = DistributedMachine(
        config,
        system=_system_from_arrays(inner),
        injector=injector,
        transport=transport,
        degradation=meta["degradation"],
        node_faults=node_faults,
        shadow_interval=int(meta["shadow_interval"]),
        watchdog_timeout_cycles=float(meta["watchdog_timeout_cycles"]),
    )
    m._velocities32 = inner["velocities32"].copy()
    m._forces32 = inner["forces32"].copy()
    m._primed = bool(meta["primed"])
    m._iteration = int(meta["iteration"])
    m._last_potential = float(meta["last_potential"])
    m.exchange_impl = meta["exchange_impl"]
    # Absent on pre-backend checkpoints: None = process-wide default.
    m.force_impl = meta.get("force_impl")
    m.reuse_state = bool(meta["reuse_state"])
    m.state_builds = int(meta["state_builds"])
    m.state_reused_steps = int(meta["state_reused_steps"])
    m.total_position_packets = int(meta["total_position_packets"])
    m.total_force_packets = int(meta["total_force_packets"])
    m.last_degraded_records = int(meta["last_degraded_records"])
    m._lipschitz = meta["lipschitz"]
    m.transport_stats = TransportStats(**meta["transport_stats"])
    m.degradation_log = [
        DegradationRecord(**r) for r in meta["degradation_log"]
    ]
    m.recovery_log = [RecoveryRecord(**r) for r in meta["recovery_log"]]
    m._down_until = {int(k): int(v) for k, v in meta["down_until"].items()}
    m._shadow_iteration = meta["shadow_iteration"]
    m._shadow_records = {
        int(k): int(v) for k, v in meta["shadow_records"].items()
    }
    m.shadow_traffic_records = int(meta["shadow_traffic_records"])
    m.node_slowdown_log = [
        (int(a), int(b), float(c)) for a, b, c in meta["node_slowdown_log"]
    ]
    # Elasticity state (absent on pre-elasticity checkpoints).  JSON
    # round-trips turn tuples into lists and int dict keys into strings;
    # rebuild the exact record types.
    from repro.core.elasticity import LoadBalancer
    from repro.faults import RescaleAbortedRecord, RescaleRecord
    from repro.network.netsim import SwitchStats

    for r in meta.get("rescale_log", []):
        d = dict(r)
        d["grid_old"] = tuple(d["grid_old"])
        d["grid_new"] = tuple(d["grid_new"])
        d["flows"] = tuple(tuple(f) for f in d["flows"])
        m.rescale_log.append(RescaleRecord(**d))
    m.rescale_aborted_log = [
        RescaleAbortedRecord(**r) for r in meta.get("rescale_aborted_log", [])
    ]
    if meta.get("migration_switch") is not None:
        d = dict(meta["migration_switch"])
        d["max_occupancy"] = {
            int(k): int(v) for k, v in d["max_occupancy"].items()
        }
        m.migration_switch_stats = SwitchStats(**d)
    if meta.get("migration_transport_stats") is not None:
        m.migration_transport_stats = TransportStats(
            **meta["migration_transport_stats"]
        )
    if meta.get("balancer") is not None:
        m.balancer = LoadBalancer.from_meta(meta["balancer"])
    m.history = _history_from_arrays(inner)
    _restore_stale_halo(m, inner)
    return m, int(meta["step"])


def _batch_payload(be) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    from repro.md.thermostat import thermostat_meta

    be._ensure_ready()
    be._sync_segment_stats()
    seg_meta = []
    arrays: Dict[str, np.ndarray] = {}
    for i, seg in enumerate(be._segments):
        seg_meta.append({
            "handle": int(seg.handle),
            "grid_dims": list(seg.grid.dims),
            "steps": int(be.segment_steps(seg.handle)),
            "last_potential": float(seg.last_potential),
            "thermostat": thermostat_meta(seg.thermostat),
            "aux": seg.aux,
            "cellstate": seg.state.meta(),
        })
        for key, value in _system_arrays(be.extract(seg.handle)).items():
            arrays[f"seg{i}_{key}"] = value
    meta = {
        "dt_fs": float(be.dt_fs),
        "shift": bool(be.shift),
        "force_impl": be.force_impl,
        "reuse_skin": None if be.reuse_skin is None else float(be.reuse_skin),
        "cell_edge": be._cell_edge,
        "step_count": int(be.step_count),
        "segments": seg_meta,
    }
    return meta, arrays


def _restore_batch(meta, inner):
    """Rebuild a :class:`~repro.md.batch.BatchedEngine` from its payload.

    Segments are re-admitted with their saved handles, thermostats and
    auxiliary payloads; cell-state counters are restored before the
    first force pass re-primes each segment (one extra build per
    segment — the same restart cost a restored solo engine pays, and
    bitwise-safe for the continued trajectory).
    """
    from repro.md.batch import BatchedEngine
    from repro.md.cells import CellGrid
    from repro.md.thermostat import thermostat_from_meta

    be = BatchedEngine(
        dt_fs=float(meta["dt_fs"]),
        shift=bool(meta["shift"]),
        force_impl=meta.get("force_impl"),
        reuse_skin=meta["reuse_skin"],
    )
    be.step_count = int(meta["step_count"])
    edge = meta["cell_edge"]
    for i, sm in enumerate(meta["segments"]):
        seg_inner = {
            key[len(f"seg{i}_"):]: value
            for key, value in inner.items()
            if key.startswith(f"seg{i}_")
        }
        system = _system_from_arrays(
            seg_inner, context=f"<batch segment handle={sm['handle']}>"
        )
        handle = be.add(
            system,
            CellGrid(tuple(sm["grid_dims"]), edge),
            thermostat=thermostat_from_meta(sm["thermostat"]),
            aux=sm["aux"],
            handle=int(sm["handle"]),
        )
        seg = be._by_handle[handle]
        seg.steps_base = int(sm["steps"])
        seg.last_potential = float(sm["last_potential"])
        seg.state.restore_meta(sm["cellstate"])
    return be, int(meta["step_count"])


def _system_payload(s: ParticleSystem) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Bare-system payload: the job service's result/preemption unit.

    Scheduling metadata (steps done, attempt number) lives in the job
    journal lines that reference the file, not in the checkpoint — the
    checkpoint is exactly the arrays whose bitwise round-trip the
    resume contract needs.
    """
    return {"n": int(s.n)}, _system_arrays(s)


def _restore_system(meta, inner) -> Tuple[ParticleSystem, int]:
    return _system_from_arrays(inner, context="<system payload>"), 0


_KIND_DISPATCH = {
    "machine": (_machine_payload, _restore_machine),
    "engine": (_engine_payload, _restore_engine),
    "distributed": (_distributed_payload, _restore_distributed),
    "batch": (_batch_payload, _restore_batch),
    "system": (_system_payload, _restore_system),
}


def _kind_of(obj) -> str:
    from repro.core.distributed import DistributedMachine
    from repro.md.batch import BatchedEngine
    from repro.md.engine import ReferenceEngine

    if isinstance(obj, DistributedMachine):
        return "distributed"
    if isinstance(obj, FasdaMachine):
        return "machine"
    if isinstance(obj, ReferenceEngine):
        return "engine"
    if isinstance(obj, BatchedEngine):
        return "batch"
    if isinstance(obj, ParticleSystem):
        return "system"
    raise ValidationError(
        f"cannot checkpoint a {type(obj).__name__}; supported: "
        "FasdaMachine, ReferenceEngine, DistributedMachine, BatchedEngine, "
        "ParticleSystem"
    )


def save_checkpoint_v2(obj, path: str) -> str:
    """Write any supported simulation object to ``path``, atomically.

    The dynamic state is serialized to an inner ``.npz`` whose bytes are
    digested with CRC-32 and embedded in the outer container — so any
    corruption of the payload (or of the container's own zip members) is
    detected at load time before construction.  Returns ``path``.
    """
    kind = _kind_of(obj)
    build, _ = _KIND_DISPATCH[kind]
    meta, arrays = build(obj)
    payload = _npz_bytes(meta=np.array(json.dumps(meta)), **arrays)
    container = _npz_bytes(
        format=np.array(CHECKPOINT_FORMAT_V2),
        kind=np.array(kind),
        crc32=np.array(zlib.crc32(payload), dtype=np.int64),
        payload=np.frombuffer(payload, dtype=np.uint8),
    )
    _atomic_write_bytes(path, container)
    return path


def load_checkpoint_v2(path: str):
    """Restore a v2 checkpoint.

    Returns ``(obj, step)`` where ``obj`` is the restored machine /
    engine / distributed machine.  Raises
    :class:`~repro.util.errors.CheckpointError` on any unreadable,
    wrong-format, or digest-mismatching file — before any simulation
    object is constructed.
    """
    try:
        with np.load(path, allow_pickle=False) as outer:
            for key in ("format", "kind", "crc32", "payload"):
                if key not in outer.files:
                    raise CheckpointError(
                        f"not a FASDA checkpoint: {path!r} lacks {key!r}"
                    )
            if str(outer["format"]) != CHECKPOINT_FORMAT_V2:
                raise CheckpointError(
                    f"not a FASDA checkpoint (format {outer['format']!r} "
                    f"in {path!r}, expected {CHECKPOINT_FORMAT_V2!r})"
                )
            kind = str(outer["kind"])
            if kind not in V2_KINDS:
                raise CheckpointError(
                    f"checkpoint {path!r} holds unknown kind {kind!r}"
                )
            payload = outer["payload"].tobytes()
            expect = int(outer["crc32"])
        actual = zlib.crc32(payload)
        if actual != expect:
            raise CheckpointError(
                f"checkpoint {path!r} failed its CRC-32 digest "
                f"(stored {expect:#010x}, computed {actual:#010x}): "
                "refusing to load corrupt state"
            )
        with np.load(io.BytesIO(payload), allow_pickle=False) as inner_npz:
            meta = json.loads(str(inner_npz["meta"]))
            inner = {
                k: inner_npz[k] for k in inner_npz.files if k != "meta"
            }
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"corrupt or unreadable checkpoint {path!r}: "
            f"{type(exc).__name__}: {exc}"
        )
    _, restore = _KIND_DISPATCH[kind]
    return restore(meta, inner)


# ---------------------------------------------------------------------------
# Interval checkpointing with quarantine + fallback
# ---------------------------------------------------------------------------

_CKPT_NAME = re.compile(r"^(?P<prefix>.+)-(?P<step>\d{10})\.npz$")


class CheckpointManager:
    """Interval checkpoints in a directory, newest-first recovery.

    Parameters
    ----------
    directory:
        Where checkpoints live (created if missing).
    interval:
        :meth:`maybe_save` writes when ``step % interval == 0``.
    keep:
        Checkpoints retained; older ones are pruned after each save (a
        crash between write and prune only ever leaves *extra* files).
    prefix:
        Filename prefix (``{prefix}-{step:010d}.npz``).
    """

    def __init__(
        self,
        directory: str,
        interval: int = 10,
        keep: int = 3,
        prefix: str = "ckpt",
    ):
        if interval < 1:
            raise ValidationError(f"interval must be >= 1, got {interval}")
        if keep < 1:
            raise ValidationError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.interval = int(interval)
        self.keep = int(keep)
        self.prefix = prefix
        #: Paths quarantined (renamed ``*.corrupt``) by :meth:`load_latest`.
        self.quarantined: List[str] = []
        os.makedirs(directory, exist_ok=True)

    def path_for(self, step: int) -> str:
        return os.path.join(
            self.directory, f"{self.prefix}-{int(step):010d}.npz"
        )

    def checkpoints(self) -> List[Tuple[int, str]]:
        """(step, path) of every live checkpoint, ascending by step."""
        out = []
        for name in os.listdir(self.directory):
            m = _CKPT_NAME.match(name)
            if m and m.group("prefix") == self.prefix:
                out.append(
                    (int(m.group("step")), os.path.join(self.directory, name))
                )
        return sorted(out)

    def maybe_save(self, obj, step: int) -> Optional[str]:
        """Save when ``step`` lands on the interval; returns the path."""
        if step % self.interval != 0:
            return None
        return self.save(obj, step)

    def save(self, obj, step: int) -> str:
        path = save_checkpoint_v2(obj, self.path_for(step))
        live = self.checkpoints()
        for _, old in live[: max(0, len(live) - self.keep)]:
            try:
                os.unlink(old)
            except OSError:  # pragma: no cover - concurrent prune
                pass
        return path

    def load_latest(self):
        """Restore from the newest loadable checkpoint.

        A corrupt file is quarantined (renamed ``*.corrupt`` so it never
        shadows good state again, but stays on disk for forensics) and
        the previous interval checkpoint is tried — the fallback the
        crash-consistency contract promises.  Returns
        ``(obj, step, path)``; raises
        :class:`~repro.util.errors.CheckpointError` when no checkpoint
        survives.
        """
        errors = []
        for step, path in reversed(self.checkpoints()):
            try:
                obj, loaded_step = load_checkpoint_v2(path)
                return obj, loaded_step, path
            except CheckpointError as exc:
                quarantine = path + ".corrupt"
                try:
                    os.replace(path, quarantine)
                    self.quarantined.append(quarantine)
                except OSError:  # pragma: no cover - rename race
                    pass
                errors.append(f"{path}: {exc}")
        raise CheckpointError(
            f"no loadable checkpoint under {self.directory!r}"
            + (
                "; quarantined: " + "; ".join(errors)
                if errors
                else " (none written yet)"
            )
        )

"""On-chip daisy-chain rings (paper Sec. 3.2) — structure and load model.

The 3-D cell space is mapped onto 1-D unidirectional rings connecting the
CBBs: the Position Ring (PR) rotates clockwise, the Force Ring (FR)
counter-clockwise — matching the cell-ID order of Eq. 7 so data usually
travels few hops.  An extra EX node on each ring exchanges data with
remote FPGAs (Sec. 4.1), adding one cycle to the ring circumference.

Cycle-accurate ring simulation is unnecessary for the paper's results;
what matters is (a) hop counts, which set routing latency, and (b) link
load, which bounds throughput (each ring link forwards one record per
cycle).  :class:`RingLoadModel` accounts both from an injection list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class RingPath:
    """A unidirectional ring of ``n_slots`` ring nodes.

    Parameters
    ----------
    n_slots:
        Ring circumference: CBB ring nodes plus any EX nodes.
    direction:
        +1 for clockwise (PR), -1 for counter-clockwise (FR).
    """

    n_slots: int
    direction: int = +1

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValidationError("ring needs at least one slot")
        if self.direction not in (+1, -1):
            raise ValidationError("direction must be +1 or -1")

    def hops(self, src: int, dst: int) -> int:
        """Hops from src slot to dst slot travelling in ring direction."""
        for s in (src, dst):
            if not 0 <= s < self.n_slots:
                raise ValidationError(f"slot {s} out of range")
        return (self.direction * (dst - src)) % self.n_slots

    def links_traversed(self, src: int, dst: int) -> List[int]:
        """Link indices crossed en route (link i connects slot i to its
        successor in ring direction)."""
        out = []
        cur = src
        for _ in range(self.hops(src, dst)):
            out.append(cur)
            cur = (cur + self.direction) % self.n_slots
        return out


class RingLoadModel:
    """Accumulates per-link load and total hop-cycles on one ring.

    Each injected record occupies every link it crosses for one cycle.
    The busiest link bounds the number of cycles the ring needs:
    ``min_cycles = max_link_load``; total work = total hop count.
    """

    def __init__(self, ring: RingPath, force_impl: Optional[str] = None):
        self.ring = ring
        self.link_load = np.zeros(ring.n_slots, dtype=np.int64)
        self.total_records = 0
        self.total_hops = 0
        # Optional compiled range-add (backend ``ring_charge`` contract);
        # None keeps the numpy difference-array path below.  Resolved
        # here once so the per-iteration charge calls pay no lookup.
        self._ring_charge = None
        if force_impl is not None:
            from repro.md.backends import resolve_backend

            self._ring_charge = resolve_backend(force_impl).ring_charge

    def inject(self, src: int, dst: int, count: int = 1) -> None:
        """Account ``count`` records travelling src -> dst."""
        if count < 0:
            raise ValidationError("count must be >= 0")
        if count == 0:
            return
        links = self.ring.links_traversed(src, dst)
        for link in links:
            self.link_load[link] += count
        self.total_records += count
        self.total_hops += count * len(links)

    def broadcast(self, src: int, dsts: Sequence[int], count: int = 1) -> None:
        """A record stream visiting several destinations rides the ring
        once up to the farthest destination (positions are broadcast,
        paper Sec. 4.5), not once per destination."""
        if not dsts:
            return
        far = max(dsts, key=lambda d: self.ring.hops(src, d))
        links = self.ring.links_traversed(src, far)
        for link in links:
            self.link_load[link] += count
        self.total_records += count
        self.total_hops += count * len(links)

    # -- batched accounting ----------------------------------------------------
    #
    # The per-record inject/broadcast calls above walk Python lists per
    # hop; charging a whole injection array at once replaces that with a
    # circular range-add (difference array + cumsum), so one call covers
    # an entire iteration's worth of ring traffic.  Results are integer
    # adds and therefore bitwise identical to the per-record loop.

    def _charge_spans(
        self, src: np.ndarray, hops: np.ndarray, counts: np.ndarray
    ) -> None:
        """Add ``counts[k]`` to every link on the ``hops[k]``-link span
        leaving ``src[k]`` in ring direction, plus the record/hop totals."""
        n = self.ring.n_slots
        live = (counts > 0) & (hops > 0)
        if np.any(live):
            s = src[live]
            h = hops[live]
            c = counts[live]
            if self._ring_charge is not None:
                self._ring_charge(
                    self.link_load, self.ring.direction, s, h, c
                )
            else:
                # Links crossed form a circular contiguous range: for +1
                # it starts at src, for -1 it ends at src.
                first = s if self.ring.direction == +1 else (s - h + 1) % n
                end = first + h
                # Difference array over [0, n]; wrapped spans contribute
                # a second [0, end - n) range.
                diff = np.bincount(first, weights=c, minlength=n + 1)
                diff -= np.bincount(
                    np.minimum(end, n), weights=c, minlength=n + 1
                )
                wrap = end > n
                if np.any(wrap):
                    cw = c[wrap]
                    diff[0] += cw.sum()
                    diff -= np.bincount(
                        end[wrap] - n, weights=cw, minlength=n + 1
                    )
                self.link_load += np.cumsum(diff[:n]).astype(np.int64)
        self.total_records += int(counts.sum())
        self.total_hops += int((counts * hops).sum())

    def inject_many(
        self, src: np.ndarray, dst: np.ndarray, counts: np.ndarray
    ) -> None:
        """Batched :meth:`inject`: account ``counts[k]`` records src -> dst.

        Bitwise-equivalent to calling :meth:`inject` per element (the
        equivalence tests assert it), at array speed.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if src.size == 0:
            return
        if np.any(counts < 0):
            raise ValidationError("count must be >= 0")
        n = self.ring.n_slots
        for arr in (src, dst):
            if np.any((arr < 0) | (arr >= n)):
                raise ValidationError("slot out of range")
        hops = (self.ring.direction * (dst - src)) % n
        # inject() counts zero-hop records in total_records only when
        # count > 0; zero-count entries contribute nothing at all.
        live = counts > 0
        self._charge_spans(src[live], hops[live], counts[live])

    def broadcast_many(
        self, src: np.ndarray, far_hops: np.ndarray, counts: np.ndarray
    ) -> None:
        """Batched :meth:`broadcast` with pre-reduced farthest-destination
        hop counts.

        Each element accounts one source stream of ``counts[k]`` records
        riding the ring ``far_hops[k]`` links from ``src[k]`` (the hop
        count of the farthest destination CBB) — the Sec. 4.5 broadcast
        semantics with the max-over-destinations already taken.
        """
        src = np.asarray(src, dtype=np.int64)
        far_hops = np.asarray(far_hops, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if src.size == 0:
            return
        if np.any(counts < 0):
            raise ValidationError("count must be >= 0")
        n = self.ring.n_slots
        if np.any((src < 0) | (src >= n)) or np.any(
            (far_hops < 0) | (far_hops >= n)
        ):
            raise ValidationError("slot or hop count out of range")
        self._charge_spans(src, far_hops, counts)

    @property
    def min_cycles(self) -> int:
        """Lower bound on cycles to drain this load (busiest link)."""
        return int(self.link_load.max()) if len(self.link_load) else 0

    @property
    def mean_link_load(self) -> float:
        """Average records per link."""
        return float(self.link_load.mean()) if len(self.link_load) else 0.0


def cbb_ring_order(local_dims: Tuple[int, int, int]) -> List[Tuple[int, int, int]]:
    """Order in which local cells sit on the on-chip rings.

    Cells are chained in local cell-ID order (Eq. 7 applied locally),
    which is how the paper lays out CBB ids 0..3 in Fig. 5.
    """
    dx, dy, dz = local_dims
    return [(x, y, z) for x in range(dx) for y in range(dy) for z in range(dz)]

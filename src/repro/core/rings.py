"""On-chip daisy-chain rings (paper Sec. 3.2) — structure and load model.

The 3-D cell space is mapped onto 1-D unidirectional rings connecting the
CBBs: the Position Ring (PR) rotates clockwise, the Force Ring (FR)
counter-clockwise — matching the cell-ID order of Eq. 7 so data usually
travels few hops.  An extra EX node on each ring exchanges data with
remote FPGAs (Sec. 4.1), adding one cycle to the ring circumference.

Cycle-accurate ring simulation is unnecessary for the paper's results;
what matters is (a) hop counts, which set routing latency, and (b) link
load, which bounds throughput (each ring link forwards one record per
cycle).  :class:`RingLoadModel` accounts both from an injection list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class RingPath:
    """A unidirectional ring of ``n_slots`` ring nodes.

    Parameters
    ----------
    n_slots:
        Ring circumference: CBB ring nodes plus any EX nodes.
    direction:
        +1 for clockwise (PR), -1 for counter-clockwise (FR).
    """

    n_slots: int
    direction: int = +1

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValidationError("ring needs at least one slot")
        if self.direction not in (+1, -1):
            raise ValidationError("direction must be +1 or -1")

    def hops(self, src: int, dst: int) -> int:
        """Hops from src slot to dst slot travelling in ring direction."""
        for s in (src, dst):
            if not 0 <= s < self.n_slots:
                raise ValidationError(f"slot {s} out of range")
        return (self.direction * (dst - src)) % self.n_slots

    def links_traversed(self, src: int, dst: int) -> List[int]:
        """Link indices crossed en route (link i connects slot i to its
        successor in ring direction)."""
        out = []
        cur = src
        for _ in range(self.hops(src, dst)):
            out.append(cur)
            cur = (cur + self.direction) % self.n_slots
        return out


class RingLoadModel:
    """Accumulates per-link load and total hop-cycles on one ring.

    Each injected record occupies every link it crosses for one cycle.
    The busiest link bounds the number of cycles the ring needs:
    ``min_cycles = max_link_load``; total work = total hop count.
    """

    def __init__(self, ring: RingPath):
        self.ring = ring
        self.link_load = np.zeros(ring.n_slots, dtype=np.int64)
        self.total_records = 0
        self.total_hops = 0

    def inject(self, src: int, dst: int, count: int = 1) -> None:
        """Account ``count`` records travelling src -> dst."""
        if count < 0:
            raise ValidationError("count must be >= 0")
        if count == 0:
            return
        links = self.ring.links_traversed(src, dst)
        for link in links:
            self.link_load[link] += count
        self.total_records += count
        self.total_hops += count * len(links)

    def broadcast(self, src: int, dsts: Sequence[int], count: int = 1) -> None:
        """A record stream visiting several destinations rides the ring
        once up to the farthest destination (positions are broadcast,
        paper Sec. 4.5), not once per destination."""
        if not dsts:
            return
        far = max(dsts, key=lambda d: self.ring.hops(src, d))
        links = self.ring.links_traversed(src, far)
        for link in links:
            self.link_load[link] += count
        self.total_records += count
        self.total_hops += count * len(links)

    @property
    def min_cycles(self) -> int:
        """Lower bound on cycles to drain this load (busiest link)."""
        return int(self.link_load.max()) if len(self.link_load) else 0

    @property
    def mean_link_load(self) -> float:
        """Average records per link."""
        return float(self.link_load.mean()) if len(self.link_load) else 0.0


def cbb_ring_order(local_dims: Tuple[int, int, int]) -> List[Tuple[int, int, int]]:
    """Order in which local cells sit on the on-chip rings.

    Cells are chained in local cell-ID order (Eq. 7 applied locally),
    which is how the paper lays out CBB ids 0..3 in Fig. 5.
    """
    dx, dy, dz = local_dims
    return [(x, y, z) for x in range(dx) for y in range(dy) for z in range(dz)]

"""The FASDA accelerator model — the paper's primary contribution.

Layers:

* :mod:`repro.core.config` — design-point configuration and the paper's
  named configurations.
* :mod:`repro.core.cellids` — two-level cell-ID conversion (Sec. 4.2).
* :mod:`repro.core.datapath` — functional filter and force pipeline
  (Secs. 3.3-3.4).
* :mod:`repro.core.packets` — the communication interface (Sec. 4.3).
* :mod:`repro.core.rings` — on-chip ring structure and load accounting
  (Sec. 3.2).
* :mod:`repro.core.sync` — chained synchronization vs. BSP (Sec. 4.4).
* :mod:`repro.core.machine` — :class:`FasdaMachine`, the functional
  multi-node simulator.
* :mod:`repro.core.cycles` — the cycle/utilization performance model
  (Figs. 16-17).
* :mod:`repro.core.resources` — the FPGA resource model (Table 1).
"""

from repro.core.blocks import build_scbb, interleave_particles
from repro.core.checkpoint import (
    CheckpointManager,
    load_checkpoint,
    load_checkpoint_v2,
    save_checkpoint,
    save_checkpoint_v2,
)
from repro.core.clustersim import ClusterTrace, simulate_cluster
from repro.core.commsim import CommOverlapResult, simulate_comm_overlap
from repro.core.config import (
    MachineConfig,
    all_paper_configs,
    simulated_scaling_configs,
    strong_scaling_configs,
    weak_scaling_configs,
)
from repro.core.cycles import CyclePerformance, estimate_from_config, estimate_performance
from repro.core.distributed import DistributedMachine
from repro.core.machine import FasdaMachine, StepStats
from repro.core.migration import count_migrations, expected_migration_rate
from repro.core.resources import ResourceUsage, estimate_resources
from repro.core.ringsim import RingSimulator
from repro.core.sync import run_bulk_sync, run_chained_sync

__all__ = [
    "MachineConfig",
    "weak_scaling_configs",
    "strong_scaling_configs",
    "simulated_scaling_configs",
    "all_paper_configs",
    "FasdaMachine",
    "DistributedMachine",
    "StepStats",
    "CyclePerformance",
    "estimate_performance",
    "estimate_from_config",
    "ResourceUsage",
    "estimate_resources",
    "run_chained_sync",
    "run_bulk_sync",
    "build_scbb",
    "interleave_particles",
    "count_migrations",
    "expected_migration_rate",
    "RingSimulator",
    "save_checkpoint",
    "load_checkpoint",
    "save_checkpoint_v2",
    "load_checkpoint_v2",
    "CheckpointManager",
    "simulate_cluster",
    "ClusterTrace",
    "simulate_comm_overlap",
    "CommOverlapResult",
]

"""The cycle-accounting performance model (behind paper Figs. 16-17).

Given a design point (:class:`~repro.core.config.MachineConfig`) and one
iteration's workload statistics (:class:`~repro.core.machine.StepStats`),
this model derives cycles per MD iteration, the simulation rate in
microseconds-per-day, and per-component hardware/time utilizations.

The model is *derived from the microarchitecture*, not fitted to Fig. 16:

* each PE owns ``filters_per_pipeline`` filters consuming candidate
  pairs and one force pipeline emitting one force per cycle;
* all CBBs on a node run in parallel, so the node's force phase is the
  slowest cell's work, bounded also by its position/force ring links
  (one record per link per cycle) and the EX packet serialization;
* a chained-synchronization handshake (two one-way latencies) separates
  force evaluation from motion update when nodes are distributed;
* motion update streams one particle per cycle per MU.

Two microarchitectural efficiency constants capture what a spreadsheet
cannot see from the block diagram alone — both are taken from the
paper's own utilization measurements (Fig. 17), not from its performance
results:

* ``PE_FILTER_EFFICIENCY`` (0.70): candidates retired per filter per
  *busy* cycle.  Filters bubble on position-register reloads and on the
  tail of each neighbor stream; Fig. 17 reports filter hardware
  utilization of ~55% against ~80% busy time, giving 0.55/0.80 = 0.69.
* ``PE_BUSY_FRACTION`` (0.80): fraction of the force phase a PE spends
  busy (Fig. 17: "PEs remain active for about 80% of the total operating
  time"); the remainder is position distribution, arbitration, and
  drain gaps.

With these, the model lands at ~2 us/day for the weak-scaling points and
a ~5.3x A-to-C strong-scaling gain — matching Fig. 16 without ever
reading its values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.config import MachineConfig
from repro.core.machine import StepStats
from repro.util.errors import ValidationError
from repro.util.units import simulation_rate_us_per_day

#: Candidates retired per filter per busy cycle (see module docstring).
PE_FILTER_EFFICIENCY = 0.70
#: Fraction of the force phase a PE is busy (see module docstring).
PE_BUSY_FRACTION = 0.80


@dataclass
class ComponentUtilization:
    """Hardware and time utilization of one component class (Fig. 17)."""

    hardware: float
    time: float


@dataclass
class CyclePerformance:
    """Performance estimate for one design point and workload.

    Attributes
    ----------
    force_cycles:
        Cycles of the force-evaluation phase (slowest node).
    sync_cycles / mu_cycles:
        Chained-synchronization handshake and motion-update phases.
    iteration_cycles:
        Total cycles per MD iteration.
    bound:
        Which resource bounds the force phase: ``"pe"``, ``"pr"``,
        ``"fr"``, or ``"ex"``.
    utilization:
        Component -> :class:`ComponentUtilization` (keys: pe, filter,
        pr, fr, mu).
    """

    config: MachineConfig
    force_cycles: float
    sync_cycles: float
    mu_cycles: float
    bound: str
    utilization: Dict[str, ComponentUtilization] = field(default_factory=dict)
    per_node_force_cycles: Optional[np.ndarray] = None

    @property
    def iteration_cycles(self) -> float:
        return self.force_cycles + self.sync_cycles + self.mu_cycles

    @property
    def seconds_per_step(self) -> float:
        return self.iteration_cycles * self.config.cycle_seconds

    @property
    def rate_us_per_day(self) -> float:
        """The paper's headline metric."""
        return simulation_rate_us_per_day(self.config.dt_fs, self.seconds_per_step)


def estimate_performance(
    config: MachineConfig,
    stats: StepStats,
    filter_efficiency: float = PE_FILTER_EFFICIENCY,
    busy_fraction: float = PE_BUSY_FRACTION,
) -> CyclePerformance:
    """Derive cycles/iteration and utilizations from measured workload.

    Parameters
    ----------
    config:
        The design point.
    stats:
        Workload statistics from ``FasdaMachine.measure_workload()`` on
        the *same* config.
    filter_efficiency / busy_fraction:
        Microarchitectural efficiency constants; exposed for the
        sensitivity ablation.
    """
    if not 0 < filter_efficiency <= 1 or not 0 < busy_fraction <= 1:
        raise ValidationError("efficiency constants must be in (0, 1]")
    n_nodes = config.n_fpgas
    pes = config.pes_per_cbb
    filters = config.filters_per_pipeline
    spes = config.spes_per_cbb

    cells = np.arange(config.n_cells)
    # Recompute cell -> node the same way the machine does.
    from repro.core.cellids import node_of_cell  # local import to avoid cycle
    from repro.md.cells import CellGrid

    grid = CellGrid(config.global_cells, config.cutoff)
    coords = grid.cell_coords(cells.astype(np.int64))
    node_coords = node_of_cell(coords, config.local_cells)
    fg = config.fpga_grid
    cell_node = (
        node_coords[:, 0] * fg[1] * fg[2]
        + node_coords[:, 1] * fg[2]
        + node_coords[:, 2]
    )

    per_node_force = np.zeros(n_nodes)
    per_node_busy = np.zeros(n_nodes)
    per_node_bound = ["pe"] * n_nodes
    for n in range(n_nodes):
        mask = cell_node == n
        cand = stats.candidates_per_cell[mask]
        acc = stats.accepted_per_cell[mask]
        # Per-cell PE busy cycles: filters consume candidates, pipeline
        # emits accepted forces — the larger governs.
        filter_busy = cand / (filters * pes * filter_efficiency)
        pipe_busy = acc / pes
        cell_busy = np.maximum(filter_busy, pipe_busy)
        busy = float(cell_busy.max()) if len(cell_busy) else 0.0
        t_pe = busy / busy_fraction + config.pipeline_depth_cycles

        # Ring bounds: each SPE set has its own PR/FR (Sec. 4.6), so the
        # measured single-ring load divides across SPEs.
        t_pr = stats.pr_load[n].min_cycles / spes if n in stats.pr_load else 0.0
        t_fr = stats.fr_load[n].min_cycles / spes if n in stats.fr_load else 0.0

        # EX / packet serialization with cooldown spreading.
        out_pos = sum(
            int(np.ceil(r / config.records_per_packet))
            for (s, d), r in stats.position_records.items()
            if s == n
        )
        out_frc = sum(
            int(np.ceil(r / config.records_per_packet))
            for (s, d), r in stats.force_records.items()
            if s == n
        )
        # Position and force ports are separate QSFPs; EX nodes scale
        # with SPEs, sharing the stream.
        t_ex = max(out_pos, out_frc) * config.cooldown_cycles / spes

        bounds = {"pe": t_pe, "pr": t_pr, "fr": t_fr, "ex": t_ex}
        per_node_bound[n] = max(bounds, key=bounds.get)
        per_node_force[n] = max(bounds.values())
        per_node_busy[n] = busy

    force_cycles = float(per_node_force.max())
    slowest = int(per_node_force.argmax())
    bound = per_node_bound[slowest]

    # Chained synchronization: the last-position/last-force exchange with
    # immediate neighbors costs two one-way latencies beyond the overlap.
    sync_cycles = (
        2.0 * config.inter_fpga_latency_cycles if config.is_distributed else 0.0
    )
    # Motion update: one particle per cycle per MU (one per CBB).
    max_occ = float(stats.occupancy_per_cell.max()) if len(
        stats.occupancy_per_cell
    ) else 0.0
    mu_cycles = max_occ + config.mu_pipeline_depth_cycles

    perf = CyclePerformance(
        config=config,
        force_cycles=force_cycles,
        sync_cycles=sync_cycles,
        mu_cycles=mu_cycles,
        bound=bound,
        per_node_force_cycles=per_node_force,
    )
    t_iter = perf.iteration_cycles

    # -- utilizations (Fig. 17) ----------------------------------------------
    total_cand = stats.total_candidates
    total_acc = stats.total_accepted
    n_pes_total = pes * config.n_cells
    filter_hw = total_cand / (t_iter * n_pes_total * filters)
    pe_hw = total_acc / (t_iter * n_pes_total)
    pe_time = float(np.mean(per_node_busy)) / t_iter

    def ring_util(load_dict) -> ComponentUtilization:
        hw = np.mean(
            [l.mean_link_load / spes / t_iter for l in load_dict.values()]
        ) if load_dict else 0.0
        time = np.mean(
            [min(1.0, l.min_cycles / spes / t_iter) for l in load_dict.values()]
        ) if load_dict else 0.0
        return ComponentUtilization(hardware=float(hw), time=float(time))

    mu_util = ComponentUtilization(
        hardware=float(stats.occupancy_per_cell.mean() + config.mu_pipeline_depth_cycles)
        / t_iter,
        time=mu_cycles / t_iter,
    )
    perf.utilization = {
        "filter": ComponentUtilization(hardware=float(filter_hw), time=pe_time),
        "pe": ComponentUtilization(hardware=float(pe_hw), time=pe_time),
        "pr": ring_util(stats.pr_load),
        "fr": ring_util(stats.fr_load),
        "mu": mu_util,
    }
    return perf


def estimate_from_config(
    config: MachineConfig, seed: int = 2023
) -> CyclePerformance:
    """Convenience: build the machine, measure one iteration, estimate.

    The paper's dataset is statistically uniform (64 particles per
    cell), so a single measured iteration characterizes steady state.
    """
    from repro.core.machine import FasdaMachine  # avoid import cycle

    machine = FasdaMachine(config, seed=seed)
    stats = machine.measure_workload()
    return estimate_performance(config, stats)

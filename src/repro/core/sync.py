"""Synchronization protocols: chained vs. bulk-synchronous (paper Sec. 4.4).

Distributed spatial simulation conventionally uses BSP, whose global
barrier makes every node wait for the slowest one ("straggler problem")
and whose host round-trip can cost milliseconds per MD iteration.  FASDA
instead synchronizes each node *only with its immediate neighbors*
(Fig. 12) through a four-way handshake per neighbor (Fig. 13):

1. I sent you my "last position" (after streaming all my positions),
2. I received your "last position",
3. I sent you a "last force" (after processing all your positions),
4. I received your "last force".

When all four hold for every neighbor the node independently enters
motion update, then its next iteration — no central agent.  A straggler
still bounds steady-state throughput (the paper is explicit about this),
but its delay propagates only one hop per iteration, giving distant
nodes a head start instead of a global stall.

Both protocols are implemented as node state machines on the
discrete-event kernel, with per-node, per-iteration work times supplied
by a callable so straggler injection is trivial.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.eventsim import EventSimulator, Message, MessageNetwork, NodeProcess
from repro.faults import FaultInjector, PredicateInjector, TransportConfig
from repro.network.topology import Topology
from repro.util.errors import ConfigError, DeadlockError, SimulationError

#: Work model: (node_id, iteration) -> force-phase compute cycles.
WorkFn = Callable[[int, int], float]


@dataclass
class SyncResult:
    """Timing outcome of a synchronization simulation.

    Attributes
    ----------
    iteration_complete:
        ``(n_nodes, n_iterations)`` array; entry [n, k] is the time node
        ``n`` finished iteration ``k`` (end of its motion update).
    makespan:
        Completion time of the whole run (max over nodes, last iteration).
    fault_counts:
        Fabric fault/reliability accounting (dropped, retransmits, ...)
        when a fault injector was attached; ``None`` for clean runs.
    """

    iteration_complete: np.ndarray
    fault_counts: Optional[Dict[str, int]] = field(default=None, compare=False)

    @property
    def makespan(self) -> float:
        return float(self.iteration_complete[:, -1].max())

    @property
    def n_iterations(self) -> int:
        return self.iteration_complete.shape[1]

    def mean_iteration_time(self) -> float:
        """Steady-state time per iteration (makespan / iterations)."""
        return self.makespan / self.n_iterations

    def start_spread(self, iteration: int) -> float:
        """Spread between the earliest and latest node finishing an
        iteration — nonzero spread under chained sync is the "head start"
        the paper describes."""
        col = self.iteration_complete[:, iteration]
        return float(col.max() - col.min())


def constant_work(cycles: float) -> WorkFn:
    """Every node takes the same force-phase time each iteration."""
    return lambda node, iteration: cycles


def straggler_work(
    base_cycles: float,
    straggler_node: int,
    slowdown: float,
    iterations: Optional[Sequence[int]] = None,
) -> WorkFn:
    """One node is ``slowdown``x slower (on selected iterations, or all)."""

    def fn(node: int, iteration: int) -> float:
        if node == straggler_node and (iterations is None or iteration in iterations):
            return base_cycles * slowdown
        return base_cycles

    return fn


def random_straggler_work(
    base_cycles: float, slowdown: float, probability: float, seed: int = 0
) -> WorkFn:
    """Each (node, iteration) independently straggles with a probability.

    Deterministic given the seed: the delay decision is hashed from
    (node, iteration) so the work function is a pure function.
    """

    def fn(node: int, iteration: int) -> float:
        rng = np.random.default_rng((seed * 1_000_003 + node) * 1_000_003 + iteration)
        return base_cycles * (slowdown if rng.random() < probability else 1.0)

    return fn


# -- chained synchronization ---------------------------------------------------


class _ChainedNode(NodeProcess):
    """One FPGA node running the Fig. 13 handshake."""

    def __init__(
        self,
        node_id: int,
        neighbors: Tuple[int, ...],
        work_fn: WorkFn,
        mu_cycles: float,
        n_iterations: int,
        result: np.ndarray,
        position_tail_fraction: float,
    ):
        super().__init__(node_id)
        self.neighbors = neighbors
        self.work_fn = work_fn
        self.mu_cycles = mu_cycles
        self.n_iterations = n_iterations
        self.result = result
        # Fraction of the force phase spent processing a neighbor's
        # positions after its last one arrives (pipeline tail).
        self.tail_fraction = position_tail_fraction
        self.iteration = 0
        #: Messages from neighbors already in a later iteration, keyed by
        #: their iteration; replayed when we get there.  Skew is at most
        #: one iteration because a neighbor needs our signals to advance.
        self._pending: Dict[int, List[Message]] = {}
        #: Late duplicates / retransmits of already-consumed signals,
        #: discarded on arrival.  Always zero on a lossless fabric.
        self.stale_messages = 0
        self._reset_flags()

    def _reset_flags(self) -> None:
        self.sent_last_pos: set = set()
        self.recv_last_pos: Dict[int, float] = {}
        self.sent_last_frc: set = set()
        self.recv_last_frc: set = set()
        self.own_stream_end: Optional[float] = None
        self._frc_scheduled: set = set()
        self._mu_scheduled = False

    def on_start(self) -> None:
        self._begin_iteration()

    def _begin_iteration(self) -> None:
        work = self.work_fn(self.node_id, self.iteration)
        self.sim.schedule(work, self._position_stream_done)

    def _position_stream_done(self) -> None:
        """All local positions routed: send 'last position' everywhere."""
        self.own_stream_end = self.sim.now
        for nbr in self.neighbors:
            self.send(nbr, "last_position", self.iteration)
            self.sent_last_pos.add(nbr)
        self._try_send_forces()
        self._maybe_motion_update()

    def _try_send_forces(self) -> None:
        """Send 'last force' to each neighbor whose stream we've finished."""
        if self.own_stream_end is None:
            return
        for nbr, recv_t in list(self.recv_last_pos.items()):
            if nbr in self._frc_scheduled:
                continue
            tail = self.tail_fraction * self.work_fn(self.node_id, self.iteration)
            ready = max(self.own_stream_end, recv_t + tail)
            self._frc_scheduled.add(nbr)
            delay = max(0.0, ready - self.sim.now)
            self.sim.schedule(delay, self._send_last_force, nbr, self.iteration)

    def _send_last_force(self, nbr: int, iteration: int) -> None:
        if iteration != self.iteration:  # pragma: no cover - defensive
            raise SimulationError("stale last_force send")
        self.send(nbr, "last_force", iteration)
        self.sent_last_frc.add(nbr)
        self._maybe_motion_update()

    def on_message(self, msg: Message) -> None:
        if msg.payload != self.iteration:
            if not isinstance(msg.payload, int) or msg.payload < self.iteration:
                # A duplicate or late retransmit of a signal we already
                # consumed (sets below are idempotent, so the protocol
                # already advanced past it), or a corrupted iteration
                # tag.  Both are discarded — a genuinely *missing*
                # signal is what the deadlock watchdog diagnoses.
                self.stale_messages += 1
                return
            # A faster neighbor may already be in iteration k+1 while we
            # are in k; its signals for k+1 are buffered until we get there.
            self._pending.setdefault(msg.payload, []).append(msg)
            return
        self._handle(msg)

    def _handle(self, msg: Message) -> None:
        if msg.kind == "last_position":
            self.recv_last_pos[msg.src] = self.sim.now
            self._try_send_forces()
        elif msg.kind == "last_force":
            self.recv_last_frc.add(msg.src)
            self._maybe_motion_update()
        else:
            raise SimulationError(f"unexpected message kind {msg.kind!r}")

    def _maybe_motion_update(self) -> None:
        n = len(self.neighbors)
        if (
            not self._mu_scheduled
            and len(self.sent_last_pos) == n
            and len(self.recv_last_pos) == n
            and len(self.sent_last_frc) == n
            and len(self.recv_last_frc) == n
        ):
            self._mu_scheduled = True
            self.sim.schedule(self.mu_cycles, self._iteration_done)

    def _iteration_done(self) -> None:
        self.result[self.node_id, self.iteration] = self.sim.now
        self.iteration += 1
        self._reset_flags()
        if self.iteration < self.n_iterations:
            # Replay any buffered messages for the new iteration.
            for msg in self._pending.pop(self.iteration, []):
                self._handle(msg)
            self._begin_iteration()


def _diagnose_deadlock(
    nodes: List[_ChainedNode], n_iterations: int
) -> Optional[str]:
    """Name the first stalled node and its missing handshake edges.

    Returns ``None`` when every node completed all iterations (a clean
    drain); otherwise a diagnosis string for :class:`DeadlockError`.
    """
    stuck = [nd for nd in nodes if nd.iteration < n_iterations]
    if not stuck:
        return None
    first = min(stuck, key=lambda nd: (nd.iteration, nd.node_id))
    missing: List[str] = []
    waiting_pos = sorted(set(first.neighbors) - set(first.recv_last_pos))
    waiting_frc = sorted(set(first.neighbors) - first.recv_last_frc)
    if waiting_pos:
        missing.append(
            "last_position from node(s) " + ", ".join(map(str, waiting_pos))
        )
    if waiting_frc:
        missing.append(
            "last_force from node(s) " + ", ".join(map(str, waiting_frc))
        )
    if not missing:
        unsent = sorted(set(first.neighbors) - first.sent_last_frc)
        missing.append(
            "its own last_force send to node(s) " + ", ".join(map(str, unsent))
            if unsent
            else "its motion update"
        )
    return (
        f"chained sync deadlocked: node {first.node_id} stuck at iteration "
        f"{first.iteration} ({len(stuck)}/{len(nodes)} nodes unfinished), "
        "waiting for " + "; ".join(missing)
    )


def run_chained_sync(
    topology: Topology,
    work_fn: WorkFn,
    n_iterations: int,
    link_latency: float = 200.0,
    mu_cycles: float = 100.0,
    position_tail_fraction: float = 0.05,
    drop_message_fn: Optional[Callable[[Message], bool]] = None,
    injector: Optional[FaultInjector] = None,
    transport: Optional[TransportConfig] = None,
) -> SyncResult:
    """Simulate chained synchronization over a topology.

    Parameters
    ----------
    topology:
        Defines each node's synchronization neighbors (its torus
        neighbors, Fig. 8).
    work_fn:
        Per-(node, iteration) force-phase cycles.
    link_latency:
        One-way inter-FPGA latency in cycles.
    mu_cycles:
        Motion-update phase length.
    position_tail_fraction:
        Fraction of the force phase needed to finish processing a
        neighbor's stream after its last position arrives.
    drop_message_fn:
        Deprecated — wrapped into a
        :class:`~repro.faults.PredicateInjector`; pass ``injector``
        instead.
    injector:
        Fault injection for the fabric (drop / duplicate / delay /
        corrupt) and node stall faults.  Without a ``transport`` the
        protocol has no retransmission (the paper's UDP relies on
        cooldown keeping the switch lossless), so a lost `last` signal
        deadlocks the cluster — the progress watchdog converts that into
        a :class:`~repro.util.errors.DeadlockError` naming the stuck
        node and the missing handshake edge.
    transport:
        Reliable-transport parameters; lost signals are then
        retransmitted with exponential backoff, which shows up as
        makespan overhead instead of a deadlock (until the retry budget
        is exhausted).
    """
    if n_iterations < 1:
        raise ConfigError("n_iterations must be >= 1")
    if drop_message_fn is not None:
        if injector is not None:
            raise ConfigError(
                "pass either injector or the deprecated drop_message_fn, not both"
            )
        warnings.warn(
            "drop_message_fn is deprecated; pass injector="
            "repro.faults.PredicateInjector(fn) (or a FaultPlan-driven "
            "FaultInjector) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        injector = PredicateInjector(drop_message_fn)
    effective_work = work_fn
    if injector is not None and injector.plan.has_stall_faults:
        def effective_work(node: int, iteration: int) -> float:
            return work_fn(node, iteration) * injector.work_multiplier(
                node, iteration
            )

    sim = EventSimulator()
    net = MessageNetwork(
        sim, default_latency=link_latency, injector=injector, transport=transport
    )
    result = np.zeros((topology.n_nodes, n_iterations))
    node_list: List[_ChainedNode] = []
    for nid in range(topology.n_nodes):
        node = _ChainedNode(
            nid,
            topology.neighbors(nid),
            effective_work,
            mu_cycles,
            n_iterations,
            result,
            position_tail_fraction,
        )
        net.attach(node)
        node_list.append(node)
    sim.add_watchdog(lambda: _diagnose_deadlock(node_list, n_iterations))
    net.start()
    sim.run()
    if np.any(result[:, -1] == 0.0):  # pragma: no cover - watchdog fires first
        raise DeadlockError(
            _diagnose_deadlock(node_list, n_iterations)
            or "chained sync deadlocked: some node never finished"
        )
    return SyncResult(
        result,
        fault_counts=dict(net.fault_counts) if injector is not None else None,
    )


def diagnose_dead_node(
    topology: Topology,
    dead_node: int,
    n_iterations: int = 2,
    work_cycles: float = 1000.0,
    link_latency: float = 200.0,
) -> str:
    """Run the chained handshake with ``dead_node`` silent; return the
    watchdog's diagnosis.

    This is how surviving boards *detect* a crashed peer: the dead node
    sends no ``last_position``/``last_force`` signals, its neighbors'
    four-way handshakes stall, and the progress watchdog names the first
    stuck node and the missing edges — the trigger for the recovery
    protocol in :class:`~repro.core.distributed.DistributedMachine`.
    """
    if not 0 <= dead_node < topology.n_nodes:
        raise ConfigError(
            f"dead_node must be in [0, {topology.n_nodes}), got {dead_node}"
        )
    silent = PredicateInjector(lambda msg: msg.src == dead_node)
    try:
        run_chained_sync(
            topology,
            lambda node, it: work_cycles,
            n_iterations,
            link_latency=link_latency,
            injector=silent,
        )
    except DeadlockError as exc:
        return str(exc)
    raise SimulationError(  # pragma: no cover - watchdog always fires
        f"silent node {dead_node} went undetected by the watchdog"
    )


# -- bulk-synchronous baseline -------------------------------------------------


def run_bulk_sync(
    n_nodes: int,
    work_fn: WorkFn,
    n_iterations: int,
    barrier_latency: float = 200.0,
    mu_cycles: float = 100.0,
    host_coordinated: bool = False,
    host_latency: float = 200_000.0,
) -> SyncResult:
    """Bulk-synchronous baseline (closed form — no event queue needed).

    Every iteration: all nodes compute, then a global barrier (one
    gather + one release).  With ``host_coordinated`` the barrier costs a
    host round-trip, which at 200 MHz is ~1 ms = 200k cycles — the
    "latency of milliseconds for a single MD iteration" the paper warns
    about.
    """
    if n_iterations < 1:
        raise ConfigError("n_iterations must be >= 1")
    barrier = 2.0 * (host_latency if host_coordinated else barrier_latency)
    result = np.zeros((n_nodes, n_iterations))
    t = 0.0
    for k in range(n_iterations):
        slowest = max(work_fn(n, k) for n in range(n_nodes))
        t += slowest + barrier + mu_cycles
        result[:, k] = t
    return SyncResult(result)

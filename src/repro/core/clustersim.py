"""Cluster-level iteration simulation: cycle model x sync protocol.

The analytic model (:mod:`repro.core.cycles`) gives each node's phase
lengths; the event simulation (:mod:`repro.core.sync`) gives the
protocol dynamics between nodes.  This module composes them: every
node's force phase takes its *own* modeled cycle count (nodes at the
simulation-space boundary may carry different traffic), optional jitter
models run-to-run workload variation, and the chained handshake ties
the cluster together.  The result is a latency-accurate multi-iteration
trace whose steady-state throughput should agree with — and validates —
the single-number analytic estimate behind Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.config import MachineConfig
from repro.core.cycles import CyclePerformance, estimate_performance
from repro.core.machine import StepStats
from repro.core.sync import SyncResult, run_chained_sync
from repro.network.topology import TorusTopology
from repro.util.errors import ValidationError


@dataclass
class ClusterTrace:
    """Outcome of a cluster simulation."""

    sync: SyncResult
    analytic: CyclePerformance

    @property
    def simulated_iteration_cycles(self) -> float:
        """Steady-state cycles per iteration from the event simulation."""
        return self.sync.mean_iteration_time()

    @property
    def analytic_iteration_cycles(self) -> float:
        return self.analytic.iteration_cycles

    @property
    def agreement(self) -> float:
        """Simulated over analytic iteration time (1.0 = exact)."""
        return self.simulated_iteration_cycles / self.analytic_iteration_cycles


def simulate_cluster(
    config: MachineConfig,
    stats: StepStats,
    n_iterations: int = 10,
    jitter_fraction: float = 0.0,
    seed: int = 0,
) -> ClusterTrace:
    """Run the chained protocol with per-node modeled phase lengths.

    Parameters
    ----------
    config / stats:
        The design point and its measured workload.
    n_iterations:
        Iterations to simulate.
    jitter_fraction:
        Uniform per-(node, iteration) force-phase jitter, e.g. 0.05 for
        +-5% — the workload variation that makes stragglers.
    """
    if not config.is_distributed:
        raise ValidationError("cluster simulation needs more than one node")
    if not 0.0 <= jitter_fraction < 1.0:
        raise ValidationError("jitter_fraction must be in [0, 1)")
    perf = estimate_performance(config, stats)
    per_node = perf.per_node_force_cycles
    assert per_node is not None

    def work_fn(node: int, iteration: int) -> float:
        base = float(per_node[node])
        if jitter_fraction == 0.0:
            return base
        rng = np.random.default_rng(
            (seed * 1_000_003 + node) * 1_000_003 + iteration
        )
        return base * (1.0 + rng.uniform(-jitter_fraction, jitter_fraction))

    topo = TorusTopology(config.fpga_grid)
    sync = run_chained_sync(
        topo,
        work_fn,
        n_iterations,
        link_latency=config.inter_fpga_latency_cycles,
        mu_cycles=perf.mu_cycles,
        # The analytic model folds stream-tail processing into the force
        # phase; keep the protocol's extra tail at zero so the two
        # decompositions match.
        position_tail_fraction=0.0,
    )
    return ClusterTrace(sync=sync, analytic=perf)


def format_phase_breakdown(perf: CyclePerformance) -> str:
    """A one-iteration phase timeline as text (force | sync | MU)."""
    total = perf.iteration_cycles
    segments = [
        ("force", perf.force_cycles),
        ("sync", perf.sync_cycles),
        ("mu", perf.mu_cycles),
    ]
    width = 60
    parts = []
    legend = []
    for name, cycles in segments:
        n = max(1, int(round(width * cycles / total))) if cycles > 0 else 0
        char = name[0].upper()
        if n:
            parts.append(char * n)
        legend.append(f"{char}={name} {cycles:,.0f} cyc ({100 * cycles / total:.1f}%)")
    return "|" + "".join(parts)[:width].ljust(width) + "|  " + "; ".join(legend)

"""The FASDA machine: functional simulation of the full accelerator.

:class:`FasdaMachine` runs real MD timesteps through the modeled
datapath — fixed-point positions, float32 squared distances, table-lookup
force pipelines, float32 force/velocity state — organized exactly as the
hardware organizes it:

* one CBB per cell; home-home pairs plus the 13 half-shell neighbor
  cells (Newton's third law applied once per pair);
* home forces accumulate into the home FC bank, neighbor forces into the
  PE-local bank and return via the force ring ("adder tree" combination
  is the final bank sum);
* positions/forces crossing FPGA-node boundaries are packed into 512-bit
  packets and accounted per (source, destination) flow, with zero
  neighbor forces discarded (paper Sec. 5.4);
* position/force ring loads are accounted per node with the broadcast
  semantics of Sec. 4.5 (a position rides the ring once, visiting all
  its destination CBBs).

The machine produces both *physics* (trajectories, energies — compared
against the float64 reference in Fig. 19) and *workload statistics*
(candidates, acceptance, traffic, ring loads — the inputs to the cycle
model behind Figs. 16-18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arith.fixedpoint import FixedPointFormat
from repro.arith.interp import ForceTableSet, section_bin_indices
from repro.core.cellids import node_of_cell
from repro.core.config import MachineConfig
from repro.core.datapath import (
    ForcePipeline,
    PairFilter,
    quantize_cell_fractions,
)
from repro.core.rings import RingLoadModel, RingPath, cbb_ring_order
from repro.core.timing import StepTimings
from repro.md.cells import CellGrid, CellList, HALF_SHELL_OFFSETS
from repro.md.dataset import build_dataset
from repro.md.kernels import scatter_add
from repro.md.pairplan import (
    ROWS_PER_CELL,
    candidates_per_cell,
    iter_pair_chunks,
    plan_for_grid,
)
from repro.md.cellstate import CellState, machine_pack_fn
from repro.md.backends import resolve_backend, traffic_flat_numpy
from repro.md.reference import _padded_viable
from repro.md.engine import EnergyRecord
from repro.md.system import ParticleSystem
from repro.network.fabric import Fabric
from repro.util.errors import ConfigError, ValidationError
from repro.util.units import KCAL_MOL_TO_INTERNAL


@dataclass
class RingLoadSummary:
    """Per-node summary of one ring's load in one iteration."""

    total_records: int
    total_hops: int
    min_cycles: int
    mean_link_load: float

    @classmethod
    def from_model(cls, model: RingLoadModel) -> "RingLoadSummary":
        return cls(
            total_records=model.total_records,
            total_hops=model.total_hops,
            min_cycles=model.min_cycles,
            mean_link_load=model.mean_link_load,
        )


@dataclass
class StepStats:
    """Workload statistics from one force-evaluation pass.

    All arrays are indexed by global cell id; traffic dicts by node id.
    """

    candidates_per_cell: np.ndarray
    accepted_per_cell: np.ndarray
    occupancy_per_cell: np.ndarray
    potential_energy: float
    #: Remote traffic per directed node pair, in records.
    position_records: Dict[Tuple[int, int], int] = field(default_factory=dict)
    force_records: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Per-node position/force ring load summaries.
    pr_load: Dict[int, RingLoadSummary] = field(default_factory=dict)
    fr_load: Dict[int, RingLoadSummary] = field(default_factory=dict)
    #: Neighbor-force records produced per evaluating cell (nonzero only).
    neighbor_force_records_per_cell: Optional[np.ndarray] = None
    #: Cumulative :class:`~repro.md.cellstate.CellState` builds at the end
    #: of this pass, and whether this pass reused persistent state (None
    #: when ``reuse_state`` is off).
    state_builds: Optional[int] = None
    state_reused: Optional[bool] = None
    #: Node-crash recoveries folded into this pass and their cycle cost
    #: (None when no node-fault plan is active; the distributed layer's
    #: :attr:`~repro.core.distributed.DistributedMachine.recovery_log`
    #: is the per-event source these aggregates come from).
    recoveries: Optional[int] = None
    recovery_cycles: Optional[float] = None
    #: Cumulative per-phase wall-clock seconds (and ``*_calls`` counts)
    #: from the machine's :class:`~repro.core.timing.StepTimings` —
    #: ``None`` unless timing was enabled.  Counters are monotonic
    #: across the machine's lifetime, not per step; ``ring`` time is a
    #: subset of ``traffic`` time.
    timings: Optional[Dict[str, float]] = None

    @property
    def total_candidates(self) -> int:
        return int(self.candidates_per_cell.sum())

    @property
    def total_accepted(self) -> int:
        return int(self.accepted_per_cell.sum())

    @property
    def acceptance_rate(self) -> float:
        """Fraction of candidate pairs passing the filter (~15.5% expected,
        paper Eq. 3)."""
        total = self.total_candidates
        return self.total_accepted / total if total else 0.0

    def fill_fabric(self, fabric: Fabric) -> None:
        """Load the remote record counts into a Fabric for Fig. 18 math."""
        for (src, dst), records in self.position_records.items():
            fabric.add_records(src, dst, "position", records)
        for (src, dst), records in self.force_records.items():
            fabric.add_records(src, dst, "force", records)


#: Home offset + 13 half-shell offsets, f64 — row k of every padded pass.
_OFFS14 = np.concatenate(
    [np.zeros((1, 3)), np.asarray(HALF_SHELL_OFFSETS, dtype=np.float64)]
)


def _scatter_cols(bank, idx, wx, wy, wz, n):
    """Column-wise bincount scatter, bitwise-equal to
    :func:`~repro.md.kernels.scatter_add` over the stacked (M, 3) array
    (bincount accumulates float64 and casts back per column either way)."""
    bank[:, 0] += np.bincount(idx, weights=wx, minlength=n).astype(
        np.float32, copy=False
    )
    bank[:, 1] += np.bincount(idx, weights=wy, minlength=n).astype(
        np.float32, copy=False
    )
    bank[:, 2] += np.bincount(idx, weights=wz, minlength=n).astype(
        np.float32, copy=False
    )


class _StepArena:
    """Lazily-grown named scratch buffers for per-step temporaries.

    ``get(name, n, dtype)`` returns the first ``n`` elements of a named
    persistent buffer, growing it by ~25% headroom when ``n`` exceeds
    the current capacity — so fluctuating admitted-pair counts settle
    into zero allocations after the first few steps.  Buffers are plain
    scratch: contents are undefined between calls and views returned
    here must not escape the step that requested them.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: Dict[str, np.ndarray] = {}

    def get(self, name: str, n: int, dtype) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.size < n or buf.dtype != dtype:
            buf = np.empty(n + (n >> 2), dtype=dtype)
            self._bufs[name] = buf
        return buf[:n]


class _MachineArtifacts:
    """Per-build reuse artifacts over one CellState's band lists.

    Everything here is a pure function of the band pair list, the bucket
    order and the (fixed) species/charges — valid until the next
    rebuild.  Pre-gathering the global particle ids, per-pair LJ
    coefficients and Coulomb charge products turns the per-step work
    into sequential passes over flat arrays; the preallocated scratch
    buffers make the displacement/r2 phase allocation-free.
    """

    __slots__ = (
        "segs",
        "A",
        "B",
        "CC",
        "CJ",
        "II",
        "JJ",
        "scalar_coeffs",
        "c14p",
        "c8p",
        "c12p",
        "c6p",
        "qqp",
        "dx",
        "dy",
        "dz",
        "tf",
        "r2f",
        "idx64",
        "present",
    )

    def __init__(self, machine: "FasdaMachine", state: CellState):
        pairs = state.pairs
        order = state.clist.order
        self.segs = pairs.segs
        self.A = pairs.a
        self.B = pairs.b
        self.CC = pairs.c
        self.CJ = pairs.c * state.cap + pairs.js
        self.II = order[pairs.a]
        self.JJ = order[pairs.b]
        pipe = machine.pipeline
        # Single-species boxes (the paper's workload) have constant
        # coefficient ROMs: multiplying by the float32 scalar is
        # bitwise-equal to multiplying by the gathered constant array,
        # and skips four L-sized gathers per rebuild.
        self.scalar_coeffs = pipe._c14.size == 1
        if self.scalar_coeffs:
            self.c14p = pipe._c14.reshape(())[()]
            self.c8p = pipe._c8.reshape(())[()]
            self.c12p = pipe._c12.reshape(())[()]
            self.c6p = pipe._c6.reshape(())[()]
        else:
            spc = machine.system.species
            si = spc[self.II]
            sj = spc[self.JJ]
            self.c14p = pipe._c14[si, sj]
            self.c8p = pipe._c8[si, sj]
            self.c12p = pipe._c12[si, sj]
            self.c6p = pipe._c6[si, sj]
        self.qqp = None
        if machine.coulomb_pipeline is not None:
            self.qqp = machine._charges32[self.II] * machine._charges32[self.JJ]
        L = pairs.n_pairs
        self.dx = np.empty(L, dtype=np.float32)
        self.dy = np.empty(L, dtype=np.float32)
        self.dz = np.empty(L, dtype=np.float32)
        self.tf = np.empty(L, dtype=np.float32)
        self.r2f = np.empty(L, dtype=np.float32)
        # Admitted-index output for compiled admit kernels (allocated on
        # first use — the numpy paths never need it) and the bucket-slot
        # presence bits of the unique-record statistics.
        self.idx64 = None
        self.present = np.zeros(
            machine._plan.n_cells * state.cap, dtype=bool
        )


class FasdaMachine:
    """Functional + statistical simulator of a FASDA deployment.

    Parameters
    ----------
    config:
        The machine configuration (design point).
    system:
        Particle system to simulate; if None, the paper's dataset is
        generated for ``config.global_cells``.  The system is copied —
        the caller's arrays are never mutated.
    seed:
        Dataset seed when ``system`` is None.
    """

    def __init__(
        self,
        config: MachineConfig,
        system: Optional[ParticleSystem] = None,
        seed: int = 2023,
    ):
        self.config = config
        self.grid = CellGrid(config.global_cells, config.cutoff)
        if system is None:
            system, _ = build_dataset(
                config.global_cells, cutoff=config.cutoff, seed=seed
            )
        if not np.allclose(system.box, self.grid.box):
            raise ConfigError(
                f"system box {system.box} does not match config box {self.grid.box}"
            )
        self.system = system.copy()
        # Hardware state widths: velocities and forces are float32
        # (VC/FC are 32-bit), positions are fixed-point per cell.
        self._velocities32 = self.system.velocities.astype(np.float32)
        self._forces32 = np.zeros_like(self._velocities32)
        self.fmt = FixedPointFormat(frac_bits=config.frac_bits)
        self.tables = ForceTableSet(n_s=config.table_ns, n_b=config.table_nb)
        self.filter = PairFilter(self.tables.r2_min)
        self.pipeline = ForcePipeline(
            self.system.lj_table, config.cutoff, self.tables
        )
        # Optional second pipeline: the short-range Ewald electrostatic
        # term, structurally identical table lookup with a different ROM
        # image (paper Secs. 2.1, 3.4).
        self.coulomb_pipeline = None
        self._charges32 = None
        if config.force_model == "lj+coulomb":
            from repro.core.datapath import TabulatedRadialPipeline
            from repro.md.ewald import (
                choose_beta,
                ewald_real_energy_scalar,
                ewald_real_scalar,
            )

            self.ewald_beta = choose_beta(config.cutoff, config.ewald_tolerance)
            beta = self.ewald_beta
            self.coulomb_pipeline = TabulatedRadialPipeline.from_physical(
                lambda r2: ewald_real_scalar(r2, beta),
                lambda r2: ewald_real_energy_scalar(r2, beta),
                cutoff=config.cutoff,
                n_s=config.table_ns,
                n_b=config.table_nb,
            )
            self._charges32 = self.system.charges.astype(np.float32)
        # Static geometry: cell -> owning node.
        self._cell_coords = self.grid.cell_coords(
            np.arange(self.grid.n_cells, dtype=np.int64)
        )
        node_coords = node_of_cell(self._cell_coords, config.local_cells)
        fg = config.fpga_grid
        self._cell_node = (
            node_coords[:, 0] * fg[1] * fg[2]
            + node_coords[:, 1] * fg[2]
            + node_coords[:, 2]
        )
        # Local ring slot per cell (EX node occupies the last slot).
        order = cbb_ring_order(config.local_cells)
        local_index = {c: i for i, c in enumerate(order)}
        local_coords = self._cell_coords - node_coords * np.asarray(
            config.local_cells
        )
        self._cell_ring_slot = np.array(
            [local_index[tuple(c)] for c in local_coords], dtype=np.int64
        )
        self._ring_slots = config.cells_per_fpga + 1  # + EX
        self._ex_slot = config.cells_per_fpga
        # Static half-shell topology: the shared (cached) pair plan
        # carries every (home, neighbor, shift) triple as flat arrays.
        self._plan = plan_for_grid(self.grid)
        self._neighbor_cids = self._plan.neighbor_ids
        #: Pair enumeration path: "auto" (padded fast path when the box
        #: is dense enough, else chunked), "padded", or "chunked".  Both
        #: paths admit bitwise-identical pair sets.
        self.pair_path = "auto"
        #: Traffic accounting implementation: "vectorized" (group-by
        #: passes) or "loop" (the retained per-row oracle).
        self.traffic_impl = "vectorized"
        #: Force backend (see :mod:`repro.md.backends`): ``None`` uses
        #: the process-wide default, ``"numpy"`` the inline reference
        #: code, ``"soa"``/``"numba"``/``"cext"`` a fused admission
        #: kernel.  The float64 recheck through
        #: :meth:`~repro.core.datapath.PairFilter.admit_r2` (and its
        #: arithmetic restatements) stays authoritative on every
        #: backend, so admissions, statistics, traffic and the
        #: potential are **bitwise identical** across backends.
        self.force_impl: Optional[str] = None
        #: Step-persistent cell state (PR 4): when True, binning and the
        #: padded candidate search are amortized across steps through a
        #: skin-banded :class:`~repro.md.cellstate.CellState`, rebuilt on
        #: the skin/2 displacement criterion or any cell reassignment.
        #: Forces, energies and all workload statistics stay bitwise
        #: identical to the rebuild-every-step path (the retained
        #: oracle).  Honored only where the fresh path would take the
        #: padded broadcast; ``pair_path="chunked"`` disables it.
        self.reuse_state = False
        #: Skin margin (angstrom) for the persistent state's band lists.
        self.reuse_skin = 0.15 * config.cutoff
        self._cell_state = None
        self._rom32_cache = None
        #: Per-phase wall-clock counters (build/force/traffic/ring/
        #: integrate), off by default; enable with
        #: ``machine.timings.enabled = True``.  ``ring`` time is charged
        #: inside the ``traffic`` phase.
        self.timings = StepTimings()
        # Persistent per-step force banks and the named scratch arena:
        # a reuse-path step performs no large allocations (see
        # DESIGN.md §13).
        self._home_bank: Optional[np.ndarray] = None
        self._nbr_bank: Optional[np.ndarray] = None
        self._arena = _StepArena()
        self.history: List[EnergyRecord] = []
        self._primed = False
        self._last_potential = 0.0
        self.last_stats: Optional[StepStats] = None
        #: Migration accounting from the most recent step (MU-ring load).
        self.last_migrations = None

    # -- force evaluation ------------------------------------------------------

    def _pipelines(
        self,
        dr: np.ndarray,
        r2: np.ndarray,
        gi: np.ndarray,
        gj: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All force pipelines over one admitted pair block.

        The LJ pipeline always runs; with ``force_model="lj+coulomb"``
        the Ewald pipeline consumes the *same* filtered pairs — in
        hardware the two pipelines sit side by side behind one filter
        bank, which is why the paper calls them "nearly identical".
        """
        spc = self.system.species
        f, e = self.pipeline.compute(dr, r2, spc[gi], spc[gj])
        if self.coulomb_pipeline is not None:
            qq = self._charges32[gi] * self._charges32[gj]
            fc, ec = self.coulomb_pipeline.compute(dr, r2, qq)
            f = f + fc
            e = e + ec
        return f, e

    def compute_forces(self, collect_traffic: bool = True) -> StepStats:
        """One full force-evaluation pass through the modeled datapath.

        Updates the internal float32 force banks and returns workload
        statistics.  Does not advance time.

        Dense boxes (the paper's 64-per-cell workload) take the
        padded-broadcast fast path: candidate squared distances come
        from batched per-cell float32 matmuls, a conservative band keeps
        every possible admission, and only the ~15% of survivors are
        rebuilt as exact fixed-point displacements and pushed through
        the real :class:`~repro.core.datapath.PairFilter` — so the
        admitted pair set, every ``dr``/``r2`` entering the pipelines,
        and all integer workload statistics are bit-identical to the
        chunked enumeration (``pair_path="chunked"``), which remains the
        fallback for sparse or skewed occupancies.  Traffic accounting
        runs as vectorized group-by passes (``traffic_impl="loop"``
        selects the retained per-row oracle).
        """
        cfg = self.config
        grid = self.grid
        plan = self._plan
        pos = self.system.positions
        n = self.system.n
        n_cells = grid.n_cells
        with self.timings.phase("build"):
            state = self._ensure_cell_state(pos) if self.reuse_state else None
            if state is not None:
                clist = state.clist
                coords = state.coords
            else:
                clist = CellList(grid, pos)
                coords = grid.coords_of_positions(pos)
            frac = quantize_cell_fractions(pos, coords, cfg.cutoff, self.fmt)

        # Persistent force banks (zeroed in place each pass) — the two
        # largest per-step arrays; their adder-tree sum below still
        # produces a fresh array so returned force snapshots stay valid.
        if self._home_bank is None or len(self._home_bank) != n:
            self._home_bank = np.zeros((n, 3), dtype=np.float32)
            self._nbr_bank = np.zeros((n, 3), dtype=np.float32)
        else:
            self._home_bank.fill(0)
            self._nbr_bank.fill(0)
        home_bank = self._home_bank
        nbr_bank = self._nbr_bank
        candidates = candidates_per_cell(plan, clist.counts)
        accepted = np.zeros(n_cells, dtype=np.int64)
        # Unique neighbor particles touched per plan row — the per-block
        # force-return record counts of the hardware (zero forces and
        # duplicate touches within a block are coalesced).
        uniq_per_row = np.zeros(plan.n_rows, dtype=np.int64)

        with self.timings.phase("force"):
            if state is not None:
                potential = self._eval_reuse(
                    state, frac, home_bank, nbr_bank, accepted, uniq_per_row
                )
            else:
                use_padded = self.pair_path != "chunked" and (
                    self.pair_path == "padded" or _padded_viable(plan, clist)
                )
                if use_padded:
                    potential = self._eval_padded(
                        clist, frac, home_bank, nbr_bank, accepted,
                        uniq_per_row,
                    )
                else:
                    potential = self._eval_chunked(
                        clist, frac, home_bank, nbr_bank, accepted,
                        uniq_per_row,
                    )

        nbr_frc_records = np.zeros(n_cells, dtype=np.int64)
        scatter_add(nbr_frc_records, plan.home, uniq_per_row)

        occupancy = clist.occupancies()
        if collect_traffic:
            account = (
                self._account_traffic_loop
                if self.traffic_impl == "loop"
                else self._account_traffic
            )
            with self.timings.phase("traffic"):
                position_records, force_records, pr_models, fr_models = (
                    account(clist.counts, occupancy, uniq_per_row)
                )
        else:
            position_records = {}
            force_records = {}
            pr_models = {
                n_: RingLoadModel(RingPath(self._ring_slots, +1))
                for n_ in range(cfg.n_fpgas)
            }
            fr_models = {
                n_: RingLoadModel(RingPath(self._ring_slots, -1))
                for n_ in range(cfg.n_fpgas)
            }

        # Adder-tree combination of the FC banks (Sec. 4.5).
        self._forces32 = home_bank + nbr_bank

        stats = StepStats(
            candidates_per_cell=candidates,
            accepted_per_cell=accepted,
            occupancy_per_cell=occupancy.copy(),
            potential_energy=float(potential),
            position_records=position_records,
            force_records=force_records,
            pr_load={n: RingLoadSummary.from_model(m) for n, m in pr_models.items()},
            fr_load={n: RingLoadSummary.from_model(m) for n, m in fr_models.items()},
            neighbor_force_records_per_cell=nbr_frc_records,
            timings=self.timings.snapshot(),
        )
        if self.reuse_state:
            cs = self._cell_state
            stats.state_builds = cs.builds if cs is not None else 0
            stats.state_reused = state is not None and not state.last_rebuilt
        self.last_stats = stats
        return stats

    # -- step-persistent state (PR 4) ------------------------------------------

    def ensure_cell_state(self) -> CellState:
        """Create (once) and return the persistent :class:`CellState`.

        Creation alone does not build the band lists (the next force
        pass does); checkpoint restore uses this to reattach the reuse
        counters without paying an immediate build.
        """
        if self._cell_state is None:
            self._cell_state = CellState(
                self.grid,
                self._plan,
                self.reuse_skin,
                machine_pack_fn(
                    self.fmt, self.config.cutoff, self.reuse_skin, self.grid
                ),
            )
        return self._cell_state

    def _ensure_cell_state(self, pos: np.ndarray) -> Optional[CellState]:
        """Bring the persistent :class:`CellState` up to date, or decline.

        Returns the state when the reuse path applies this step, else
        None (``pair_path="chunked"``, or the fresh auto path would not
        take the padded broadcast for this box — the band lists are the
        padded search's, so reuse only ever replaces the padded path).
        """
        if self.pair_path == "chunked":
            return None
        state = self.ensure_cell_state()
        if state.ensure(pos):
            state.artifacts["usable"] = self.pair_path == "padded" or _padded_viable(
                self._plan, state.clist
            )
        return state if state.artifacts.get("usable") else None

    def _rom32(self) -> Dict[object, Tuple[np.ndarray, np.ndarray]]:
        """Flattened float32 coefficient ROM images, built once.

        ``evaluate_f32_at`` casts the gathered float64 coefficients per
        call; casting the whole table once and gathering from the f32
        image yields bitwise-identical values (f64->f32 rounding commutes
        with the gather) without the per-step cast passes.
        """
        if self._rom32_cache is None:

            def flat(t):
                return (
                    t._a.astype(np.float32).ravel(),
                    t._b.astype(np.float32).ravel(),
                )

            roms = {a: flat(t) for a, t in self.tables.tables.items()}
            if self.coulomb_pipeline is not None:
                roms["coulomb_f"] = flat(self.coulomb_pipeline.force_table)
                roms["coulomb_e"] = flat(self.coulomb_pipeline.energy_table)
            self._rom32_cache = roms
        return self._rom32_cache

    def _eval_reuse(
        self,
        state: CellState,
        frac: np.ndarray,
        home_bank: np.ndarray,
        nbr_bank: np.ndarray,
        accepted: np.ndarray,
        uniq_per_row: np.ndarray,
    ) -> np.float32:
        """Datapath pass over the persistent skin-banded pair lists.

        Bitwise-identical to :meth:`_eval_padded` on the same positions:
        the band lists hold, per offset ``k`` and in the fresh path's
        flat enumeration order, a superset of anything the fresh band
        can pass, and the float32 cutoff test here is exactly the
        :meth:`~repro.core.datapath.PairFilter.admit_r2` admission — so
        the admitted pair *sequences*, every pipeline input, and the
        per-offset accumulation grouping all coincide with a fresh
        build's.  The pipeline math is restated over pre-gathered
        per-pair coefficients and pre-cast ROM images (see
        :class:`_MachineArtifacts`); every restatement is a bitwise
        no-op: quantized fraction differences are exact in float32, the
        exact float64 ``r2`` is formed with ``dtype=np.float64``
        multiplies of those exact differences, the section/bin decode
        reads the same indices straight from the float32 bit fields
        (power-of-two ``n_b``), and the per-column bincount scatters are
        :func:`~repro.md.kernels.scatter_add`'s own definition.
        """
        art = state.artifacts.get("machine")
        if art is None:
            art = _MachineArtifacts(self, state)
            state.artifacts["machine"] = art
        plan = self._plan
        n = self.system.n
        cap = state.cap
        order = state.clist.order
        segs = art.segs

        # Bucket-sorted fractions in float32 — exact: fractions are
        # k * 2**-23 in [0, 1), so differences (and minus the integer
        # cell offsets) are exactly representable; float32 dr here is
        # bit-equal to casting the fresh path's float64 dr.  Gathered
        # through the arena: take into a float64 column, cast in place
        # (the same per-element f64 -> f32 rounding as astype).
        ar = self._arena
        t64col = ar.get("fs_t64", n, np.float64)
        fsx = ar.get("fsx", n, np.float32)
        fsy = ar.get("fsy", n, np.float32)
        fsz = ar.get("fsz", n, np.float32)
        np.take(frac[:, 0], order, out=t64col)
        fsx[:] = t64col
        np.take(frac[:, 1], order, out=t64col)
        fsy[:] = t64col
        np.take(frac[:, 2], order, out=t64col)
        fsz[:] = t64col
        potential = np.float32(0.0)
        backend = resolve_backend(self.force_impl)
        if backend.admit_flat is not None:
            # Fused admission kernel: the exact per-pair arithmetic
            # below restated in one loop (see repro.md.backends) —
            # admitted indices, r2 and displacements bitwise identical.
            # Scratch comes from the build-persistent artifacts; the
            # numpy/soa kernel wants whole-band work arrays, the
            # compiled kernels compacted output arrays.
            if backend.name == "soa":
                scratch = (art.dx, art.dy, art.dz, art.tf, art.r2f)
            elif backend.name in ("numba", "cext"):
                if art.idx64 is None:
                    art.idx64 = np.empty(len(art.A), dtype=np.int64)
                scratch = (art.idx64, art.r2f, art.dx, art.dy, art.dz)
            else:
                scratch = None
            idx, r2a, dxa, dya, dza = backend.admit_flat(
                fsx, fsy, fsz, art.A, art.B, segs, _OFFS14, scratch=scratch,
                copy=False,
            )
            if idx.size == 0:
                return potential
        else:
            dx, dy, dz, tf = art.dx, art.dy, art.dz, art.tf
            np.take(fsx, art.A, out=dx)
            np.take(fsx, art.B, out=tf)
            dx -= tf
            np.take(fsy, art.A, out=dy)
            np.take(fsy, art.B, out=tf)
            dy -= tf
            np.take(fsz, art.A, out=dz)
            np.take(fsz, art.B, out=tf)
            dz -= tf
            for k in range(1, ROWS_PER_CELL):
                lo, hi = int(segs[k]), int(segs[k + 1])
                if lo == hi:
                    continue
                ox, oy, oz = _OFFS14[k]
                if ox:
                    dx[lo:hi] -= np.float32(ox)
                if oy:
                    dy[lo:hi] -= np.float32(oy)
                if oz:
                    dz[lo:hi] -= np.float32(oz)
            # Conservative float32 pre-screen before the exact recheck.
            # The all-f32 r2 differs from the exact value by < 3
            # products' worth of rounding (rel. error < 2e-7), so any
            # pair with f32 r2 >= 1 + 1e-5 provably fails the exact
            # f64 -> f32 cutoff test too; the exact recheck then only
            # runs over the near-admitted shell instead of the whole
            # widened band.
            r2s = art.r2f
            tf2 = art.tf
            np.multiply(dx, dx, out=r2s)
            np.multiply(dy, dy, out=tf2)
            r2s += tf2
            np.multiply(dz, dz, out=tf2)
            r2s += tf2
            cand = np.flatnonzero(r2s < np.float32(1.0 + 1e-5))
            if cand.size == 0:
                return potential
            dxc = dx.take(cand)
            dyc = dy.take(cand)
            dzc = dz.take(cand)
            # Exact float64 squared distance of the exact float32
            # diffs, associating as (dx^2 + dy^2) + dz^2 — exactly the
            # filter's einsum inner product (dtype= forces the float64
            # product loop; plain out= would multiply in float32).
            # Then the filter's f64 -> f32 rounding, i.e. the admitted
            # r2 stream is bit-for-bit the fresh path's.
            r2c = np.multiply(dxc, dxc, dtype=np.float64)
            t64 = np.multiply(dyc, dyc, dtype=np.float64)
            r2c += t64
            np.multiply(dzc, dzc, out=t64, dtype=np.float64)
            r2c += t64
            r2fc = r2c.astype(np.float32)

            # Global admission pass: admitted indices over the whole
            # band, in stored order — which is exactly per-offset
            # ascending flat (cell, slot_i, slot_j), the fresh path's
            # enumeration order (``cand`` is ascending and ``keep``
            # preserves order).  All elementwise pipeline math then
            # runs once over the admitted set; only the order-sensitive
            # reductions (bank scatters, the per-offset float32 energy
            # sums, the presence-bit statistics) walk the 14 offset
            # groups, each a contiguous slice.
            one = np.float32(1.0)
            keep = r2fc < one
            idx = cand[keep]
            if idx.size == 0:
                return potential
            r2a = r2fc[keep]
            dxa = dxc[keep]
            dya = dyc[keep]
            dza = dzc[keep]
        bounds = np.searchsorted(idx, segs)
        r2_min32 = np.float32(self.filter.r2_min)
        if np.any(r2a < r2_min32):
            # The real filter's small-r guard, verbatim.
            below = int(np.count_nonzero(r2a < r2_min32))
            raise ValidationError(
                f"{below} pair(s) inside the excluded "
                f"small-r region (r2 < {self.filter.r2_min}); the "
                "simulation has collapsed or the dataset violates "
                "the minimum distance"
            )
        ts = self.tables
        n_s, n_b = ts.n_s, ts.n_b
        m = idx.size
        roms = self._rom32()
        nb_pow2 = n_b >= 1 and (n_b & (n_b - 1)) == 0
        if (
            backend.rom_eval is not None
            and nb_pow2
            and idx.dtype == np.int64
        ):
            # Fused decode + ROM-gather + pipeline kernel: the numpy
            # sequence of the else-branch restated in one compiled loop
            # (see repro.md.backends.rom_eval) — per-pair force and
            # energy streams bitwise identical, so the order-sensitive
            # reductions below see the exact same operands.
            fxa = ar.get("fxa", m, np.float32)
            fya = ar.get("fya", m, np.float32)
            fza = ar.get("fza", m, np.float32)
            e = ar.get("ener", m, np.float32)
            coul = None
            if self.coulomb_pipeline is not None:
                coul = roms["coulomb_f"] + roms["coulomb_e"] + (art.qqp,)
            backend.rom_eval(
                r2a, dxa, dya, dza, idx, n_s, n_b,
                roms[14] + roms[8] + roms[12] + roms[6],
                (art.c14p, art.c8p, art.c12p, art.c6p),
                coul, fxa, fya, fza, e,
            )
            return self._eval_reduce(
                state, art, idx, e, fxa, fya, fza, bounds,
                home_bank, nbr_bank, accepted, uniq_per_row, potential,
                backend,
            )
        # Section/bin decode straight from the float32 bit fields:
        # s = biased_exponent - (127 - n_s), b = top log2(n_b) mantissa
        # bits — exactly Eqs. 9-10 for admitted r2 in [2**-n_s, 1).
        # Integer ops restated with out= into arena scratch.
        if nb_pow2:
            shift_bits = 24 - int(n_b).bit_length()  # 23 - log2(n_b)
            bits = np.ascontiguousarray(r2a).view(np.int32)
            t1 = ar.get("dec1", m, np.int32)
            t2 = ar.get("dec2", m, np.int32)
            np.right_shift(bits, np.int32(23), out=t1)
            t1 -= np.int32(127 - n_s)
            t1 *= np.int32(n_b)
            np.right_shift(bits, np.int32(shift_bits), out=t2)
            t2 &= np.int32(n_b - 1)
            t1 += t2
            # numpy re-casts non-intp index arrays on every take(); one
            # upfront int64 conversion serves all twelve ROM gathers.
            lin = ar.get("lin", m, np.int64)
            lin[:] = t1
        else:
            s, b = section_bin_indices(
                r2a.astype(np.float64), n_s, n_b, checked=False
            )
            lin = (s * n_b + b).astype(np.int64)
        a14, b14 = roms[14]
        a8, b8 = roms[8]
        a12, b12 = roms[12]
        a6, b6 = roms[6]
        tb = ar.get("romb", m, np.float32)
        inv14 = ar.get("inv14", m, np.float32)
        np.take(a14, lin, out=inv14)
        inv14 *= r2a
        np.take(b14, lin, out=tb)
        inv14 += tb
        inv8 = ar.get("inv8", m, np.float32)
        np.take(a8, lin, out=inv8)
        inv8 *= r2a
        np.take(b8, lin, out=tb)
        inv8 += tb
        if art.scalar_coeffs:
            scalar = inv14
            scalar *= art.c14p
            inv8 *= art.c8p
        else:
            scalar = ar.get("scal", m, np.float32)
            np.take(art.c14p, idx, out=scalar)
            scalar *= inv14
            np.take(art.c8p, idx, out=tb)
            inv8 *= tb
        scalar -= inv8
        fxa = ar.get("fxa", m, np.float32)
        fya = ar.get("fya", m, np.float32)
        fza = ar.get("fza", m, np.float32)
        np.multiply(scalar, dxa, out=fxa)
        np.multiply(scalar, dya, out=fya)
        np.multiply(scalar, dza, out=fza)
        inv12 = ar.get("inv12", m, np.float32)
        np.take(a12, lin, out=inv12)
        inv12 *= r2a
        np.take(b12, lin, out=tb)
        inv12 += tb
        inv6 = ar.get("inv6", m, np.float32)
        np.take(a6, lin, out=inv6)
        inv6 *= r2a
        np.take(b6, lin, out=tb)
        inv6 += tb
        if art.scalar_coeffs:
            e = inv12
            e *= art.c12p
            inv6 *= art.c6p
        else:
            e = ar.get("ener", m, np.float32)
            np.take(art.c12p, idx, out=e)
            e *= inv12
            np.take(art.c6p, idx, out=tb)
            inv6 *= tb
        e -= inv6
        if self.coulomb_pipeline is not None:
            af, bf = roms["coulomb_f"]
            ae, be = roms["coulomb_e"]
            qq = ar.get("qq", m, np.float32)
            np.take(art.qqp, idx, out=qq)
            invf = ar.get("invf", m, np.float32)
            np.take(af, lin, out=invf)
            invf *= r2a
            np.take(bf, lin, out=tb)
            invf += tb
            sc = invf
            sc *= qq
            np.multiply(sc, dxa, out=tb)
            fxa += tb
            np.multiply(sc, dya, out=tb)
            fya += tb
            np.multiply(sc, dza, out=tb)
            fza += tb
            inve = ar.get("inve", m, np.float32)
            np.take(ae, lin, out=inve)
            inve *= r2a
            np.take(be, lin, out=tb)
            inve += tb
            inve *= qq
            e += inve
        return self._eval_reduce(
            state, art, idx, e, fxa, fya, fza, bounds,
            home_bank, nbr_bank, accepted, uniq_per_row, potential,
            backend,
        )

    def _eval_reduce(
        self,
        state: CellState,
        art: "_MachineArtifacts",
        idx: np.ndarray,
        e: np.ndarray,
        fxa: np.ndarray,
        fya: np.ndarray,
        fza: np.ndarray,
        bounds: np.ndarray,
        home_bank: np.ndarray,
        nbr_bank: np.ndarray,
        accepted: np.ndarray,
        uniq_per_row: np.ndarray,
        potential: np.float32,
        backend,
    ) -> np.float32:
        """Order-sensitive reductions over the evaluated pair stream:
        per-offset bank scatters, acceptance counts, unique-record
        statistics and the per-offset float32 energy sums.  Shared by
        the numpy pipeline and the fused ``rom_eval`` kernel — both
        hand over bitwise-identical ``e``/``f`` streams, so everything
        here is invariant to which produced them."""
        ar = self._arena
        n = self.system.n
        cap = state.cap
        m = idx.size
        II = ar.get("II", m, art.II.dtype)
        JJ = ar.get("JJ", m, art.JJ.dtype)
        CC = ar.get("CC", m, art.CC.dtype)
        np.take(art.II, idx, out=II)
        np.take(art.JJ, idx, out=JJ)
        np.take(art.CC, idx, out=CC)
        # Compiled column scatter: same f64-accumulate / f32-round /
        # full-length f32 add sequence as _scatter_cols, one pass.
        scat = backend.scatter_cols
        if (
            scat is not None
            and II.dtype == np.int64
            and home_bank.flags.c_contiguous
            and nbr_bank.flags.c_contiguous
        ):
            acc = ar.get("scat_acc", 3 * n, np.float64)

            def scat_cols(bank, ii, wx, wy, wz, nn):
                scat(bank, ii, wx, wy, wz, nn, acc)

        else:
            scat_cols = _scatter_cols
        present = art.present
        for k in range(ROWS_PER_CELL):
            lo, hi = int(bounds[k]), int(bounds[k + 1])
            if lo == hi:
                continue
            sl = slice(lo, hi)
            scatter_add(accepted, CC[sl])
            scat_cols(home_bank, II[sl], fxa[sl], fya[sl], fza[sl], n)
            np.negative(fxa[sl], out=fxa[sl])
            np.negative(fya[sl], out=fya[sl])
            np.negative(fza[sl], out=fza[sl])
            if k == 0:
                scat_cols(home_bank, JJ[sl], fxa[sl], fya[sl], fza[sl], n)
            else:
                scat_cols(nbr_bank, JJ[sl], fxa[sl], fya[sl], fza[sl], n)
                present[:] = False
                present[art.CJ.take(idx[sl])] = True
                touched = np.flatnonzero(present)
                scatter_add(uniq_per_row, (touched // cap) * ROWS_PER_CELL + k)
            potential += e[sl].sum(dtype=np.float32)
        return potential

    def _eval_chunked(
        self,
        clist: CellList,
        frac: np.ndarray,
        home_bank: np.ndarray,
        nbr_bank: np.ndarray,
        accepted: np.ndarray,
        uniq_per_row: np.ndarray,
    ) -> np.float32:
        """Gather-enumerated datapath pass (the original hot loop).

        All candidate pairs flow through the filter and the force
        pipelines in step-wide batches from the shared pair plan; kept
        as the general path for sparse/skewed boxes and as the oracle
        the padded fast path is asserted against.
        """
        plan = self._plan
        n = np.int64(self.system.n)
        potential = np.float32(0.0)
        backend = resolve_backend(self.force_impl)
        for chunk in iter_pair_chunks(plan, clist.counts, clist.start, clist.order):
            # Displacement home - neighbor = frac_h - offset - frac_n
            # (offset zero on home-home rows), exact in float64 for
            # quantized fractions.
            if backend.screen_dr is not None:
                # Fused gather/displacement kernel; r2 comes from the
                # reference einsum reduction on bitwise-identical dr,
                # so the filter sees bit-for-bit the same inputs.
                dr, r2 = backend.screen_dr(
                    frac, chunk.ii, chunk.jj, plan.offset, chunk.row
                )
                res = self.filter.admit_r2(r2)
            else:
                dr = frac[chunk.ii] - frac[chunk.jj] - plan.offset[chunk.row]
                res = self.filter.check(dr)
            if not res.n_accepted:
                continue
            m = res.mask
            ii = chunk.ii[m]
            jj = chunk.jj[m]
            row = chunk.row[m]
            scatter_add(accepted, plan.home[row])
            f, e = self._pipelines(dr[m], res.r2, ii, jj)
            sel = plan.is_self[row]
            scatter_add(home_bank, ii, f)
            if sel.any():
                scatter_add(home_bank, jj[sel], -f[sel])
            nsel = ~sel
            if nsel.any():
                scatter_add(nbr_bank, jj[nsel], -f[nsel])
                # Unique (row, neighbor particle) keys; chunks carry
                # whole rows, so per-chunk uniqueness is per-block exact.
                keys = np.unique(row[nsel] * n + jj[nsel])
                scatter_add(uniq_per_row, keys // n)
            potential += e.sum(dtype=np.float32)
        return potential

    def _eval_padded(
        self,
        clist: CellList,
        frac: np.ndarray,
        home_bank: np.ndarray,
        nbr_bank: np.ndarray,
        accepted: np.ndarray,
        uniq_per_row: np.ndarray,
    ) -> np.float32:
        """Padded-broadcast datapath pass (dense-occupancy fast path).

        Buckets are padded to the max occupancy ``cap`` and each of the
        14 plan offsets becomes one ``(C, cap, cap)`` float32 matmul
        over quantized in-cell fractions (exactly representable in
        float32 at the default 23 fraction bits, and conservatively
        banded regardless), ``r2 = |f_i|^2 + |f_j + off|^2 - 2 f_i.(f_j
        + off)``.  Survivors of the band are rebuilt as exact float64
        fixed-point displacements and pushed through the real
        :class:`~repro.core.datapath.PairFilter`, so admissions, the
        pipeline inputs, and the per-row unique-record statistics match
        the chunked path exactly; only float32 accumulation *grouping*
        differs (14 offset batches instead of ~2M-pair chunks).
        """
        plan = self._plan
        n = self.system.n
        C = plan.n_cells
        order, start, counts = clist.order, clist.start, clist.counts
        cap = int(counts.max())

        # Bucket-sorted fractions: slot s holds particle order[s].
        frac_s = frac[order]
        fsx = np.ascontiguousarray(frac_s[:, 0])
        fsy = np.ascontiguousarray(frac_s[:, 1])
        fsz = np.ascontiguousarray(frac_s[:, 2])
        within = np.arange(n, dtype=np.int64) - start[clist.sorted_cids]
        P = np.zeros((C, cap, 3), dtype=np.float32)
        P[clist.sorted_cids, within] = frac_s.astype(np.float32)
        padm = np.arange(cap)[None, :] >= counts[:, None]
        S = np.einsum("cix,cix->ci", P, P, dtype=np.float32)
        S[padm] = np.inf  # pad slots poison every r2 they appear in

        nbr_mat = plan.nbr.reshape(C, ROWS_PER_CELL)
        offs = np.concatenate(
            [np.zeros((1, 3)), np.asarray(HALF_SHELL_OFFSETS, dtype=np.float64)]
        )
        # Cutoff in normalized units is 1; the band only ever admits
        # *extra* candidates to the exact filter recheck.
        band = np.float32(1.0 + 1e-3)
        cell_of, i_of, j_of = plan.padded_decode(cap)
        a_of = start[cell_of] + i_of
        iu = np.arange(cap)
        tri = iu[:, None] < iu[None, :]
        mask = np.empty((C, cap, cap), dtype=bool)
        G = np.empty((C, cap, cap), dtype=np.float32)
        H = np.empty((C, cap, cap), dtype=np.float32)
        present = np.zeros(C * cap, dtype=bool)
        potential = np.float32(0.0)

        for k in range(ROWS_PER_CELL):
            nb = nbr_mat[:, k]
            Q = P[nb] + offs[k].astype(np.float32)
            Sq = np.einsum("cix,cix->ci", Q, Q, dtype=np.float32)
            Sq[padm[nb]] = np.inf
            np.matmul(P, Q.transpose(0, 2, 1), out=G)
            # r2 = S_i + Sq_j - 2 G_ij < band  <=>  G > (S - band)/2 + Sq/2
            np.add(
                ((S - band) * np.float32(0.5))[:, :, None],
                (Sq * np.float32(0.5))[:, None, :],
                out=H,
            )
            np.greater(G, H, out=mask)
            if k == 0:
                mask &= tri  # home-home upper triangle
            flat = np.flatnonzero(mask.reshape(-1))
            if flat.size == 0:
                continue
            a = a_of[flat]
            c = cell_of[flat]
            jsl = j_of[flat]
            b = start[nb][c] + jsl
            # Exact fixed-point displacements for the band survivors,
            # with the chunked path's arithmetic, through the real
            # filter — bitwise-identical admissions and r2.
            dr = np.empty((len(flat), 3))
            dr[:, 0] = fsx[a] - fsx[b] - offs[k, 0]
            dr[:, 1] = fsy[a] - fsy[b] - offs[k, 1]
            dr[:, 2] = fsz[a] - fsz[b] - offs[k, 2]
            res = self.filter.check(dr)
            if not res.n_accepted:
                continue
            m = res.mask
            ii = order[a[m]]
            jj = order[b[m]]
            cc = c[m]
            scatter_add(accepted, cc)
            f, e = self._pipelines(dr[m], res.r2, ii, jj)
            scatter_add(home_bank, ii, f)
            if k == 0:
                scatter_add(home_bank, jj, -f)
            else:
                scatter_add(nbr_bank, jj, -f)
                # Unique (row, neighbor particle) records via bucket-slot
                # presence bits — each offset k owns its rows outright.
                present[:] = False
                present[cc * cap + jsl[m]] = True
                touched = np.flatnonzero(present)
                scatter_add(
                    uniq_per_row, (touched // cap) * ROWS_PER_CELL + k
                )
            potential += e.sum(dtype=np.float32)
        return potential

    # -- traffic accounting ----------------------------------------------------

    def _traffic_models(
        self,
    ) -> Tuple[Dict[int, RingLoadModel], Dict[int, RingLoadModel]]:
        cfg = self.config
        pr_models = {
            n_: RingLoadModel(
                RingPath(self._ring_slots, +1), force_impl=self.force_impl
            )
            for n_ in range(cfg.n_fpgas)
        }
        fr_models = {
            n_: RingLoadModel(
                RingPath(self._ring_slots, -1), force_impl=self.force_impl
            )
            for n_ in range(cfg.n_fpgas)
        }
        return pr_models, fr_models

    def _active_neighbor_rows(self, counts: np.ndarray) -> np.ndarray:
        """Non-self plan rows whose home and neighbor cells are occupied,
        in the (cid, k) order the hardware schedules blocks."""
        plan = self._plan
        return np.flatnonzero(
            ~plan.is_self & (counts[plan.home] > 0) & (counts[plan.nbr] > 0)
        )

    def _account_traffic(
        self,
        counts: np.ndarray,
        occupancy: np.ndarray,
        uniq_per_row: np.ndarray,
    ) -> Tuple[
        Dict[Tuple[int, int], int],
        Dict[Tuple[int, int], int],
        Dict[int, RingLoadModel],
        Dict[int, RingLoadModel],
    ]:
        """Vectorized traffic accounting over the active neighbor rows.

        Replaces the per-row Python loop (retained as
        :meth:`_account_traffic_loop`) with group-by passes over
        composite (cell, node, slot) keys — through the backend
        ``traffic_flat`` kernel when the active backend compiles one
        (:func:`~repro.md.backends.traffic_flat_numpy` otherwise) — and
        batched :class:`~repro.core.rings.RingLoadModel` charging,
        producing bitwise-identical records, link loads and summaries.
        """
        plan = self._plan
        S = self._ring_slots
        nf = np.int64(self.config.n_fpgas)
        position_records: Dict[Tuple[int, int], int] = {}
        force_records: Dict[Tuple[int, int], int] = {}
        pr_models, fr_models = self._traffic_models()
        act = self._active_neighbor_rows(counts)
        if act.size == 0:
            return position_records, force_records, pr_models, fr_models
        tfl = (
            resolve_backend(self.force_impl).traffic_flat
            or traffic_flat_numpy
        )

        cid = plan.home[act]
        ncid = plan.nbr[act]
        home_node = self._cell_node[cid]
        home_slot = self._cell_ring_slot[cid]
        src_node = self._cell_node[ncid]
        local = src_node == home_node

        # Position stream dedup: unique (source cell, dest node) flows;
        # remote flows charge the source cell's occupancy per record.
        pkeys = tfl(ncid * nf + home_node)[0]
        pcell = pkeys // nf
        pdst = pkeys % nf
        psrc = self._cell_node[pcell]
        remote = psrc != pdst
        if remote.any():
            rk = psrc[remote] * nf + pdst[remote]
            uk, rsums, _, _ = tfl(
                rk, weights=occupancy[pcell[remote]].astype(np.float64)
            )
            sums = rsums.astype(np.int64)
            position_records = {
                (int(k // nf), int(k % nf)): int(s) for k, s in zip(uk, sums)
            }

        # Position-ring broadcasts: one ring traversal per (node, source
        # stream) key, up to the farthest destination CBB (Sec. 4.5).
        # Remote streams enter at EX; the key keeps them distinct per
        # source cell exactly as the loop oracle does.  Hops are formed
        # per row before grouping; the per-key stream length and source
        # slot are constant within a key, so the first row's values are
        # exactly the loop oracle's.
        key_mod = np.int64(self._ex_slot + 10_000 + plan.n_cells + 1)
        src_slot_row = np.where(
            local, self._cell_ring_slot[ncid], self._ex_slot
        )
        src_key = np.where(
            local,
            self._cell_ring_slot[ncid],
            self._ex_slot + 10_000 + ncid,
        )
        comp = home_node * key_mod + src_key
        hops_row = (home_slot - src_slot_row) % S
        uc, _, far, first = tfl(comp, aux=hops_row)
        src_slot = src_slot_row[first]
        key_count = counts[ncid[first]]
        key_node = uc // key_mod
        with self.timings.phase("ring"):
            for n_ in pr_models:
                sel = key_node == n_
                if sel.any():
                    pr_models[n_].broadcast_many(
                        src_slot[sel], far[sel], key_count[sel]
                    )

        # Force-ring injections: evaluating CBB -> home CBB (or EX when
        # the neighbor particles live on another node).
        u = uniq_per_row[act]
        has = u > 0
        if has.any():
            rem_f = has & ~local
            if rem_f.any():
                fk = home_node[rem_f] * nf + src_node[rem_f]
                uf, fsums_f, _, _ = tfl(
                    fk, weights=u[rem_f].astype(np.float64)
                )
                fsums = fsums_f.astype(np.int64)
                force_records = {
                    (int(k // nf), int(k % nf)): int(s)
                    for k, s in zip(uf, fsums)
                }
            dst_slot = np.where(local, self._cell_ring_slot[ncid], self._ex_slot)
            with self.timings.phase("ring"):
                for n_ in fr_models:
                    sel = has & (home_node == n_)
                    if sel.any():
                        fr_models[n_].inject_many(
                            home_slot[sel], dst_slot[sel], u[sel]
                        )
                # Remote arriving forces also ride the destination
                # node's FR from EX to the home CBB: home cells unknown
                # at this granularity — charge the mean path (EX to
                # mid-ring).
                for (src, dst), recs in force_records.items():
                    fr_models[dst].inject(self._ex_slot, S // 2, recs)

        return position_records, force_records, pr_models, fr_models

    def _account_traffic_loop(
        self,
        counts: np.ndarray,
        occupancy: np.ndarray,
        uniq_per_row: np.ndarray,
    ) -> Tuple[
        Dict[Tuple[int, int], int],
        Dict[Tuple[int, int], int],
        Dict[int, RingLoadModel],
        Dict[int, RingLoadModel],
    ]:
        """Per-row traffic accounting (the original loop), retained as the
        equivalence oracle for :meth:`_account_traffic`."""
        position_records: Dict[Tuple[int, int], int] = {}
        force_records: Dict[Tuple[int, int], int] = {}
        pr_models, fr_models = self._traffic_models()
        plan = self._plan
        # (source cell, dest node) pairs that carried at least one position.
        pos_sent: Dict[Tuple[int, int], bool] = {}
        # Position-ring destinations per (node, source slot) for broadcasts.
        pr_dests: Dict[Tuple[int, int], List[int]] = {}
        pr_counts: Dict[Tuple[int, int], int] = {}
        for r in self._active_neighbor_rows(counts):
            cid = int(plan.home[r])
            ncid = int(plan.nbr[r])
            home_node = int(self._cell_node[cid])
            home_slot = int(self._cell_ring_slot[cid])
            src_node = int(self._cell_node[ncid])
            # Position stream: source cell -> this node (dedup per node).
            pos_sent[(ncid, home_node)] = True
            # Ring broadcast bookkeeping.
            key = (
                home_node,
                int(self._cell_ring_slot[ncid])
                if src_node == home_node
                else self._ex_slot + 10_000 + ncid,
            )
            pr_dests.setdefault(key, []).append(home_slot)
            pr_counts[key] = int(counts[ncid])
            uniq = int(uniq_per_row[r])
            if uniq:
                if src_node != home_node:
                    key2 = (home_node, src_node)
                    force_records[key2] = force_records.get(key2, 0) + uniq
                # Force-ring injection: evaluating CBB -> home CBB
                # (or EX when remote).
                dst_slot = (
                    int(self._cell_ring_slot[ncid])
                    if src_node == home_node
                    else self._ex_slot
                )
                fr_models[home_node].inject(home_slot, dst_slot, uniq)

        # Replay position broadcasts: one ring traversal per source
        # stream, visiting all destination CBBs (Sec. 4.5 semantics).
        for (node, src_key), dests in pr_dests.items():
            src_slot = src_key if src_key < self._ring_slots else self._ex_slot
            pr_models[node].broadcast(src_slot, dests, pr_counts[(node, src_key)])
        # Remote arriving forces also ride the destination node's FR
        # from EX to the home CBB.
        for (src, dst), recs in force_records.items():
            # records arrive at node dst via EX; home cells unknown at
            # this granularity — charge the mean path (EX to mid-ring).
            fr_models[dst].inject(self._ex_slot, self._ring_slots // 2, recs)

        for (src_cell, dst_node), _ in pos_sent.items():
            src_node = int(self._cell_node[src_cell])
            if src_node == dst_node:
                continue
            key = (src_node, dst_node)
            position_records[key] = position_records.get(key, 0) + int(
                occupancy[src_cell]
            )

        return position_records, force_records, pr_models, fr_models

    # -- time integration (motion-update units) --------------------------------

    @property
    def forces(self) -> np.ndarray:
        """Current float32 forces (kcal/mol/A)."""
        return self._forces32

    @property
    def velocities(self) -> np.ndarray:
        """Current float32 velocities (A/fs)."""
        return self._velocities32

    def kinetic_energy(self) -> float:
        """Kinetic energy (kcal/mol) from the float32 velocity cache."""
        v = self._velocities32.astype(np.float64)
        ke = 0.5 * float(np.sum(self.system.masses * np.sum(v * v, axis=1)))
        return ke / KCAL_MOL_TO_INTERNAL

    def _accel32(self, forces: np.ndarray) -> np.ndarray:
        factor = (KCAL_MOL_TO_INTERNAL / self.system.masses).astype(np.float32)
        return forces * factor[:, None]

    def step(self, collect_traffic: bool = False) -> float:
        """Advance one timestep; returns the new potential energy.

        The motion-update unit integrates in float32; positions are held
        as fixed-point cell offsets, re-quantized when the position
        caches are rebuilt at the start of the next force phase.
        """
        if not self._primed:
            self._last_potential = self.compute_forces(collect_traffic).potential_energy
            self._primed = True
        with self.timings.phase("integrate"):
            dt = np.float32(self.config.dt_fs)
            accel = self._accel32(self._forces32)
            delta = (
                self._velocities32 * dt + np.float32(0.5) * accel * dt * dt
            ).astype(np.float64)
            before = self.system.positions.copy()
            self.system.positions += delta
            self.system.wrap()
            # MU-ring workload: particles that changed home cell (Sec. 3.2).
            from repro.core.migration import count_migrations

            self.last_migrations = count_migrations(
                self.grid, before, self.system.positions, self._cell_node
            )
        stats = self.compute_forces(collect_traffic)
        with self.timings.phase("integrate"):
            accel_new = self._accel32(self._forces32)
            self._velocities32 += np.float32(0.5) * (accel + accel_new) * dt
            # Keep the public system state consistent with the VC/FC
            # caches so analysis code sees the machine's actual
            # trajectory.
            self.system.velocities[:] = self._velocities32
            self.system.forces[:] = self._forces32
        self._last_potential = stats.potential_energy
        return self._last_potential

    def run(
        self, n_steps: int, record_every: int = 1, collect_traffic: bool = False
    ) -> List[EnergyRecord]:
        """Run ``n_steps`` timesteps, recording energies like the reference
        engine so the two histories compare directly (Fig. 19)."""
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        appended: List[EnergyRecord] = []
        if not self._primed:
            self._last_potential = self.compute_forces(collect_traffic).potential_energy
            self._primed = True
            rec = EnergyRecord(0, self.kinetic_energy(), self._last_potential)
            self.history.append(rec)
            appended.append(rec)
        start = self.history[-1].step if self.history else 0
        for i in range(1, n_steps + 1):
            self.step(collect_traffic)
            if record_every and i % record_every == 0:
                rec = EnergyRecord(
                    start + i, self.kinetic_energy(), self._last_potential
                )
                self.history.append(rec)
                appended.append(rec)
        return appended

    def measure_workload(self) -> StepStats:
        """One force pass with traffic collection, without advancing time.

        This is what the cycle/traffic models consume; the particle
        distribution is statistically stationary, so one pass
        characterizes the steady-state workload.
        """
        return self.compute_forces(collect_traffic=True)

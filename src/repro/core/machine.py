"""The FASDA machine: functional simulation of the full accelerator.

:class:`FasdaMachine` runs real MD timesteps through the modeled
datapath — fixed-point positions, float32 squared distances, table-lookup
force pipelines, float32 force/velocity state — organized exactly as the
hardware organizes it:

* one CBB per cell; home-home pairs plus the 13 half-shell neighbor
  cells (Newton's third law applied once per pair);
* home forces accumulate into the home FC bank, neighbor forces into the
  PE-local bank and return via the force ring ("adder tree" combination
  is the final bank sum);
* positions/forces crossing FPGA-node boundaries are packed into 512-bit
  packets and accounted per (source, destination) flow, with zero
  neighbor forces discarded (paper Sec. 5.4);
* position/force ring loads are accounted per node with the broadcast
  semantics of Sec. 4.5 (a position rides the ring once, visiting all
  its destination CBBs).

The machine produces both *physics* (trajectories, energies — compared
against the float64 reference in Fig. 19) and *workload statistics*
(candidates, acceptance, traffic, ring loads — the inputs to the cycle
model behind Figs. 16-18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arith.fixedpoint import FixedPointFormat
from repro.arith.interp import ForceTableSet
from repro.core.cellids import node_of_cell
from repro.core.config import MachineConfig
from repro.core.datapath import (
    ForcePipeline,
    PairFilter,
    quantize_cell_fractions,
)
from repro.core.rings import RingLoadModel, RingPath, cbb_ring_order
from repro.md.cells import CellGrid, CellList
from repro.md.dataset import build_dataset
from repro.md.kernels import scatter_add
from repro.md.pairplan import (
    candidates_per_cell,
    iter_pair_chunks,
    plan_for_grid,
)
from repro.md.engine import EnergyRecord
from repro.md.system import ParticleSystem
from repro.network.fabric import Fabric
from repro.util.errors import ConfigError, ValidationError
from repro.util.units import KCAL_MOL_TO_INTERNAL


@dataclass
class RingLoadSummary:
    """Per-node summary of one ring's load in one iteration."""

    total_records: int
    total_hops: int
    min_cycles: int
    mean_link_load: float

    @classmethod
    def from_model(cls, model: RingLoadModel) -> "RingLoadSummary":
        return cls(
            total_records=model.total_records,
            total_hops=model.total_hops,
            min_cycles=model.min_cycles,
            mean_link_load=model.mean_link_load,
        )


@dataclass
class StepStats:
    """Workload statistics from one force-evaluation pass.

    All arrays are indexed by global cell id; traffic dicts by node id.
    """

    candidates_per_cell: np.ndarray
    accepted_per_cell: np.ndarray
    occupancy_per_cell: np.ndarray
    potential_energy: float
    #: Remote traffic per directed node pair, in records.
    position_records: Dict[Tuple[int, int], int] = field(default_factory=dict)
    force_records: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Per-node position/force ring load summaries.
    pr_load: Dict[int, RingLoadSummary] = field(default_factory=dict)
    fr_load: Dict[int, RingLoadSummary] = field(default_factory=dict)
    #: Neighbor-force records produced per evaluating cell (nonzero only).
    neighbor_force_records_per_cell: Optional[np.ndarray] = None

    @property
    def total_candidates(self) -> int:
        return int(self.candidates_per_cell.sum())

    @property
    def total_accepted(self) -> int:
        return int(self.accepted_per_cell.sum())

    @property
    def acceptance_rate(self) -> float:
        """Fraction of candidate pairs passing the filter (~15.5% expected,
        paper Eq. 3)."""
        total = self.total_candidates
        return self.total_accepted / total if total else 0.0

    def fill_fabric(self, fabric: Fabric) -> None:
        """Load the remote record counts into a Fabric for Fig. 18 math."""
        for (src, dst), records in self.position_records.items():
            fabric.add_records(src, dst, "position", records)
        for (src, dst), records in self.force_records.items():
            fabric.add_records(src, dst, "force", records)


class FasdaMachine:
    """Functional + statistical simulator of a FASDA deployment.

    Parameters
    ----------
    config:
        The machine configuration (design point).
    system:
        Particle system to simulate; if None, the paper's dataset is
        generated for ``config.global_cells``.  The system is copied —
        the caller's arrays are never mutated.
    seed:
        Dataset seed when ``system`` is None.
    """

    def __init__(
        self,
        config: MachineConfig,
        system: Optional[ParticleSystem] = None,
        seed: int = 2023,
    ):
        self.config = config
        self.grid = CellGrid(config.global_cells, config.cutoff)
        if system is None:
            system, _ = build_dataset(
                config.global_cells, cutoff=config.cutoff, seed=seed
            )
        if not np.allclose(system.box, self.grid.box):
            raise ConfigError(
                f"system box {system.box} does not match config box {self.grid.box}"
            )
        self.system = system.copy()
        # Hardware state widths: velocities and forces are float32
        # (VC/FC are 32-bit), positions are fixed-point per cell.
        self._velocities32 = self.system.velocities.astype(np.float32)
        self._forces32 = np.zeros_like(self._velocities32)
        self.fmt = FixedPointFormat(frac_bits=config.frac_bits)
        self.tables = ForceTableSet(n_s=config.table_ns, n_b=config.table_nb)
        self.filter = PairFilter(self.tables.r2_min)
        self.pipeline = ForcePipeline(
            self.system.lj_table, config.cutoff, self.tables
        )
        # Optional second pipeline: the short-range Ewald electrostatic
        # term, structurally identical table lookup with a different ROM
        # image (paper Secs. 2.1, 3.4).
        self.coulomb_pipeline = None
        self._charges32 = None
        if config.force_model == "lj+coulomb":
            from repro.core.datapath import TabulatedRadialPipeline
            from repro.md.ewald import (
                choose_beta,
                ewald_real_energy_scalar,
                ewald_real_scalar,
            )

            self.ewald_beta = choose_beta(config.cutoff, config.ewald_tolerance)
            beta = self.ewald_beta
            self.coulomb_pipeline = TabulatedRadialPipeline.from_physical(
                lambda r2: ewald_real_scalar(r2, beta),
                lambda r2: ewald_real_energy_scalar(r2, beta),
                cutoff=config.cutoff,
                n_s=config.table_ns,
                n_b=config.table_nb,
            )
            self._charges32 = self.system.charges.astype(np.float32)
        # Static geometry: cell -> owning node.
        self._cell_coords = self.grid.cell_coords(
            np.arange(self.grid.n_cells, dtype=np.int64)
        )
        node_coords = node_of_cell(self._cell_coords, config.local_cells)
        fg = config.fpga_grid
        self._cell_node = (
            node_coords[:, 0] * fg[1] * fg[2]
            + node_coords[:, 1] * fg[2]
            + node_coords[:, 2]
        )
        # Local ring slot per cell (EX node occupies the last slot).
        order = cbb_ring_order(config.local_cells)
        local_index = {c: i for i, c in enumerate(order)}
        local_coords = self._cell_coords - node_coords * np.asarray(
            config.local_cells
        )
        self._cell_ring_slot = np.array(
            [local_index[tuple(c)] for c in local_coords], dtype=np.int64
        )
        self._ring_slots = config.cells_per_fpga + 1  # + EX
        self._ex_slot = config.cells_per_fpga
        # Static half-shell topology: the shared (cached) pair plan
        # carries every (home, neighbor, shift) triple as flat arrays.
        self._plan = plan_for_grid(self.grid)
        self._neighbor_cids = self._plan.neighbor_ids
        self.history: List[EnergyRecord] = []
        self._primed = False
        self._last_potential = 0.0
        self.last_stats: Optional[StepStats] = None
        #: Migration accounting from the most recent step (MU-ring load).
        self.last_migrations = None

    # -- force evaluation ------------------------------------------------------

    def _pipelines(
        self,
        dr: np.ndarray,
        r2: np.ndarray,
        gi: np.ndarray,
        gj: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All force pipelines over one admitted pair block.

        The LJ pipeline always runs; with ``force_model="lj+coulomb"``
        the Ewald pipeline consumes the *same* filtered pairs — in
        hardware the two pipelines sit side by side behind one filter
        bank, which is why the paper calls them "nearly identical".
        """
        spc = self.system.species
        f, e = self.pipeline.compute(dr, r2, spc[gi], spc[gj])
        if self.coulomb_pipeline is not None:
            qq = self._charges32[gi] * self._charges32[gj]
            fc, ec = self.coulomb_pipeline.compute(dr, r2, qq)
            f = f + fc
            e = e + ec
        return f, e

    def compute_forces(self, collect_traffic: bool = True) -> StepStats:
        """One full force-evaluation pass through the modeled datapath.

        Updates the internal float32 force banks and returns workload
        statistics.  Does not advance time.

        All candidate pairs flow through the filter and the force
        pipelines in step-wide batches from the shared pair plan; the
        per-(home cell, neighbor cell) workload statistics of the
        original per-cell traversal are recovered exactly — candidates
        analytically from cell occupancies, acceptance and unique
        neighbor-force records by segment counting over the batch.
        """
        cfg = self.config
        grid = self.grid
        plan = self._plan
        pos = self.system.positions
        n = self.system.n
        n_cells = grid.n_cells
        clist = CellList(grid, pos)
        coords = grid.coords_of_positions(pos)
        frac = quantize_cell_fractions(pos, coords, cfg.cutoff, self.fmt)

        home_bank = np.zeros((n, 3), dtype=np.float32)
        nbr_bank = np.zeros((n, 3), dtype=np.float32)
        candidates = candidates_per_cell(plan, clist.counts)
        accepted = np.zeros(n_cells, dtype=np.int64)
        # Unique neighbor particles touched per plan row — the per-block
        # force-return record counts of the hardware (zero forces and
        # duplicate touches within a block are coalesced).
        uniq_per_row = np.zeros(plan.n_rows, dtype=np.int64)
        potential = np.float32(0.0)

        # (source cell, dest node) pairs that carried at least one position.
        pos_sent: Dict[Tuple[int, int], bool] = {}
        force_records: Dict[Tuple[int, int], int] = {}
        pr_models = {
            n_: RingLoadModel(RingPath(self._ring_slots, +1))
            for n_ in range(cfg.n_fpgas)
        }
        fr_models = {
            n_: RingLoadModel(RingPath(self._ring_slots, -1))
            for n_ in range(cfg.n_fpgas)
        }
        # Position-ring destinations per (node, source slot) for broadcasts.
        pr_dests: Dict[Tuple[int, int], List[int]] = {}
        pr_counts: Dict[Tuple[int, int], int] = {}

        for chunk in iter_pair_chunks(plan, clist.counts, clist.start, clist.order):
            # Displacement home - neighbor = frac_h - offset - frac_n
            # (offset zero on home-home rows), exact in float64 for
            # quantized fractions.
            dr = frac[chunk.ii] - frac[chunk.jj] - plan.offset[chunk.row]
            res = self.filter.check(dr)
            if not res.n_accepted:
                continue
            m = res.mask
            ii = chunk.ii[m]
            jj = chunk.jj[m]
            row = chunk.row[m]
            scatter_add(accepted, plan.home[row])
            f, e = self._pipelines(dr[m], res.r2, ii, jj)
            sel = plan.is_self[row]
            scatter_add(home_bank, ii, f)
            if sel.any():
                scatter_add(home_bank, jj[sel], -f[sel])
            nsel = ~sel
            if nsel.any():
                scatter_add(nbr_bank, jj[nsel], -f[nsel])
                # Unique (row, neighbor particle) keys; chunks carry
                # whole rows, so per-chunk uniqueness is per-block exact.
                keys = np.unique(row[nsel] * np.int64(n) + jj[nsel])
                scatter_add(uniq_per_row, keys // np.int64(n))
            potential += e.sum(dtype=np.float32)

        nbr_frc_records = np.zeros(n_cells, dtype=np.int64)
        scatter_add(nbr_frc_records, plan.home, uniq_per_row)

        if collect_traffic:
            # Per-(home cell, neighbor cell) bookkeeping over the active
            # neighbor rows, in the same (cid, k) order as the hardware
            # schedules blocks.
            counts = clist.counts
            active_rows = np.flatnonzero(
                ~plan.is_self
                & (counts[plan.home] > 0)
                & (counts[plan.nbr] > 0)
            )
            for r in active_rows:
                cid = int(plan.home[r])
                ncid = int(plan.nbr[r])
                home_node = int(self._cell_node[cid])
                home_slot = int(self._cell_ring_slot[cid])
                src_node = int(self._cell_node[ncid])
                # Position stream: source cell -> this node (dedup per node).
                pos_sent[(ncid, home_node)] = True
                # Ring broadcast bookkeeping.
                key = (
                    home_node,
                    int(self._cell_ring_slot[ncid])
                    if src_node == home_node
                    else self._ex_slot + 10_000 + ncid,
                )
                pr_dests.setdefault(key, []).append(home_slot)
                pr_counts[key] = int(counts[ncid])
                uniq = int(uniq_per_row[r])
                if uniq:
                    if src_node != home_node:
                        key2 = (home_node, src_node)
                        force_records[key2] = force_records.get(key2, 0) + uniq
                    # Force-ring injection: evaluating CBB -> home CBB
                    # (or EX when remote).
                    dst_slot = (
                        int(self._cell_ring_slot[ncid])
                        if src_node == home_node
                        else self._ex_slot
                    )
                    fr_models[home_node].inject(home_slot, dst_slot, uniq)

        if collect_traffic:
            # Replay position broadcasts: one ring traversal per source
            # stream, visiting all destination CBBs (Sec. 4.5 semantics).
            for (node, src_key), dests in pr_dests.items():
                src_slot = src_key if src_key < self._ring_slots else self._ex_slot
                pr_models[node].broadcast(src_slot, dests, pr_counts[(node, src_key)])
            # Remote arriving forces also ride the destination node's FR
            # from EX to the home CBB.
            for (src, dst), recs in force_records.items():
                # records arrive at node dst via EX; home cells unknown at
                # this granularity — charge the mean path (EX to mid-ring).
                fr_models[dst].inject(
                    self._ex_slot, self._ring_slots // 2, recs
                )

        position_records: Dict[Tuple[int, int], int] = {}
        if collect_traffic:
            occupancy = clist.occupancies()
            for (src_cell, dst_node), _ in pos_sent.items():
                src_node = int(self._cell_node[src_cell])
                if src_node == dst_node:
                    continue
                key = (src_node, dst_node)
                position_records[key] = position_records.get(key, 0) + int(
                    occupancy[src_cell]
                )

        # Adder-tree combination of the FC banks (Sec. 4.5).
        self._forces32 = home_bank + nbr_bank

        stats = StepStats(
            candidates_per_cell=candidates,
            accepted_per_cell=accepted,
            occupancy_per_cell=clist.occupancies().copy(),
            potential_energy=float(potential),
            position_records=position_records,
            force_records=force_records,
            pr_load={n: RingLoadSummary.from_model(m) for n, m in pr_models.items()},
            fr_load={n: RingLoadSummary.from_model(m) for n, m in fr_models.items()},
            neighbor_force_records_per_cell=nbr_frc_records,
        )
        self.last_stats = stats
        return stats

    # -- time integration (motion-update units) --------------------------------

    @property
    def forces(self) -> np.ndarray:
        """Current float32 forces (kcal/mol/A)."""
        return self._forces32

    @property
    def velocities(self) -> np.ndarray:
        """Current float32 velocities (A/fs)."""
        return self._velocities32

    def kinetic_energy(self) -> float:
        """Kinetic energy (kcal/mol) from the float32 velocity cache."""
        v = self._velocities32.astype(np.float64)
        ke = 0.5 * float(np.sum(self.system.masses * np.sum(v * v, axis=1)))
        return ke / KCAL_MOL_TO_INTERNAL

    def _accel32(self, forces: np.ndarray) -> np.ndarray:
        factor = (KCAL_MOL_TO_INTERNAL / self.system.masses).astype(np.float32)
        return forces * factor[:, None]

    def step(self, collect_traffic: bool = False) -> float:
        """Advance one timestep; returns the new potential energy.

        The motion-update unit integrates in float32; positions are held
        as fixed-point cell offsets, re-quantized when the position
        caches are rebuilt at the start of the next force phase.
        """
        if not self._primed:
            self._last_potential = self.compute_forces(collect_traffic).potential_energy
            self._primed = True
        dt = np.float32(self.config.dt_fs)
        accel = self._accel32(self._forces32)
        delta = (
            self._velocities32 * dt + np.float32(0.5) * accel * dt * dt
        ).astype(np.float64)
        before = self.system.positions.copy()
        self.system.positions += delta
        self.system.wrap()
        # MU-ring workload: particles that changed home cell (Sec. 3.2).
        from repro.core.migration import count_migrations

        self.last_migrations = count_migrations(
            self.grid, before, self.system.positions, self._cell_node
        )
        stats = self.compute_forces(collect_traffic)
        accel_new = self._accel32(self._forces32)
        self._velocities32 += np.float32(0.5) * (accel + accel_new) * dt
        # Keep the public system state consistent with the VC/FC caches so
        # analysis code sees the machine's actual trajectory.
        self.system.velocities[:] = self._velocities32
        self.system.forces[:] = self._forces32
        self._last_potential = stats.potential_energy
        return self._last_potential

    def run(
        self, n_steps: int, record_every: int = 1, collect_traffic: bool = False
    ) -> List[EnergyRecord]:
        """Run ``n_steps`` timesteps, recording energies like the reference
        engine so the two histories compare directly (Fig. 19)."""
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        appended: List[EnergyRecord] = []
        if not self._primed:
            self._last_potential = self.compute_forces(collect_traffic).potential_energy
            self._primed = True
            rec = EnergyRecord(0, self.kinetic_energy(), self._last_potential)
            self.history.append(rec)
            appended.append(rec)
        start = self.history[-1].step if self.history else 0
        for i in range(1, n_steps + 1):
            self.step(collect_traffic)
            if record_every and i % record_every == 0:
                rec = EnergyRecord(
                    start + i, self.kinetic_energy(), self._last_potential
                )
                self.history.append(rec)
                appended.append(rec)
        return appended

    def measure_workload(self) -> StepStats:
        """One force pass with traffic collection, without advancing time.

        This is what the cycle/traffic models consume; the particle
        distribution is statistically stationary, so one pass
        characterizes the steady-state workload.
        """
        return self.compute_forces(collect_traffic=True)

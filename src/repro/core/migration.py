"""Particle migration accounting — the motion-update ring's workload.

The third on-chip ring (the MU ring, Sec. 3.2) "handles cases where
particles are relocated from one cell to another, transporting the
migrated particles to their target cells."  Migrations are rare at MD
timesteps (a particle moves ~1e-3 of a cell edge per step), which is why
the MU path never appears among the paper's bottlenecks — this module
quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.md.cells import CellGrid
from repro.util.errors import ValidationError


@dataclass
class MigrationStats:
    """Migration counts for one timestep.

    Attributes
    ----------
    total:
        Particles that changed home cell this step.
    cross_node:
        Migrations whose source and destination cells live on different
        FPGA nodes (these ride the inter-FPGA fabric, not just the ring).
    per_cell_outflow:
        Particles leaving each cell.
    """

    total: int
    cross_node: int
    per_cell_outflow: np.ndarray

    def rate(self, n_particles: int) -> float:
        """Fraction of particles that migrated."""
        return self.total / n_particles if n_particles else 0.0


def count_migrations(
    grid: CellGrid,
    positions_before: np.ndarray,
    positions_after: np.ndarray,
    cell_node: np.ndarray = None,
) -> MigrationStats:
    """Count home-cell changes between two wrapped position snapshots.

    Parameters
    ----------
    grid:
        The cell grid.
    positions_before / positions_after:
        Wrapped positions at consecutive timesteps.
    cell_node:
        Optional ``(n_cells,)`` cell -> node-id map for cross-node
        accounting (as built by :class:`~repro.core.machine.FasdaMachine`).
    """
    if positions_before.shape != positions_after.shape:
        raise ValidationError("position snapshots must have equal shapes")
    cids_before = grid.cell_id(grid.coords_of_positions(positions_before))
    cids_after = grid.cell_id(grid.coords_of_positions(positions_after))
    moved = cids_before != cids_after
    total = int(np.count_nonzero(moved))
    outflow = np.bincount(
        cids_before[moved], minlength=grid.n_cells
    ).astype(np.int64)
    cross = 0
    if cell_node is not None and total:
        cross = int(
            np.count_nonzero(
                cell_node[cids_before[moved]] != cell_node[cids_after[moved]]
            )
        )
    return MigrationStats(total=total, cross_node=cross, per_cell_outflow=outflow)


def expected_migration_rate(
    temperature_k: float, mass_amu: float, dt_fs: float, cell_edge: float
) -> float:
    """Kinetic-theory estimate of the per-step migration fraction.

    A particle within ``v * dt`` of a face leaves through it; with 6
    faces of a cube of edge ``a`` the expected fraction is about
    ``3 * <|v_x|> * dt / a`` where ``<|v_x|>`` is the mean absolute
    1-D thermal speed ``sqrt(2 kB T / (pi m))``.
    """
    from repro.util.units import BOLTZMANN_KCAL_MOL_K, KCAL_MOL_TO_INTERNAL

    if min(temperature_k, mass_amu, dt_fs, cell_edge) <= 0:
        raise ValidationError("all arguments must be positive")
    kt = BOLTZMANN_KCAL_MOL_K * temperature_k * KCAL_MOL_TO_INTERNAL
    mean_abs_vx = np.sqrt(2.0 * kt / (np.pi * mass_amu))
    return float(3.0 * mean_abs_vx * dt_fs / cell_edge)


def plan_partition_migration(
    per_cell_records: np.ndarray,
    old_cell_node: np.ndarray,
    new_cell_node: np.ndarray,
    records_per_packet: int,
):
    """Plan the cell moves a partition change requires (elastic rescale).

    Where :func:`count_migrations` accounts for *physics* moving
    particles between cells, this accounts for *policy* moving cells
    between nodes: every cell whose owner differs between the old and
    new partition maps contributes its current records to one
    (old owner -> new owner) migration flow.

    Parameters
    ----------
    per_cell_records:
        ``(n_cells,)`` record count per cell at the rescale boundary.
    old_cell_node / new_cell_node:
        ``(n_cells,)`` cell -> node-id maps before and after.
    records_per_packet:
        Packing factor for the packet counts (``MachineConfig``'s).

    Returns
    -------
    (MigrationStats, flows)
        ``MigrationStats`` with every moved record counted as
        cross-node (ownership changes are inter-node by definition) and
        ``per_cell_outflow`` nonzero exactly on moved cells; ``flows``
        maps ``(src_node, dst_node)`` — ascending — to
        ``{"cells": ndarray, "records": int, "packets": int}``.
        Record-free flows are planned (ownership still moves) but carry
        zero packets.
    """
    per_cell_records = np.asarray(per_cell_records, dtype=np.int64)
    old_cell_node = np.asarray(old_cell_node, dtype=np.int64)
    new_cell_node = np.asarray(new_cell_node, dtype=np.int64)
    if not (
        per_cell_records.shape == old_cell_node.shape == new_cell_node.shape
    ):
        raise ValidationError(
            "per-cell records and both partition maps must align"
        )
    if records_per_packet < 1:
        raise ValidationError("records_per_packet must be >= 1")
    moved = np.flatnonzero(old_cell_node != new_cell_node)
    outflow = np.zeros(per_cell_records.shape[0], dtype=np.int64)
    outflow[moved] = per_cell_records[moved]
    total = int(outflow.sum())
    flows = {}
    for cid in moved:
        key = (int(old_cell_node[cid]), int(new_cell_node[cid]))
        flows.setdefault(key, []).append(int(cid))
    ordered = {}
    for key in sorted(flows):
        cells = np.asarray(flows[key], dtype=np.int64)
        records = int(per_cell_records[cells].sum())
        ordered[key] = {
            "cells": cells,
            "records": records,
            "packets": int(-(-records // records_per_packet)),
        }
    stats = MigrationStats(
        total=total, cross_node=total, per_cell_outflow=outflow
    )
    return stats, ordered

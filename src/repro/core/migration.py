"""Particle migration accounting — the motion-update ring's workload.

The third on-chip ring (the MU ring, Sec. 3.2) "handles cases where
particles are relocated from one cell to another, transporting the
migrated particles to their target cells."  Migrations are rare at MD
timesteps (a particle moves ~1e-3 of a cell edge per step), which is why
the MU path never appears among the paper's bottlenecks — this module
quantifies that.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.md.cells import CellGrid
from repro.util.errors import ValidationError


@dataclass
class MigrationStats:
    """Migration counts for one timestep.

    Attributes
    ----------
    total:
        Particles that changed home cell this step.
    cross_node:
        Migrations whose source and destination cells live on different
        FPGA nodes (these ride the inter-FPGA fabric, not just the ring).
    per_cell_outflow:
        Particles leaving each cell.
    """

    total: int
    cross_node: int
    per_cell_outflow: np.ndarray

    def rate(self, n_particles: int) -> float:
        """Fraction of particles that migrated."""
        return self.total / n_particles if n_particles else 0.0


def count_migrations(
    grid: CellGrid,
    positions_before: np.ndarray,
    positions_after: np.ndarray,
    cell_node: np.ndarray = None,
) -> MigrationStats:
    """Count home-cell changes between two wrapped position snapshots.

    Parameters
    ----------
    grid:
        The cell grid.
    positions_before / positions_after:
        Wrapped positions at consecutive timesteps.
    cell_node:
        Optional ``(n_cells,)`` cell -> node-id map for cross-node
        accounting (as built by :class:`~repro.core.machine.FasdaMachine`).
    """
    if positions_before.shape != positions_after.shape:
        raise ValidationError("position snapshots must have equal shapes")
    cids_before = grid.cell_id(grid.coords_of_positions(positions_before))
    cids_after = grid.cell_id(grid.coords_of_positions(positions_after))
    moved = cids_before != cids_after
    total = int(np.count_nonzero(moved))
    outflow = np.bincount(
        cids_before[moved], minlength=grid.n_cells
    ).astype(np.int64)
    cross = 0
    if cell_node is not None and total:
        cross = int(
            np.count_nonzero(
                cell_node[cids_before[moved]] != cell_node[cids_after[moved]]
            )
        )
    return MigrationStats(total=total, cross_node=cross, per_cell_outflow=outflow)


def expected_migration_rate(
    temperature_k: float, mass_amu: float, dt_fs: float, cell_edge: float
) -> float:
    """Kinetic-theory estimate of the per-step migration fraction.

    A particle within ``v * dt`` of a face leaves through it; with 6
    faces of a cube of edge ``a`` the expected fraction is about
    ``3 * <|v_x|> * dt / a`` where ``<|v_x|>`` is the mean absolute
    1-D thermal speed ``sqrt(2 kB T / (pi m))``.
    """
    from repro.util.units import BOLTZMANN_KCAL_MOL_K, KCAL_MOL_TO_INTERNAL

    if min(temperature_k, mass_amu, dt_fs, cell_edge) <= 0:
        raise ValidationError("all arguments must be positive")
    kt = BOLTZMANN_KCAL_MOL_K * temperature_k * KCAL_MOL_TO_INTERNAL
    mean_abs_vx = np.sqrt(2.0 * kt / (np.pi * mass_amu))
    return float(3.0 * mean_abs_vx * dt_fs / cell_edge)

"""Functional model of the PE datapath: pair filter and force pipeline.

This reproduces the *numerics* of the hardware (paper Secs. 3.3-3.4,
Fig. 6) without simulating gates:

* positions arrive as fixed-point RCID + in-cell fraction coordinates in
  ``[1, 4)`` normalized units (cell edge = cutoff = 1);
* the **filter** computes the squared distance and admits pairs with
  ``r2 < R_c^2 = 1``; r2 is converted to float32 ("full utilization of
  the precision of both fixed-point raw positions and floating-point
  r2", paper Sec. 3.4);
* the **force pipeline** looks up per-element-pair coefficients, fetches
  interpolated ``r**-14`` / ``r**-8`` from the table set, and assembles
  the force vector, all in float32;
* an **energy path** (the 12/6 tables) tracks the LJ potential for the
  Fig. 19 energy-conservation comparison.

Everything is vectorized over pair arrays — one call models a batch of
pairs flowing through all of a PE's filters and its pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.arith.fixedpoint import FixedPointFormat
from repro.arith.interp import ForceTableSet
from repro.md.params import LJTable
from repro.util.errors import ValidationError


@dataclass
class FilterResult:
    """Outcome of a batch of pair-filter checks.

    Attributes
    ----------
    mask:
        Boolean array: pair admitted to the force pipeline.
    r2:
        float32 squared distances (normalized units) of *admitted* pairs.
    n_candidates / n_accepted:
        Counts for utilization accounting.
    """

    mask: np.ndarray
    r2: np.ndarray
    n_candidates: int
    n_accepted: int


class PairFilter:
    """The preliminary pair filter (paper Sec. 2.2 / Fig. 6 left).

    Parameters
    ----------
    r2_min:
        Exclusion threshold: pairs closer than this are non-physical
        (inside the table's excluded small-r region, paper Fig. 7) and
        rejected.  In a healthy simulation no pair ever lands there; the
        filter raises if one does, because silently dropping it would
        corrupt the physics.
    """

    def __init__(self, r2_min: float):
        if not 0.0 < r2_min < 1.0:
            raise ValidationError(f"r2_min must be in (0, 1), got {r2_min}")
        self.r2_min = float(r2_min)

    def check(self, dr: np.ndarray) -> FilterResult:
        """Filter displacement vectors ``dr`` (normalized, exact fixed-point
        differences).  Returns admitted mask and float32 r2 values."""
        dr = np.asarray(dr, dtype=np.float64)
        r2_exact = np.einsum("...k,...k->...", dr, dr)
        return self.admit_r2(r2_exact)

    def admit_r2(self, r2_exact: np.ndarray) -> FilterResult:
        """Filter precomputed exact float64 squared distances.

        The padded-broadcast fast path computes candidate ``r2`` without
        materializing every ``dr``; this entry point applies the exact
        same float32 conversion, cutoff test and small-r guard as
        :meth:`check`, so both paths admit bitwise-identical pair sets.
        """
        r2_f32 = np.asarray(r2_exact, dtype=np.float64).astype(np.float32)
        mask = r2_f32 < np.float32(1.0)
        below = mask & (r2_f32 < np.float32(self.r2_min))
        if np.any(below):
            raise ValidationError(
                f"{int(np.count_nonzero(below))} pair(s) inside the excluded "
                f"small-r region (r2 < {self.r2_min}); the simulation has "
                "collapsed or the dataset violates the minimum distance"
            )
        return FilterResult(
            mask=mask,
            r2=r2_f32[mask],
            n_candidates=int(mask.size),
            n_accepted=int(np.count_nonzero(mask)),
        )


class ForcePipeline:
    """The table-lookup force pipeline (paper Sec. 3.4, Fig. 6 right).

    Parameters
    ----------
    lj_table:
        Physical-unit LJ table; coefficients are pre-scaled to normalized
        space and folded with the force unit conversion, then rounded to
        float32 — the coefficient ROM image.
    cutoff:
        Cell edge / cutoff radius in angstrom (the normalization length).
    tables:
        Shared interpolation table set (one ROM image per machine).
    """

    def __init__(self, lj_table: LJTable, cutoff: float, tables: ForceTableSet):
        self.tables = tables
        norm = lj_table.scaled(cutoff)
        # Forces from normalized displacements are per-normalized-length;
        # fold the 1/cutoff back to physical kcal/mol/A in the ROM so the
        # pipeline emits physical forces directly.
        self._c14 = (norm.c14 / cutoff).astype(np.float32)
        self._c8 = (norm.c8 / cutoff).astype(np.float32)
        self._c12 = norm.c12.astype(np.float32)
        self._c6 = norm.c6.astype(np.float32)

    def compute(
        self,
        dr: np.ndarray,
        r2: np.ndarray,
        species_i: np.ndarray,
        species_j: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Force vectors (float32, kcal/mol/A) and pair energies (float32).

        Parameters
        ----------
        dr:
            ``(P, 3)`` admitted displacement vectors ``x_i - x_j`` in
            normalized units.
        r2:
            ``(P,)`` float32 squared distances from the filter.
        species_i / species_j:
            Element codes of the two particles (index the coefficient ROM).
        """
        r2 = np.asarray(r2, dtype=np.float32)
        dr32 = np.asarray(dr, dtype=np.float32)
        # One section/bin decode feeds all four coefficient ROMs, as in
        # hardware.  The upstream filter guarantees the domain.
        from repro.arith.interp import section_bin_indices

        ts = self.tables
        s, b = section_bin_indices(
            r2.astype(np.float64), ts.n_s, ts.n_b, checked=False
        )
        inv14 = ts[14].evaluate_f32_at(s, b, r2)
        inv8 = ts[8].evaluate_f32_at(s, b, r2)
        scalar = self._c14[species_i, species_j] * inv14 - self._c8[
            species_i, species_j
        ] * inv8
        forces = scalar[:, None] * dr32
        inv12 = ts[12].evaluate_f32_at(s, b, r2)
        inv6 = ts[6].evaluate_f32_at(s, b, r2)
        energies = (
            self._c12[species_i, species_j] * inv12
            - self._c6[species_i, species_j] * inv6
        )
        return forces, energies


class TabulatedRadialPipeline:
    """A force pipeline for *any* radial kernel — the generality claim.

    Paper Sec. 3.4: "a further benefit of this method is that it
    supports generality by enabling different force models to be
    implemented with trivial modification."  The modification is
    literally a different ROM image: this pipeline carries one force
    table ``S'(r2')`` and one energy table ``E'(r2')`` in normalized
    units (cell edge = cutoff = 1) and computes

        F_vec = scale_ij * S'(r2') * dr'      [kcal/mol/A]
        V     = scale_ij * E'(r2')            [kcal/mol]

    where ``scale_ij`` is the per-pair coefficient (e.g. ``q_i * q_j``
    for electrostatics, 1.0 for a pre-folded kernel).  The section/bin
    indexing, float32 MAC, and filter stage are identical to the LJ
    pipeline — same hardware, new contents.

    Use :meth:`from_physical` to build the normalized tables from a
    physical-unit kernel.
    """

    def __init__(self, force_table, energy_table):
        self.force_table = force_table
        self.energy_table = energy_table

    @classmethod
    def from_physical(
        cls,
        force_scalar_fn,
        energy_scalar_fn,
        cutoff: float,
        n_s: int = 14,
        n_b: int = 256,
    ) -> "TabulatedRadialPipeline":
        """Build from physical-unit radial kernels.

        Parameters
        ----------
        force_scalar_fn:
            ``S(r2_phys)`` with ``F_vec = scale * S * dr_phys``
            (kcal/mol/A per angstrom of displacement).
        energy_scalar_fn:
            ``E(r2_phys)`` with ``V = scale * E`` (kcal/mol).
        cutoff:
            Normalization length (cell edge) in angstrom.

        The normalized force table folds both the argument scaling
        (``r2 = cutoff^2 * r2'``) and the displacement scaling
        (``dr = cutoff * dr'``) so the pipeline emits physical forces
        from normalized inputs.
        """
        from repro.arith.interp import RadialTable  # local: avoid cycle

        c2 = cutoff * cutoff
        force_table = RadialTable(
            lambda r2n: force_scalar_fn(c2 * np.asarray(r2n)) * cutoff,
            n_s=n_s,
            n_b=n_b,
        )
        energy_table = RadialTable(
            lambda r2n: energy_scalar_fn(c2 * np.asarray(r2n)), n_s=n_s, n_b=n_b
        )
        return cls(force_table, energy_table)

    def compute(
        self,
        dr: np.ndarray,
        r2: np.ndarray,
        pair_scale: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Force vectors (float32) and pair energies (float32).

        Parameters
        ----------
        dr:
            ``(P, 3)`` admitted displacements in normalized units.
        r2:
            ``(P,)`` float32 squared distances from the filter.
        pair_scale:
            ``(P,)`` per-pair coefficients (float32-convertible).
        """
        r2 = np.asarray(r2, dtype=np.float32)
        dr32 = np.asarray(dr, dtype=np.float32)
        scale = np.asarray(pair_scale, dtype=np.float32)
        scalar = scale * self.force_table.evaluate_f32(r2)
        forces = scalar[:, None] * dr32
        energies = scale * self.energy_table.evaluate_f32(r2)
        return forces, energies


def quantize_cell_fractions(
    positions: np.ndarray,
    cell_coords: np.ndarray,
    cell_edge: float,
    fmt: FixedPointFormat,
) -> np.ndarray:
    """In-cell fixed-point fractions for each particle.

    ``frac = position / cell_edge - cell_coord``, quantized to the
    position format.  This is the Position Cache contents (PC stores
    "fixed-point positions representing position offsets in a cell",
    paper Sec. 3.1).
    """
    frac = positions / cell_edge - cell_coords
    # Numerical safety: clamp tiny negative / >=1 excursions from the
    # division before quantizing (a particle exactly on a face).
    frac = np.clip(frac, 0.0, np.nextafter(1.0, 0.0))
    return fmt.quantize_fraction(frac)

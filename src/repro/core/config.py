"""Machine configuration: every knob of the FASDA design, plus the named
design points evaluated in the paper.

A :class:`MachineConfig` fixes both the *problem mapping* (global cell
grid, how cells are divided across FPGA nodes) and the *microarchitecture*
(PEs per SPE, SPEs per SCBB, filters per pipeline, clock, packet geometry,
fixed-point width, interpolation-table size).  Everything downstream —
the functional machine, the cycle model, the resource model, the traffic
model — reads the same config, mirroring how one `compile.sh 222 444`
invocation fixes the whole bitstream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.util.errors import ConfigError

#: Cutoff radius used throughout the paper's evaluation (angstrom).
PAPER_CUTOFF_A = 8.5
#: FPGA clock used in the evaluation.
PAPER_CLOCK_MHZ = 200.0


@dataclass(frozen=True)
class MachineConfig:
    """Full configuration of a FASDA deployment.

    Parameters
    ----------
    global_cells:
        Total simulation space in cells, e.g. ``(4, 4, 4)``.
    fpga_grid:
        How the cell space is partitioned across FPGA nodes, e.g.
        ``(2, 2, 2)`` = 8 FPGAs each owning a 2x2x2 block of cells.
        Every ``global_cells[i]`` must divide evenly by ``fpga_grid[i]``.
    pes_per_spe:
        PEs grouped into one Scalable PE (paper Sec. 4.5).
    spes_per_cbb:
        SPEs per Scalable Cell Building Block (paper Sec. 4.6).
    filters_per_pipeline:
        Pair filters feeding each force pipeline (paper: 6, matched to
        the ~15.5% pair acceptance rate so the pipeline stays full).
    clock_mhz:
        Fabric clock.
    cutoff:
        Cutoff radius = cell edge, angstrom.
    dt_fs:
        MD timestep (paper: 2 fs).
    frac_bits:
        Fixed-point position fraction bits.
    table_ns / table_nb:
        Interpolation table sections / bins per section.
    packet_bits / records_per_packet:
        AXI-Stream packet geometry (paper: 512 bits, 4 records).
    link_gbps:
        Line rate per QSFP28 port.
    inter_fpga_latency_cycles:
        One-way application-to-application latency between neighboring
        FPGAs, in fabric cycles.  The paper stresses this is "only a few
        cycles beyond time-of-flight"; through a 100 GbE switch the
        time-of-flight plus MAC is ~1 us ~ 200 cycles at 200 MHz.
    cooldown_cycles:
        Minimum gap between packet departures per port (peak spreading).
        The default of 8 is the smallest value that keeps the worst-case
        synchronized incast lossless: up to 7 neighbors each sending one
        512-bit packet per 8 cycles aggregate to 7/8 packet/cycle at the
        destination port, just under its ~0.98 packet/cycle drain rate
        (100 Gbps at 200 MHz) — see the comm-overlap simulation.
    pipeline_depth_cycles:
        Force pipeline latency (fill/drain accounting).
    mu_pipeline_depth_cycles:
        Motion-update unit latency.
    """

    global_cells: Tuple[int, int, int]
    fpga_grid: Tuple[int, int, int] = (1, 1, 1)
    pes_per_spe: int = 1
    spes_per_cbb: int = 1
    filters_per_pipeline: int = 6
    clock_mhz: float = PAPER_CLOCK_MHZ
    cutoff: float = PAPER_CUTOFF_A
    dt_fs: float = 2.0
    frac_bits: int = 23
    table_ns: int = 14
    table_nb: int = 256
    packet_bits: int = 512
    records_per_packet: int = 4
    link_gbps: float = 100.0
    inter_fpga_latency_cycles: int = 200
    cooldown_cycles: int = 8
    pipeline_depth_cycles: int = 40
    mu_pipeline_depth_cycles: int = 12
    #: RL force model: "lj" (the paper's evaluation) or "lj+coulomb"
    #: (adds the short-range Ewald electrostatic term through a second,
    #: structurally identical table-lookup pipeline — paper Sec. 2.1).
    force_model: str = "lj"
    #: erfc(beta * R_c) tolerance selecting the Ewald splitting parameter.
    ewald_tolerance: float = 1e-5

    def __post_init__(self) -> None:
        gc = tuple(int(d) for d in self.global_cells)
        fg = tuple(int(d) for d in self.fpga_grid)
        object.__setattr__(self, "global_cells", gc)
        object.__setattr__(self, "fpga_grid", fg)
        if len(gc) != 3 or any(d < 3 for d in gc):
            raise ConfigError(f"global_cells must be 3 dims >= 3, got {gc}")
        if len(fg) != 3 or any(d < 1 for d in fg):
            raise ConfigError(f"fpga_grid must be 3 positive dims, got {fg}")
        for g, f in zip(gc, fg):
            if g % f != 0:
                raise ConfigError(
                    f"global_cells {gc} not divisible by fpga_grid {fg}"
                )
        if self.pes_per_spe < 1 or self.spes_per_cbb < 1:
            raise ConfigError("pes_per_spe and spes_per_cbb must be >= 1")
        if self.filters_per_pipeline < 1:
            raise ConfigError("filters_per_pipeline must be >= 1")
        if self.clock_mhz <= 0 or self.cutoff <= 0 or self.dt_fs <= 0:
            raise ConfigError("clock_mhz, cutoff, dt_fs must be positive")
        if self.cooldown_cycles < 1:
            raise ConfigError("cooldown_cycles must be >= 1")
        if self.force_model not in ("lj", "lj+coulomb"):
            raise ConfigError(
                f"force_model must be 'lj' or 'lj+coulomb', got {self.force_model!r}"
            )
        if not 0 < self.ewald_tolerance < 1:
            raise ConfigError("ewald_tolerance must be in (0, 1)")

    # -- derived geometry -----------------------------------------------------

    @property
    def local_cells(self) -> Tuple[int, int, int]:
        """Cells per FPGA node along each axis."""
        return tuple(g // f for g, f in zip(self.global_cells, self.fpga_grid))

    @property
    def n_fpgas(self) -> int:
        """Number of FPGA nodes."""
        return int(np.prod(self.fpga_grid))

    @property
    def cells_per_fpga(self) -> int:
        """CBBs (home cells) per FPGA node."""
        return int(np.prod(self.local_cells))

    @property
    def n_cells(self) -> int:
        """Total cells in the simulation space."""
        return int(np.prod(self.global_cells))

    @property
    def pes_per_cbb(self) -> int:
        """Total PEs serving one cell."""
        return self.pes_per_spe * self.spes_per_cbb

    @property
    def pes_per_fpga(self) -> int:
        """Total PEs per FPGA node."""
        return self.pes_per_cbb * self.cells_per_fpga

    @property
    def clock_hz(self) -> float:
        """Fabric clock in Hz."""
        return self.clock_mhz * 1e6

    @property
    def cycle_seconds(self) -> float:
        """Seconds per fabric cycle."""
        return 1.0 / self.clock_hz

    @property
    def box(self) -> np.ndarray:
        """Simulation box edge lengths (angstrom)."""
        return np.asarray(self.global_cells, dtype=np.float64) * self.cutoff

    @property
    def is_distributed(self) -> bool:
        """True when more than one FPGA node participates."""
        return self.n_fpgas > 1

    def with_scaling(self, pes_per_spe: int, spes_per_cbb: int) -> "MachineConfig":
        """Copy with a different strong-scaling module configuration."""
        return replace(self, pes_per_spe=pes_per_spe, spes_per_cbb=spes_per_cbb)

    @classmethod
    def from_compile_args(cls, per_fpga: str, total: str, **kwargs) -> "MachineConfig":
        """Parse the artifact's ``compile.sh`` arguments.

        The artifact configures a build as ``./compile.sh 222 444`` —
        "2x2x2 cells per FPGA, and 4x4x4 cells in total".  Each argument
        is three digits, one per axis.

        >>> MachineConfig.from_compile_args("222", "444").fpga_grid
        (2, 2, 2)
        """
        def parse(arg: str) -> Tuple[int, int, int]:
            if len(arg) != 3 or not arg.isdigit():
                raise ConfigError(
                    f"compile argument must be three digits like '222', got {arg!r}"
                )
            return (int(arg[0]), int(arg[1]), int(arg[2]))

        local = parse(per_fpga)
        global_cells = parse(total)
        if any(l == 0 for l in local):
            raise ConfigError("cells per FPGA must be nonzero per axis")
        fpga_grid = []
        for g, l in zip(global_cells, local):
            if g % l != 0:
                raise ConfigError(
                    f"total cells {global_cells} not divisible by per-FPGA {local}"
                )
            fpga_grid.append(g // l)
        return cls(global_cells, tuple(fpga_grid), **kwargs)

    def describe(self) -> str:
        """One-line human-readable summary."""
        gc, fg, lc = self.global_cells, self.fpga_grid, self.local_cells
        return (
            f"{gc[0]}x{gc[1]}x{gc[2]} cells on {self.n_fpgas} FPGA(s) "
            f"({lc[0]}x{lc[1]}x{lc[2]} each), {self.spes_per_cbb}-SPE "
            f"{self.pes_per_spe}-PE, {self.filters_per_pipeline} filters/pipe "
            f"@ {self.clock_mhz:g} MHz"
        )


# -- the paper's named design points ------------------------------------------


def weak_scaling_configs() -> Dict[str, MachineConfig]:
    """The four weak-scaling points of Fig. 16: 3x3x3 cells per FPGA."""
    return {
        "3x3x3": MachineConfig((3, 3, 3), (1, 1, 1)),
        "6x3x3": MachineConfig((6, 3, 3), (2, 1, 1)),
        "6x6x3": MachineConfig((6, 6, 3), (2, 2, 1)),
        "6x6x6": MachineConfig((6, 6, 6), (2, 2, 2)),
    }


def strong_scaling_configs() -> Dict[str, MachineConfig]:
    """The 4x4x4 strong-scaling points of Fig. 16 / Table 1.

    A: 1 SPE x 1 PE;  B: 1 SPE x 3 PE;  C: 2 SPE x 3 PE — all on 8 FPGAs
    with 2x2x2 cells each.
    """
    base = MachineConfig((4, 4, 4), (2, 2, 2))
    return {
        "4x4x4-A": base.with_scaling(pes_per_spe=1, spes_per_cbb=1),
        "4x4x4-B": base.with_scaling(pes_per_spe=3, spes_per_cbb=1),
        "4x4x4-C": base.with_scaling(pes_per_spe=3, spes_per_cbb=2),
    }


def simulated_scaling_configs() -> Dict[str, MachineConfig]:
    """The simulated large deployments of Fig. 16 right: 64 and 125 FPGAs,
    2x2x2 cells each, best strong-scaling microarchitecture (C)."""
    return {
        "8x8x8-64F": MachineConfig(
            (8, 8, 8), (4, 4, 4), pes_per_spe=3, spes_per_cbb=2
        ),
        "10x10x10-125F": MachineConfig(
            (10, 10, 10), (5, 5, 5), pes_per_spe=3, spes_per_cbb=2
        ),
    }


def all_paper_configs() -> Dict[str, MachineConfig]:
    """Every named design point in the evaluation, in paper order."""
    out: Dict[str, MachineConfig] = {}
    out.update(weak_scaling_configs())
    out.update(strong_scaling_configs())
    out.update(simulated_scaling_configs())
    return out

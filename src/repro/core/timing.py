"""Lightweight per-phase step timing.

Both :class:`~repro.core.machine.FasdaMachine` and
:class:`~repro.core.distributed.DistributedMachine` own a
:class:`StepTimings` instance.  Timing is **off by default**: while
disabled, ``phase(name)`` returns a shared no-op context manager whose
``__enter__``/``__exit__`` are empty methods, so the instrumented hot
path pays two attribute lookups and a falsy branch per phase — no
``perf_counter`` calls, no dict writes.  Enabled, each phase records
monotonic cumulative wall seconds plus a call count.

The phases instrumented by this repo:

==============  =========================================================
``build``       cell-state / node-state (re)construction, quantization
``force``       the LJ force pass (kernel + scatter)
``traffic``     position/force flow accounting (group-bys, records)
``ring``        ring-load charging (link range-adds)
``exchange``    halo position exchange packing/unpacking (distributed)
``integrate``   velocity-Verlet updates in ``step()``
==============  =========================================================

``snapshot()`` returns a plain ``{phase: seconds}`` dict (plus
``{phase}_calls`` counters) suitable for JSON; the machines copy it
into ``StepStats.timings`` when enabled.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class _NullPhase:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_PHASE = _NullPhase()


class _Phase:
    """Accumulating context manager for one named phase."""

    __slots__ = ("seconds", "calls", "_t0")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self._t0 = 0.0

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._t0
        self.calls += 1
        return None


class StepTimings:
    """Monotonic per-phase wall-clock counters; near-zero overhead off.

    >>> t = StepTimings(enabled=True)
    >>> with t.phase("force"):
    ...     pass
    >>> t.snapshot()["force_calls"]
    1
    """

    __slots__ = ("enabled", "_phases")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._phases: Dict[str, _Phase] = {}

    def phase(self, name: str):
        if not self.enabled:
            return _NULL_PHASE
        ph = self._phases.get(name)
        if ph is None:
            ph = self._phases[name] = _Phase()
        return ph

    def reset(self) -> None:
        self._phases.clear()

    def snapshot(self) -> Optional[Dict[str, float]]:
        """``{phase: cumulative_seconds, phase_calls: n}`` or ``None`` off."""
        if not self.enabled:
            return None
        out: Dict[str, float] = {}
        for name, ph in self._phases.items():
            out[name] = ph.seconds
            out[name + "_calls"] = ph.calls
        return out

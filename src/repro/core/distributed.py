"""Distributed execution: per-node state, real packet exchange, ID conversion.

:class:`~repro.core.machine.FasdaMachine` computes globally and *accounts*
traffic; this module executes the way the cluster actually does:

* each node owns only its local cells' particles (position cache
  contents: quantized fractions + species + ids);
* boundary-cell positions are packed into :class:`~repro.core.packets.Packet`
  objects by a per-node P2R encapsulator chain — one copy per destination
  *node*, exactly like the hardware's departure gates;
* on arrival, the receiving node converts the record's global cell
  coordinates through GCID -> LCID (node-relative) and LCID -> RCID
  (cell-relative) — the actual Sec. 4.2 machinery, exercised on real data;
* each node evaluates its home cells against local + halo data, returns
  nonzero neighbor forces as force packets, and integrates its particles.

The distributed trajectory must agree with the global machine's within
float32 accumulation-order noise — asserted by the equivalence tests —
which is precisely the guarantee the homogeneous-ID design gives the
real cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arith.fixedpoint import FixedPointFormat
from repro.arith.interp import ForceTableSet
from repro.core.cellids import (
    RCID_HOME,
    gcid_to_lcid,
    lcid_to_rcid,
    node_of_cell,
)
from repro.core.config import MachineConfig
from repro.core.datapath import ForcePipeline, PairFilter, quantize_cell_fractions
from repro.core.packets import P2REncapsulatorChain, Packet, Record
from repro.md.cells import CellGrid, CellList, HALF_SHELL_OFFSETS
from repro.md.dataset import build_dataset
from repro.md.kernels import scatter_add
from repro.md.pairplan import ROWS_PER_CELL, iter_pair_chunks, plan_for_grid
from repro.md.engine import EnergyRecord
from repro.md.system import ParticleSystem
from repro.util.errors import ConfigError, ValidationError
from repro.util.units import KCAL_MOL_TO_INTERNAL


@dataclass
class _CellData:
    """One cell's position-cache contents on its owning node."""

    particle_ids: np.ndarray       # global particle indices
    fractions: np.ndarray          # quantized in-cell offsets, (n, 3)
    species: np.ndarray


@dataclass
class _Node:
    """One FPGA node's private state."""

    node_id: int
    node_coords: np.ndarray
    local_cells: List[int] = field(default_factory=list)   # global cell ids
    cells: Dict[int, _CellData] = field(default_factory=dict)
    halo: Dict[int, _CellData] = field(default_factory=dict)
    #: Packets received this phase (for statistics).
    packets_in: int = 0
    packets_out: int = 0


class DistributedMachine:
    """Executes a FASDA deployment node by node with explicit exchange.

    Parameters mirror :class:`~repro.core.machine.FasdaMachine`.  This
    implementation favors protocol fidelity over speed — use the global
    machine for large sweeps.
    """

    def __init__(
        self,
        config: MachineConfig,
        system: Optional[ParticleSystem] = None,
        seed: int = 2023,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ):
        """See class docstring.

        Parameters
        ----------
        parallel:
            Evaluate nodes concurrently with a thread pool (NumPy kernels
            release the GIL).  Each node accumulates into a private force
            bank merged afterward, so results are independent of worker
            scheduling.
        max_workers:
            Thread-pool size (defaults to the node count).
        """
        if not config.is_distributed:
            raise ConfigError("DistributedMachine needs more than one node")
        self.parallel = parallel
        self.max_workers = max_workers
        self.config = config
        self.grid = CellGrid(config.global_cells, config.cutoff)
        if system is None:
            system, _ = build_dataset(
                config.global_cells, cutoff=config.cutoff, seed=seed
            )
        if not np.allclose(system.box, self.grid.box):
            raise ConfigError("system box does not match config box")
        self.system = system.copy()
        self._velocities32 = self.system.velocities.astype(np.float32)
        self._forces32 = np.zeros_like(self._velocities32)
        self.fmt = FixedPointFormat(frac_bits=config.frac_bits)
        self.tables = ForceTableSet(n_s=config.table_ns, n_b=config.table_nb)
        self.filter = PairFilter(self.tables.r2_min)
        self.pipeline = ForcePipeline(self.system.lj_table, config.cutoff, self.tables)
        # Optional Ewald pipeline (same dual-pipeline arrangement as the
        # global machine); charges travel in the position payload.
        self.coulomb_pipeline = None
        self._charges32 = None
        if config.force_model == "lj+coulomb":
            from repro.core.datapath import TabulatedRadialPipeline
            from repro.md.ewald import (
                choose_beta,
                ewald_real_energy_scalar,
                ewald_real_scalar,
            )

            self.ewald_beta = choose_beta(config.cutoff, config.ewald_tolerance)
            beta = self.ewald_beta
            self.coulomb_pipeline = TabulatedRadialPipeline.from_physical(
                lambda r2: ewald_real_scalar(r2, beta),
                lambda r2: ewald_real_energy_scalar(r2, beta),
                cutoff=config.cutoff,
                n_s=config.table_ns,
                n_b=config.table_nb,
            )
            self._charges32 = self.system.charges.astype(np.float32)
        # Static geometry.
        n_cells = self.grid.n_cells
        self._cell_coords = self.grid.cell_coords(np.arange(n_cells, dtype=np.int64))
        node_coords = node_of_cell(self._cell_coords, config.local_cells)
        fg = config.fpga_grid
        self._cell_node = (
            node_coords[:, 0] * fg[1] * fg[2]
            + node_coords[:, 1] * fg[2]
            + node_coords[:, 2]
        )
        self._node_coords = {
            n: np.array(
                [n // (fg[1] * fg[2]), (n // fg[2]) % fg[1], n % fg[2]],
                dtype=np.int64,
            )
            for n in range(config.n_fpgas)
        }
        # Half-shell topology from the shared (cached) pair plan and, per
        # cell, the destination nodes its particles must reach (the P2R
        # chain's gate assignments).
        plan = plan_for_grid(self.grid)
        self._plan = plan
        self._neighbor_cids = plan.neighbor_ids
        home_nodes = self._cell_node[plan.home]
        nbr_nodes = self._cell_node[plan.nbr]
        remote = ~plan.is_self & (home_nodes != nbr_nodes)
        self._send_targets: Dict[int, List[int]] = {
            c: [] for c in range(n_cells)
        }
        # ncid's particles are needed at the home cell's node.
        flows = np.unique(
            np.stack([plan.nbr[remote], home_nodes[remote]], axis=1), axis=0
        )
        for src_cell, dst_node in flows:
            self._send_targets[int(src_cell)].append(int(dst_node))
        self.history: List[EnergyRecord] = []
        self._primed = False
        self._last_potential = 0.0
        self.total_position_packets = 0
        self.total_force_packets = 0

    # -- node construction per step --------------------------------------------

    def _build_nodes(self) -> Dict[int, _Node]:
        """Partition the current particle state across nodes."""
        cfg = self.config
        clist = CellList(self.grid, self.system.positions)
        coords = self.grid.coords_of_positions(self.system.positions)
        frac = quantize_cell_fractions(
            self.system.positions, coords, cfg.cutoff, self.fmt
        )
        nodes = {
            n: _Node(node_id=n, node_coords=self._node_coords[n])
            for n in range(cfg.n_fpgas)
        }
        for cid in range(self.grid.n_cells):
            owner = int(self._cell_node[cid])
            idx = clist.particles_in_cell(cid)
            nodes[owner].local_cells.append(cid)
            nodes[owner].cells[cid] = _CellData(
                particle_ids=idx.copy(),
                fractions=frac[idx],
                species=self.system.species[idx],
            )
        return nodes

    # -- position exchange ------------------------------------------------------

    def _exchange_positions(self, nodes: Dict[int, _Node]) -> None:
        """Pack, send, and unpack boundary-cell positions as packets."""
        mailboxes: Dict[int, List[Packet]] = {n: [] for n in nodes}
        for node in nodes.values():
            neighbor_nodes = sorted(
                {t for cid in node.local_cells for t in self._send_targets[cid]}
            )
            if not neighbor_nodes:
                continue
            chain = P2REncapsulatorChain(
                neighbor_nodes, self.config.records_per_packet
            )
            out: List[Packet] = []
            for cid in node.local_cells:
                targets = self._send_targets[cid]
                if not targets:
                    continue
                data = node.cells[cid]
                cell = tuple(int(c) for c in self._cell_coords[cid])
                for pid, fq, sp in zip(
                    data.particle_ids, data.fractions, data.species
                ):
                    record = Record(
                        "position",
                        int(pid),
                        cell,
                        (float(fq[0]), float(fq[1]), float(fq[2]), int(sp)),
                    )
                    out.extend(chain.route(record, targets))
            out.extend(chain.flush_all())
            node.packets_out += len(out)
            for pkt in out:
                mailboxes[pkt.dst].append(pkt)
        # Arrival: unpack, convert GCID -> LCID, bucket into the halo.
        gd = self.config.global_cells
        ld = self.config.local_cells
        for node in nodes.values():
            buckets: Dict[int, List[Tuple[int, Tuple[float, ...], int]]] = {}
            for pkt in mailboxes[node.node_id]:
                node.packets_in += 1
                for rec in pkt.records:
                    # The Sec. 4.2 conversion: express the sender's global
                    # cell in this node's homogeneous local space, then
                    # map back to the global id for bucketing.  The LCID
                    # round-trip is exercised (and asserted) here.
                    lcid = gcid_to_lcid(
                        np.asarray(rec.cell), node.node_coords, ld, gd
                    )
                    origin = node.node_coords * np.asarray(ld)
                    back = tuple(int(v) for v in np.mod(lcid + origin, gd))
                    if back != rec.cell:
                        raise ValidationError("LCID conversion corrupted a cell id")
                    gcid_int = int(self.grid.cell_id(np.asarray(rec.cell)))
                    buckets.setdefault(gcid_int, []).append(
                        (rec.particle_id, rec.payload, int(rec.payload[3]))
                    )
            for gcid_int, items in buckets.items():
                node.halo[gcid_int] = _CellData(
                    particle_ids=np.array([i[0] for i in items], dtype=np.int64),
                    fractions=np.array(
                        [[i[1][0], i[1][1], i[1][2]] for i in items]
                    ),
                    species=np.array([i[2] for i in items], dtype=np.int32),
                )
        self.total_position_packets += sum(n.packets_out for n in nodes.values())

    # -- force evaluation -------------------------------------------------------

    def _cell_view(self, node: _Node, cid: int) -> Optional[_CellData]:
        if cid in node.cells:
            return node.cells[cid]
        return node.halo.get(cid)

    def _pipelines(
        self,
        dr: np.ndarray,
        r2: np.ndarray,
        species_i: np.ndarray,
        species_j: np.ndarray,
        gi: np.ndarray,
        gj: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """LJ pipeline plus (optionally) the Ewald pipeline.

        Species come from the local/halo cell data (the position record
        payload); charges index the global table by particle id, which
        a hardware node would likewise carry in its position payload.
        """
        f, e = self.pipeline.compute(dr, r2, species_i, species_j)
        if self.coulomb_pipeline is not None:
            qq = self._charges32[gi] * self._charges32[gj]
            fc, ec = self.coulomb_pipeline.compute(dr, r2, qq)
            f = f + fc
            e = e + ec
        return f, e

    def _verify_id_conversion(self, node: _Node) -> None:
        """Assert the Sec. 4.2 GCID -> LCID -> RCID machinery on this node.

        For every (home cell, half-shell neighbor) pair of the node, the
        offset recovered through the homogeneous local ID space must
        equal the geometric half-shell offset — this is the check the
        per-cell loop performed inline before displacement evaluation.
        """
        if not node.local_cells:
            return
        gd = self.config.global_cells
        ld = self.config.local_cells
        local = np.asarray(node.local_cells, dtype=np.int64)
        home_lcid = gcid_to_lcid(
            self._cell_coords[local], node.node_coords, ld, gd
        )
        nbr_lcid = gcid_to_lcid(
            self._cell_coords[self._neighbor_cids[local]],
            node.node_coords,
            ld,
            gd,
        )
        rcid = lcid_to_rcid(nbr_lcid, home_lcid[:, None, :], gd)
        offsets = np.asarray(HALF_SHELL_OFFSETS, dtype=np.int64)
        if not np.array_equal(rcid - RCID_HOME, np.broadcast_to(
            offsets[None, :, :], rcid.shape
        )):
            raise ValidationError("RCID conversion mismatch")

    def _evaluate_node(
        self, node: _Node
    ) -> Tuple[np.ndarray, float, Dict[int, List[Tuple[int, np.ndarray]]]]:
        """Evaluate one node's home cells against local + halo data.

        Returns the node's private force bank (global-sized, float32),
        its partial potential, and the neighbor-force records destined
        for other nodes — no shared state is touched, so nodes evaluate
        concurrently.

        The node's visible cells (local + halo) are concatenated into
        flat position-cache arrays and all candidate pairs of the node's
        plan rows flow through the filter and pipelines in batches, like
        the global machine's hot path.
        """
        plan = self._plan
        n_cells = self.grid.n_cells
        bank = np.zeros((self.system.n, 3), dtype=np.float32)
        potential = np.float32(0.0)
        returns: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        self._verify_id_conversion(node)

        # Concatenate visible cells (ascending cid) into bucket arrays.
        visible = sorted(
            list(node.cells.items()) + list(node.halo.items())
        )
        counts = np.zeros(n_cells, dtype=np.int64)
        for cid, data in visible:
            counts[cid] = len(data.particle_ids)
        start = np.concatenate([[0], np.cumsum(counts)])
        if start[-1] == 0:
            return bank, float(potential), returns
        frac_cat = np.concatenate(
            [d.fractions.reshape(-1, 3) for _, d in visible]
        )
        pid_cat = np.concatenate([d.particle_ids for _, d in visible])
        spc_cat = np.concatenate([d.species for _, d in visible])
        owner_is_local = self._cell_node == node.node_id

        rows = (
            np.asarray(sorted(node.local_cells), dtype=np.int64)[:, None]
            * ROWS_PER_CELL
            + np.arange(ROWS_PER_CELL, dtype=np.int64)[None, :]
        ).reshape(-1)
        n_slots = np.int64(start[-1])

        for chunk in iter_pair_chunks(plan, counts, start, rows=rows):
            dr = (
                frac_cat[chunk.ii]
                - frac_cat[chunk.jj]
                - plan.offset[chunk.row]
            )
            res = self.filter.check(dr)
            if not res.n_accepted:
                continue
            m = res.mask
            ii = chunk.ii[m]
            jj = chunk.jj[m]
            row = chunk.row[m]
            f, e = self._pipelines(
                dr[m], res.r2,
                spc_cat[ii], spc_cat[jj],
                pid_cat[ii], pid_cat[jj],
            )
            scatter_add(bank, pid_cat[ii], f)
            potential += e.sum(dtype=np.float32)
            # Reaction forces: straight into the bank when the neighbor
            # particle lives on this node, else per-(block, particle)
            # records returned to the owner.
            keep = plan.is_self[row] | owner_is_local[plan.nbr[row]]
            if keep.any():
                scatter_add(bank, pid_cat[jj[keep]], -f[keep])
            rem = ~keep
            if rem.any():
                # One record per (plan row, neighbor particle), forces
                # coalesced — chunks carry whole rows, so per-chunk
                # grouping is per-block exact; ascending keys preserve
                # the (home cell, offset, slot) record order of the
                # hardware's return stream.
                keys, inv = np.unique(
                    row[rem] * n_slots + jj[rem], return_inverse=True
                )
                fr = np.zeros((len(keys), 3), dtype=np.float32)
                scatter_add(fr, inv, -f[rem])
                urow = keys // n_slots
                uslot = keys % n_slots
                owners = self._cell_node[plan.nbr[urow]]
                upid = pid_cat[uslot]
                for t in range(len(keys)):
                    returns.setdefault(int(owners[t]), []).append(
                        (int(upid[t]), fr[t])
                    )
        return bank, float(potential), returns

    def compute_forces(self) -> float:
        """One distributed force pass; returns the potential energy."""
        nodes = self._build_nodes()
        self._exchange_positions(nodes)
        node_list = [nodes[n] for n in sorted(nodes)]
        if self.parallel:
            from concurrent.futures import ThreadPoolExecutor

            workers = self.max_workers or len(node_list)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                results = list(pool.map(self._evaluate_node, node_list))
        else:
            results = [self._evaluate_node(node) for node in node_list]

        # Deterministic merge in node-id order (independent of worker
        # scheduling): sum banks, apply returned neighbor forces.
        home_bank = np.zeros((self.system.n, 3), dtype=np.float32)
        potential = np.float32(0.0)
        return_records: Dict[int, List[Tuple[int, np.ndarray]]] = {
            n.node_id: [] for n in node_list
        }
        for bank, pot, returns in results:
            home_bank += bank
            potential += np.float32(pot)
            for owner, records in returns.items():
                return_records[owner].extend(records)
        # Force return: pack nonzero neighbor forces into packets.
        for node in node_list:
            records = return_records[node.node_id]
            if records:
                for pid, fvec in records:
                    home_bank[pid] += fvec
                self.total_force_packets += int(
                    np.ceil(len(records) / self.config.records_per_packet)
                )
        self._forces32 = home_bank
        self._last_potential = float(potential)
        return self._last_potential

    # -- integration ------------------------------------------------------------

    @property
    def forces(self) -> np.ndarray:
        return self._forces32

    @property
    def velocities(self) -> np.ndarray:
        return self._velocities32

    def kinetic_energy(self) -> float:
        v = self._velocities32.astype(np.float64)
        ke = 0.5 * float(np.sum(self.system.masses * np.sum(v * v, axis=1)))
        return ke / KCAL_MOL_TO_INTERNAL

    def _accel32(self, forces: np.ndarray) -> np.ndarray:
        factor = (KCAL_MOL_TO_INTERNAL / self.system.masses).astype(np.float32)
        return forces * factor[:, None]

    def step(self) -> float:
        """One distributed timestep (identical integrator to the machine)."""
        if not self._primed:
            self.compute_forces()
            self._primed = True
        dt = np.float32(self.config.dt_fs)
        accel = self._accel32(self._forces32)
        delta = (
            self._velocities32 * dt + np.float32(0.5) * accel * dt * dt
        ).astype(np.float64)
        self.system.positions += delta
        self.system.wrap()
        self.compute_forces()
        accel_new = self._accel32(self._forces32)
        self._velocities32 += np.float32(0.5) * (accel + accel_new) * dt
        self.system.velocities[:] = self._velocities32
        self.system.forces[:] = self._forces32
        return self._last_potential

    def run(self, n_steps: int, record_every: int = 1) -> List[EnergyRecord]:
        """Run steps with energy recording (same schema as the machine)."""
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        appended: List[EnergyRecord] = []
        if not self._primed:
            self.compute_forces()
            self._primed = True
            rec = EnergyRecord(0, self.kinetic_energy(), self._last_potential)
            self.history.append(rec)
            appended.append(rec)
        start = self.history[-1].step if self.history else 0
        for i in range(1, n_steps + 1):
            self.step()
            if record_every and i % record_every == 0:
                rec = EnergyRecord(
                    start + i, self.kinetic_energy(), self._last_potential
                )
                self.history.append(rec)
                appended.append(rec)
        return appended

"""Distributed execution: per-node state, real packet exchange, ID conversion.

:class:`~repro.core.machine.FasdaMachine` computes globally and *accounts*
traffic; this module executes the way the cluster actually does:

* each node owns only its local cells' particles (position cache
  contents: quantized fractions + species + ids);
* boundary-cell positions are packed into :class:`~repro.core.packets.Packet`
  objects by a per-node P2R encapsulator chain — one copy per destination
  *node*, exactly like the hardware's departure gates;
* on arrival, the receiving node converts the record's global cell
  coordinates through GCID -> LCID (node-relative) and LCID -> RCID
  (cell-relative) — the actual Sec. 4.2 machinery, exercised on real data;
* each node evaluates its home cells against local + halo data, returns
  nonzero neighbor forces as force packets, and integrates its particles.

The distributed trajectory must agree with the global machine's within
float32 accumulation-order noise — asserted by the equivalence tests —
which is precisely the guarantee the homogeneous-ID design gives the
real cluster.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.arith.fixedpoint import FixedPointFormat
from repro.arith.interp import ForceTableSet
from repro.core.cellids import (
    RCID_HOME,
    cell_node_ids,
    gcid_to_lcid,
    lcid_to_rcid,
)
from repro.core.config import MachineConfig
from repro.core.datapath import ForcePipeline, PairFilter, quantize_cell_fractions
from repro.core.elasticity import LoadBalancer, fpga_grid_for
from repro.core.migration import plan_partition_migration
from repro.core.packets import P2REncapsulatorChain, Packet, Record, RecordBatch
from repro.core.timing import StepTimings
from repro.faults import (
    DegradationRecord,
    FaultInjector,
    NodeFaultInjector,
    NodeFaultPlan,
    RecoveryRecord,
    RescaleAbortedRecord,
    RescaleRecord,
    TransportConfig,
    TransportStats,
    send_flow,
)
from repro.network.netsim import Burst, OutputQueuedSwitch, SwitchStats
from repro.faults.nodes import REPLAY_CYCLES_PER_RECORD
from repro.md.backends import resolve_backend
from repro.md.cells import CellGrid, CellList, HALF_SHELL_OFFSETS
from repro.md.dataset import build_dataset
from repro.md.kernels import scatter_add
from repro.md.pairplan import ROWS_PER_CELL, iter_pair_chunks, plan_for_grid
from repro.md.engine import EnergyRecord
from repro.md.system import ParticleSystem
from repro.util.errors import (
    ConfigError,
    NodeFailureError,
    TransportError,
    ValidationError,
)
from repro.util.units import KCAL_MOL_TO_INTERNAL


@dataclass
class _CellData:
    """One cell's position-cache contents on its owning node."""

    particle_ids: np.ndarray       # global particle indices
    fractions: np.ndarray          # quantized in-cell offsets, (n, 3)
    species: np.ndarray


@dataclass
class _Node:
    """One FPGA node's private state."""

    node_id: int
    node_coords: np.ndarray
    local_cells: List[int] = field(default_factory=list)   # global cell ids
    cells: Dict[int, _CellData] = field(default_factory=dict)
    halo: Dict[int, _CellData] = field(default_factory=dict)
    #: Packets received this phase (for statistics).
    packets_in: int = 0
    packets_out: int = 0


#: Machine inherited by forked evaluation workers (set just before the
#: fork; the machine's tables/pipelines hold lambdas and cannot be
#: pickled, but a forked child shares them by copy-on-write).
_FORK_MACHINE: Optional["DistributedMachine"] = None


def _fork_eval_node(node: "_Node"):
    """Process-pool entry point: evaluate one node in a forked worker."""
    return _FORK_MACHINE._evaluate_node(node)


def _fork_eval_node_shm(task: Tuple[int, int, int]):
    """Zero-copy process-pool entry point.

    ``task`` is only ``(node_id, pid_offset, pid_len)``; everything
    bulky — current fractions, the per-node particle-id catalog, the
    per-node force bank — lives in :mod:`multiprocessing.shared_memory`
    segments the forked worker inherited by mapping, so nothing big is
    pickled in either direction.
    """
    return _FORK_MACHINE._evaluate_node_shm(task)


class DistributedMachine:
    """Executes a FASDA deployment node by node with explicit exchange.

    Parameters mirror :class:`~repro.core.machine.FasdaMachine`.  This
    implementation favors protocol fidelity over speed — use the global
    machine for large sweeps.
    """

    def __init__(
        self,
        config: MachineConfig,
        system: Optional[ParticleSystem] = None,
        seed: int = 2023,
        parallel=False,
        max_workers: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
        transport: Optional[TransportConfig] = None,
        degradation: str = "stale",
        node_faults=None,
        shadow_interval: int = 5,
        watchdog_timeout_cycles: float = 10_000.0,
    ):
        """See class docstring.

        Parameters
        ----------
        parallel:
            Evaluate nodes concurrently.  ``False`` runs serially;
            ``True`` or ``"thread"`` uses a thread pool (NumPy kernels
            release the GIL); ``"process"`` uses a forked process pool
            (node evaluation reads only static machine state, so forked
            workers stay valid across steps).  Each node accumulates
            into a private force bank and results are merged in node-id
            order regardless of worker scheduling, so every mode
            produces the bitwise-identical trajectory.
        max_workers:
            Pool size (defaults to the node count).
        injector:
            Fault injection for the position exchange.  A plan with all
            rates zero leaves the trajectory bitwise identical to a run
            without an injector (asserted by the fault tests).
        transport:
            Reliable-transport parameters layered over the lossy fabric;
            packets the injector drops/corrupts are retransmitted (with
            cycle accounting in :attr:`transport_stats`) until the retry
            budget runs out.  ``None`` models the paper's bare UDP.
        degradation:
            What to do about halo records lost beyond recovery:
            ``"stale"`` substitutes the last good snapshot of the cell
            (recording a :class:`~repro.faults.DegradationRecord` with a
            force-error bound) while ``"raise"`` raises
            :class:`~repro.util.errors.TransportError`.  Loss with no
            stale snapshot to fall back on always raises.
        node_faults:
            A :class:`~repro.faults.NodeFaultPlan` (or prebuilt
            :class:`~repro.faults.NodeFaultInjector`) of board-level
            crash/slowdown faults.  Crashes engage the lossless recovery
            protocol (see :meth:`_node_fault_preamble`): the trajectory
            stays bitwise identical to a fault-free run; only
            :attr:`recovery_log` and the traffic/cycle accounting
            differ.  ``None`` disables the whole path.
        shadow_interval:
            Iterations between buddy shadow checkpoints — each node
            periodically ships its cell contents to its ring buddy, the
            state a crash replays from.  Smaller intervals mean less
            replay but more steady-state shadow traffic (the chaos-soak
            harness sweeps exactly this trade-off).
        watchdog_timeout_cycles:
            Detection cost charged per crash: the time the survivors'
            chained-sync watchdog needs to flag the silent peer (see
            :func:`~repro.core.sync.diagnose_dead_node`).
        """
        if not config.is_distributed:
            raise ConfigError("DistributedMachine needs more than one node")
        if degradation not in ("stale", "raise"):
            raise ConfigError(
                f"degradation must be 'stale' or 'raise', got {degradation!r}"
            )
        if shadow_interval < 1:
            raise ConfigError(
                f"shadow_interval must be >= 1, got {shadow_interval}"
            )
        if watchdog_timeout_cycles < 0:
            raise ConfigError("watchdog_timeout_cycles must be >= 0")
        self.parallel = parallel
        self.max_workers = max_workers
        self.injector = injector
        self.transport = transport
        self.degradation = degradation
        self.config = config
        self.grid = CellGrid(config.global_cells, config.cutoff)
        if system is None:
            system, _ = build_dataset(
                config.global_cells, cutoff=config.cutoff, seed=seed
            )
        if not np.allclose(system.box, self.grid.box):
            raise ConfigError("system box does not match config box")
        self.system = system.copy()
        self._velocities32 = self.system.velocities.astype(np.float32)
        self._forces32 = np.zeros_like(self._velocities32)
        self.fmt = FixedPointFormat(frac_bits=config.frac_bits)
        self.tables = ForceTableSet(n_s=config.table_ns, n_b=config.table_nb)
        self.filter = PairFilter(self.tables.r2_min)
        self.pipeline = ForcePipeline(self.system.lj_table, config.cutoff, self.tables)
        # Optional Ewald pipeline (same dual-pipeline arrangement as the
        # global machine); charges travel in the position payload.
        self.coulomb_pipeline = None
        self._charges32 = None
        if config.force_model == "lj+coulomb":
            from repro.core.datapath import TabulatedRadialPipeline
            from repro.md.ewald import (
                choose_beta,
                ewald_real_energy_scalar,
                ewald_real_scalar,
            )

            self.ewald_beta = choose_beta(config.cutoff, config.ewald_tolerance)
            beta = self.ewald_beta
            self.coulomb_pipeline = TabulatedRadialPipeline.from_physical(
                lambda r2: ewald_real_scalar(r2, beta),
                lambda r2: ewald_real_energy_scalar(r2, beta),
                cutoff=config.cutoff,
                n_s=config.table_ns,
                n_b=config.table_nb,
            )
            self._charges32 = self.system.charges.astype(np.float32)
        # Static geometry (partition-independent: the cell grid and the
        # half-shell pair plan never change, only cell *ownership* does).
        n_cells = self.grid.n_cells
        self._cell_coords = self.grid.cell_coords(np.arange(n_cells, dtype=np.int64))
        plan = plan_for_grid(self.grid)
        self._plan = plan
        self._neighbor_cids = plan.neighbor_ids
        # Partition-derived structures (rebuilt on every elastic rescale).
        self._apply_partition(config)
        #: Exchange implementation: "batched" (array-packed RecordBatch
        #: per flow) or "loop" (per-particle Record objects through the
        #: P2R chain — the retained protocol oracle).
        self.exchange_impl = "batched"
        #: Force backend (see :mod:`repro.md.backends`), inherited by
        #: every node's evaluation: the fused gather/displacement
        #: kernel feeds the unchanged
        #: :meth:`~repro.core.datapath.PairFilter.admit_r2`, so per-node
        #: admissions, forces, statistics and traffic are bitwise
        #: identical across backends.  ``None`` = process-wide default.
        self.force_impl: Optional[str] = None
        #: Reuse the node partition and the per-flow packing skeletons
        #: across steps while the cell assignment is unchanged (see
        #: :meth:`_build_nodes`).  Off by default: the per-step path is
        #: the oracle the reuse path is asserted bitwise-equal against.
        self.reuse_state = False
        #: Node-structure rebuilds / reuse hits under ``reuse_state``.
        self.state_builds = 0
        self.state_reused_steps = 0
        self._nodes_cache: Optional[Dict[int, _Node]] = None
        self._build_cids: Optional[np.ndarray] = None
        self._flow_static: Optional[Dict[Tuple[int, int], Optional[dict]]] = None
        self._last_frac: Optional[np.ndarray] = None
        self._last_cids: Optional[np.ndarray] = None
        self._executor = None
        self._executor_kind = None
        #: Per-phase wall-clock counters (build/exchange/force/integrate);
        #: off by default — see :class:`~repro.core.timing.StepTimings`.
        self.timings = StepTimings()
        # -- zero-copy process parallelism (multiprocessing.shared_memory) --
        # Created lazily at the first injector-free "process" force pass,
        # *before* the pool forks so workers inherit the mappings; the
        # parent refreshes the fraction segment in place each step and
        # rewrites the partition metadata only when the binning changes.
        self._owner_pid = os.getpid()
        self._shm_ok: Optional[bool] = None
        self._shm_segs: List = []
        self._shm_frac: Optional[np.ndarray] = None
        self._shm_banks: Optional[np.ndarray] = None
        self._shm_counts: Optional[np.ndarray] = None
        self._shm_pids: Optional[np.ndarray] = None
        self._shm_meta_cids: Optional[np.ndarray] = None
        self._shm_tasks: Optional[List[Tuple[int, int, int]]] = None
        self.history: List[EnergyRecord] = []
        self._primed = False
        self._last_potential = 0.0
        self.total_position_packets = 0
        self.total_force_packets = 0
        # -- resilience state (inert without an injector) -------------------
        #: Force-pass index, the fault keys' iteration component.
        self._iteration = 0
        #: (dst node, cell id) -> (capture iteration, last good halo data).
        self._stale_halo: Dict[Tuple[int, int], Tuple[int, _CellData]] = {}
        #: Reliability-layer accounting accumulated over all force passes.
        self.transport_stats = TransportStats()
        #: Every stale-halo substitution, in occurrence order.
        self.degradation_log: List[DegradationRecord] = []
        #: Records lost this force pass that degradation papered over.
        self.last_degraded_records = 0
        self._lipschitz: Optional[float] = None
        # -- node-failure recovery state (inert without node_faults) --------
        if isinstance(node_faults, NodeFaultPlan):
            node_faults = NodeFaultInjector(node_faults)
        self.node_injector: Optional[NodeFaultInjector] = node_faults
        self.shadow_interval = int(shadow_interval)
        self.watchdog_timeout_cycles = float(watchdog_timeout_cycles)
        #: Every completed crash recovery, in occurrence order.
        self.recovery_log: List[RecoveryRecord] = []
        #: node id -> iteration at which its restart completes.
        self._down_until: Dict[int, int] = {}
        #: Iteration of the last buddy shadow capture (None before any).
        self._shadow_iteration: Optional[int] = None
        #: node id -> records it held at the last shadow capture.
        self._shadow_records: Dict[int, int] = {}
        #: Records shipped to buddies by the periodic shadow captures.
        self.shadow_traffic_records = 0
        #: (iteration, node, factor) for every node-slowdown fault.
        self.node_slowdown_log: List[Tuple[int, int, float]] = []
        # -- elasticity state (inert until rescale()/balancer use) ----------
        #: Every committed rescale, in occurrence order.
        self.rescale_log: List[RescaleRecord] = []
        #: Every rolled-back rescale attempt, in occurrence order.
        self.rescale_aborted_log: List[RescaleAbortedRecord] = []
        #: Switch-model accounting of all committed migration traffic.
        self.migration_switch_stats = SwitchStats(delivered=0, dropped=0)
        #: Transport accounting of all migration flows (committed *and*
        #: aborted attempts — attempted traffic is real traffic).
        self.migration_transport_stats = TransportStats()
        #: Optional :class:`~repro.core.elasticity.LoadBalancer` driving
        #: :meth:`maybe_rescale`; assign one to make the machine elastic.
        self.balancer: Optional[LoadBalancer] = None

    # -- partition ---------------------------------------------------------------

    def _apply_partition(self, config: MachineConfig) -> None:
        """(Re)derive every partition-dependent structure from ``config``.

        Runs at construction and again at every rescale commit.  Physics
        state (positions, velocities, force banks) is untouched: the
        distributed evaluation always computes the canonical partition's
        result, so changing cell ownership here never changes the
        trajectory — only which node does which work and what crosses
        the fabric.
        """
        self.config = config
        n_cells = self.grid.n_cells
        fg = config.fpga_grid
        self._cell_node = cell_node_ids(
            self._cell_coords, config.local_cells, fg
        )
        self._node_coords = {
            n: np.array(
                [n // (fg[1] * fg[2]), (n // fg[2]) % fg[1], n % fg[2]],
                dtype=np.int64,
            )
            for n in range(config.n_fpgas)
        }
        # Half-shell topology from the shared (cached) pair plan and, per
        # cell, the destination nodes its particles must reach (the P2R
        # chain's gate assignments).
        plan = self._plan
        home_nodes = self._cell_node[plan.home]
        nbr_nodes = self._cell_node[plan.nbr]
        remote = ~plan.is_self & (home_nodes != nbr_nodes)
        self._send_targets: Dict[int, List[int]] = {
            c: [] for c in range(n_cells)
        }
        # ncid's particles are needed at the home cell's node.
        flows = np.unique(
            np.stack([plan.nbr[remote], home_nodes[remote]], axis=1), axis=0
        )
        for src_cell, dst_node in flows:
            self._send_targets[int(src_cell)].append(int(dst_node))
        # Per-(src node, dst node) flow: the ascending source cells whose
        # particles ship src -> dst.  This is the batched view of the
        # same gate assignments: one RecordBatch per flow replaces the
        # per-particle chain walk, with identical packet counts (each
        # gate fills from its cells in ascending-cid order and flushes
        # once at end of iteration).
        self._node_flows: Dict[Tuple[int, int], np.ndarray] = {}
        if len(flows):
            fsrc = self._cell_node[flows[:, 0]]
            fkeys = fsrc * np.int64(config.n_fpgas) + flows[:, 1]
            for key in np.unique(fkeys):
                sel = fkeys == key
                self._node_flows[
                    (int(key) // config.n_fpgas, int(key) % config.n_fpgas)
                ] = np.sort(flows[sel, 0])
        #: Node -> owned global cell ids (ascending), shared by the
        #: pickled and shared-memory evaluation paths.
        self._local_cells_static = {
            k: np.flatnonzero(self._cell_node == k)
            for k in range(config.n_fpgas)
        }

    def _invalidate_partition_caches(self) -> None:
        """Drop every structure keyed by the *old* partition.

        Reuse skeletons, stale-halo snapshots, buddy-shadow bookkeeping,
        the evaluation pool, and the shared-memory segments are all
        shaped or keyed by node ids/counts; after a partition change
        each is rebuilt lazily on the canonical (oracle) path, so
        dropping them is always bitwise-safe.
        """
        self._nodes_cache = None
        self._build_cids = None
        self._flow_static = None
        self._stale_halo.clear()
        self._shadow_iteration = None
        self._shadow_records = {}
        self._shutdown_pool()
        self._release_shm()

    # -- node construction per step --------------------------------------------

    def _build_nodes(self) -> Dict[int, _Node]:
        """Partition the current particle state across nodes.

        With :attr:`reuse_state` on, the partition (which particles live
        in which cell on which node) is kept across steps while no
        particle changes cell — the distributed evaluation enumerates
        *every* plan-row slot pair from the binning, so identical binning
        alone makes reuse bitwise identical; no skin criterion is needed.
        Reused steps only refresh the per-cell fraction payloads (one
        gather per cell of the cached index arrays, exactly the values a
        fresh split would produce) and clear the per-step halo/packet
        state.  Any cell-assignment change triggers a full rebuild of the
        partition and the flow packing skeletons.
        """
        cfg = self.config
        coords = self.grid.coords_of_positions(self.system.positions)
        frac = quantize_cell_fractions(
            self.system.positions, coords, cfg.cutoff, self.fmt
        )
        self._last_frac = frac
        cids = self.grid.cell_id(coords)
        self._last_cids = cids
        if self.reuse_state:
            if self._nodes_cache is not None and np.array_equal(
                cids, self._build_cids
            ):
                self.state_reused_steps += 1
                nodes = self._nodes_cache
                for node in nodes.values():
                    node.packets_in = 0
                    node.packets_out = 0
                    node.halo.clear()
                    for data in node.cells.values():
                        data.fractions = frac[data.particle_ids]
                return nodes
            self._build_cids = cids
            self.state_builds += 1
        clist = CellList(self.grid, self.system.positions)
        nodes = {
            n: _Node(node_id=n, node_coords=self._node_coords[n])
            for n in range(cfg.n_fpgas)
        }
        for cid in range(self.grid.n_cells):
            owner = int(self._cell_node[cid])
            idx = clist.particles_in_cell(cid)
            nodes[owner].local_cells.append(cid)
            nodes[owner].cells[cid] = _CellData(
                particle_ids=idx.copy(),
                fractions=frac[idx],
                species=self.system.species[idx],
            )
        if self.reuse_state:
            self._nodes_cache = nodes
            self._flow_static = None  # packing skeletons follow the build
        return nodes

    # -- position exchange ------------------------------------------------------

    def _exchange_positions(self, nodes: Dict[int, _Node]) -> None:
        """Pack, send, and unpack boundary-cell positions.

        Dispatches on :attr:`exchange_impl` — the batched path ships one
        array-packed :class:`~repro.core.packets.RecordBatch` per
        (source node, destination node) flow; the loop path walks the
        per-particle :class:`~repro.core.packets.Record` /
        :class:`~repro.core.packets.P2REncapsulatorChain` protocol and
        is retained as the equivalence oracle (identical halos and
        packet counts, asserted by the tests).
        """
        if self.exchange_impl == "loop":
            if self.injector is not None:
                raise ConfigError(
                    "fault injection requires the batched exchange path "
                    "(exchange_impl='batched')"
                )
            self._exchange_positions_loop(nodes)
        else:
            self._exchange_positions_batched(nodes)

    def _exchange_positions_batched(self, nodes: Dict[int, _Node]) -> None:
        """Array-packed exchange: one RecordBatch per (src, dst) flow.

        Gate-chain equivalence: the loop's per-destination gate receives
        exactly this flow's records in ascending (cell, slot) order and
        flushes once at end of iteration, so its packet count is
        ``ceil(n_records / records_per_packet)`` — precisely
        :meth:`~repro.core.packets.RecordBatch.n_packets`.
        """
        rpp = self.config.records_per_packet
        gd = np.asarray(self.config.global_cells, dtype=np.int64)
        ld = self.config.local_cells
        if self.reuse_state and self._flow_static is None:
            # Packing skeletons: everything about a flow's RecordBatch
            # except the fraction payload is frozen with the binning
            # (ids, species, cell coords, per-cell run boundaries), so
            # it is concatenated once per rebuild and the per-step pack
            # becomes a single gather of the current fractions —
            # concatenating per-cell gathers equals gathering the
            # concatenated index, element for element.
            self._flow_static = {}
            for (src, dst), cids in self._node_flows.items():
                node = nodes[src]
                parts = [node.cells[int(c)] for c in cids]
                occ = np.array(
                    [len(p.particle_ids) for p in parts], dtype=np.int64
                )
                if int(occ.sum()) == 0:
                    self._flow_static[(src, dst)] = None
                    continue
                # The payload buffer is part of the skeleton: the species
                # column is frozen with the binning, so reused steps only
                # gather the current fractions into columns 0..2 (halo
                # cells copy out of the batch, so reuse cannot alias).
                payload = np.empty((int(occ.sum()), 4))
                payload[:, 3] = np.concatenate([p.species for p in parts])
                self._flow_static[(src, dst)] = dict(
                    occ=occ,
                    starts=np.concatenate([[0], np.cumsum(occ)]),
                    pids=np.concatenate([p.particle_ids for p in parts]),
                    payload=payload,
                    fracbuf=np.empty((int(occ.sum()), 3)),
                    cells=np.repeat(self._cell_coords[cids], occ, axis=0),
                )
        for (src, dst), cids in self._node_flows.items():
            node = nodes[src]
            if self.reuse_state and self._flow_static is not None:
                ent = self._flow_static[(src, dst)]
                if ent is None:
                    continue
                occ = ent["occ"]
                payload = ent["payload"]
                np.take(self._last_frac, ent["pids"], axis=0, out=ent["fracbuf"])
                payload[:, :3] = ent["fracbuf"]
                batch = RecordBatch(
                    kind="position",
                    dst=int(dst),
                    particle_ids=ent["pids"],
                    cells=ent["cells"],
                    payload=payload,
                )
            else:
                parts = [node.cells[int(c)] for c in cids]
                occ = np.array(
                    [len(p.particle_ids) for p in parts], dtype=np.int64
                )
                if int(occ.sum()) == 0:
                    continue
                payload = np.empty((int(occ.sum()), 4))
                payload[:, :3] = np.concatenate(
                    [p.fractions.reshape(-1, 3) for p in parts]
                )
                payload[:, 3] = np.concatenate([p.species for p in parts])
                batch = RecordBatch(
                    kind="position",
                    dst=int(dst),
                    particle_ids=np.concatenate(
                        [p.particle_ids for p in parts]
                    ),
                    cells=np.repeat(self._cell_coords[cids], occ, axis=0),
                    payload=payload,
                )
            n_pkts = batch.n_packets(rpp)
            node.packets_out += n_pkts
            self.total_position_packets += n_pkts
            dnode = nodes[int(dst)]
            # Fault exposure: resolve which packets of this flow survive
            # the fabric (plus any retransmissions the transport pays
            # for).  Without an injector every record arrives and the
            # hot path below is byte-for-byte the lossless one.
            rec_ok = None
            if self.injector is not None:
                ok_pkts, tstats = send_flow(
                    self.injector, int(src), int(dst), "position",
                    self._iteration, n_pkts, self.transport,
                )
                self.transport_stats += tstats
                node.packets_out += tstats.retransmits
                self.total_position_packets += tstats.retransmits
                dnode.packets_in += tstats.delivered
                if tstats.lost:
                    rec_ok = np.repeat(ok_pkts, rpp)[: batch.n_records]
            else:
                dnode.packets_in += n_pkts
            # Arrival: whole-batch GCID -> LCID conversion (round-trip
            # asserted, as in the per-record path), then halo bucketing
            # by contiguous ascending-cid runs.
            lcid = gcid_to_lcid(batch.cells, dnode.node_coords, ld, gd)
            origin = dnode.node_coords * np.asarray(ld, dtype=np.int64)
            back = np.mod(lcid + origin, gd)
            if not np.array_equal(back, batch.cells):
                raise ValidationError("LCID conversion corrupted a cell id")
            starts = np.concatenate([[0], np.cumsum(occ)])
            for k, cid in enumerate(cids):
                lo, hi = int(starts[k]), int(starts[k + 1])
                if lo == hi:
                    continue
                if rec_ok is not None and not rec_ok[lo:hi].all():
                    # The cell's record run is incomplete: a node cannot
                    # evaluate against a partially-arrived cell, so it
                    # degrades (stale snapshot) or errors out.
                    self._degrade_cell(
                        int(src), int(dst), int(cid), dnode,
                        lost=int(np.count_nonzero(~rec_ok[lo:hi])),
                        total=hi - lo,
                    )
                    continue
                data = _CellData(
                    particle_ids=batch.particle_ids[lo:hi].copy(),
                    fractions=batch.payload[lo:hi, :3].copy(),
                    species=batch.payload[lo:hi, 3].astype(np.int32),
                )
                dnode.halo[int(cid)] = data
                if self.injector is not None:
                    # Snapshot for graceful degradation: the receiver's
                    # last complete view of this cell.  The arrays are
                    # never mutated downstream, so storing by reference
                    # is safe.
                    self._stale_halo[(int(dst), int(cid))] = (
                        self._iteration, data,
                    )

    def _exchange_positions_loop(self, nodes: Dict[int, _Node]) -> None:
        """Per-particle packet exchange (the original protocol walk)."""
        mailboxes: Dict[int, List[Packet]] = {n: [] for n in nodes}
        for node in nodes.values():
            neighbor_nodes = sorted(
                {t for cid in node.local_cells for t in self._send_targets[cid]}
            )
            if not neighbor_nodes:
                continue
            chain = P2REncapsulatorChain(
                neighbor_nodes, self.config.records_per_packet
            )
            out: List[Packet] = []
            for cid in node.local_cells:
                targets = self._send_targets[cid]
                if not targets:
                    continue
                data = node.cells[cid]
                cell = tuple(int(c) for c in self._cell_coords[cid])
                for pid, fq, sp in zip(
                    data.particle_ids, data.fractions, data.species
                ):
                    record = Record(
                        "position",
                        int(pid),
                        cell,
                        (float(fq[0]), float(fq[1]), float(fq[2]), int(sp)),
                    )
                    out.extend(chain.route(record, targets))
            out.extend(chain.flush_all())
            node.packets_out += len(out)
            for pkt in out:
                mailboxes[pkt.dst].append(pkt)
        # Arrival: unpack, convert GCID -> LCID, bucket into the halo.
        gd = self.config.global_cells
        ld = self.config.local_cells
        for node in nodes.values():
            buckets: Dict[int, List[Tuple[int, Tuple[float, ...], int]]] = {}
            for pkt in mailboxes[node.node_id]:
                node.packets_in += 1
                for rec in pkt.records:
                    # The Sec. 4.2 conversion: express the sender's global
                    # cell in this node's homogeneous local space, then
                    # map back to the global id for bucketing.  The LCID
                    # round-trip is exercised (and asserted) here.
                    lcid = gcid_to_lcid(
                        np.asarray(rec.cell), node.node_coords, ld, gd
                    )
                    origin = node.node_coords * np.asarray(ld)
                    back = tuple(int(v) for v in np.mod(lcid + origin, gd))
                    if back != rec.cell:
                        raise ValidationError("LCID conversion corrupted a cell id")
                    gcid_int = int(self.grid.cell_id(np.asarray(rec.cell)))
                    buckets.setdefault(gcid_int, []).append(
                        (rec.particle_id, rec.payload, int(rec.payload[3]))
                    )
            for gcid_int, items in buckets.items():
                node.halo[gcid_int] = _CellData(
                    particle_ids=np.array([i[0] for i in items], dtype=np.int64),
                    fractions=np.array(
                        [[i[1][0], i[1][1], i[1][2]] for i in items]
                    ),
                    species=np.array([i[2] for i in items], dtype=np.int32),
                )
        self.total_position_packets += sum(n.packets_out for n in nodes.values())

    # -- graceful degradation ---------------------------------------------------

    def _force_lipschitz(self) -> float:
        """Max |dF/dr| (kcal/mol/A^2) of the pair kernel over the
        *physically occupied* range — the constant turning a
        stale-position displacement bound into a per-interaction
        force-error bound.

        Estimated once by finite-differencing the machine's own tabulated
        pipelines for every species pair present (and, with Ewald
        enabled, the worst charge product).  The scan starts at the
        current minimum interparticle distance (with a 20% margin), not
        at the table's r_min: the divergent LJ core below any occurring
        pair separation would otherwise dominate the constant and make
        the bound vacuous.
        """
        if self._lipschitz is not None:
            return self._lipschitz
        # Nearest pair actually present, from the verlet-style bucketing
        # already used to build the dataset; conservative 0.8 factor for
        # drift during the run.
        from repro.md.neighborlist import minimum_pair_distance

        r_nearest = minimum_pair_distance(self.system, self.grid)
        r_lo = max(
            float(np.sqrt(self.tables.r2_min)),
            0.8 * r_nearest / self.config.cutoff,
        )
        r = np.linspace(r_lo, 1.0, 1024)
        dr = np.zeros((len(r), 3))
        dr[:, 0] = r
        r2 = r * r
        worst = 0.0
        species = np.unique(self.system.species)
        for si in species:
            for sj in species:
                sa = np.full(len(r), si, dtype=np.int32)
                sb = np.full(len(r), sj, dtype=np.int32)
                f, _ = self.pipeline.compute(dr, r2, sa, sb)
                grad = np.abs(np.diff(f[:, 0].astype(np.float64)) / np.diff(r))
                worst = max(worst, float(grad.max()))
        if self.coulomb_pipeline is not None:
            qq_max = float(np.abs(self._charges32).max()) ** 2
            fc, _ = self.coulomb_pipeline.compute(
                dr, r2, np.full(len(r), qq_max, dtype=np.float32)
            )
            grad = np.abs(np.diff(fc[:, 0].astype(np.float64)) / np.diff(r))
            worst += float(grad.max())
        # The pipelines take normalized displacements (cell edge = 1), so
        # the finite difference is per normalized unit; convert to per A.
        self._lipschitz = worst / self.config.cutoff
        return self._lipschitz

    def _degrade_cell(
        self, src: int, dst: int, cid: int, dnode: _Node, lost: int, total: int
    ) -> None:
        """Handle a halo cell whose records were lost beyond recovery.

        Falls back to the last complete snapshot of the cell (recording
        the event with a force-error bound), or raises
        :class:`~repro.util.errors.TransportError` when configured to —
        or when there is no snapshot to degrade onto.
        """
        entry = self._stale_halo.get((dst, cid))
        where = (
            f"halo cell {cid} (flow node {src} -> node {dst}) lost "
            f"{lost}/{total} position records at iteration {self._iteration}"
        )
        if entry is None or self.degradation == "raise":
            raise TransportError(
                where
                + (
                    " with no stale snapshot to fall back on"
                    if entry is None
                    else " (degradation='raise')"
                )
                + "; increase the transport retry budget to recover in-band"
            )
        snap_iter, data = entry
        age = self._iteration - snap_iter
        if len(data.particle_ids):
            v = self.system.velocities[data.particle_ids]
            speed = float(np.sqrt((v * v).sum(axis=1)).max())
        else:  # pragma: no cover - empty cells are skipped upstream
            speed = 0.0
        max_disp = age * self.config.dt_fs * speed
        record = DegradationRecord(
            iteration=self._iteration,
            src=src,
            dst=dst,
            cell=cid,
            lost_records=lost,
            stale_records=len(data.particle_ids),
            age=age,
            max_displacement=max_disp,
            force_error_bound=max_disp * self._force_lipschitz(),
        )
        self.degradation_log.append(record)
        self.last_degraded_records += lost
        dnode.halo[cid] = data

    @property
    def degraded_records_total(self) -> int:
        """Position records ever replaced by stale fallbacks."""
        return sum(rec.lost_records for rec in self.degradation_log)

    # -- node-failure recovery --------------------------------------------------

    def _per_node_records(self) -> Tuple[np.ndarray, Dict[int, int]]:
        """Per-cell occupancy and per-node record counts, current binning."""
        cids = self.grid.cell_id(
            self.grid.coords_of_positions(self.system.positions)
        )
        per_cell = np.bincount(cids, minlength=self.grid.n_cells)
        per_node = {
            k: int(per_cell[self._cell_node == k].sum())
            for k in range(self.config.n_fpgas)
        }
        return per_cell, per_node

    def _node_fault_preamble(self) -> None:
        """Advance the node-failure model one force pass.

        Runs *before* node construction, in a fixed order that keeps the
        model deterministic: (1) capture the periodic buddy shadow,
        (2) complete pending restarts, (3) draw/apply crashes at the
        current iteration, (4) draw slowdowns.  Recovery completes
        synchronously within the pass — surviving nodes adopt the dead
        node's cells, restore them from the buddy shadow, and replay the
        missed iterations through the **canonical** evaluation path
        (deterministic replay of deterministic state), so by the time
        :meth:`_build_nodes` runs the partition and every float32
        accumulation are exactly those of a fault-free pass.  What a
        crash *does* change: the cached reuse-state structures are
        invalidated (an adopting node has no warm skeletons for foreign
        cells) and the :class:`~repro.faults.RecoveryRecord` accounting.
        """
        it = self._iteration
        n = self.config.n_fpgas
        per_cell, per_node = self._per_node_records()
        # (1) Periodic buddy shadow capture (iteration 0 always captures,
        # so a replay source exists for any crash).
        if (
            self._shadow_iteration is None
            or it - self._shadow_iteration >= self.shadow_interval
        ):
            self._shadow_iteration = it
            self._shadow_records = per_node
            self.shadow_traffic_records += int(per_cell.sum())
        # (2) Restarts whose down-window has elapsed rejoin.
        for node in [k for k, until in self._down_until.items() if until <= it]:
            del self._down_until[node]
        # (3) Crashes: already-down boards cannot crash again.
        crashed = [
            k
            for k in self.node_injector.crashes_at(it, n)
            if k not in self._down_until
        ]
        if crashed:
            if len(self._down_until) + len(crashed) >= n:
                raise NodeFailureError(
                    f"all {n} nodes down at iteration {it} "
                    f"({len(crashed)} new crash(es) on top of "
                    f"{len(self._down_until)} restarting): no surviving "
                    "buddy shadow to replay from; restore from an "
                    "interval checkpoint"
                )
            for node in crashed:
                self._recover_crashed_node(node, it, per_cell, per_node)
        # (4) Slowdowns (straggler accounting only; work is modelled, not
        # timed, so the trajectory is untouched).
        for node in range(n):
            factor = self.node_injector.work_multiplier(node, it)
            if factor > 1.0:
                self.node_slowdown_log.append((it, node, factor))

    def _recover_crashed_node(
        self,
        node: int,
        it: int,
        per_cell: np.ndarray,
        per_node: Dict[int, int],
    ) -> None:
        """Adopt, restore, and replay one crashed node's cells."""
        from repro.core.migration import MigrationStats

        n = self.config.n_fpgas
        self._down_until[node] = it + self.node_injector.plan.restart_iterations
        # Ring buddy: next node id upward that is still alive.
        buddy = (node + 1) % n
        while buddy in self._down_until:
            buddy = (buddy + 1) % n
        dead_cells = np.flatnonzero(self._cell_node == node)
        records = per_node[node]
        # Re-homing is cross-node by definition; express it through the
        # MU-ring accounting so recovery traffic shares the migration
        # machinery's units.
        outflow = np.zeros(self.grid.n_cells, dtype=np.int64)
        outflow[dead_cells] = per_cell[dead_cells]
        migration = MigrationStats(
            total=records, cross_node=records, per_cell_outflow=outflow
        )
        shadow_it = self._shadow_iteration if self._shadow_iteration is not None else it
        replay = it - shadow_it
        shadow_records = self._shadow_records.get(node, records)
        self.recovery_log.append(
            RecoveryRecord(
                node=node,
                crash_iteration=it,
                detected_iteration=it,
                buddy=buddy,
                shadow_iteration=shadow_it,
                replay_iterations=replay,
                cells_moved=int(len(dead_cells)),
                records_moved=records,
                migration_cross_node=migration.cross_node,
                # Buddy-shadow restore plus the return migration when the
                # board rejoins.
                recovery_traffic_records=shadow_records + records,
                cycles_lost=self.watchdog_timeout_cycles
                + replay * records * REPLAY_CYCLES_PER_RECORD,
            )
        )
        # The adopting nodes have no warm packing skeletons for foreign
        # cells: force a full rebuild of the reuse-state caches.  The
        # rebuild path is the asserted-bitwise oracle, so this is safe.
        self._nodes_cache = None
        self._build_cids = None
        self._flow_static = None

    @property
    def recovered_records_total(self) -> int:
        """Position records ever re-homed by crash recoveries."""
        return sum(rec.records_moved for rec in self.recovery_log)

    def recovery_summary(self) -> Dict[str, float]:
        """Aggregate reconfiguration accounting (JSON-able).

        One call covers both kinds of partition change: crash-driven
        re-homing (``n_recoveries`` ...) and policy-driven elastic
        rescales (``rescales_*`` — planned vs aborted attempts plus the
        migration traffic the committed ones moved).
        """
        return {
            "n_recoveries": len(self.recovery_log),
            "cells_moved": sum(r.cells_moved for r in self.recovery_log),
            "records_moved": self.recovered_records_total,
            "recovery_traffic_records": sum(
                r.recovery_traffic_records for r in self.recovery_log
            ),
            "cycles_lost": sum(r.cycles_lost for r in self.recovery_log),
            "shadow_traffic_records": self.shadow_traffic_records,
            "slowdown_events": len(self.node_slowdown_log),
            "rescales_planned": len(self.rescale_log),
            "rescales_aborted": len(self.rescale_aborted_log),
            "rescale_cells_moved": sum(
                r.cells_moved for r in self.rescale_log
            ),
            "rescale_records_moved": sum(
                r.records_moved for r in self.rescale_log
            ),
            "rescale_migration_packets": sum(
                r.migration_packets for r in self.rescale_log
            ),
            "rescale_migration_cycles": sum(
                r.migration_cycles for r in self.rescale_log
            ),
        }

    # -- elastic rescale --------------------------------------------------------

    def _capture_rescale_shadow(self) -> Dict[str, Any]:
        """Prepare-phase shadow checkpoint: everything a rollback restores."""
        return {
            "positions": self.system.positions.copy(),
            "velocities": self.system.velocities.copy(),
            "forces": self.system.forces.copy(),
            "velocities32": self._velocities32.copy(),
            "forces32": self._forces32.copy(),
            "iteration": self._iteration,
            "primed": self._primed,
            "last_potential": self._last_potential,
        }

    def _restore_rescale_shadow(self, shadow: Dict[str, Any]) -> None:
        """Roll the machine back to the prepare-phase shadow (bitwise)."""
        self.system.positions[:] = shadow["positions"]
        self.system.velocities[:] = shadow["velocities"]
        self.system.forces[:] = shadow["forces"]
        self._velocities32 = shadow["velocities32"].copy()
        self._forces32 = shadow["forces32"].copy()
        self._iteration = shadow["iteration"]
        self._primed = shadow["primed"]
        self._last_potential = shadow["last_potential"]

    def _abort_rescale(
        self,
        shadow: Optional[Dict[str, Any]],
        n_new: int,
        reason: str,
        phase: str,
        flows_attempted: int,
        packets_lost: int,
    ) -> bool:
        """Roll back a failed rescale attempt and record the abort."""
        if shadow is not None:
            self._restore_rescale_shadow(shadow)
        self.rescale_aborted_log.append(
            RescaleAbortedRecord(
                iteration=self._iteration,
                n_old=self.config.n_fpgas,
                n_new=int(n_new),
                reason=reason,
                phase=phase,
                flows_attempted=int(flows_attempted),
                packets_lost=int(packets_lost),
                rolled_back=True,
            )
        )
        if self.balancer is not None:
            self.balancer.notify_rescale(committed=False)
        return False

    def rescale(
        self,
        n_new: Optional[int] = None,
        fpga_grid: Optional[Tuple[int, int, int]] = None,
    ) -> bool:
        """Transactionally re-partition the machine onto a new node count.

        Must run at an iteration boundary (between :meth:`step` calls,
        where no exchange is in flight).  Two phases:

        **prepare** — refuse if any board is mid-restart; capture a
        shadow checkpoint of the full physics state; derive the new
        partition map from the canonical
        :func:`~repro.core.elasticity.fpga_grid_for` grid and plan the
        cell migration it implies
        (:func:`~repro.core.migration.plan_partition_migration`).

        **transfer + commit** — ship every migration flow through the
        reliable transport (channel ``"rescale"``, exposed to this
        machine's fault injector) and the output-queued switch model; if
        a node crash is drawn mid-migration, any flow loses packets
        beyond the retry budget, or the switch overflows, roll back to
        the shadow and append a
        :class:`~repro.faults.RescaleAbortedRecord` — the machine is
        never left half-migrated.  On success, swap in the new partition
        (:meth:`_apply_partition`), drop every old-partition cache, and
        append a :class:`~repro.faults.RescaleRecord`.

        Because physics always evaluates the canonical partition, a
        committed rescale resumes bitwise-identical to a fresh machine
        of the new size started from the boundary state — the property
        the elasticity harness asserts.

        Returns True on commit, False on a rolled-back abort.  Raises
        :class:`~repro.util.errors.ConfigError` for targets that are
        invalid outright (not distributed, grid does not divide the
        cells, or equal to the current partition).
        """
        cfg = self.config
        if fpga_grid is not None:
            grid_new = tuple(int(d) for d in fpga_grid)
            if n_new is not None and int(n_new) != int(np.prod(grid_new)):
                raise ConfigError(
                    f"n_new ({n_new}) contradicts fpga_grid {grid_new}"
                )
        elif n_new is not None:
            grid_new = fpga_grid_for(cfg.global_cells, int(n_new))
        else:
            raise ConfigError("rescale needs n_new or fpga_grid")
        new_cfg = replace(cfg, fpga_grid=grid_new)
        n_old = cfg.n_fpgas
        n_target = new_cfg.n_fpgas
        if not new_cfg.is_distributed:
            raise ConfigError(
                f"rescale target must stay distributed, got {n_target} node(s)"
            )
        if grid_new == tuple(cfg.fpga_grid):
            raise ConfigError(
                f"rescale target equals the current partition "
                f"{tuple(cfg.fpga_grid)}"
            )
        it = self._iteration
        # ---- prepare ----
        if self._down_until:
            return self._abort_rescale(
                None,
                n_target,
                reason=(
                    f"node(s) {sorted(self._down_until)} still restarting "
                    "at the rescale boundary"
                ),
                phase="prepare",
                flows_attempted=0,
                packets_lost=0,
            )
        shadow = self._capture_rescale_shadow()
        per_cell, _ = self._per_node_records()
        old_cell_node = self._cell_node
        new_cell_node = cell_node_ids(
            self._cell_coords, new_cfg.local_cells, grid_new
        )
        stats, flows = plan_partition_migration(
            per_cell, old_cell_node, new_cell_node, cfg.records_per_packet
        )
        cells_moved = int(np.count_nonzero(old_cell_node != new_cell_node))
        # ---- transfer ----
        # A board crashing mid-migration kills the transfer.  The draw is
        # the same keyed decision the next force pass's preamble makes, so
        # after the rollback the crash is then recovered losslessly there.
        if self.node_injector is not None:
            crashed = [
                k
                for k in self.node_injector.crashes_at(it, n_old)
                if k not in self._down_until
            ]
            if crashed:
                return self._abort_rescale(
                    shadow,
                    n_target,
                    reason=(
                        f"node {crashed[0]} crashed during the migration "
                        f"at iteration {it}"
                    ),
                    phase="transfer",
                    flows_attempted=len(flows),
                    packets_lost=0,
                )
        packets_lost = 0
        for (src, dst), flow in flows.items():
            if not flow["packets"]:
                continue
            _, tstats = send_flow(
                self.injector, src, dst, "rescale", it,
                flow["packets"], self.transport,
            )
            self.migration_transport_stats = (
                self.migration_transport_stats + tstats
            )
            if tstats.lost:
                packets_lost += int(tstats.lost)
                return self._abort_rescale(
                    shadow,
                    n_target,
                    reason=(
                        f"migration flow node {src} -> node {dst} lost "
                        f"{int(tstats.lost)} packet(s) beyond the retry "
                        "budget"
                    ),
                    phase="transfer",
                    flows_attempted=len(flows),
                    packets_lost=packets_lost,
                )
        # Cooldown-paced trains through the switch model (loss was already
        # resolved at the transport layer above, so no injector here —
        # only incast/buffer behavior can still kill the transfer).
        bursts = [
            Burst(
                src=src,
                dst=dst,
                n_packets=flow["packets"],
                gap_cycles=cfg.cooldown_cycles,
            )
            for (src, dst), flow in flows.items()
            if flow["packets"]
        ]
        switch = OutputQueuedSwitch(max(n_old, n_target, 2))
        switch_stats = switch.run(bursts, channel="rescale", iteration=it)
        if switch_stats.dropped:
            return self._abort_rescale(
                shadow,
                n_target,
                reason=(
                    f"switch dropped {switch_stats.dropped} migration "
                    "packet(s) (incast overflow)"
                ),
                phase="transfer",
                flows_attempted=len(flows),
                packets_lost=int(switch_stats.dropped),
            )
        # ---- commit ----
        migration_packets = sum(f["packets"] for f in flows.values())
        self._apply_partition(new_cfg)
        self._invalidate_partition_caches()
        switch_stats.rescales = 1
        self.migration_switch_stats = (
            self.migration_switch_stats + switch_stats
        )
        self.rescale_log.append(
            RescaleRecord(
                iteration=it,
                n_old=n_old,
                n_new=n_target,
                grid_old=tuple(cfg.fpga_grid),
                grid_new=grid_new,
                cells_moved=cells_moved,
                records_moved=stats.total,
                flows=tuple(
                    (src, dst, f["records"], f["packets"])
                    for (src, dst), f in flows.items()
                ),
                migration_packets=int(migration_packets),
                migration_bytes=int(migration_packets) * cfg.packet_bits // 8,
                migration_cycles=float(
                    max((f["packets"] for f in flows.values()), default=0)
                    * cfg.cooldown_cycles
                ),
                shadow_records=int(per_cell.sum()),
            )
        )
        if self.balancer is not None:
            self.balancer.notify_rescale(committed=True)
        return True

    def maybe_rescale(self) -> Optional[bool]:
        """Feed the balancer one boundary observation; rescale on proposal.

        Returns ``None`` when no balancer is attached or it holds,
        otherwise :meth:`rescale`'s verdict for the proposed size.
        """
        if self.balancer is None:
            return None
        _, per_node = self._per_node_records()
        target = self.balancer.observe(
            [per_node[k] for k in sorted(per_node)]
        )
        if target is None:
            return None
        return self.rescale(target)

    # -- force evaluation -------------------------------------------------------

    def _cell_view(self, node: _Node, cid: int) -> Optional[_CellData]:
        if cid in node.cells:
            return node.cells[cid]
        return node.halo.get(cid)

    def _pipelines(
        self,
        dr: np.ndarray,
        r2: np.ndarray,
        species_i: np.ndarray,
        species_j: np.ndarray,
        gi: np.ndarray,
        gj: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """LJ pipeline plus (optionally) the Ewald pipeline.

        Species come from the local/halo cell data (the position record
        payload); charges index the global table by particle id, which
        a hardware node would likewise carry in its position payload.
        """
        f, e = self.pipeline.compute(dr, r2, species_i, species_j)
        if self.coulomb_pipeline is not None:
            qq = self._charges32[gi] * self._charges32[gj]
            fc, ec = self.coulomb_pipeline.compute(dr, r2, qq)
            f = f + fc
            e = e + ec
        return f, e

    def _verify_id_conversion(
        self, local_cells, node_coords: np.ndarray
    ) -> None:
        """Assert the Sec. 4.2 GCID -> LCID -> RCID machinery on one node.

        For every (home cell, half-shell neighbor) pair of the node, the
        offset recovered through the homogeneous local ID space must
        equal the geometric half-shell offset — this is the check the
        per-cell loop performed inline before displacement evaluation.
        """
        if not len(local_cells):
            return
        gd = self.config.global_cells
        ld = self.config.local_cells
        local = np.asarray(local_cells, dtype=np.int64)
        home_lcid = gcid_to_lcid(
            self._cell_coords[local], node_coords, ld, gd
        )
        nbr_lcid = gcid_to_lcid(
            self._cell_coords[self._neighbor_cids[local]],
            node_coords,
            ld,
            gd,
        )
        rcid = lcid_to_rcid(nbr_lcid, home_lcid[:, None, :], gd)
        offsets = np.asarray(HALF_SHELL_OFFSETS, dtype=np.int64)
        if not np.array_equal(rcid - RCID_HOME, np.broadcast_to(
            offsets[None, :, :], rcid.shape
        )):
            raise ValidationError("RCID conversion mismatch")

    def _evaluate_node(
        self, node: _Node
    ) -> Tuple[np.ndarray, float, Dict[int, List[Tuple[np.ndarray, np.ndarray]]]]:
        """Evaluate one node's home cells against local + halo data.

        Returns the node's private force bank (global-sized, float32),
        its partial potential, and the neighbor-force records destined
        for other nodes as per-owner ``(particle_ids, forces)`` array
        segments — no shared state is touched (only static machine
        attributes are read), so nodes evaluate concurrently in threads
        or forked processes.

        This is the pickled-``_Node`` entry point; the shared-memory
        path reaches the same :meth:`_eval_core` through
        :meth:`_evaluate_node_shm` with identical inputs, so both are
        bitwise-identical by construction.
        """
        bank = np.zeros((self.system.n, 3), dtype=np.float32)
        self._verify_id_conversion(node.local_cells, node.node_coords)

        # Concatenate visible cells (ascending cid) into bucket arrays.
        visible = sorted(
            list(node.cells.items()) + list(node.halo.items())
        )
        counts = np.zeros(self.grid.n_cells, dtype=np.int64)
        for cid, data in visible:
            counts[cid] = len(data.particle_ids)
        start = np.concatenate([[0], np.cumsum(counts)])
        if start[-1] == 0:
            return bank, 0.0, {}
        frac_cat = np.concatenate(
            [d.fractions.reshape(-1, 3) for _, d in visible]
        )
        pid_cat = np.concatenate([d.particle_ids for _, d in visible])
        spc_cat = np.concatenate([d.species for _, d in visible])
        potential, returns = self._eval_core(
            node.node_id, sorted(node.local_cells), counts, start,
            frac_cat, pid_cat, spc_cat, bank,
        )
        return bank, potential, returns

    def _eval_core(
        self,
        node_id: int,
        local_cells,
        counts: np.ndarray,
        start: np.ndarray,
        frac_cat: np.ndarray,
        pid_cat: np.ndarray,
        spc_cat: np.ndarray,
        bank: np.ndarray,
    ) -> Tuple[float, Dict[int, List[Tuple[np.ndarray, np.ndarray]]]]:
        """Shared evaluation core for one node's flattened inputs.

        The node's visible cells (local + halo), already concatenated in
        ascending-cid order into flat position-cache arrays, flow as all
        candidate pairs of the node's plan rows through the filter and
        pipelines in batches, like the global machine's hot path.
        Accumulates into ``bank`` (a private array or this node's
        shared-memory slice) and returns the partial potential plus the
        per-owner neighbor-force segments.
        """
        plan = self._plan
        potential = np.float32(0.0)
        returns: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {}
        owner_is_local = self._cell_node == node_id

        rows = (
            np.asarray(local_cells, dtype=np.int64)[:, None]
            * ROWS_PER_CELL
            + np.arange(ROWS_PER_CELL, dtype=np.int64)[None, :]
        ).reshape(-1)
        n_slots = np.int64(start[-1])

        backend = resolve_backend(self.force_impl)
        for chunk in iter_pair_chunks(plan, counts, start, rows=rows):
            if backend.screen_dr is not None:
                # Fused gather/displacement kernel; r2 comes from the
                # reference einsum over bitwise-identical dr, so the
                # filter admits bit-for-bit the same pairs per node.
                dr, r2 = backend.screen_dr(
                    frac_cat, chunk.ii, chunk.jj, plan.offset, chunk.row
                )
                res = self.filter.admit_r2(r2)
            else:
                dr = (
                    frac_cat[chunk.ii]
                    - frac_cat[chunk.jj]
                    - plan.offset[chunk.row]
                )
                res = self.filter.check(dr)
            if not res.n_accepted:
                continue
            m = res.mask
            ii = chunk.ii[m]
            jj = chunk.jj[m]
            row = chunk.row[m]
            f, e = self._pipelines(
                dr[m], res.r2,
                spc_cat[ii], spc_cat[jj],
                pid_cat[ii], pid_cat[jj],
            )
            scatter_add(bank, pid_cat[ii], f)
            potential += e.sum(dtype=np.float32)
            # Reaction forces: straight into the bank when the neighbor
            # particle lives on this node, else per-(block, particle)
            # records returned to the owner.
            keep = plan.is_self[row] | owner_is_local[plan.nbr[row]]
            if keep.any():
                scatter_add(bank, pid_cat[jj[keep]], -f[keep])
            rem = ~keep
            if rem.any():
                # One record per (plan row, neighbor particle), forces
                # coalesced — chunks carry whole rows, so per-chunk
                # grouping is per-block exact; ascending keys preserve
                # the (home cell, offset, slot) record order of the
                # hardware's return stream.
                keys, inv = np.unique(
                    row[rem] * n_slots + jj[rem], return_inverse=True
                )
                fr = np.zeros((len(keys), 3), dtype=np.float32)
                scatter_add(fr, inv, -f[rem])
                urow = keys // n_slots
                uslot = keys % n_slots
                owners = self._cell_node[plan.nbr[urow]]
                upid = pid_cat[uslot]
                # Segment the ascending-key records by owning node:
                # stable sort keeps the hardware's return-stream order
                # within each owner's segment.
                osort = np.argsort(owners, kind="stable")
                so = owners[osort]
                bounds = np.flatnonzero(np.diff(so)) + 1
                for seg in np.split(osort, bounds):
                    returns.setdefault(int(owners[seg[0]]), []).append(
                        (upid[seg], fr[seg])
                    )
        return float(potential), returns

    # -- zero-copy shared-memory evaluation -------------------------------------

    def _ensure_shm(self) -> bool:
        """Create the shared position/bank/metadata segments (once).

        Segment sizes are static for the machine's life: fractions
        ``(N, 3)`` float64, per-node force banks ``(n_fpgas, N, 3)``
        float32, per-node visible-cell counts ``(n_fpgas, n_cells)``
        int64, and a particle-id catalog sized by the provable bound
        ``N * (1 + max destinations per cell)`` (each cell's particles
        appear once locally plus at most once per destination node of
        its send flows).  Creation shuts any existing pool down so the
        next fork inherits the mappings; failure (no POSIX shared
        memory) degrades permanently to the pickled-``_Node`` path.
        """
        if self._shm_ok is not None:
            return self._shm_ok
        try:
            from multiprocessing import shared_memory

            n = self.system.n
            nf = self.config.n_fpgas
            nc = self.grid.n_cells
            max_targets = max(
                (len(v) for v in self._send_targets.values()), default=0
            )
            cap = max(1, n * (1 + max_targets))

            def seg(nbytes: int):
                s = shared_memory.SharedMemory(
                    create=True, size=max(1, nbytes)
                )
                self._shm_segs.append(s)
                return s

            self._shm_frac = np.ndarray(
                (n, 3), dtype=np.float64, buffer=seg(n * 3 * 8).buf
            )
            self._shm_banks = np.ndarray(
                (nf, n, 3), dtype=np.float32, buffer=seg(nf * n * 3 * 4).buf
            )
            self._shm_counts = np.ndarray(
                (nf, nc), dtype=np.int64, buffer=seg(nf * nc * 8).buf
            )
            self._shm_pids = np.ndarray(
                cap, dtype=np.int64, buffer=seg(cap * 8).buf
            )
            self._shm_meta_cids = None
            self._shm_tasks = None
            self._shutdown_pool()
            self._shm_ok = True
        except Exception:
            self._release_shm()
            self._shm_ok = False
        return self._shm_ok

    def _release_shm(self) -> None:
        """Drop the numpy views, then close and unlink every segment."""
        self._shm_frac = None
        self._shm_banks = None
        self._shm_counts = None
        self._shm_pids = None
        self._shm_meta_cids = None
        self._shm_tasks = None
        segs, self._shm_segs = self._shm_segs, []
        for s in segs:
            try:
                s.close()
                s.unlink()
            except Exception:
                pass
        self._shm_ok = None

    def _pack_shm(self, nodes: Dict[int, _Node]) -> List[Tuple[int, int, int]]:
        """Refresh the shared segments for this force pass.

        The fraction segment is copied in place every step; the
        partition metadata (per-node visible-cell counts + concatenated
        particle ids, ascending cid — exactly the flattening
        :meth:`_evaluate_node` performs) is rewritten only when the cell
        assignment changed since the last pack.  Returns the tiny
        per-node ``(node_id, pid_offset, pid_len)`` task tuples.
        """
        np.copyto(self._shm_frac, self._last_frac)
        if self._shm_tasks is not None and np.array_equal(
            self._last_cids, self._shm_meta_cids
        ):
            return self._shm_tasks
        tasks: List[Tuple[int, int, int]] = []
        off = 0
        for nid in sorted(nodes):
            node = nodes[nid]
            visible = sorted(
                list(node.cells.items()) + list(node.halo.items())
            )
            cnt_row = self._shm_counts[nid]
            cnt_row.fill(0)
            lo = off
            for cid, data in visible:
                k = len(data.particle_ids)
                cnt_row[cid] = k
                self._shm_pids[off:off + k] = data.particle_ids
                off += k
            tasks.append((nid, lo, off - lo))
        self._shm_meta_cids = self._last_cids.copy()
        self._shm_tasks = tasks
        return tasks

    def _evaluate_node_shm(
        self, task: Tuple[int, int, int]
    ) -> Tuple[int, float, Dict[int, List[Tuple[np.ndarray, np.ndarray]]]]:
        """Worker-side evaluation against the shared segments.

        Reconstructs exactly the flattened inputs of
        :meth:`_evaluate_node` — without an injector every halo fraction
        equals ``frac[pid]`` of the sender and every halo species equals
        ``system.species[pid]``, so the global gathers reproduce the
        per-cell concatenation bit for bit — and accumulates into this
        node's shared bank slice instead of returning a pickled array.
        """
        nid, off, ln = task
        counts = self._shm_counts[nid]
        bank = self._shm_banks[nid]
        bank.fill(0)
        local_cells = self._local_cells_static[nid]
        self._verify_id_conversion(local_cells, self._node_coords[nid])
        if ln == 0:
            return nid, 0.0, {}
        start = np.concatenate([[0], np.cumsum(counts)])
        pid_cat = self._shm_pids[off:off + ln]
        frac_cat = self._shm_frac[pid_cat]
        spc_cat = self.system.species[pid_cat]
        potential, returns = self._eval_core(
            nid, local_cells, counts, start,
            frac_cat, pid_cat, spc_cat, bank,
        )
        return nid, potential, returns

    def _get_executor(self):
        """Build (once) and return the evaluation pool for this machine.

        ``"thread"``/``True`` gets a thread pool; ``"process"`` a forked
        process pool.  Forked workers inherit the machine by reference
        at fork time; :meth:`_evaluate_node` reads only *static* machine
        state (geometry, plan, filter, pipelines) — all per-step state
        travels inside the pickled ``_Node`` — so the workers stay valid
        for the machine's whole life and the pool is reused across steps.
        """
        kind = "process" if self.parallel == "process" else "thread"
        if self._executor is not None and self._executor_kind == kind:
            return self._executor
        self._shutdown_pool()
        workers = self.max_workers or self.config.n_fpgas
        if kind == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            global _FORK_MACHINE
            _FORK_MACHINE = self
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                # No fork on this platform: threads are the honest
                # fallback (the machine holds unpicklable table lambdas).
                kind = "thread"
            else:
                self._executor = ProcessPoolExecutor(
                    max_workers=workers, mp_context=ctx
                )
        if kind == "thread":
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(max_workers=workers)
        self._executor_kind = kind
        return self._executor

    def _shutdown_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
            self._executor_kind = None

    def close(self) -> None:
        """Shut down the pool and release shared segments (idempotent).

        A no-op in forked workers: their interpreter teardown must not
        shut down the parent's pool or unlink segments it still maps.
        """
        if getattr(self, "_owner_pid", None) != os.getpid():
            return
        self._shutdown_pool()
        self._release_shm()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def compute_forces(self) -> float:
        """One distributed force pass; returns the potential energy."""
        self.last_degraded_records = 0
        if self.node_injector is not None:
            self._node_fault_preamble()
        with self.timings.phase("build"):
            nodes = self._build_nodes()
        with self.timings.phase("exchange"):
            self._exchange_positions(nodes)
        self._iteration += 1
        node_list = [nodes[n] for n in sorted(nodes)]
        with self.timings.phase("force"):
            results = self._evaluate_all(nodes, node_list)
            potential = self._merge_results(node_list, results)
        self._last_potential = potential
        return self._last_potential

    def _evaluate_all(self, nodes: Dict[int, _Node], node_list: List[_Node]):
        """Evaluate every node serially or on the configured pool.

        ``parallel="process"`` without a fault injector takes the
        zero-copy route: only ``(node_id, offset, length)`` tuples cross
        the pipe; fractions travel through the shared position segment
        and each node's bank comes back through its shared slice.  With
        an injector the halo can degrade to stale snapshots (which the
        shared gather cannot reproduce), so the pickled-``_Node`` oracle
        path runs instead.
        """
        if not self.parallel:
            return [self._evaluate_node(node) for node in node_list]
        use_shm = (
            self.parallel == "process"
            and self.injector is None
            and self._ensure_shm()
        )
        pool = self._get_executor()
        if self._executor_kind != "process":
            return list(pool.map(self._evaluate_node, node_list))
        if use_shm:
            tasks = self._pack_shm(nodes)
            return [
                (self._shm_banks[nid], pot, rets)
                for nid, pot, rets in pool.map(_fork_eval_node_shm, tasks)
            ]
        return list(pool.map(_fork_eval_node, node_list))

    def _merge_results(self, node_list: List[_Node], results) -> float:
        # Deterministic merge in node-id order (independent of worker
        # scheduling): sum banks, apply returned neighbor forces.
        home_bank = np.zeros((self.system.n, 3), dtype=np.float32)
        potential = np.float32(0.0)
        return_records: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {
            n.node_id: [] for n in node_list
        }
        for bank, pot, returns in results:
            home_bank += bank
            potential += np.float32(pot)
            for owner, segments in returns.items():
                return_records[owner].extend(segments)
        # Force return: apply each arriving segment in order and account
        # its packets.  Segments from one evaluating node never repeat a
        # (block, particle) key, so within a segment the scatter is
        # collision-ordered exactly like the per-record loop was.
        for node in node_list:
            n_records = 0
            for pids, fvecs in return_records[node.node_id]:
                scatter_add(home_bank, pids, fvecs)
                n_records += len(pids)
            if n_records:
                self.total_force_packets += int(
                    np.ceil(n_records / self.config.records_per_packet)
                )
        self._forces32 = home_bank
        return float(potential)

    # -- integration ------------------------------------------------------------

    @property
    def forces(self) -> np.ndarray:
        return self._forces32

    @property
    def velocities(self) -> np.ndarray:
        return self._velocities32

    def kinetic_energy(self) -> float:
        v = self._velocities32.astype(np.float64)
        ke = 0.5 * float(np.sum(self.system.masses * np.sum(v * v, axis=1)))
        return ke / KCAL_MOL_TO_INTERNAL

    def _accel32(self, forces: np.ndarray) -> np.ndarray:
        factor = (KCAL_MOL_TO_INTERNAL / self.system.masses).astype(np.float32)
        return forces * factor[:, None]

    def step(self) -> float:
        """One distributed timestep (identical integrator to the machine)."""
        if not self._primed:
            self.compute_forces()
            self._primed = True
        dt = np.float32(self.config.dt_fs)
        with self.timings.phase("integrate"):
            accel = self._accel32(self._forces32)
            delta = (
                self._velocities32 * dt + np.float32(0.5) * accel * dt * dt
            ).astype(np.float64)
            self.system.positions += delta
            self.system.wrap()
        self.compute_forces()
        with self.timings.phase("integrate"):
            accel_new = self._accel32(self._forces32)
            self._velocities32 += np.float32(0.5) * (accel + accel_new) * dt
            self.system.velocities[:] = self._velocities32
            self.system.forces[:] = self._forces32
        return self._last_potential

    def run(self, n_steps: int, record_every: int = 1) -> List[EnergyRecord]:
        """Run steps with energy recording (same schema as the machine)."""
        if n_steps < 0:
            raise ValidationError("n_steps must be >= 0")
        appended: List[EnergyRecord] = []
        if not self._primed:
            self.compute_forces()
            self._primed = True
            rec = EnergyRecord(0, self.kinetic_energy(), self._last_potential)
            self.history.append(rec)
            appended.append(rec)
        start = self.history[-1].step if self.history else 0
        for i in range(1, n_steps + 1):
            self.step()
            if record_every and i % record_every == 0:
                rec = EnergyRecord(
                    start + i, self.kinetic_energy(), self._last_potential
                )
                self.history.append(rec)
                appended.append(rec)
        return appended

"""Cycle-by-cycle microsimulation of one PE (filters -> arbiter -> pipeline).

The cycle model's ``PE_FILTER_EFFICIENCY = 0.70`` is taken from the
paper's utilization measurements (Fig. 17).  This module bounds that
constant from the microarchitecture itself (Fig. 6): ``n`` filters each
hold one neighbor position in a register and compare it against the
home-cell positions streaming past one per cycle; accepted pairs queue
into a small arbitration buffer feeding the one-pair-per-cycle force
pipeline; when the buffer fills, the home-position stream stalls.

Mechanisms captured:

* **traversal-boundary bubbles** — a filter reloads its neighbor
  register between traversals (1 cycle per home-cell sweep);
* **acceptance burstiness** — with ~15.5% acceptance across 6 filters
  the mean pipeline feed is 0.93/cycle, but binomial bursts overflow a
  shallow buffer and stall the stream;
* **stream tail fragmentation** — the last partial batch of neighbor
  positions leaves filters idle.

An *idealized* PE (deep buffer, dense streams) reaches ~0.9 candidates
per filter per busy cycle; the measured RTL's 0.70 additionally absorbs
position-distribution gaps the paper's dispatcher handles between
streams.  The pesim ablation quantifies the buffer-depth dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.util.errors import ValidationError


@dataclass
class PESimResult:
    """Outcome of one PE microsimulation."""

    cycles: int
    candidates: int
    accepted: int
    pipeline_outputs: int
    stall_cycles: int
    n_filters: int

    @property
    def filter_efficiency(self) -> float:
        """Candidates retired per filter per cycle (the 0.70 constant)."""
        return self.candidates / (self.n_filters * self.cycles)

    @property
    def pipeline_utilization(self) -> float:
        """Forces emitted per cycle (PE hardware utilization numerator)."""
        return self.pipeline_outputs / self.cycles

    @property
    def stall_fraction(self) -> float:
        return self.stall_cycles / self.cycles


def simulate_pe(
    home_count: int = 64,
    n_neighbor_positions: int = 13 * 64,
    n_filters: int = 6,
    acceptance_rate: float = 0.155,
    queue_depth: int = 8,
    pipeline_depth: int = 40,
    seed: int = 0,
) -> PESimResult:
    """Simulate one PE processing one cell's full iteration workload.

    Parameters
    ----------
    home_count:
        Particles in the home cell (one streams past per cycle).
    n_neighbor_positions:
        Total neighbor positions to pair against the home cell.
    n_filters:
        Filters (neighbor-position registers) per pipeline.
    acceptance_rate:
        Probability a candidate passes (paper Eq. 3: ~15.5%).
    queue_depth:
        Arbitration buffer between filters and the pipeline; a full
        buffer stalls the home stream that cycle.
    pipeline_depth:
        Force pipeline latency in cycles (drain accounting).
    """
    if home_count < 1 or n_neighbor_positions < 0:
        raise ValidationError("invalid workload")
    if n_filters < 1 or not 0 <= acceptance_rate <= 1 or queue_depth < 1:
        raise ValidationError("invalid microarchitecture parameters")
    rng = np.random.default_rng(seed)

    remaining = n_neighbor_positions  # neighbor positions not yet loaded
    # Per-filter state: cycles left in the current traversal (0 = needs
    # reload or empty).
    traversal_left = np.zeros(n_filters, dtype=np.int64)
    queue = 0    # pairs waiting in the arbitration buffer
    pending = 0  # accepted pairs stuck at the filters (buffer overflow)
    candidates = 0
    accepted = 0
    outputs = 0
    stalls = 0
    cycle = 0
    in_flight = 0  # pairs inside the pipeline

    while (
        remaining > 0
        or traversal_left.any()
        or queue > 0
        or pending > 0
        or in_flight > 0
    ):
        cycle += 1
        # Pipeline: one pair per cycle leaves the queue; outputs emerge
        # pipeline_depth later (modeled as an in-flight counter).
        if queue > 0:
            queue -= 1
            in_flight += 1
        if in_flight > 0 and cycle > pipeline_depth:
            in_flight -= 1
            outputs += 1
        # Drain filter-held pairs into the freed buffer space first.
        if pending > 0:
            take = min(pending, queue_depth - queue)
            queue += take
            pending -= take
            if pending > 0:
                # Filters still hold un-queued pairs: the home-position
                # stream cannot advance this cycle.
                stalls += 1
                continue
        # Reload idle filters (one neighbor position each, if available).
        for f in range(n_filters):
            if traversal_left[f] == 0 and remaining > 0:
                traversal_left[f] = home_count
                remaining -= 1
        # Home stream: all loaded filters compare one candidate this cycle.
        active = int(np.count_nonzero(traversal_left))
        if active == 0:
            continue
        burst = int(rng.binomial(active, acceptance_rate))
        accepted += burst
        candidates += active
        traversal_left[traversal_left > 0] -= 1
        take = min(burst, queue_depth - queue)
        queue += take
        pending += burst - take

    if cycle == 0:
        raise ValidationError("empty workload")
    return PESimResult(
        cycles=cycle,
        candidates=candidates,
        accepted=accepted,
        pipeline_outputs=outputs,
        stall_cycles=stalls,
        n_filters=n_filters,
    )

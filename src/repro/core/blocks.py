"""Structural composition of CBBs, SPEs, and SCBBs (paper Secs. 3.1, 4.5-4.6).

The strong-scaling hierarchy:

* a **PE** is one filter bank + force pipeline + neighbor-force
  accumulator;
* an **SPE** groups ``n`` PEs with ``n + 1`` force caches (one per PE
  for home forces plus ``FC N`` for returning neighbor forces), one
  position cache, and its own PRN/FRN ring nodes;
* an **SCBB** groups SPEs working on the *same* cell: position caches
  hold disjoint even/odd particle-ID subsets for neighbor broadcast, a
  single Home Position Cache (HPC) serves home-position traversal, and
  an adder tree combines the FC banks; VC and MU do not scale.

This module builds that structure explicitly (it is what the resource
model's component counts mean) and provides the even/odd interleaving
and per-PE workload split used to quantify load balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.config import MachineConfig
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class PEBlock:
    """One processing element."""

    pe_index: int
    filters: int


@dataclass(frozen=True)
class SPEBlock:
    """A scalable PE: n PEs + (n+1) FCs + PC + PRN + FRN (Sec. 4.5)."""

    spe_index: int
    pes: Tuple[PEBlock, ...]
    force_caches: int
    has_position_cache: bool = True

    @property
    def n_pes(self) -> int:
        return len(self.pes)


@dataclass(frozen=True)
class SCBBlock:
    """A scalable cell building block (Sec. 4.6, Fig. 15)."""

    cell_index: int
    spes: Tuple[SPEBlock, ...]
    has_home_position_cache: bool
    has_velocity_cache: bool = True
    has_motion_update: bool = True
    has_adder_tree: bool = True

    @property
    def n_pes(self) -> int:
        return sum(s.n_pes for s in self.spes)

    @property
    def n_force_caches(self) -> int:
        return sum(s.force_caches for s in self.spes)

    @property
    def n_ring_node_sets(self) -> int:
        """PRN/FRN sets; each SPE carries its own (separate routing paths)."""
        return len(self.spes)


def build_scbb(config: MachineConfig, cell_index: int = 0) -> SCBBlock:
    """Instantiate the SCBB structure for a design point."""
    spes = tuple(
        SPEBlock(
            spe_index=s,
            pes=tuple(
                PEBlock(pe_index=p, filters=config.filters_per_pipeline)
                for p in range(config.pes_per_spe)
            ),
            force_caches=config.pes_per_spe + 1,
        )
        for s in range(config.spes_per_cbb)
    )
    # The HPC only exists once PCs are specialized to neighbor broadcast,
    # i.e. with more than one SPE (Sec. 4.6); a 1-SPE CBB's PC serves both.
    return SCBBlock(
        cell_index=cell_index,
        spes=spes,
        has_home_position_cache=config.spes_per_cbb > 1,
    )


def interleave_particles(particle_ids: np.ndarray, n_spes: int) -> List[np.ndarray]:
    """Partition a cell's particles across SPE position caches.

    "PC0 only takes positions with even particle IDs, while PC1 only
    takes odd ones.  If more than 2 SPEs are instantiated, they only
    need to work on particles with interleaved IDs to ensure a balanced
    workload." (Sec. 4.6)
    """
    if n_spes < 1:
        raise ValidationError("n_spes must be >= 1")
    particle_ids = np.asarray(particle_ids)
    return [particle_ids[particle_ids % n_spes == s] for s in range(n_spes)]


def pe_candidate_split(
    home_count: int,
    neighbor_counts: Tuple[int, ...],
    config: MachineConfig,
) -> np.ndarray:
    """Candidate pairs per PE for one cell, with interleaving granularity.

    Neighbor streams are interleaved across SPEs by particle ID and
    dispatched round-robin to the PEs within an SPE, so each PE sees
    ``ceil``-grained shares; the residual imbalance is what keeps
    measured PE utilization below the ideal split (Fig. 17).

    Returns
    -------
    ``(pes_per_cbb,)`` candidate counts, SPE-major.
    """
    n_spes = config.spes_per_cbb
    pes_per_spe = config.pes_per_spe
    out = np.zeros(n_spes * pes_per_spe, dtype=np.int64)
    # Home-home pairs are split like neighbor work: by the evaluating
    # PE's share of home particles.
    home_pairs = home_count * (home_count - 1) // 2
    for s in range(n_spes):
        # This SPE's share of neighbor positions (interleaved IDs).
        for p in range(pes_per_spe):
            pe = s * pes_per_spe + p
            total = 0
            for nc in neighbor_counts:
                spe_share = len(np.arange(nc)[np.arange(nc) % n_spes == s])
                pe_share = int(np.ceil(max(spe_share - p, 0) / pes_per_spe)) if spe_share else 0
                total += pe_share * home_count
            # Home pairs split evenly at PE granularity.
            total += int(np.ceil(max(home_pairs - pe, 0) / (n_spes * pes_per_spe)))
            out[pe] = total
    return out


def load_imbalance(per_pe_candidates: np.ndarray) -> float:
    """Max-over-mean imbalance of a per-PE candidate split (1.0 = perfect)."""
    mean = per_pe_candidates.mean()
    if mean == 0:
        return 1.0
    return float(per_pe_candidates.max() / mean)

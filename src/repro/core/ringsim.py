"""Cycle-level ring simulation — validates the analytic ring load model.

The performance model (:mod:`repro.core.cycles`) bounds ring time by the
busiest link's load.  This module simulates the actual dynamics of a
unidirectional daisy-chain at record granularity: every in-flight record
advances one slot per cycle; a ring node may inject one record per cycle
into its outgoing link, but through-traffic has priority (the standard
ring arbitration — also why rings are cheap: no crossbar, no stalls for
traffic already on the ring).

Because all records move at the same speed, collisions can only happen
at injection, so the simulation reduces to per-cycle link occupancy plus
per-slot injection FIFOs.  Tests assert that the analytic
``min_cycles`` lower-bounds the simulated drain time and stays within a
small factor of it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.rings import RingPath
from repro.util.errors import SimulationError, ValidationError


@dataclass
class _Injection:
    """A batch of records waiting at a slot."""

    dst: int
    remaining: int


class RingSimulator:
    """Record-level simulation of one unidirectional ring.

    Parameters
    ----------
    ring:
        Ring geometry and direction (shared with the analytic model).
    """

    def __init__(self, ring: RingPath):
        self.ring = ring
        self._queues: Dict[int, Deque[_Injection]] = {
            s: deque() for s in range(ring.n_slots)
        }
        self._total_records = 0

    def add_injection(self, src: int, dst: int, count: int = 1) -> None:
        """Queue ``count`` records at slot ``src`` destined for ``dst``."""
        if count < 0:
            raise ValidationError("count must be >= 0")
        if src == dst:
            raise ValidationError("src == dst records never ride the ring")
        for s in (src, dst):
            if not 0 <= s < self.ring.n_slots:
                raise ValidationError(f"slot {s} out of range")
        if count == 0:
            return
        self._queues[src].append(_Injection(dst, count))
        self._total_records += count

    def run(self, max_cycles: int = 10_000_000) -> int:
        """Simulate until every record is delivered; returns cycles used.

        A record injected during cycle ``c`` traverses its first link
        during ``c`` and therefore arrives after exactly ``hops`` cycles
        when unobstructed.
        """
        n = self.ring.n_slots
        direction = self.ring.direction
        # continuing[slot]: destination of the record that arrived at
        # ``slot`` last cycle and must keep going (at most one: a slot
        # receives at most one arrival per cycle and its previous
        # continuation always departed — through-traffic is never
        # blocked).
        continuing: List[Optional[int]] = [None] * n
        delivered = 0
        cycle = 0
        while delivered < self._total_records:
            if cycle >= max_cycles:
                raise SimulationError(
                    f"ring did not drain within {max_cycles} cycles"
                )
            cycle += 1
            # Claim links: through-traffic first, then injections.
            traversing: List[Optional[int]] = list(continuing)
            continuing = [None] * n
            for slot in range(n):
                if traversing[slot] is not None:
                    continue
                queue = self._queues[slot]
                if not queue:
                    continue
                batch = queue[0]
                traversing[slot] = batch.dst
                batch.remaining -= 1
                if batch.remaining == 0:
                    queue.popleft()
            # End of cycle: arrivals.
            for link in range(n):
                dst = traversing[link]
                if dst is None:
                    continue
                arrive_slot = (link + direction) % n
                if arrive_slot == dst:
                    delivered += 1
                else:
                    continuing[arrive_slot] = dst
        return cycle

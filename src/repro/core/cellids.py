"""Two-level cell-ID conversion (paper Sec. 4.2, Fig. 9).

Every cell has a unique *global* cell ID (GCID), which would make each
FPGA node's neighbor-matching logic different — heterogeneous bitstreams.
FASDA instead converts IDs at the node boundary so every node sees an
identical local ID space:

* **GCID -> LCID** on arrival at a node: the particle's cell coordinates
  are re-expressed relative to the destination node's origin, modulo the
  global grid.  Local cells of any node then always appear as
  ``0 .. local_dims-1``, as if every node were node (0, 0, 0).
* **LCID -> RCID** on arrival at a destination CBB: the cell's position
  relative to the destination cell, mapped into ``{1, 2, 3}`` per axis
  (home = 2).  Concatenated with the fixed-point in-cell offset this
  yields a coordinate in ``[1, 4)`` whose differences are inter-particle
  displacements; starting at 1 keeps a leading integer bit set for cheap
  fixed-to-float conversion (paper Sec. 4.2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ValidationError

#: RCID value of the home cell on every axis.
RCID_HOME = 2


def gcid(coords: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Global cell ID from coordinates (paper Eq. 7): Dy*Dz*x + Dz*y + z."""
    coords = np.asarray(coords, dtype=np.int64)
    _, dy, dz = (int(d) for d in dims)
    return dy * dz * coords[..., 0] + dz * coords[..., 1] + coords[..., 2]


def gcid_coords(cid: np.ndarray, dims: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`gcid`."""
    cid = np.asarray(cid, dtype=np.int64)
    _, dy, dz = (int(d) for d in dims)
    x = cid // (dy * dz)
    rem = cid - x * dy * dz
    return np.stack([x, rem // dz, rem % dz], axis=-1)


def node_of_cell(
    cell_coords: np.ndarray, local_dims: Sequence[int]
) -> np.ndarray:
    """FPGA-node coordinates owning each cell."""
    cell_coords = np.asarray(cell_coords, dtype=np.int64)
    return cell_coords // np.asarray(local_dims, dtype=np.int64)


def cell_node_ids(
    cell_coords: np.ndarray,
    local_dims: Sequence[int],
    fpga_grid: Sequence[int],
) -> np.ndarray:
    """Flat FPGA-node id owning each cell (row-major over the node grid).

    The single source of truth for the cell -> node map: the machine's
    partition build, the rescale migration planner, and the checkpoint
    restore validator all derive it from here, so a partition and its
    serialized form can never disagree.
    """
    nc = node_of_cell(cell_coords, local_dims)
    _, fy, fz = (int(d) for d in fpga_grid)
    return nc[..., 0] * fy * fz + nc[..., 1] * fz + nc[..., 2]


def node_origin(node_coords: np.ndarray, local_dims: Sequence[int]) -> np.ndarray:
    """Global cell coordinates of a node's (0,0,0) local cell."""
    return np.asarray(node_coords, dtype=np.int64) * np.asarray(
        local_dims, dtype=np.int64
    )


def gcid_to_lcid(
    cell_coords: np.ndarray,
    dest_node_coords: np.ndarray,
    local_dims: Sequence[int],
    global_dims: Sequence[int],
) -> np.ndarray:
    """Convert global cell coordinates to the destination node's local view.

    ``LCID = (GCID_coords - dest_node_origin) mod global_dims`` — the
    destination node's own cells land on ``0 .. local_dims-1`` and remote
    cells on wrapped coordinates beyond, identically on every node
    (homogeneity).  Matches both worked examples in paper Fig. 9.
    """
    cell_coords = np.asarray(cell_coords, dtype=np.int64)
    origin = node_origin(dest_node_coords, local_dims)
    gd = np.asarray(global_dims, dtype=np.int64)
    return np.mod(cell_coords - origin, gd)


def lcid_to_rcid(
    lcid: np.ndarray,
    dest_cell_lcid: np.ndarray,
    global_dims: Sequence[int],
) -> np.ndarray:
    """Relative cell ID of a particle's cell w.r.t. a destination cell.

    The difference per axis must be in {-1, 0, +1} (only neighbor cells
    ever pair); it is computed with minimum-image wrap over the global
    grid and mapped to {1, 2, 3} with home = 2.  Raises if the cells are
    not neighbors — in hardware that would mean a routing bug.
    """
    lcid = np.asarray(lcid, dtype=np.int64)
    dest = np.asarray(dest_cell_lcid, dtype=np.int64)
    gd = np.asarray(global_dims, dtype=np.int64)
    delta = np.mod(lcid - dest + gd // 2, gd) - gd // 2
    if np.any(np.abs(delta) > 1):
        raise ValidationError(
            f"cells are not neighbors: lcid delta {delta} exceeds +/-1"
        )
    return delta + RCID_HOME


def rcid_valid(rcid: np.ndarray) -> bool:
    """True when every RCID component lies in {1, 2, 3}."""
    rcid = np.asarray(rcid)
    return bool(np.all((rcid >= 1) & (rcid <= 3)))

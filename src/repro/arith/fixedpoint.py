"""Fixed-point position representation used by the FASDA datapath.

The paper normalizes the cell edge to the cutoff radius ``R_c = 1`` so a
particle's position inside its home cell is a pure fraction in ``[0, 1)``,
and its *relative cell ID* (RCID) along each axis is an integer in
``{1, 2, 3}`` (paper 4.2): the home cell of the evaluating PE is RCID 2,
the negative neighbor 1, the positive neighbor 3.  Concatenating RCID with
the in-cell fraction yields a Q2.f unsigned fixed-point coordinate in
``[1, 4)`` whose differences give inter-particle displacements directly
("easy distance calculation by direct subtraction").

This module models that format as integers scaled by ``2**-frac_bits`` so
quantization is exact and reproducible, while bulk math stays vectorized
NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class FixedPointFormat:
    """An unsigned Q(int_bits).(frac_bits) fixed-point format.

    Parameters
    ----------
    frac_bits:
        Number of fraction bits.  The paper does not publish the exact
        width; FPGA MD designs in this line of work use 24-27 bit
        positions, so the default of 23 fraction bits (+2 integer bits
        for the RCID) models a 25-bit coordinate.
    int_bits:
        Number of integer bits.  2 suffices for RCID values 1..3.
    """

    frac_bits: int = 23
    int_bits: int = 2

    def __post_init__(self) -> None:
        if self.frac_bits < 1 or self.frac_bits > 52:
            raise ValidationError(
                f"frac_bits must be in [1, 52], got {self.frac_bits}"
            )
        if self.int_bits < 1 or self.int_bits > 10:
            raise ValidationError(f"int_bits must be in [1, 10], got {self.int_bits}")

    @property
    def total_bits(self) -> int:
        """Total width of one coordinate in bits."""
        return self.frac_bits + self.int_bits

    @property
    def scale(self) -> float:
        """Value of one least-significant bit (2**-frac_bits)."""
        return 2.0 ** -self.frac_bits

    @property
    def max_value(self) -> float:
        """Largest representable value: 2**int_bits - 1 LSB."""
        return 2.0 ** self.int_bits - self.scale

    def to_raw(self, values: np.ndarray) -> np.ndarray:
        """Quantize float values in ``[0, 2**int_bits)`` to raw integers.

        Rounds to nearest (ties to even, matching NumPy) and raises
        :class:`ValidationError` on out-of-range input rather than
        silently wrapping, because a wrap in the real hardware would be a
        design bug, not a runtime condition.
        """
        values = np.asarray(values, dtype=np.float64)
        raw = np.rint(values * 2.0 ** self.frac_bits).astype(np.int64)
        limit = np.int64(1) << (self.frac_bits + self.int_bits)
        if np.any(raw < 0) or np.any(raw >= limit):
            raise ValidationError(
                "fixed-point overflow: input outside "
                f"[0, {2.0 ** self.int_bits}) for {self!r}"
            )
        return raw

    def from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Convert raw integers back to float64 values."""
        return np.asarray(raw, dtype=np.float64) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round float values to the nearest representable fixed-point value."""
        return self.from_raw(self.to_raw(values))

    def quantize_fraction(self, fractions: np.ndarray) -> np.ndarray:
        """Quantize in-cell fractional offsets in ``[0, 1)``.

        A fraction that rounds up to exactly 1.0 is clamped to the largest
        representable fraction below 1.0, mirroring hardware that keeps
        the in-cell offset strictly inside the cell.
        """
        fractions = np.asarray(fractions, dtype=np.float64)
        if np.any(fractions < 0.0) or np.any(fractions >= 1.0):
            raise ValidationError("cell fractions must lie in [0, 1)")
        q = self.quantize(fractions)
        return np.minimum(q, 1.0 - self.scale)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FixedPointFormat(Q{self.int_bits}.{self.frac_bits})"

"""Indexed linear interpolation of ``r**-alpha`` (paper Eqs. 8-10, Fig. 7).

The FASDA force pipeline never computes ``r**-14`` or ``r**-8`` directly.
Instead the squared distance ``r2`` (a float) indexes a two-level table:

* the *section* ``s`` comes from the exponent bits of ``r2``
  (Eq. 9: ``s = floor(log2(r2)) + n_s``), so sections are octaves;
* each section is divided into ``n_b`` equal-width *bins* from the
  mantissa bits (Eq. 10: ``b = floor((2**(n_s - s) * r2 - 1) * n_b)``);
* the result is first-order: ``r**-alpha = a[s, b] * r2 + b[s, b]``
  (Eq. 8).

With the cutoff radius normalized to 1, valid ``r2`` lies in
``(r2_min, 1]`` where ``r2_min = 2**-n_s`` bounds the smallest section;
pairs closer than the exclusion radius are non-physical and are filtered
out upstream (Fig. 7 "the small r region is excluded").

Coefficients are fit per bin by matching the endpoints, which is what a
table generated offline and loaded into BRAM does; the resulting relative
error is quadratic in the bin width, and :meth:`InterpolationTable.max_relative_error`
measures it so table-size ablations (bench_ablation_interp) can trade
BRAM for accuracy exactly the way the RTL design would.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.util.errors import ValidationError


def section_bin_indices(
    r2: np.ndarray, n_s: int, n_b: int, checked: bool = True
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute section and bin indices for squared distances.

    Implements Eqs. 9-10.  ``r2`` must lie in ``[2**-n_s, 1)``; the value
    1.0 exactly (a pair exactly at the cutoff) is mapped into the last
    bin of the last section, matching hardware that treats ``r2 == R_c**2``
    as in range.

    Parameters
    ----------
    checked:
        Validate the domain (two reductions over the array).  Callers
        whose inputs are already guaranteed in range by an upstream
        filter — the force pipelines — pass False; the check dominates
        the hot path otherwise.

    Returns
    -------
    (s, b):
        Integer arrays of section and bin indices.
    """
    r2 = np.asarray(r2, dtype=np.float64)
    if checked and (np.any(r2 < 2.0 ** -n_s) or np.any(r2 > 1.0)):
        raise ValidationError(
            f"r2 outside table domain [2**-{n_s}, 1]; filter pairs first"
        )
    # frexp: r2 = m * 2**e with m in [0.5, 1)  =>  floor(log2(r2)) = e - 1
    # (exact for non-power-of-two; powers of two give m == 0.5 and the
    # correct floor as well).
    mantissa, exponent = np.frexp(r2)
    s = exponent - 1 + n_s
    # 2**(n_s - s) * r2 = 2 * mantissa in [1, 2)
    b = np.floor((2.0 * mantissa - 1.0) * n_b).astype(np.int64)
    # r2 == 1.0 exactly would index section n_s, bin 0; fold it back.
    at_cutoff = s == n_s
    s = np.where(at_cutoff, n_s - 1, s)
    b = np.where(at_cutoff, n_b - 1, b)
    return s.astype(np.int64), b


class RadialTable:
    """First-order indexed interpolation of any radial kernel ``f(r2)``.

    This is the general form of the paper's table-lookup mechanism: the
    claim that "different force models [can] be implemented with trivial
    modification" (Sec. 3.4) is literally "swap the ROM image" — the
    section/bin indexing and MAC stay identical.  The Ewald real-space
    kernel, switching functions, or any other radial force drop in here.

    Parameters
    ----------
    fn:
        The kernel, vectorized over float64 ``r2`` arrays.
    n_s / n_b:
        Sections / bins per section (see module docstring).
    """

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], n_s: int = 14, n_b: int = 256):
        if n_s < 1 or n_s > 40:
            raise ValidationError(f"n_s must be in [1, 40], got {n_s}")
        if n_b < 1:
            raise ValidationError(f"n_b must be >= 1, got {n_b}")
        self.fn = fn
        self.n_s = n_s
        self.n_b = n_b
        self._a, self._b = self._build_coefficients()

    @property
    def r2_min(self) -> float:
        """Lower edge of the table domain."""
        return 2.0 ** -self.n_s

    def _build_coefficients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fit ``a*r2 + b`` per bin through the bin-edge function values."""
        a = np.empty((self.n_s, self.n_b), dtype=np.float64)
        b = np.empty((self.n_s, self.n_b), dtype=np.float64)
        for s in range(self.n_s):
            lo = 2.0 ** (s - self.n_s)
            width = lo / self.n_b  # section spans [lo, 2*lo)
            edges = lo + width * np.arange(self.n_b + 1)
            f = np.asarray(self.fn(edges), dtype=np.float64)
            slope = (f[1:] - f[:-1]) / width
            a[s] = slope
            b[s] = f[:-1] - slope * edges[:-1]
        return a, b

    def exact(self, r2: np.ndarray) -> np.ndarray:
        """Reference kernel value in double precision."""
        return np.asarray(self.fn(np.asarray(r2, dtype=np.float64)))

    def max_relative_error(self, samples_per_bin: int = 8) -> float:
        """Worst-case relative interpolation error over the whole domain."""
        worst = 0.0
        for s in range(self.n_s):
            lo = 2.0 ** (s - self.n_s)
            width = lo / self.n_b
            offs = (np.arange(samples_per_bin) + 0.5) / samples_per_bin
            starts = lo + width * np.arange(self.n_b)
            r2 = (starts[:, None] + width * offs[None, :]).ravel()
            approx = self.evaluate(r2)
            exact = self.exact(r2)
            nonzero = np.abs(exact) > 0
            if not np.any(nonzero):
                continue
            err = np.max(
                np.abs(approx[nonzero] - exact[nonzero]) / np.abs(exact[nonzero])
            )
            worst = max(worst, float(err))
        return worst

    @property
    def bram_words(self) -> int:
        """Table size in coefficient pairs; proxy for BRAM cost."""
        return 2 * self.n_s * self.n_b

    def evaluate(self, r2: np.ndarray) -> np.ndarray:
        """Interpolated kernel for ``r2`` in ``[2**-n_s, 1]``."""
        r2 = np.asarray(r2, dtype=np.float64)
        s, b = section_bin_indices(r2, self.n_s, self.n_b)
        return self._a[s, b] * r2 + self._b[s, b]

    def evaluate_f32(self, r2: np.ndarray) -> np.ndarray:
        """Single-precision evaluation, as the hardware datapath does it."""
        r2_32 = np.asarray(r2, dtype=np.float32)
        s, b = section_bin_indices(r2_32.astype(np.float64), self.n_s, self.n_b)
        return self.evaluate_f32_at(s, b, r2_32)

    def evaluate_f32_at(
        self, s: np.ndarray, b: np.ndarray, r2_32: np.ndarray
    ) -> np.ndarray:
        """Float32 MAC with precomputed indices.

        Several tables share one index computation in the pipelines —
        in hardware the section/bin decode is a single circuit feeding
        all coefficient ROMs.
        """
        a32 = self._a[s, b].astype(np.float32)
        b32 = self._b[s, b].astype(np.float32)
        return a32 * r2_32 + b32


class InterpolationTable(RadialTable):
    """The paper's power-law tables: ``f(r2) = r2**(-alpha/2) = r**-alpha``.

    Parameters
    ----------
    alpha:
        The exponent of ``r`` being approximated.  The LJ force needs
        alpha = 14 and 8; the LJ energy needs 12 and 6.
    n_s / n_b:
        Sections / bins per section.
    """

    def __init__(self, alpha: int, n_s: int = 14, n_b: int = 256):
        if alpha <= 0:
            raise ValidationError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        super().__init__(lambda r2: r2 ** (-0.5 * alpha), n_s=n_s, n_b=n_b)


class ForceTableSet:
    """The set of interpolation tables one force pipeline carries.

    The RL force (Eq. 2) needs ``r**-14`` and ``r**-8``; tracking the LJ
    potential for energy-conservation monitoring (Fig. 19) additionally
    needs ``r**-12`` and ``r**-6``.  Tables are built once and shared by
    every PE in a machine, exactly as a bitstream shares one ROM image.
    """

    #: alpha exponents for the force path.
    FORCE_ALPHAS = (14, 8)
    #: alpha exponents for the energy path.
    ENERGY_ALPHAS = (12, 6)

    def __init__(self, n_s: int = 14, n_b: int = 256, with_energy: bool = True):
        self.n_s = n_s
        self.n_b = n_b
        alphas = self.FORCE_ALPHAS + (self.ENERGY_ALPHAS if with_energy else ())
        self.tables: Dict[int, InterpolationTable] = {
            alpha: InterpolationTable(alpha, n_s=n_s, n_b=n_b) for alpha in alphas
        }

    def __getitem__(self, alpha: int) -> InterpolationTable:
        return self.tables[alpha]

    @property
    def r2_min(self) -> float:
        """Common lower edge of the table domain."""
        return 2.0 ** -self.n_s

    @property
    def bram_words(self) -> int:
        """Total coefficient words across all tables."""
        return sum(t.bram_words for t in self.tables.values())

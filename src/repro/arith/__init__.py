"""Datapath arithmetic: fixed-point positions and interpolation tables.

FASDA stores particle positions as fixed-point offsets within a cell
(normalized so the cell edge, equal to the cutoff radius, is 1.0) and
evaluates ``r**-alpha`` terms of the Lennard-Jones force with indexed
linear interpolation (paper Eqs. 8-10, Fig. 7).  This package implements
both, bit-faithfully enough that quantization error can be studied
(paper Fig. 19) without simulating individual logic gates.
"""

from repro.arith.fixedpoint import FixedPointFormat
from repro.arith.interp import ForceTableSet, InterpolationTable, RadialTable

__all__ = ["FixedPointFormat", "InterpolationTable", "RadialTable", "ForceTableSet"]

"""Message-passing layer for node state machines on the event kernel.

A :class:`MessageNetwork` connects :class:`NodeProcess` instances and
delivers :class:`Message` objects after a per-link latency — the shape of
an inter-FPGA fabric seen from the synchronization logic's perspective.

The fabric can be made lossy by attaching a
:class:`~repro.faults.FaultInjector` (drop, duplication, reordering
delay, payload corruption), and optionally reliable again by layering a
:class:`~repro.faults.TransportConfig` on top: dropped or
checksum-failed messages are then retransmitted after an exponentially
backed-off timeout until the retry budget runs out.  All fault decisions
are keyed by (src, dst, kind, iteration, unit, attempt), so faulty runs
are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

from repro.eventsim.kernel import EventSimulator
from repro.util.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults import FaultInjector, TransportConfig


@dataclass(frozen=True)
class Message:
    """A typed message between nodes.

    Attributes
    ----------
    kind:
        Message type tag, e.g. ``"last_position"``.
    src, dst:
        Node ids.
    payload:
        Arbitrary extra data.
    """

    kind: str
    src: int
    dst: int
    payload: Any = None


class NodeProcess:
    """Base class for a node participating in a :class:`MessageNetwork`.

    Subclasses override :meth:`on_message` and may use :attr:`network`
    and :attr:`sim` to send messages and schedule local events.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.network: Optional["MessageNetwork"] = None

    @property
    def sim(self) -> EventSimulator:
        """The simulator this node is attached to."""
        assert self.network is not None, "node not attached to a network"
        return self.network.sim

    def send(self, dst: int, kind: str, payload: Any = None) -> None:
        """Send a message through the network (applies link latency)."""
        assert self.network is not None, "node not attached to a network"
        self.network.deliver(Message(kind, self.node_id, dst, payload))

    def on_message(self, msg: Message) -> None:  # pragma: no cover - abstract
        """Handle a delivered message; override in subclasses."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Called once when the simulation starts; override as needed."""


class MessageNetwork:
    """Connects node processes with per-link latencies.

    Parameters
    ----------
    sim:
        The event simulator driving delivery.
    latency_fn:
        ``(src, dst) -> latency`` in simulation time units.  Defaults to
        a constant returned by ``default_latency``.
    default_latency:
        Used when no ``latency_fn`` is given.
    """

    def __init__(
        self,
        sim: EventSimulator,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        default_latency: float = 1.0,
        injector: Optional["FaultInjector"] = None,
        transport: Optional["TransportConfig"] = None,
    ):
        self.sim = sim
        self._latency_fn = latency_fn or (lambda s, d: default_latency)
        self.nodes: Dict[int, NodeProcess] = {}
        #: (src, dst) -> count of messages delivered, for traffic assertions.
        self.message_counts: Dict[Tuple[int, int], int] = {}
        self.injector = injector
        self.transport = transport
        #: Fault/reliability accounting over the network's lifetime.
        self.fault_counts: Dict[str, int] = {
            "dropped": 0, "duplicated": 0, "delayed": 0, "corrupted": 0,
            "retransmits": 0, "lost": 0,
        }
        #: Per-(src, dst, kind) send sequence — the injector's `unit` key.
        self._send_seq: Dict[Tuple[int, int, str], int] = {}

    def attach(self, node: NodeProcess) -> None:
        """Register a node; its id must be unique."""
        if node.node_id in self.nodes:
            raise ValidationError(f"duplicate node id {node.node_id}")
        node.network = self
        self.nodes[node.node_id] = node

    def latency(self, src: int, dst: int) -> float:
        """Link latency between two nodes."""
        return self._latency_fn(src, dst)

    @staticmethod
    def _iteration_of(msg: Message) -> int:
        """Fault-key iteration: integer payloads carry it (sync signals)."""
        return int(msg.payload) if isinstance(msg.payload, int) else 0

    def deliver(self, msg: Message) -> None:
        """Schedule delivery of a message after the link latency.

        With a fault injector attached, the message is first exposed to
        the plan's drop / duplicate / delay / corrupt processes; with a
        transport layered on top, lost or corrupted messages are
        retransmitted on a backed-off timer until the retry budget is
        exhausted.  Without an injector this is the original lossless
        single-schedule path, untouched.
        """
        if msg.dst not in self.nodes:
            raise ValidationError(f"unknown destination node {msg.dst}")
        if self.injector is None:
            self.sim.schedule(self.latency(msg.src, msg.dst), self._dispatch, msg)
            return
        key = (msg.src, msg.dst, msg.kind)
        unit = self._send_seq.get(key, 0)
        self._send_seq[key] = unit + 1
        self._attempt(msg, unit, 0)

    def _attempt(self, msg: Message, unit: int, attempt: int) -> None:
        """One transmission attempt of a message through the lossy fabric."""
        lat = self.latency(msg.src, msg.dst)
        iteration = self._iteration_of(msg)
        dec = self.injector.decide_message(
            msg, iteration=iteration, unit=unit, attempt=attempt
        )
        failed = dec.drop
        out = msg
        if dec.corrupt and not failed:
            if self.transport is not None:
                # The transport checksum catches the flip: the packet is
                # discarded at the receiver, i.e. it behaves like a loss.
                failed = True
            else:
                self.fault_counts["corrupted"] += 1
                out = replace(
                    msg,
                    payload=self.injector.corrupt_payload(
                        msg.payload, msg.src, msg.dst, msg.kind, iteration
                    ),
                )
        if failed:
            self.fault_counts["dropped"] += 1
            t = self.transport
            if t is not None and attempt < t.retry_budget:
                self.fault_counts["retransmits"] += 1
                wait = t.timeout_cycles * t.backoff ** attempt + t.packet_cycles
                self.sim.schedule(wait, self._attempt, msg, unit, attempt + 1)
            else:
                self.fault_counts["lost"] += 1
            return
        if dec.delay:
            self.fault_counts["delayed"] += 1
        self.sim.schedule(lat + dec.delay, self._dispatch, out)
        for k in range(dec.duplicates):
            self.fault_counts["duplicated"] += 1
            self.sim.schedule(lat + dec.delay + (k + 1) * lat, self._dispatch, out)

    def _dispatch(self, msg: Message) -> None:
        key = (msg.src, msg.dst)
        self.message_counts[key] = self.message_counts.get(key, 0) + 1
        self.nodes[msg.dst].on_message(msg)

    def start(self) -> None:
        """Invoke every node's ``on_start`` at t=0 (one bulk insert)."""
        self.sim.schedule_many(
            [(0.0, node.on_start, ()) for node in self.nodes.values()]
        )

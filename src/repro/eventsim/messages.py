"""Message-passing layer for node state machines on the event kernel.

A :class:`MessageNetwork` connects :class:`NodeProcess` instances and
delivers :class:`Message` objects after a per-link latency — the shape of
an inter-FPGA fabric seen from the synchronization logic's perspective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.eventsim.kernel import EventSimulator
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class Message:
    """A typed message between nodes.

    Attributes
    ----------
    kind:
        Message type tag, e.g. ``"last_position"``.
    src, dst:
        Node ids.
    payload:
        Arbitrary extra data.
    """

    kind: str
    src: int
    dst: int
    payload: Any = None


class NodeProcess:
    """Base class for a node participating in a :class:`MessageNetwork`.

    Subclasses override :meth:`on_message` and may use :attr:`network`
    and :attr:`sim` to send messages and schedule local events.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.network: Optional["MessageNetwork"] = None

    @property
    def sim(self) -> EventSimulator:
        """The simulator this node is attached to."""
        assert self.network is not None, "node not attached to a network"
        return self.network.sim

    def send(self, dst: int, kind: str, payload: Any = None) -> None:
        """Send a message through the network (applies link latency)."""
        assert self.network is not None, "node not attached to a network"
        self.network.deliver(Message(kind, self.node_id, dst, payload))

    def on_message(self, msg: Message) -> None:  # pragma: no cover - abstract
        """Handle a delivered message; override in subclasses."""
        raise NotImplementedError

    def on_start(self) -> None:
        """Called once when the simulation starts; override as needed."""


class MessageNetwork:
    """Connects node processes with per-link latencies.

    Parameters
    ----------
    sim:
        The event simulator driving delivery.
    latency_fn:
        ``(src, dst) -> latency`` in simulation time units.  Defaults to
        a constant returned by ``default_latency``.
    default_latency:
        Used when no ``latency_fn`` is given.
    """

    def __init__(
        self,
        sim: EventSimulator,
        latency_fn: Optional[Callable[[int, int], float]] = None,
        default_latency: float = 1.0,
    ):
        self.sim = sim
        self._latency_fn = latency_fn or (lambda s, d: default_latency)
        self.nodes: Dict[int, NodeProcess] = {}
        #: (src, dst) -> count of messages delivered, for traffic assertions.
        self.message_counts: Dict[Tuple[int, int], int] = {}

    def attach(self, node: NodeProcess) -> None:
        """Register a node; its id must be unique."""
        if node.node_id in self.nodes:
            raise ValidationError(f"duplicate node id {node.node_id}")
        node.network = self
        self.nodes[node.node_id] = node

    def latency(self, src: int, dst: int) -> float:
        """Link latency between two nodes."""
        return self._latency_fn(src, dst)

    def deliver(self, msg: Message) -> None:
        """Schedule delivery of a message after the link latency."""
        if msg.dst not in self.nodes:
            raise ValidationError(f"unknown destination node {msg.dst}")
        lat = self.latency(msg.src, msg.dst)
        self.sim.schedule(lat, self._dispatch, msg)

    def _dispatch(self, msg: Message) -> None:
        key = (msg.src, msg.dst)
        self.message_counts[key] = self.message_counts.get(key, 0) + 1
        self.nodes[msg.dst].on_message(msg)

    def start(self) -> None:
        """Invoke every node's ``on_start`` at t=0 (one bulk insert)."""
        self.sim.schedule_many(
            [(0.0, node.on_start, ()) for node in self.nodes.values()]
        )

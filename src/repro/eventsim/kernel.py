"""The event queue at the heart of :mod:`repro.eventsim`.

Events are ``(time, sequence, callback)`` triples on a binary heap.  The
monotonically increasing sequence number makes simultaneous events fire
in scheduling order, so simulations are exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.util.errors import DeadlockError, SimulationError, ValidationError


class EventSimulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = EventSimulator()
    >>> fired = []
    >>> sim.schedule(2.0, fired.append, "b")
    >>> sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._events_processed = 0
        self._watchdogs: List[Callable[[], Optional[str]]] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValidationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, callback, args))

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at an absolute simulation time.

        Pushes directly (no delegation through :meth:`schedule`), so the
        hot path builds the ``args`` tuple exactly once — the varargs
        re-wrap per event was measurable for the ring/cluster sims.
        """
        if time < self._now:
            raise ValidationError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, callback, args))

    def schedule_many(
        self, events: "List[Tuple[float, Callable[..., None], tuple]]"
    ) -> None:
        """Bulk-insert ``(delay, callback, args)`` events in one pass.

        Sequence numbers are assigned in list order, so ties fire in the
        order given — exactly as if :meth:`schedule` had been called per
        event.  For large batches a single ``extend`` + ``heapify``
        (O(n + m)) replaces m pushes (O(m log n)), which is how the
        ring/cluster simulations enqueue whole arrays of departures.
        """
        if not events:
            return
        now = self._now
        seq = self._seq
        entries = []
        for delay, callback, args in events:
            if delay < 0:
                raise ValidationError(
                    f"cannot schedule into the past (delay={delay})"
                )
            seq += 1
            entries.append((now + delay, seq, callback, tuple(args)))
        self._seq = seq
        if len(entries) * 4 < len(self._queue):
            # Small batch onto a big heap: individual pushes are cheaper
            # than re-heapifying everything.
            for entry in entries:
                heapq.heappush(self._queue, entry)
        else:
            self._queue.extend(entries)
            heapq.heapify(self._queue)

    def add_watchdog(self, probe: Callable[[], Optional[str]]) -> None:
        """Register a progress watchdog fired when the queue drains.

        Each probe inspects its subsystem and returns ``None`` when it
        finished cleanly, or a human-readable diagnosis when the drained
        queue actually means a silent deadlock (e.g. a sync handshake
        stuck waiting for a message that was lost in the fabric).  Any
        non-None diagnosis makes :meth:`run` raise
        :class:`~repro.util.errors.DeadlockError` naming the culprit
        instead of returning as if the simulation had completed.
        """
        self._watchdogs.append(probe)

    def _fire_watchdogs(self) -> None:
        diagnoses = [d for d in (probe() for probe in self._watchdogs) if d]
        if diagnoses:
            raise DeadlockError("; ".join(diagnoses))

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the queue drains, ``until`` passes, or the
        event budget is exhausted (which raises — it means a livelock).

        A natural drain (queue empty) additionally fires the registered
        progress watchdogs; an early ``until`` return does not (the
        simulation is paused, not finished).
        """
        processed = 0
        while self._queue:
            time, _, callback, args = self._queue[0]
            if until is not None and time > until:
                self._now = until
                return
            heapq.heappop(self._queue)
            self._now = time
            callback(*args)
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"event budget {max_events} exhausted at t={self._now}; "
                    "likely a scheduling livelock"
                )
        if until is not None:
            self._now = until
        self._fire_watchdogs()

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        return self._queue[0][0] if self._queue else None

"""A small discrete-event simulation kernel.

Used by the synchronization study (chained vs. bulk-synchronous, paper
Sec. 4.4) and the fabric latency models.  Deliberately minimal: a time-
ordered event queue with deterministic tie-breaking, plus message-passing
helpers for node state machines.
"""

from repro.eventsim.kernel import EventSimulator
from repro.eventsim.messages import Message, MessageNetwork, NodeProcess

__all__ = ["EventSimulator", "Message", "MessageNetwork", "NodeProcess"]

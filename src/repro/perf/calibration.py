"""Calibrated constants for the CPU/GPU baseline models.

Every constant here is fit to a number the paper reports (or states in
prose) about its OpenMM baselines; the derivations are spelled out so a
reader can re-check them.  The FPGA model deliberately has **no** entry
in this file — it is derived from the microarchitecture (see
:mod:`repro.core.cycles`).

GPU step-time model (per device type)::

    t_step(n, N) = a + sync(n, N) + b * (N / n) + c * (N / n)**2   [microseconds]
    sync(1, N)   = 0
    sync(n, N)   = s0 * (n - 1) + s1 * N        for n > 1

Anchors used for the A100 fit:

* Fig. 16 strong scaling: FASDA's best design (4x4x4-C) is 4.67x the
  best GPU result, and our first-principles FPGA model gives
  10.6 us/day for C, so rate(1 A100, 4096) ~ 2.27 us/day, i.e.
  t_step ~ 76 us.
* Sec. 5.2: 1-GPU performance "only drops by 60%" going 4x4x4 -> 8x8x8
  (8x particles): t_step(1, 32768) ~ 190 us; and halves again for
  10x10x10: t_step(1, 64000) ~ 381 us.  Fitting a + b*N + c*N**2
  through these three points gives a = 64.5, b = 2.66e-3, c = 3.57e-8.
* Sec. 5.2: 2 A100s lose 26% on 4x4x4 (t ~ 103 us) while doubling GPUs
  for doubled workload roughly halves the rate; both are satisfied with
  s0 = 8 us and s1 = 6e-3 us/particle of NVLink exchange.

V100 anchors: 4 V100s lose 49% on 4x4x4 (t ~ 149 us); V100 compute is
~2.2x slower per particle than A100 but equally launch-bound at small N.

CPU model::

    t_step(p, N) = a + b * N / speedup(p) + s * p   [microseconds]

with an empirical speedup table for OpenMM's CPU platform on a
16-core Xeon: near-linear to 4 threads, saturating by 8-16, and
declining at 32 (Sec. 5.2: "scale well for up to 4 threads ... negative
scaling for 16 threads and beyond"); ``s * p`` is the per-step
synchronization cost that produces the decline.
"""

#: A100 GPU step-time parameters (microseconds / particles).
GPU_A100 = {
    "a": 64.5,       # fixed per-step overhead (kernel launches, integrator)
    "b": 2.66e-3,    # per-particle compute time at full efficiency
    "c": 3.57e-8,    # superlinear term (cache/neighbor growth at 64K)
    "s0": 8.0,       # per-extra-GPU sync latency
    "s1": 6.0e-3,    # per-particle NVLink halo/reduction exchange
}

#: V100 GPU step-time parameters.
GPU_V100 = {
    "a": 64.5,
    "b": 5.85e-3,    # ~2.2x slower per particle than A100
    "c": 7.85e-8,
    "s0": 9.7,
    "s1": 1.2e-2,    # all-to-all NVLink mesh moves more data
}

#: OpenMM CPU platform on a Xeon Gold (16 cores / 32 threads).
CPU_XEON = {
    "a": 20.0,       # per-step fixed cost
    "b": 0.28,       # single-thread microseconds per particle (LJ, cutoff)
    "s": 2.0,        # per-thread per-step synchronization cost
    # Effective parallel speedup by thread count; interpolated between
    # entries.  Shape per Sec. 5.2 prose.
    "speedup": {1: 1.0, 2: 1.9, 4: 3.6, 8: 5.2, 16: 5.8, 32: 4.6},
}

"""FPGA performance adapter: the cycle model behind a common interface.

Unlike the CPU/GPU models, nothing here is calibrated against Fig. 16 —
rates come from :func:`repro.core.cycles.estimate_from_config`, which
measures one iteration of the functional machine and counts cycles from
the microarchitecture.  Results are cached per config because measuring
a large design point costs seconds.
"""

from __future__ import annotations

from typing import Dict

from repro.core.config import MachineConfig
from repro.core.cycles import CyclePerformance, estimate_from_config


class FpgaPerformanceModel:
    """Simulation-rate provider for FASDA design points."""

    def __init__(self, seed: int = 2023):
        self.seed = seed
        self._cache: Dict[MachineConfig, CyclePerformance] = {}

    def performance(self, config: MachineConfig) -> CyclePerformance:
        """Full cycle-model output for a design point (cached)."""
        if config not in self._cache:
            self._cache[config] = estimate_from_config(config, seed=self.seed)
        return self._cache[config]

    def rate_us_per_day(self, config: MachineConfig) -> float:
        """Simulation rate in microseconds of MD time per wall day."""
        return self.performance(config).rate_us_per_day

    def time_per_step_us(self, config: MachineConfig) -> float:
        """Wall microseconds per MD timestep."""
        return self.performance(config).seconds_per_step * 1e6

"""GPU baseline performance model (OpenMM on A100/V100 stand-in).

See :mod:`repro.perf.calibration` for the model form and how every
constant was anchored to the paper's reported ratios.  The mechanisms
are the ones the paper names for the GPUs' negative strong scaling:
long synchronization latency between devices and low kernel efficiency
when each device holds few particles (Sec. 5.2).
"""

from __future__ import annotations

from typing import Dict

from repro.perf.calibration import GPU_A100, GPU_V100
from repro.util.errors import ValidationError
from repro.util.units import simulation_rate_us_per_day

#: Supported device types and their parameter sets.
_DEVICES: Dict[str, Dict[str, float]] = {"a100": GPU_A100, "v100": GPU_V100}


class GpuPerformanceModel:
    """Step-time / simulation-rate model for one GPU type.

    Parameters
    ----------
    device:
        ``"a100"`` (paper: up to 2, NVLink pair) or ``"v100"``
        (paper: up to 4, all-to-all NVLink).
    """

    def __init__(self, device: str = "a100"):
        if device not in _DEVICES:
            raise ValidationError(
                f"unknown GPU device {device!r}; choose from {sorted(_DEVICES)}"
            )
        self.device = device
        self.params = _DEVICES[device]

    def time_per_step_us(self, n_gpus: int, n_particles: int) -> float:
        """Wall microseconds per MD timestep.

        ``t = a + sync(n, N) + b*(N/n) + c*(N/n)**2`` with
        ``sync(n>1, N) = s0*(n-1) + s1*N`` (see calibration module).
        """
        if n_gpus < 1:
            raise ValidationError("n_gpus must be >= 1")
        if n_particles < 1:
            raise ValidationError("n_particles must be >= 1")
        p = self.params
        per_gpu = n_particles / n_gpus
        sync = 0.0 if n_gpus == 1 else p["s0"] * (n_gpus - 1) + p["s1"] * n_particles
        return p["a"] + sync + p["b"] * per_gpu + p["c"] * per_gpu ** 2

    def rate_us_per_day(
        self, n_gpus: int, n_particles: int, dt_fs: float = 2.0
    ) -> float:
        """Simulation rate in microseconds of MD time per wall day."""
        t_us = self.time_per_step_us(n_gpus, n_particles)
        return simulation_rate_us_per_day(dt_fs, t_us * 1e-6)

    def best_rate_us_per_day(
        self, max_gpus: int, n_particles: int, dt_fs: float = 2.0
    ) -> float:
        """Best rate over 1..max_gpus devices (the paper compares FASDA
        against "the best GPU result" because GPU strong scaling is
        negative)."""
        if max_gpus < 1:
            raise ValidationError("max_gpus must be >= 1")
        return max(
            self.rate_us_per_day(n, n_particles, dt_fs)
            for n in range(1, max_gpus + 1)
        )

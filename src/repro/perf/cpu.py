"""CPU baseline performance model (OpenMM CPU platform stand-in).

Encodes the thread-scaling shape the paper reports for the Xeon Gold
baseline: near-linear speedup to 4 threads, saturation around 8-16, and
negative scaling at 32 as per-step synchronization costs overtake the
shrinking per-thread work (Sec. 5.2).  Constants in
:mod:`repro.perf.calibration`.
"""

from __future__ import annotations

import numpy as np

from repro.perf.calibration import CPU_XEON
from repro.util.errors import ValidationError
from repro.util.units import simulation_rate_us_per_day


class CpuPerformanceModel:
    """Step-time / simulation-rate model for the CPU baseline."""

    def __init__(self, params: dict = CPU_XEON):
        self.params = params
        table = sorted(params["speedup"].items())
        self._threads = np.array([t for t, _ in table], dtype=np.float64)
        self._speedups = np.array([s for _, s in table], dtype=np.float64)

    def speedup(self, threads: int) -> float:
        """Effective parallel speedup, log-interpolated between the
        calibrated thread counts."""
        if threads < 1:
            raise ValidationError("threads must be >= 1")
        t = min(float(threads), float(self._threads[-1]))
        return float(
            np.interp(np.log2(t), np.log2(self._threads), self._speedups)
        )

    def time_per_step_us(self, threads: int, n_particles: int) -> float:
        """Wall microseconds per MD timestep."""
        if n_particles < 1:
            raise ValidationError("n_particles must be >= 1")
        p = self.params
        return (
            p["a"] + p["b"] * n_particles / self.speedup(threads) + p["s"] * threads
        )

    def rate_us_per_day(
        self, threads: int, n_particles: int, dt_fs: float = 2.0
    ) -> float:
        """Simulation rate in microseconds of MD time per wall day."""
        t_us = self.time_per_step_us(threads, n_particles)
        return simulation_rate_us_per_day(dt_fs, t_us * 1e-6)

    def best_rate_us_per_day(
        self, max_threads: int, n_particles: int, dt_fs: float = 2.0
    ) -> float:
        """Best rate over power-of-two thread counts up to ``max_threads``."""
        if max_threads < 1:
            raise ValidationError("max_threads must be >= 1")
        counts = [t for t in (1, 2, 4, 8, 16, 32) if t <= max_threads]
        return max(self.rate_us_per_day(t, n_particles, dt_fs) for t in counts)

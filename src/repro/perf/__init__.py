"""Baseline performance models and the FPGA rate adapter (Fig. 16).

The paper's CPU/GPU baselines run OpenMM 7.5.1 with an LJ-only force
field on a Xeon Gold 6226R, up to 2x NVLink A100s, and up to 4x NVLink
V100s.  Without that hardware we substitute *calibrated analytic models*
encoding the mechanisms the paper names — per-step launch/sync overhead,
kernel efficiency versus per-device workload, thread scaling limits —
with every constant documented in :mod:`repro.perf.calibration`.

The FPGA series is **not** calibrated against Fig. 16: it comes from the
first-principles cycle model in :mod:`repro.core.cycles`.
"""

from repro.perf.cpu import CpuPerformanceModel
from repro.perf.gpu import GpuPerformanceModel
from repro.perf.fpga import FpgaPerformanceModel

__all__ = ["CpuPerformanceModel", "GpuPerformanceModel", "FpgaPerformanceModel"]

"""Reciprocal-space Ewald summation — the long-range (LR) complement.

The FASDA accelerator covers only the range-limited component; the
paper treats LR (PME's mesh part) as a separate, already-studied task
(Sec. 1: "LR parallelization and scaling in FPGA clusters and clouds
has been studied").  This module provides the *reference* long-range
term so the electrostatics substrate can be validated end to end: the
real-space part (what FASDA computes), the reciprocal part, and the
self-energy must together reproduce known lattice sums — the rock-salt
Madelung constant test is the classic check that an Ewald decomposition
is implemented correctly.

Plain O(N * K^3) structure-factor summation — this is a validation
reference, not a production PME; production codes use FFTs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.ewald import COULOMB_KCAL_MOL_A
from repro.util.errors import ValidationError


def ewald_reciprocal_energy(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
    k_max: int = 8,
) -> float:
    """Reciprocal-space Ewald energy (kcal/mol) for an orthorhombic box.

    ``E_rec = C * (2 pi / V) * sum_{k != 0} exp(-|k|^2 / (4 beta^2)) / |k|^2
    * |S(k)|^2`` with structure factor ``S(k) = sum_j q_j exp(i k.r_j)``.

    Parameters
    ----------
    k_max:
        Integer reciprocal-lattice cutoff per axis; ``(2*k_max+1)^3 - 1``
        vectors are summed.  8 converges to ~1e-6 relative for typical
        beta*L products.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    box = np.asarray(box, dtype=np.float64)
    n = len(positions)
    if charges.shape != (n,):
        raise ValidationError("charges must be (N,)")
    if k_max < 1:
        raise ValidationError("k_max must be >= 1")
    volume = float(np.prod(box))
    # Integer k-vector grid, excluding the origin.
    axes = [np.arange(-k_max, k_max + 1)] * 3
    kx, ky, kz = np.meshgrid(*axes, indexing="ij")
    kvecs = np.stack([kx, ky, kz], axis=-1).reshape(-1, 3).astype(np.float64)
    kvecs = kvecs[np.any(kvecs != 0, axis=1)]
    # Physical k = 2 pi m / L per axis.
    k_phys = 2.0 * np.pi * kvecs / box
    k2 = np.einsum("ij,ij->i", k_phys, k_phys)
    # Structure factors, batched to bound memory.
    energy = 0.0
    batch = 2048
    prefactor = COULOMB_KCAL_MOL_A * 2.0 * np.pi / volume
    for start in range(0, len(k_phys), batch):
        kb = k_phys[start : start + batch]
        k2b = k2[start : start + batch]
        phase = kb @ positions.T  # (K, N)
        s_re = (charges * np.cos(phase)).sum(axis=1)
        s_im = (charges * np.sin(phase)).sum(axis=1)
        s2 = s_re * s_re + s_im * s_im
        energy += float(
            np.sum(np.exp(-k2b / (4.0 * beta * beta)) / k2b * s2)
        )
    return prefactor * energy


def ewald_self_energy(charges: np.ndarray, beta: float) -> float:
    """Ewald self-energy correction: ``-C * beta / sqrt(pi) * sum q^2``."""
    charges = np.asarray(charges, dtype=np.float64)
    return float(
        -COULOMB_KCAL_MOL_A * beta / np.sqrt(np.pi) * np.sum(charges ** 2)
    )


def ewald_total_energy(
    positions: np.ndarray,
    charges: np.ndarray,
    box: np.ndarray,
    beta: float,
    cutoff: float,
    k_max: int = 8,
) -> Tuple[float, float, float]:
    """Full Ewald electrostatic energy of a neutral periodic system.

    Returns
    -------
    (real, reciprocal, self):
        The three components in kcal/mol; their sum is the total.  The
        real part uses the same kernel FASDA's pipeline tabulates.
    """
    from repro.md.ewald import ewald_real_forces_bruteforce

    if abs(float(np.sum(charges))) > 1e-9:
        raise ValidationError("Ewald energy requires a neutral system")
    _, real = ewald_real_forces_bruteforce(positions, charges, box, cutoff, beta)
    rec = ewald_reciprocal_energy(positions, charges, box, beta, k_max)
    self_e = ewald_self_energy(charges, beta)
    return real, rec, self_e


def madelung_constant_rocksalt(
    n_cells: int = 2, lattice_constant: float = 5.64, k_max: int = 10
) -> float:
    """Compute the rock-salt Madelung constant from the Ewald machinery.

    The NaCl Madelung constant (1.747565) relates the electrostatic
    energy per ion pair to the nearest-neighbor distance:
    ``E_pair = -C * M / r_nn``.  Recovering it validates the real +
    reciprocal + self decomposition jointly.
    """
    from repro.md.lattice import build_rocksalt

    system = build_rocksalt(n_cells, lattice_constant)
    box = system.box
    # Splitting parameter: anything with converged real and reciprocal
    # sums works; beta ~ 5.6 / L_min balances the two.
    beta = 5.6 / float(np.min(box))
    cutoff = float(np.min(box)) / 2.0 * 0.999
    real, rec, self_e = ewald_total_energy(
        system.positions, system.charges, box, beta, cutoff, k_max
    )
    total = real + rec + self_e
    n_pairs = system.n // 2
    r_nn = lattice_constant / 2.0
    return -total * r_nn / (COULOMB_KCAL_MOL_A * n_pairs)

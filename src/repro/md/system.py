"""The particle-system state container shared by every engine.

A :class:`ParticleSystem` owns the NumPy state arrays (positions,
velocities, forces, species ids, masses) and the periodic box.  Engines
mutate the arrays in place — copies of multi-megabyte state per timestep
would dominate runtime (see the HPC guide's "views, not copies" rule) —
and :meth:`ParticleSystem.copy` exists for the places that genuinely need
a snapshot (golden-model comparisons, dataset reuse across engines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.md.params import LJTable
from repro.util.errors import ValidationError
from repro.util.units import BOLTZMANN_KCAL_MOL_K, KCAL_MOL_TO_INTERNAL


@dataclass
class ParticleSystem:
    """Complete dynamic state of an MD simulation.

    Attributes
    ----------
    positions:
        ``(N, 3)`` float64, angstrom, always wrapped into ``[0, box)``.
    velocities:
        ``(N, 3)`` float64, angstrom/fs.
    forces:
        ``(N, 3)`` float64, kcal/mol/A; engines overwrite this.
    species:
        ``(N,)`` int32 species ids indexing ``lj_table.species``.
    lj_table:
        The LJ parameter table; also supplies per-species masses.
    box:
        ``(3,)`` float64 orthorhombic box edge lengths in angstrom.
    """

    positions: np.ndarray
    velocities: np.ndarray
    species: np.ndarray
    lj_table: LJTable
    box: np.ndarray
    forces: Optional[np.ndarray] = None
    charges: Optional[np.ndarray] = None
    masses: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.positions = np.ascontiguousarray(self.positions, dtype=np.float64)
        self.velocities = np.ascontiguousarray(self.velocities, dtype=np.float64)
        self.species = np.ascontiguousarray(self.species, dtype=np.int32)
        self.box = np.ascontiguousarray(self.box, dtype=np.float64)
        n = self.positions.shape[0]
        if self.positions.shape != (n, 3):
            raise ValidationError(f"positions must be (N, 3), got {self.positions.shape}")
        if self.velocities.shape != (n, 3):
            raise ValidationError("velocities shape must match positions")
        if self.species.shape != (n,):
            raise ValidationError("species must be (N,)")
        if self.box.shape != (3,) or np.any(self.box <= 0):
            raise ValidationError("box must be 3 positive edge lengths")
        if np.any(self.species < 0) or np.any(self.species >= self.lj_table.n_species):
            raise ValidationError("species id out of range for lj_table")
        if self.forces is None:
            self.forces = np.zeros_like(self.positions)
        else:
            self.forces = np.ascontiguousarray(self.forces, dtype=np.float64)
            if self.forces.shape != (n, 3):
                raise ValidationError("forces shape must match positions")
        if self.charges is None:
            self.charges = np.zeros(n, dtype=np.float64)
        else:
            self.charges = np.ascontiguousarray(self.charges, dtype=np.float64)
            if self.charges.shape != (n,):
                raise ValidationError("charges must be (N,)")
        self.masses = self.lj_table.masses[self.species]
        self.wrap()

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.positions.shape[0]

    def wrap(self) -> None:
        """Wrap positions into the primary box image, in place."""
        np.mod(self.positions, self.box, out=self.positions)

    def kinetic_energy(self) -> float:
        """Kinetic energy in kcal/mol.

        ``KE = sum(m v^2) / 2`` comes out in amu*A^2/fs^2 and is converted
        back to kcal/mol.
        """
        ke_internal = 0.5 * float(
            np.sum(self.masses * np.sum(self.velocities ** 2, axis=1))
        )
        return ke_internal / KCAL_MOL_TO_INTERNAL

    def temperature(self) -> float:
        """Instantaneous kinetic temperature in kelvin (3N degrees of freedom)."""
        dof = 3 * self.n
        return 2.0 * self.kinetic_energy() / (dof * BOLTZMANN_KCAL_MOL_K)

    def remove_com_velocity(self) -> None:
        """Subtract the center-of-mass velocity, in place."""
        total_mass = float(np.sum(self.masses))
        com_v = (self.masses[:, None] * self.velocities).sum(axis=0) / total_mass
        self.velocities -= com_v

    def copy(self) -> "ParticleSystem":
        """Deep copy of the dynamic state (shares the immutable LJ table)."""
        return ParticleSystem(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            species=self.species.copy(),
            lj_table=self.lj_table,
            box=self.box.copy(),
            forces=self.forces.copy(),
            charges=self.charges.copy(),
        )

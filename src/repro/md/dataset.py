"""The paper's workload generator (Sec. 5.1).

"We used a custom dataset that involves the initialization of 64 randomly
distributed sodium particles in each cell, while ensuring that none of the
particles are too close to be excluded."  The cutoff is 8.5 angstrom and
the cell edge equals the cutoff.

Two placement methods:

* ``"jittered"`` (default) — a 4x4x4 sub-lattice per cell with uniform
  random jitter.  Guarantees the minimum-distance constraint by
  construction, is O(N), and is what we use for large sweeps.  64
  particles in an (8.5 A)^3 cell is dense enough that pure rejection
  sampling stalls near the random-sequential-addition limit.
* ``"rsa"`` — true rejection sampling against all neighbors; available
  for small systems and for tests of the distance constraint itself.

Velocities are Maxwell-Boltzmann at the requested temperature with the
center-of-mass drift removed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.md.cells import CellGrid
from repro.md.params import LJTable
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError
from repro.util.units import BOLTZMANN_KCAL_MOL_K, KCAL_MOL_TO_INTERNAL

#: The paper's cutoff radius in angstrom.
PAPER_CUTOFF_A = 8.5
#: The paper's particles-per-cell density.
PAPER_PARTICLES_PER_CELL = 64
#: Default minimum inter-particle distance: below ~0.66 sigma the LJ energy
#: is "non-physically high" (paper Fig. 7's excluded small-r region).
DEFAULT_MIN_DISTANCE_A = 1.7


def _jittered_positions(
    rng: np.random.Generator,
    dims: Tuple[int, int, int],
    cell_edge: float,
    per_cell: int,
    min_distance: float,
) -> np.ndarray:
    """Jittered sub-lattice placement; min distance holds by construction."""
    k = int(np.ceil(per_cell ** (1.0 / 3.0) - 1e-9))
    spacing = cell_edge / k
    max_jitter = 0.5 * (spacing - min_distance)
    if max_jitter < 0:
        raise ValidationError(
            f"cannot fit {per_cell} particles per cell of edge {cell_edge} "
            f"with min distance {min_distance}"
        )
    # Sub-lattice site centers within one cell.
    axis = (np.arange(k) + 0.5) * spacing
    sites = np.stack(np.meshgrid(axis, axis, axis, indexing="ij"), axis=-1).reshape(-1, 3)
    n_cells = dims[0] * dims[1] * dims[2]
    positions = np.empty((n_cells * per_cell, 3), dtype=np.float64)
    cell_origins = (
        np.stack(
            np.meshgrid(
                np.arange(dims[0]), np.arange(dims[1]), np.arange(dims[2]),
                indexing="ij",
            ),
            axis=-1,
        ).reshape(-1, 3)
        * cell_edge
    )
    for c, origin in enumerate(cell_origins):
        chosen = rng.choice(len(sites), size=per_cell, replace=False)
        jitter = rng.uniform(-max_jitter, max_jitter, size=(per_cell, 3))
        positions[c * per_cell : (c + 1) * per_cell] = origin + sites[chosen] + jitter
    return positions


def _rsa_positions(
    rng: np.random.Generator,
    dims: Tuple[int, int, int],
    cell_edge: float,
    per_cell: int,
    min_distance: float,
    max_tries: int = 20000,
) -> np.ndarray:
    """Rejection sampling with periodic minimum-image distance checks."""
    box = np.asarray(dims, dtype=np.float64) * cell_edge
    n_total = dims[0] * dims[1] * dims[2] * per_cell
    placed = np.empty((n_total, 3))
    count = 0
    min2 = min_distance * min_distance
    cell_origins = (
        np.stack(
            np.meshgrid(
                np.arange(dims[0]), np.arange(dims[1]), np.arange(dims[2]),
                indexing="ij",
            ),
            axis=-1,
        ).reshape(-1, 3)
        * cell_edge
    )
    for origin in cell_origins:
        for _ in range(per_cell):
            for attempt in range(max_tries):
                cand = origin + rng.uniform(0.0, cell_edge, size=3)
                if count:
                    dr = placed[:count] - cand
                    dr -= box * np.rint(dr / box)
                    if np.min(np.einsum("ij,ij->i", dr, dr)) < min2:
                        continue
                placed[count] = cand
                count += 1
                break
            else:
                raise ValidationError(
                    f"RSA placement failed after {max_tries} tries; density too "
                    "high for rejection sampling — use method='jittered'"
                )
    return placed


def build_gradient_dataset(
    dims: Tuple[int, int, int],
    cutoff: float = PAPER_CUTOFF_A,
    min_per_cell: int = 16,
    max_per_cell: int = 64,
    species: Tuple[str, ...] = ("Na",),
    temperature_k: float = 300.0,
    min_distance: float = DEFAULT_MIN_DISTANCE_A,
    seed: int = 2023,
) -> Tuple["ParticleSystem", "CellGrid"]:
    """A density-gradient workload: occupancy ramps along x.

    The paper's benchmark fills every cell identically, which makes all
    nodes equal; real systems (a solvated protein, an interface) do not.
    This generator ramps per-cell occupancy linearly from
    ``min_per_cell`` to ``max_per_cell`` across the x axis, producing a
    built-in load imbalance for the straggler/imbalance studies.
    """
    if not 1 <= min_per_cell <= max_per_cell:
        raise ValidationError("need 1 <= min_per_cell <= max_per_cell")
    grid = CellGrid(tuple(dims), cutoff)
    rng = np.random.default_rng(seed)
    dx = grid.dims[0]
    positions_parts = []
    for x in range(dx):
        frac_x = x / max(dx - 1, 1)
        per_cell = int(round(min_per_cell + frac_x * (max_per_cell - min_per_cell)))
        slab = _jittered_positions(
            rng, (1, grid.dims[1], grid.dims[2]), cutoff, per_cell, min_distance
        )
        slab[:, 0] += x * cutoff
        positions_parts.append(slab)
    positions = np.concatenate(positions_parts)
    n = len(positions)
    lj = LJTable(species)
    species_ids = np.arange(n, dtype=np.int32) % lj.n_species
    velocities = maxwell_boltzmann_velocities(
        rng, lj.masses[species_ids], temperature_k
    )
    system = ParticleSystem(
        positions=positions,
        velocities=velocities,
        species=species_ids,
        lj_table=lj,
        box=grid.box,
    )
    system.remove_com_velocity()
    return system, grid


def maxwell_boltzmann_velocities(
    rng: np.random.Generator, masses: np.ndarray, temperature_k: float
) -> np.ndarray:
    """Sample velocities (A/fs) from the Maxwell-Boltzmann distribution."""
    # sigma_v^2 = kB T / m, with kB T converted to internal energy units.
    kt_internal = BOLTZMANN_KCAL_MOL_K * temperature_k * KCAL_MOL_TO_INTERNAL
    sigma_v = np.sqrt(kt_internal / masses)
    return rng.normal(size=(len(masses), 3)) * sigma_v[:, None]


def build_dataset(
    dims: Tuple[int, int, int],
    cutoff: float = PAPER_CUTOFF_A,
    particles_per_cell: int = PAPER_PARTICLES_PER_CELL,
    species: Tuple[str, ...] = ("Na",),
    temperature_k: float = 300.0,
    min_distance: float = DEFAULT_MIN_DISTANCE_A,
    method: str = "jittered",
    charged: bool = False,
    seed: int = 2023,
) -> Tuple[ParticleSystem, CellGrid]:
    """Build the paper's custom dataset.

    Parameters
    ----------
    dims:
        Global cell grid, e.g. ``(4, 4, 4)`` for the strong-scaling space.
    cutoff:
        Cutoff radius = cell edge, angstrom (paper: 8.5).
    particles_per_cell:
        Particles placed in every cell (paper: 64).
    species:
        Species cycled over particles; default pure sodium.
    temperature_k:
        Maxwell-Boltzmann temperature for initial velocities.
    min_distance:
        Minimum allowed inter-particle distance in angstrom.
    method:
        ``"jittered"`` or ``"rsa"`` (see module docstring).
    charged:
        Assign each particle its species' formal ionic charge (e.g.
        Na+ / Cl-), enabling the LJ + short-range-Ewald force model.
        Neutral species get zero charge.  The paper's evaluation uses
        neutral sodium (``charged=False``).
    seed:
        Deterministic RNG seed.

    Returns
    -------
    (system, grid)
    """
    if particles_per_cell < 1:
        raise ValidationError("particles_per_cell must be >= 1")
    grid = CellGrid(tuple(dims), cutoff)
    rng = np.random.default_rng(seed)
    if method == "jittered":
        positions = _jittered_positions(
            rng, grid.dims, cutoff, particles_per_cell, min_distance
        )
    elif method == "rsa":
        positions = _rsa_positions(
            rng, grid.dims, cutoff, particles_per_cell, min_distance
        )
    else:
        raise ValidationError(f"unknown placement method {method!r}")
    n = len(positions)
    lj = LJTable(species)
    species_ids = np.arange(n, dtype=np.int32) % lj.n_species
    masses = lj.masses[species_ids]
    velocities = maxwell_boltzmann_velocities(rng, masses, temperature_k)
    charges = None
    if charged:
        from repro.md.params import FORMAL_CHARGES

        per_species = np.array(
            [FORMAL_CHARGES.get(s, 0.0) for s in lj.species]
        )
        charges = per_species[species_ids]
    system = ParticleSystem(
        positions=positions,
        velocities=velocities,
        species=species_ids,
        lj_table=lj,
        box=grid.box,
        charges=charges,
    )
    system.remove_com_velocity()
    return system, grid

"""Energy minimization: relax a configuration before dynamics.

The paper's randomly generated dataset starts with substantial repulsive
overlap energy, which converts into heat during the first steps.
Experiments that want a quiescent start (long energy-conservation runs,
structural analysis at a target temperature) first relax the geometry.

Steepest descent with backtracking line search — the standard robust
pre-MD minimizer (GROMACS' default).  Works with any
:class:`~repro.md.forcefield.PairKernel`.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.md.cells import CellGrid
from repro.md.forcefield import PairKernel, compute_forces_kernel
from repro.md.system import ParticleSystem
from repro.util.errors import ValidationError


@dataclass
class MinimizationResult:
    """Outcome of a minimization run."""

    initial_energy: float
    final_energy: float
    iterations: int
    converged: bool
    max_force: float  # kcal/mol/A at the final configuration

    @property
    def energy_drop(self) -> float:
        return self.initial_energy - self.final_energy


def minimize(
    system: ParticleSystem,
    grid: CellGrid,
    kernel: PairKernel,
    max_iterations: int = 200,
    force_tolerance: float = 1.0,
    initial_step: float = 0.02,
    max_displacement: float = 0.2,
) -> MinimizationResult:
    """Steepest-descent minimization, in place.

    Parameters
    ----------
    system:
        Relaxed in place (positions only; velocities untouched).
    kernel:
        The force field to minimize under.
    max_iterations:
        Iteration budget.
    force_tolerance:
        Converged when the max force component falls below this
        (kcal/mol/A).
    initial_step:
        First trial scale from force to displacement (A per kcal/mol/A).
    max_displacement:
        Per-iteration cap on any particle's move (A) — keeps the first
        steps of a badly overlapped system stable.
    """
    if max_iterations < 1 or force_tolerance <= 0:
        raise ValidationError("invalid minimization parameters")
    if initial_step <= 0 or max_displacement <= 0:
        raise ValidationError("steps must be positive")

    forces, energy = compute_forces_kernel(system, grid, kernel)
    initial_energy = energy
    step = initial_step
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        fmax = float(np.abs(forces).max()) if system.n else 0.0
        if fmax < force_tolerance:
            converged = True
            break
        # Trial move along the force, displacement-capped.
        move = forces * step
        norm = np.abs(move).max()
        if norm > max_displacement:
            move *= max_displacement / norm
        trial = system.copy()
        trial.positions += move
        trial.wrap()
        trial_forces, trial_energy = compute_forces_kernel(trial, grid, kernel)
        if trial_energy < energy:
            system.positions[:] = trial.positions
            forces, energy = trial_forces, trial_energy
            step *= 1.2  # grow while successful
        else:
            step *= 0.5  # backtrack
            if step < 1e-8:
                break
    fmax = float(np.abs(forces).max()) if system.n else 0.0
    system.forces[:] = forces
    return MinimizationResult(
        initial_energy=initial_energy,
        final_energy=energy,
        iterations=iterations,
        converged=converged or fmax < force_tolerance,
        max_force=fmax,
    )

"""Step-wide batched pair plans over the half-shell cell topology.

The cell-pair *topology* of a periodic grid — which cell pairs with
which, under what periodic image shift — is pure geometry: it never
changes while the grid exists.  Yet the original hot paths re-derived it
per cell, per half-shell offset, on every timestep, with Python-level
``cell_coords`` / ``neighbor_with_shift`` / ``cell_id`` calls.  This
module computes it **once** and turns the per-step work into a handful
of vectorized passes:

* :class:`CellPairPlan` — flat numpy arrays holding every
  (home cell, neighbor cell, image shift) triple for the 13 half-shell
  offsets plus the home-home self pair; built vectorized, cached per
  grid geometry by :func:`plan_for_grid` / :func:`plan_for_dims`.
* :func:`iter_pair_chunks` — the step-wide candidate enumerator: given
  the :class:`~repro.md.cells.CellList` bucket arrays
  (``order``/``start``/``counts``) it emits all candidate particle-pair
  indices for the whole step as a few large :class:`PairChunk` batches
  (chunked to bound memory), replacing the per-cell Python loop.
* :func:`candidates_per_cell` — the per-cell candidate counts of the
  half-shell traversal, recovered analytically from cell occupancies so
  workload statistics stay exact under the batched path.

Consumers (the float64 reference, the generic force-field driver, the
FASDA machine, the distributed machine, and the Verlet list builder) all
enumerate through the same plan, so there is exactly one statement of
the half-shell traversal in the codebase.

The plan supports anisotropic cell edges (``edges`` per axis) so the
Verlet neighbor-list builder can bucket an arbitrary box at
``cutoff + skin`` resolution with the same machinery.
"""

from __future__ import annotations

from collections import OrderedDict, namedtuple
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.md.cells import CellGrid, HALF_SHELL_OFFSETS
from repro.util.errors import ValidationError

#: Rows per home cell in a plan: the home-home self pair (row 0) plus
#: the 13 half-shell neighbors (rows 1..13).
ROWS_PER_CELL = 14

#: Default candidate-batch size for :func:`iter_pair_chunks`: large
#: enough that Python overhead vanishes, small enough that the per-chunk
#: scratch arrays stay ~100 MB even in float64.
DEFAULT_CHUNK_PAIRS = 2_000_000


class CellPairPlan:
    """Cached half-shell cell-pair topology of a periodic cell grid.

    All arrays are flat over ``n_cells * ROWS_PER_CELL`` rows, laid out
    cell-major: row ``cid * 14 + j`` where ``j = 0`` is the home-home
    self pair and ``j = 1..13`` the half-shell neighbors in
    :data:`~repro.md.cells.HALF_SHELL_OFFSETS` order.

    Attributes
    ----------
    home:
        ``(n_rows,)`` home cell id of each row.
    nbr:
        ``(n_rows,)`` wrapped neighbor cell id (== home for self rows).
    offset:
        ``(n_rows, 3)`` float64 half-shell offset in *cell units* (zero
        for self rows) — the displacement the machine's quantized
        fractions need.
    shift:
        ``(n_rows, 3)`` float64 periodic image shift in *length units*
        (angstrom): add to positions stored in the wrapped neighbor cell
        to place them in the image adjacent to the home cell.
    is_self:
        ``(n_rows,)`` bool, True on home-home rows.
    has_shift:
        ``(n_rows,)`` bool, True where ``shift`` is nonzero (boundary
        rows) — lets consumers skip the shift subtraction for the
        interior majority.
    """

    def __init__(self, dims: Tuple[int, int, int], edges) -> None:
        dims = tuple(int(d) for d in dims)
        if len(dims) != 3 or any(d < 3 for d in dims):
            raise ValidationError(
                f"pair plan needs 3 cell dims >= 3, got {dims}"
            )
        edges_arr = np.asarray(edges, dtype=np.float64).reshape(3)
        if np.any(edges_arr <= 0):
            raise ValidationError("cell edges must be positive")
        self.dims = dims
        self.edges = edges_arr
        dx, dy, dz = dims
        n_cells = dx * dy * dz
        self.n_cells = n_cells
        self.n_rows = n_cells * ROWS_PER_CELL

        cids = np.arange(n_cells, dtype=np.int64)
        coords = np.stack(
            [cids // (dy * dz), (cids // dz) % dy, cids % dz], axis=-1
        )
        offs = np.concatenate(
            [
                np.zeros((1, 3), dtype=np.int64),
                np.asarray(HALF_SHELL_OFFSETS, dtype=np.int64),
            ]
        )
        raw = coords[:, None, :] + offs[None, :, :]  # (C, 14, 3)
        wrapped = np.mod(raw, np.asarray(dims, dtype=np.int64))
        self.home = np.repeat(cids, ROWS_PER_CELL)
        self.nbr = (
            dy * dz * wrapped[..., 0] + dz * wrapped[..., 1] + wrapped[..., 2]
        ).reshape(-1)
        self.offset = np.tile(offs.astype(np.float64), (n_cells, 1))
        self.shift = ((raw - wrapped).astype(np.float64) * edges_arr).reshape(
            -1, 3
        )
        self.is_self = np.tile(
            np.arange(ROWS_PER_CELL) == 0, n_cells
        )
        self.has_shift = np.any(self.shift != 0.0, axis=1)
        # One-entry decode-table cache (see :meth:`padded_decode`): the
        # bucket cap changes rarely between steps of one box.
        self._decode_cap = -1
        self._decode_tables: Optional[Tuple[np.ndarray, ...]] = None

    def padded_decode(
        self, cap: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached flat-index -> (cell, home slot, neighbor slot) decode tables.

        A flat survivor index into the padded ``(C, cap, cap)`` candidate
        mask decodes as ``cell = f // cap^2``, ``i = (f // cap) % cap``,
        ``j = f % cap``; precomputing the tables turns three per-survivor
        integer divisions per offset into three cheap int32 gathers.
        Hoisted onto the plan (historically each consumer re-derived it
        per call) so the numpy padded paths, the band-list builder and
        the compiled backends all share one copy per geometry.
        """
        cap = int(cap)
        if cap != self._decode_cap:
            cap2 = cap * cap
            f = np.arange(self.n_cells * cap2, dtype=np.int64)
            self._decode_tables = (
                (f // cap2).astype(np.int32),
                ((f // cap) % cap).astype(np.int32),
                (f % cap).astype(np.int32),
            )
            self._decode_cap = cap
        return self._decode_tables

    @property
    def neighbor_ids(self) -> np.ndarray:
        """``(n_cells, 13)`` half-shell neighbor cell ids per home cell."""
        return self.nbr.reshape(self.n_cells, ROWS_PER_CELL)[:, 1:]

    def cell_id(self, coords: np.ndarray) -> np.ndarray:
        """Linear cell id from integer coordinates (Eq. 7 convention)."""
        coords = np.asarray(coords, dtype=np.int64)
        _, dy, dz = self.dims
        return dy * dz * coords[..., 0] + dz * coords[..., 1] + coords[..., 2]

    def cell_coords_of(self, cids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`cell_id`: linear ids -> ``(..., 3)`` coords."""
        cids = np.asarray(cids, dtype=np.int64)
        _, dy, dz = self.dims
        x = cids // (dy * dz)
        rem = cids - x * dy * dz
        return np.stack([x, rem // dz, rem % dz], axis=-1)


#: Edge-key quantum for the plan cache: keys are edge lengths rounded to
#: the nearest multiple of 2^-40 angstrom (~1e-12, far below any
#: physically meaningful box perturbation but coarse enough that the
#: accumulated float noise of a perturbed-box sweep maps to one key).
_EDGE_KEY_QUANTUM = 2.0 ** 40


def _quantize_edge(e: float) -> float:
    return round(float(e) * _EDGE_KEY_QUANTUM) / _EDGE_KEY_QUANTUM


#: Default bound on cached plans.  Campaigns sweeping cell edges used
#: to grow the cache without limit; 32 covers every concurrent geometry
#: any in-repo sweep touches while a plan is ~1 MB at production dims.
PLAN_CACHE_DEFAULT_MAXSIZE = 32

#: Cache statistics — the ``lru_cache.cache_info()`` fields plus the
#: eviction count the bounded LRU adds.
PlanCacheInfo = namedtuple(
    "PlanCacheInfo", ["hits", "misses", "maxsize", "currsize", "evictions"]
)

_plan_cache: "OrderedDict[Tuple, CellPairPlan]" = OrderedDict()
_plan_cache_maxsize = PLAN_CACHE_DEFAULT_MAXSIZE
_plan_cache_hits = 0
_plan_cache_misses = 0
_plan_cache_evictions = 0


def _plan_cached(
    dims: Tuple[int, int, int], edges: Tuple[float, float, float]
) -> CellPairPlan:
    """Bounded-LRU plan lookup (move-to-end on hit, evict oldest)."""
    global _plan_cache_hits, _plan_cache_misses, _plan_cache_evictions
    key = (dims, edges)
    plan = _plan_cache.get(key)
    if plan is not None:
        _plan_cache.move_to_end(key)
        _plan_cache_hits += 1
        return plan
    _plan_cache_misses += 1
    plan = CellPairPlan(dims, edges)
    _plan_cache[key] = plan
    while len(_plan_cache) > _plan_cache_maxsize:
        _plan_cache.popitem(last=False)
        _plan_cache_evictions += 1
    return plan


def set_plan_cache_maxsize(maxsize: int) -> None:
    """Re-bound the shared plan cache, evicting oldest entries to fit."""
    global _plan_cache_maxsize, _plan_cache_evictions
    maxsize = int(maxsize)
    if maxsize < 1:
        raise ValidationError(
            f"plan cache maxsize must be >= 1, got {maxsize}"
        )
    _plan_cache_maxsize = maxsize
    while len(_plan_cache) > _plan_cache_maxsize:
        _plan_cache.popitem(last=False)
        _plan_cache_evictions += 1


def plan_cache_info() -> PlanCacheInfo:
    """Hit/miss/eviction statistics of the shared plan cache.

    A perturbed-box sweep that thrashes this cache shows up as one miss
    per design point *per step* instead of one per design point; the
    campaign benchmarks record these counters to catch that regression.
    A long-running edge sweep shows up in ``evictions`` instead of in
    unbounded memory growth.
    """
    return PlanCacheInfo(
        hits=_plan_cache_hits,
        misses=_plan_cache_misses,
        maxsize=_plan_cache_maxsize,
        currsize=len(_plan_cache),
        evictions=_plan_cache_evictions,
    )


def clear_plan_cache() -> None:
    """Drop every cached plan (and its hit/miss/eviction counters).

    Benchmarks use this to measure cold plan construction against the
    warm (cached) lookup; production code never needs it.  The
    configured bound is kept.
    """
    global _plan_cache_hits, _plan_cache_misses, _plan_cache_evictions
    _plan_cache.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0
    _plan_cache_evictions = 0


def plan_for_grid(grid: CellGrid) -> CellPairPlan:
    """The (cached) pair plan of a :class:`~repro.md.cells.CellGrid`.

    The cache key is the grid geometry ``(dims, cell_edge)`` with the
    edge *quantized* to 2^-40 angstrom: raw float keys made sweeps over
    recomputed (bit-wobbling) box sizes miss on every call and churn the
    bounded LRU.  The plan is built from the quantized edges, so equal
    keys return a plan that is exact for every caller mapping to them.
    """
    e = _quantize_edge(grid.cell_edge)
    return _plan_cached(grid.dims, (e, e, e))


def plan_for_dims(
    dims: Tuple[int, int, int], edges: Tuple[float, float, float]
) -> CellPairPlan:
    """The (cached) pair plan for explicit dims and per-axis cell edges."""
    return _plan_cached(
        tuple(int(d) for d in dims), tuple(_quantize_edge(e) for e in edges)
    )


@dataclass
class PairChunk:
    """One batch of candidate pairs from :func:`iter_pair_chunks`.

    Attributes
    ----------
    row:
        ``(M,)`` plan-row index of each candidate — gathers
        ``plan.shift`` / ``plan.offset`` / ``plan.home`` per candidate.
    ii / jj:
        ``(M,)`` particle indices of the home-side / neighbor-side
        particle (already mapped through the bucket ``order`` when one
        was supplied).  Self rows carry only their upper triangle
        (``i < j`` bucket slots), so every unordered pair appears
        exactly once.
    """

    row: np.ndarray
    ii: np.ndarray
    jj: np.ndarray


def iter_pair_chunks(
    plan: CellPairPlan,
    counts: np.ndarray,
    start: np.ndarray,
    order: Optional[np.ndarray] = None,
    rows: Optional[np.ndarray] = None,
    target_pairs: int = DEFAULT_CHUNK_PAIRS,
) -> Iterator[PairChunk]:
    """Enumerate every half-shell candidate pair as large batches.

    Parameters
    ----------
    plan:
        The cell-pair topology.
    counts / start:
        Per-cell bucket occupancies and exclusive prefix offsets
        (``start`` has ``n_cells + 1`` entries) — exactly the
        :class:`~repro.md.cells.CellList` arrays.
    order:
        Bucket permutation mapping bucket slots to particle indices
        (``CellList.order``).  ``None`` when the caller's arrays are
        already bucket-sorted (slot index == particle index).
    rows:
        Optional subset of plan rows to enumerate (e.g. only the rows
        whose home cell is local to one node).  ``None`` = all rows.
    target_pairs:
        Approximate candidates per yielded chunk; whole plan rows are
        never split across chunks, so per-row segment statistics (e.g.
        unique neighbor-force records) can be computed chunk-locally.

    Yields
    ------
    :class:`PairChunk` batches covering each candidate pair exactly once
    (home-home pairs upper-triangle, neighbor pairs full cross product).
    """
    counts = np.asarray(counts, dtype=np.int64)
    start = np.asarray(start, dtype=np.int64)
    if len(counts) < plan.n_cells:
        # A sparse or empty system can hand us bincount arrays shorter
        # than the cell count (trailing cells unoccupied, or a fully
        # empty box where ``counts`` has zero length).  Pad with empty
        # cells so the ``counts[home]`` gathers below stay in bounds —
        # zero-occupancy cells contribute zero candidates either way.
        tail = start[-1] if len(start) else 0
        counts = np.concatenate(
            [counts, np.zeros(plan.n_cells - len(counts), dtype=np.int64)]
        )
        start = np.concatenate(
            [
                start,
                np.full(
                    plan.n_cells + 1 - len(start), tail, dtype=np.int64
                ),
            ]
        )
    if rows is None:
        # All-rows fast path: the plan's own flat arrays *are* the row
        # gathers, so the three n_rows-sized fancy-index passes below
        # are skipped entirely (they are pure per-call overhead that the
        # plan already holds hoisted).
        base = np.arange(plan.n_rows, dtype=np.int64)
        home = plan.home
        nbr = plan.nbr
        is_self = plan.is_self
    else:
        base = np.asarray(rows, dtype=np.int64)
        home = plan.home[base]
        nbr = plan.nbr[base]
        is_self = plan.is_self[base]
    na = counts[home]
    nb = counts[nbr]
    sizes = np.where(is_self, na * (na - 1) // 2, na * nb)
    act = np.flatnonzero(sizes > 0)
    if act.size == 0:
        return
    sz = sizes[act]
    offsets_in_stream = np.cumsum(sz) - sz
    chunk_of = offsets_in_stream // max(int(target_pairs), 1)
    splits = np.flatnonzero(np.diff(chunk_of)) + 1
    for grp in np.split(act, splits):
        # Two-level repeat expansion (no per-pair integer division):
        # one *segment* per (row, home-slot i); self rows emit only the
        # j > i tail of their segment, which yields the home-home upper
        # triangle directly.
        na_g = na[grp]
        seg_row = np.repeat(np.arange(grp.size, dtype=np.int64), na_g)
        seg_i = (
            np.arange(len(seg_row), dtype=np.int64)
            - np.repeat(np.cumsum(na_g) - na_g, na_g)
        )
        self_seg = is_self[grp][seg_row]
        nb_seg = np.where(
            self_seg, na_g[seg_row] - seg_i - 1, nb[grp][seg_row]
        )
        seg_off = np.cumsum(nb_seg) - nb_seg
        total = int(seg_off[-1] + nb_seg[-1]) if len(nb_seg) else 0
        block = np.repeat(seg_row, nb_seg)
        i_loc = np.repeat(seg_i, nb_seg)
        j_loc = np.arange(total, dtype=np.int64) + np.repeat(
            np.where(self_seg, seg_i + 1, 0) - seg_off, nb_seg
        )
        ii = start[home[grp][block]] + i_loc
        jj = start[nbr[grp][block]] + j_loc
        if order is not None:
            ii = order[ii]
            jj = order[jj]
        yield PairChunk(row=base[grp][block], ii=ii, jj=jj)


def candidates_per_cell(plan: CellPairPlan, counts: np.ndarray) -> np.ndarray:
    """Per-home-cell candidate counts of the half-shell traversal.

    ``occ*(occ-1)/2`` home-home pairs plus ``occ * occ_nbr`` for each of
    the 13 half-shell neighbors — computed from occupancies alone, so
    the batched force path reports the exact same workload statistics
    as the per-cell loop it replaced.
    """
    counts = np.asarray(counts, dtype=np.int64)
    nbr_occ = counts[plan.nbr].reshape(plan.n_cells, ROWS_PER_CELL)[:, 1:].sum(
        axis=1
    )
    return counts * (counts - 1) // 2 + counts * nbr_occ
